//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched. This crate keeps the same macro and API shape
//! (`criterion_group!`, `criterion_main!`, `Criterion::benchmark_group`,
//! `Bencher::iter`, `black_box`) and implements a small wall-clock harness:
//! each benchmark runs a timed loop and prints `name ... time per iter`.
//! No statistics, plots, or baselines — enough for `cargo bench` to run and
//! report comparable medians offline.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<S: Into<String>, F>(&mut self, name: S, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        run_benchmark(&name, 10, f);
        self
    }
}

/// A named group; mirrors `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<S: Into<String>, F>(&mut self, id: S, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(&label, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` runs the measured body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut body: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(body());
        }
        self.elapsed += start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    // Warm-up pass (also discovers whether the closure calls `iter`).
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);

    let mut total = Duration::ZERO;
    let mut iters: u64 = 0;
    for _ in 0..samples {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        iters += b.iters;
    }
    let per_iter = if iters == 0 {
        Duration::ZERO
    } else {
        total / iters as u32
    };
    println!("bench: {label:<60} {per_iter:>12.3?}/iter ({iters} iters)");
}

/// Mirrors `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Mirrors `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
