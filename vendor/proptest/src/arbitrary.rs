//! `Arbitrary`: full-range generation for primitives, used by the
//! `name: Type` parameter form of `proptest!` and by [`any`].

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, roughly symmetric around zero; avoids NaN/inf surprises.
        (rng.unit_f64() - 0.5) * 2e9
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        ((rng.unit_f64() - 0.5) * 2e9) as f32
    }
}

/// Strategy form of [`Arbitrary`] (mirrors `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
