//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Uniformly select one of the given values.
pub fn select<T: Clone + 'static>(values: Vec<T>) -> Select<T> {
    assert!(!values.is_empty(), "select of empty vec");
    Select { values }
}

pub struct Select<T> {
    values: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.values.len() as u64) as usize;
        self.values[i].clone()
    }
}
