//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched. This crate reimplements the subset the workspace's
//! property tests use: the [`proptest!`] macro (with `#![proptest_config]`,
//! `name in strategy` and `name: Type` parameter forms), range / tuple /
//! `Just` / union / map / recursive / collection / select strategies, and
//! the `prop_assert*` macros.
//!
//! Differences from upstream: no shrinking (a failing case reports the
//! generated inputs via the panic message of the failed assertion), and
//! case generation is a deterministic function of the test's module path,
//! name, and case index — every run explores the same inputs, which makes
//! failures exactly reproducible in CI.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a property test (no shrinking; behaves like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Equality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Inequality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Union of strategies with equal (or `weight =>` prefixed) probability.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $s:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $( ($weight as u32, $crate::strategy::Strategy::boxed($s)) ),+
        ])
    };
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($s) ),+
        ])
    };
}

/// The `proptest!` item macro: wraps each contained `fn` in a loop over
/// deterministically generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (cfg = $cfg:expr; $( $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case as u64,
                    );
                    $crate::__proptest_bind!(__rng; $($params)*; $body);
                }
            }
        )*
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_bind {
    ($rng:ident; ; $body:block) => { $body };
    ($rng:ident; $v:ident in $s:expr; $body:block) => {
        let $v = $crate::strategy::Strategy::generate(&($s), &mut $rng);
        $body
    };
    ($rng:ident; $v:ident in $s:expr, $($rest:tt)*) => {
        let $v = $crate::strategy::Strategy::generate(&($s), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*)
    };
    ($rng:ident; $v:ident : $t:ty; $body:block) => {
        let $v = <$t as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
        $body
    };
    ($rng:ident; $v:ident : $t:ty, $($rest:tt)*) => {
        let $v = <$t as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*)
    };
}
