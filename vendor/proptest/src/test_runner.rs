//! Deterministic per-case RNG and test configuration.

/// Mirrors `proptest::test_runner::Config` (exposed as `ProptestConfig` in
/// the prelude). Only `cases` is honored.
#[derive(Clone, Debug)]
pub struct Config {
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 256 }
    }
}

/// SplitMix64 seeded from (test name, case index) — fully deterministic so
/// CI failures reproduce locally without a persisted seed file.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_case(name: &str, case: u64) -> TestRng {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[0, n)`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}
