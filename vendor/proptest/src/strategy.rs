//! Strategies: deterministic value generators composable like upstream
//! proptest's, minus shrinking.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A generator of values of one type. Object-safe core (`generate`) plus
/// provided combinators.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase (and reference-count, so the result is `Clone`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Recursive strategies: `self` is the leaf case; `branch` builds the
    /// recursive cases from a strategy for the sub-trees. The upstream
    /// `desired_size`/`expected_branch_size` hints are accepted but unused;
    /// recursion depth is bounded by `depth`.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let level = branch(cur).boxed();
            // Each level keeps a chance of bottoming out early, like
            // upstream's depth-weighted recursion.
            cur = Union::weighted(vec![(1, leaf.clone()), (2, level)]).boxed();
        }
        cur
    }
}

/// Reference-counted type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice between strategies of one value type.
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        Union::weighted(options.into_iter().map(|s| (1, s)).collect())
    }

    pub fn weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!options.is_empty(), "empty Union");
        let total_weight = options.iter().map(|(w, _)| *w as u64).sum::<u64>().max(1);
        Union {
            options,
            total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (w, s) in &self.options {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        // Rounding safety net: fall back to the last option.
        self.options[self.options.len() - 1].1.generate(rng)
    }
}

// ---- ranges ----------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let u = rng.unit_f64() as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

// ---- tuples ----------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($n:ident),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($n,)+) = self;
                ($($n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
