//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the real `rand` cannot
//! be fetched. This crate implements the small, deterministic subset the
//! workspace uses: `StdRng::seed_from_u64`, `Rng::gen_range` over integer
//! and float ranges, and `Rng::gen` for a few primitives. The generator is
//! SplitMix64 — not cryptographic, but high-quality enough for synthetic
//! workload generation, and fully deterministic for a given seed (which is
//! all the proxies and the fault-injection campaign rely on).
//!
//! Streams differ from upstream `rand` for the same seed; nothing in the
//! workspace depends on the exact values, only on seed-reproducibility.

use std::ops::{Range, RangeInclusive};

/// Object-safe word source (subset of `rand::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform value in `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A uniformly random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_u64(self.next_u64())
    }
}

impl<R: RngCore> Rng for R {}

/// Types that can be sampled uniformly from a range.
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

/// Seedable RNGs (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    /// Deterministic SplitMix64 generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl super::RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng { state: seed }
    }
}

/// Uniform `f64` in `[0, 1)` from a 64-bit word.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let u = unit_f64(rng.next_u64()) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Primitive types with a "just take the bits" uniform distribution
/// (subset of `rand::distributions::Standard`).
pub trait Standard {
    fn from_u64(word: u64) -> Self;
}

impl Standard for u64 {
    fn from_u64(word: u64) -> Self {
        word
    }
}
impl Standard for i64 {
    fn from_u64(word: u64) -> Self {
        word as i64
    }
}
impl Standard for u32 {
    fn from_u64(word: u64) -> Self {
        (word >> 32) as u32
    }
}
impl Standard for bool {
    fn from_u64(word: u64) -> Self {
        word & 1 == 1
    }
}
impl Standard for f64 {
    fn from_u64(word: u64) -> Self {
        unit_f64(word)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: usize = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&u));
        }
    }
}
