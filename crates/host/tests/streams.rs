//! Async-stream semantics: the deferred seeded round-robin drain is
//! bit-identical to eager execution, events order cross-stream work,
//! declared-dependency cycles surface as typed deadlocks, and nested data
//! environments transfer only at the outermost exit.

mod common;

use std::cell::RefCell;
use std::rc::Rc;

use common::{input, quick, scale_add_app, scale_add_expected};
use nzomp::BuildConfig;
use nzomp_host::{Host, HostError, MapKind, MapSpec, RegionArg, StreamError};
use nzomp_vgpu::device::Launch;
use nzomp_vgpu::RtVal;

const N: usize = 64;

fn launch() -> Launch {
    Launch {
        teams: 4,
        threads_per_team: 16,
        dyn_smem_bytes: 0,
    }
}

/// Run the scale-add region on a fresh host and return every observable:
/// output bits, kernel metrics, device global image.
fn run_once(streams: usize, drain_seed: u64, eager: bool) -> (Vec<u64>, nzomp_vgpu::KernelMetrics, Vec<u8>) {
    let mut host = Host::new(quick(), 1);
    host.set_worker_threads(1);
    host.set_drain_seed(drain_seed);
    host.set_eager(eager);
    let img = host
        .load_image(scale_add_app(), BuildConfig::NewRtNoAssumptions)
        .unwrap();
    let ss: Vec<_> = (0..streams).map(|_| host.stream()).collect();
    let region = host
        .enqueue_region(
            &ss,
            img,
            "k",
            launch(),
            vec![
                RegionArg::To(nzomp_host::f64_bytes(&input(N))),
                RegionArg::From(8 * N as u64),
                RegionArg::Scalar(RtVal::I(N as i64)),
            ],
        )
        .unwrap();
    host.sync().unwrap();
    let out = host.buf_bits(region.bufs[1].unwrap()).unwrap();
    let metrics = host.take_metrics(region.ticket).unwrap();
    let global = host.device(region.device).unwrap().global_bytes().to_vec();
    (out, metrics, global)
}

/// The core determinism claim: eager execution, the deferred drain under
/// many seeds, and multi-stream splits all produce bit-identical outputs,
/// metrics, and device memory images.
#[test]
fn deferred_drain_bit_identical_to_eager() {
    let reference = run_once(1, 0, true);
    let expected = scale_add_expected(&input(N));
    let got = nzomp_host::bytes_to_f64(
        &reference.0.iter().flat_map(|w| w.to_le_bytes()).collect::<Vec<_>>(),
    );
    assert_eq!(got, expected, "eager result is the host reference");

    for streams in [1, 2, 4] {
        for seed in [0, 1, 7, 13, 0xdead_beef] {
            let run = run_once(streams, seed, false);
            assert_eq!(run, reference, "streams={streams} seed={seed}");
        }
    }
}

/// Events enforce cross-stream order: a callback on stream B that waits
/// for stream A's event observes A's callback first, under every seed.
#[test]
fn events_order_cross_stream_callbacks() {
    for seed in [0u64, 3, 11] {
        let mut host = Host::new(quick(), 1);
        host.set_drain_seed(seed);
        let a = host.stream();
        let b = host.stream();
        let ev = host.event();
        let order: Rc<RefCell<Vec<&'static str>>> = Rc::default();
        let (o1, o2) = (order.clone(), order.clone());
        host.callback(a, move || o1.borrow_mut().push("a")).unwrap();
        host.record(a, ev).unwrap();
        host.wait(b, ev).unwrap();
        host.callback(b, move || o2.borrow_mut().push("b")).unwrap();
        host.sync().unwrap();
        assert_eq!(*order.borrow(), ["a", "b"], "seed {seed}");
    }
}

/// A wait on an event nothing records is a typed deadlock, not a hang.
#[test]
fn dependency_cycle_is_typed_deadlock() {
    let mut host = Host::new(quick(), 1);
    let a = host.stream();
    let b = host.stream();
    let (ea, eb) = (host.event(), host.event());
    // a waits for eb which b records only after waiting for ea — a cycle.
    host.wait(a, eb).unwrap();
    host.record(a, ea).unwrap();
    host.wait(b, ea).unwrap();
    host.record(b, eb).unwrap();
    // Both streams' heads are waits on events recorded behind the other
    // wait: progress is impossible.
    match host.sync() {
        Err(HostError::Stream(StreamError::Deadlock { blocked_streams })) => {
            assert_eq!(blocked_streams, 2)
        }
        other => panic!("expected deadlock, got {other:?}"),
    }

    // Simplest form: a wait on a never-recorded event.
    let mut host2 = Host::new(quick(), 1);
    let s = host2.stream();
    let never = host2.event();
    host2.wait(s, never).unwrap();
    match host2.sync() {
        Err(HostError::Stream(StreamError::Deadlock { blocked_streams })) => {
            assert_eq!(blocked_streams, 1)
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

/// Deadlock detection fires only after every possible op has run: work
/// ahead of (and beside) the blocked wait completes first, and the
/// blocked-stream count reflects exactly the streams still stuck.
#[test]
fn deadlock_is_detected_after_partial_progress() {
    let mut host = Host::new(quick(), 1);
    let a = host.stream();
    let b = host.stream();
    let never = host.event();
    let order: Rc<RefCell<Vec<&'static str>>> = Rc::default();
    let (o1, o2) = (order.clone(), order.clone());
    // Stream a runs one callback, then blocks forever; stream b drains
    // fully.
    host.callback(a, move || o1.borrow_mut().push("a")).unwrap();
    host.wait(a, never).unwrap();
    host.callback(a, || unreachable!("behind a permanently blocked wait")).unwrap();
    host.callback(b, move || o2.borrow_mut().push("b")).unwrap();
    match host.sync() {
        Err(HostError::Stream(StreamError::Deadlock { blocked_streams })) => {
            assert_eq!(blocked_streams, 1, "only stream a is stuck")
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
    assert_eq!(*order.borrow(), ["a", "b"], "runnable work completed first");
}

/// The eager executor has no queue to park a wait in: an unsignaled wait
/// is an immediate single-stream deadlock, while a signaled one passes.
#[test]
fn eager_wait_deadlocks_immediately_unless_signaled() {
    let mut host = Host::new(quick(), 1);
    host.set_eager(true);
    let s = host.stream();
    let ev = host.event();
    match host.wait(s, ev) {
        Err(HostError::Stream(StreamError::Deadlock { blocked_streams })) => {
            assert_eq!(blocked_streams, 1)
        }
        other => panic!("expected immediate deadlock, got {other:?}"),
    }
    host.record(s, ev).unwrap();
    host.wait(s, ev).unwrap();
}

/// Unknown handles are typed errors.
#[test]
fn unknown_handles_are_typed() {
    let mut host = Host::new(quick(), 1);
    let s = host.stream();
    assert!(matches!(
        host.record(nzomp_host::StreamId(9), nzomp_host::EventId(0)),
        Err(HostError::Stream(StreamError::UnknownStream(9)))
    ));
    assert!(matches!(
        host.wait(s, nzomp_host::EventId(5)),
        Err(HostError::Stream(StreamError::UnknownEvent(5)))
    ));
    assert!(matches!(
        host.ticket_result(nzomp_host::Ticket(2)),
        Err(HostError::Stream(StreamError::UnknownTicket(2)))
    ));
}

/// A trapping launch aborts the drain with a typed error and parks the
/// trap in the ticket; the result readback never runs.
#[test]
fn trap_aborts_drain_and_lands_in_ticket() {
    let mut host = Host::new(quick(), 1);
    host.set_worker_threads(1);
    let img = host
        .load_image(scale_add_app(), BuildConfig::NewRtNoAssumptions)
        .unwrap();
    let s = host.stream();
    // Claim 4x the real trip count: the kernel indexes out of bounds.
    let region = host
        .enqueue_region(
            &[s],
            img,
            "k",
            launch(),
            vec![
                RegionArg::To(nzomp_host::f64_bytes(&input(N))),
                RegionArg::From(8 * N as u64),
                RegionArg::Scalar(RtVal::I(4 * N as i64)),
            ],
        )
        .unwrap();
    match host.sync() {
        Err(HostError::Exec(_)) => {}
        other => panic!("expected an exec trap, got {other:?}"),
    }
    let parked = host.ticket_result(region.ticket).unwrap();
    assert!(matches!(parked, Some(Err(_))), "trap parked in the ticket");
    // The from-readback was dropped: the host output buffer is untouched.
    let out = host.buf_bytes(region.bufs[1].unwrap()).unwrap();
    assert!(out.iter().all(|&b| b == 0), "no readback after a trap");
}

/// Nested `target data`: the inner exit neither copies back nor frees;
/// only the outermost exit transfers, and presence suppresses the second
/// upload.
#[test]
fn nested_data_environments_transfer_at_outermost_exit_only() {
    let mut host = Host::new(quick(), 1);
    host.set_worker_threads(1);
    let img = host
        .load_image(scale_add_app(), BuildConfig::NewRtNoAssumptions)
        .unwrap();
    host.bind_image(0, img).unwrap();
    let s = host.stream();

    let a = host.register_f64(&input(N));
    let out = host.register_zeros(8 * N as u64);
    let len = 8 * N as u64;

    // Outer environment: tofrom both buffers.
    host.data_enter(
        s,
        0,
        &[
            MapSpec::whole(a, len, MapKind::To),
            MapSpec::whole(out, len, MapKind::ToFrom),
        ],
    )
    .unwrap();
    // Inner environment re-maps both: presence wins, no new transfers.
    host.data_enter(
        s,
        0,
        &[
            MapSpec::whole(a, len, MapKind::To),
            MapSpec::whole(out, len, MapKind::ToFrom),
        ],
    )
    .unwrap();
    assert_eq!(host.transfer_counts(0).0, 2, "inner enter re-transferred");

    let ticket = host
        .enqueue_launch(
            s,
            0,
            "k",
            launch(),
            &[
                nzomp_host::KArg::Buf(a),
                nzomp_host::KArg::Buf(out),
                nzomp_host::KArg::Val(RtVal::I(N as i64)),
            ],
        )
        .unwrap();

    // Inner exit: refcounts 2 -> 1, no copy back yet.
    host.data_exit(
        s,
        0,
        &[
            MapSpec::whole(out, len, MapKind::ToFrom),
            MapSpec::whole(a, len, MapKind::Release),
        ],
    )
    .unwrap();
    host.sync().unwrap();
    assert_eq!(host.transfer_counts(0).1, 0, "inner exit copied back");
    assert!(
        host.buf_bytes(out).unwrap().iter().all(|&b| b == 0),
        "host buffer updated before outermost exit"
    );

    // Outermost exit: the result materializes.
    host.data_exit(
        s,
        0,
        &[
            MapSpec::whole(out, len, MapKind::ToFrom),
            MapSpec::whole(a, len, MapKind::Release),
        ],
    )
    .unwrap();
    host.sync().unwrap();
    assert_eq!(host.transfer_counts(0), (2, 1));
    assert_eq!(host.buf_f64(out).unwrap(), scale_add_expected(&input(N)));
    host.take_metrics(ticket).unwrap();
    let (_, _, in_use) = host.pool_stats(0);
    assert_eq!(in_use, 0, "everything unmapped");
}
