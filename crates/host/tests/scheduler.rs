//! Multi-device scheduling and the kernel-image registry: placement
//! policies behave as documented, the compile cache eliminates repeated
//! pipeline runs, and sharding across devices preserves bit-identical
//! results.

mod common;

use common::{input, quick, scale_add_app, scale_add_expected};
use nzomp::BuildConfig;
use nzomp_host::{Host, RegionArg, SchedPolicy};
use nzomp_vgpu::device::Launch;
use nzomp_vgpu::RtVal;

const N: usize = 48;

fn launch() -> Launch {
    Launch {
        teams: 4,
        threads_per_team: 16,
        dyn_smem_bytes: 0,
    }
}

fn region_args() -> Vec<RegionArg> {
    vec![
        RegionArg::To(nzomp_host::f64_bytes(&input(N))),
        RegionArg::From(8 * N as u64),
        RegionArg::Scalar(RtVal::I(N as i64)),
    ]
}

/// Round-robin placement strictly rotates over the fleet.
#[test]
fn round_robin_rotates() {
    let mut host = Host::new(quick(), 3);
    host.set_worker_threads(1);
    let img = host
        .load_image(scale_add_app(), BuildConfig::NewRtNoAssumptions)
        .unwrap();
    let s = host.stream();
    let placements: Vec<usize> = (0..6)
        .map(|_| {
            host.enqueue_region(&[s], img, "k", launch(), region_args())
                .unwrap()
                .device
        })
        .collect();
    assert_eq!(placements, [0, 1, 2, 0, 1, 2]);
    host.sync().unwrap();
    for d in 0..3 {
        assert_eq!(host.device_launches(d), 2);
    }
}

/// Least-loaded placement prefers the device with the fewest pending
/// launches, breaking ties toward fewer executed cycles.
#[test]
fn least_loaded_balances() {
    let mut host = Host::new(quick(), 2);
    host.set_worker_threads(1);
    host.set_policy(SchedPolicy::LeastLoaded);
    let img = host
        .load_image(scale_add_app(), BuildConfig::NewRtNoAssumptions)
        .unwrap();
    let s = host.stream();

    // Everything pending: placements alternate as pending counts grow.
    let placements: Vec<usize> = (0..4)
        .map(|_| {
            host.enqueue_region(&[s], img, "k", launch(), region_args())
                .unwrap()
                .device
        })
        .collect();
    assert_eq!(placements, [0, 1, 0, 1]);
    host.sync().unwrap();

    // With nothing pending, the cycle tie-break keeps the split even.
    let next = host
        .enqueue_region(&[s], img, "k", launch(), region_args())
        .unwrap()
        .device;
    host.sync().unwrap();
    let after = host
        .enqueue_region(&[s], img, "k", launch(), region_args())
        .unwrap()
        .device;
    host.sync().unwrap();
    assert_ne!(next, after, "cycle tie-break alternates devices");
    assert_eq!(host.device_launches(0), 3);
    assert_eq!(host.device_launches(1), 3);
}

/// Loading the same module under the same config hits the compile cache
/// — repeated launches never re-run the pipeline — while a different
/// config misses.
#[test]
fn compile_cache_eliminates_recompiles() {
    let mut host = Host::new(quick(), 1);
    host.set_worker_threads(1);
    let a = host
        .load_image(scale_add_app(), BuildConfig::NewRtNoAssumptions)
        .unwrap();
    assert_eq!(host.compile_stats(), (0, 1));

    let b = host
        .load_image(scale_add_app(), BuildConfig::NewRtNoAssumptions)
        .unwrap();
    assert_eq!(a, b, "cache hit returns the same image id");
    assert_eq!(host.compile_stats(), (1, 1), "second load is a cache hit");

    let c = host
        .load_image(scale_add_app(), BuildConfig::NewRtNightly)
        .unwrap();
    assert_ne!(a, c);
    assert_eq!(host.compile_stats(), (1, 2), "new config is a miss");

    // Many repeated launches: zero additional compiles.
    let s = host.stream();
    for _ in 0..8 {
        host.enqueue_region(&[s], a, "k", launch(), region_args())
            .unwrap();
        host.sync().unwrap();
    }
    assert_eq!(host.compile_stats().1, 2, "launching never recompiles");
}

/// Sharding identical regions across two devices yields bit-identical
/// outputs to the single-device run, and both devices end with identical
/// global images (same kernel, same layout — the scheduler adds nothing).
#[test]
fn two_device_sharding_is_bit_identical() {
    let run = |devices: usize| -> (Vec<Vec<u64>>, Vec<Option<Vec<u8>>>) {
        let mut host = Host::new(quick(), devices);
        host.set_worker_threads(1);
        let img = host
            .load_image(scale_add_app(), BuildConfig::NewRtNoAssumptions)
            .unwrap();
        let s = host.stream();
        let regions: Vec<_> = (0..4)
            .map(|_| {
                host.enqueue_region(&[s], img, "k", launch(), region_args())
                    .unwrap()
            })
            .collect();
        host.sync().unwrap();
        let outs = regions
            .iter()
            .map(|r| host.buf_bits(r.bufs[1].unwrap()).unwrap())
            .collect();
        let globals = (0..devices)
            .map(|d| host.device(d).map(|dev| dev.global_bytes().to_vec()))
            .collect();
        (outs, globals)
    };

    let (single, _) = run(1);
    let (sharded, globals) = run(2);
    let expected: Vec<u64> = nzomp_host::f64_bytes(&scale_add_expected(&input(N)))
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect();
    for (i, out) in sharded.iter().enumerate() {
        assert_eq!(out, &single[i], "region {i} differs across fleets");
        assert_eq!(out, &expected, "region {i} wrong");
    }
    assert_eq!(globals[0], globals[1], "device images diverged");
}

/// The pool reuses released blocks across regions instead of growing the
/// device arena: after the first region's exit frees its blocks, later
/// identical regions allocate nothing new.
#[test]
fn pool_reuses_across_regions() {
    let mut host = Host::new(quick(), 1);
    host.set_worker_threads(1);
    let img = host
        .load_image(scale_add_app(), BuildConfig::NewRtNoAssumptions)
        .unwrap();
    let s = host.stream();
    host.enqueue_region(&[s], img, "k", launch(), region_args())
        .unwrap();
    host.sync().unwrap();
    let (fresh_after_one, _, _) = host.pool_stats(0);
    for _ in 0..5 {
        host.enqueue_region(&[s], img, "k", launch(), region_args())
            .unwrap();
        host.sync().unwrap();
    }
    let (fresh, reuse, in_use) = host.pool_stats(0);
    assert_eq!(fresh, fresh_after_one, "later regions allocated fresh memory");
    assert_eq!(reuse, 10, "two blocks reused per later region");
    assert_eq!(in_use, 0, "everything released");
}

/// The corrected LeastLoaded signal end-to-end: a device with no pending
/// launches but a deep queued-transfer backlog is *not* the least-loaded
/// device. Before the fix, placement keyed only on pending launches and
/// completed cycles, so a fresh region landed on top of the backlog.
#[test]
fn least_loaded_sees_queued_transfer_backlog() {
    let mut host = Host::new(quick(), 2);
    host.set_worker_threads(1);
    host.set_policy(SchedPolicy::LeastLoaded);
    let img = host
        .load_image(scale_add_app(), BuildConfig::NewRtNoAssumptions)
        .unwrap();
    let s = host.stream();

    // Queue transfer work on device 0 without any launch: pending stays
    // 0, but the memcpys sit undrained in the stream.
    host.bind_image(0, img).unwrap();
    let buf = host.register_f64(&input(N));
    host.data_enter(
        s,
        0,
        &[nzomp_host::MapSpec::whole(buf, 8 * N as u64, nzomp_host::MapKind::To)],
    )
    .unwrap();
    assert_eq!(host.stats().devices[0].queued_ops, 1, "backlog visible in stats");

    // The next region must avoid the backlogged device even though both
    // devices tie on pending launches and executed cycles.
    let region = host
        .enqueue_region(&[s], img, "k", launch(), region_args())
        .unwrap();
    assert_eq!(region.device, 1, "placement avoids the queued backlog");
    host.sync().unwrap();
    assert_eq!(host.stats().devices[0].queued_ops, 0, "drain clears the backlog");
    assert_eq!(host.stats().devices[1].queued_ops, 0);
}

/// `Host::stats` mirrors the per-accessor counters in one snapshot — the
/// public surface the serving layer reports from.
#[test]
fn stats_snapshot_matches_individual_accessors() {
    let mut host = Host::new(quick(), 2);
    host.set_worker_threads(1);
    let img = host
        .load_image(scale_add_app(), BuildConfig::NewRtNoAssumptions)
        .unwrap();
    let _ = host
        .load_image(scale_add_app(), BuildConfig::NewRtNoAssumptions)
        .unwrap();
    let s = host.stream();
    host.enqueue_region(&[s], img, "k", launch(), region_args())
        .unwrap();
    host.sync().unwrap();

    let stats = host.stats();
    assert_eq!((stats.compile_hits, stats.compile_misses), host.compile_stats());
    assert_eq!(stats.compile_hits, 1, "re-registration hit the cache");
    assert_eq!(stats.images, 1);
    assert_eq!(stats.devices.len(), 2);
    assert_eq!(stats.devices[0].launches, host.device_launches(0));
    assert_eq!(stats.devices[0].executed_cycles, host.device_cycles(0));
    let (allocs, reuse, in_use) = host.pool_stats(0);
    assert_eq!(stats.devices[0].pool_allocs, allocs);
    assert_eq!(stats.devices[0].pool_reuse_hits, reuse);
    assert_eq!(stats.devices[0].pool_in_use, in_use);
    let (to, from) = host.transfer_counts(0);
    assert_eq!(stats.devices[0].transfers_to, to);
    assert_eq!(stats.devices[0].transfers_from, from);
    assert_eq!(&stats.recovery, host.recovery_metrics());
    assert!(!stats.devices.iter().any(|d| d.quarantined));
    assert_eq!(stats.ops_executed, host.ops_executed());
}
