//! The recovery contract of the offload host runtime: transient faults
//! retry to a clean result, stalls trip a typed watchdog, device loss
//! fails over to a replacement vGPU whose journal replay reproduces the
//! clean run bit-for-bit, and a shrinking fleet degrades gracefully down
//! to a typed `FleetLost` — never a panic, never a wrong answer.

mod common;

use common::{input, quick, scale_add_app, scale_add_expected};
use nzomp::BuildConfig;
use nzomp_host::{Host, HostError, RecoveryPolicy, RegionArg};
use nzomp_vgpu::device::Launch;
use nzomp_vgpu::{DeviceFaultKind, DeviceFaultSite, FaultPlan, RtVal, TrapKind};

const N: usize = 64;

fn launch() -> Launch {
    Launch {
        teams: 4,
        threads_per_team: 16,
        dyn_smem_bytes: 0,
    }
}

fn region_args() -> Vec<RegionArg> {
    vec![
        RegionArg::To(nzomp_host::f64_bytes(&input(N))),
        RegionArg::From(8 * N as u64),
        RegionArg::Scalar(RtVal::I(N as i64)),
    ]
}

fn device_plan(sites: &[(u64, DeviceFaultKind)]) -> FaultPlan {
    FaultPlan {
        device_sites: sites
            .iter()
            .map(|&(after_ops, kind)| DeviceFaultSite { after_ops, kind })
            .collect(),
        ..FaultPlan::default()
    }
}

fn host(n_devices: usize) -> Host {
    let mut h = Host::new(quick(), n_devices);
    h.set_worker_threads(1);
    h
}

/// Everything observable about one region run on device 0.
fn run_clean() -> (Vec<u64>, nzomp_vgpu::KernelMetrics, Vec<u8>) {
    let mut h = host(1);
    let img = h
        .load_image(scale_add_app(), BuildConfig::NewRtNoAssumptions)
        .unwrap();
    let s = h.stream();
    let region = h.enqueue_region(&[s], img, "k", launch(), region_args()).unwrap();
    h.sync().unwrap();
    (
        h.buf_bits(region.bufs[1].unwrap()).unwrap(),
        h.take_metrics(region.ticket).unwrap(),
        h.device(region.device).unwrap().global_bytes().to_vec(),
    )
}

/// A one-shot memcpy fault under recovery retries to a result
/// bit-identical to the clean run.
#[test]
fn transient_memcpy_fault_retries_to_clean_result() {
    let clean = run_clean();
    let mut h = host(1);
    h.set_recovery(Some(RecoveryPolicy::default()));
    let img = h
        .load_image(scale_add_app(), BuildConfig::NewRtNoAssumptions)
        .unwrap();
    h.bind_image(0, img).unwrap();
    h.set_device_faults(0, device_plan(&[(0, DeviceFaultKind::MemcpyFail)]))
        .unwrap();
    let s = h.stream();
    let region = h.enqueue_region(&[s], img, "k", launch(), region_args()).unwrap();
    h.sync().unwrap();

    let m = h.recovery_metrics();
    assert_eq!(m.retries, 1, "exactly one transient retry");
    assert_eq!(m.failovers, 0);
    assert!(m.backoff_cycles > 0, "retry charged modeled backoff");
    assert_eq!(h.buf_bits(region.bufs[1].unwrap()).unwrap(), clean.0);
    assert_eq!(h.take_metrics(region.ticket).unwrap(), clean.1);
    assert_eq!(h.device(0).unwrap().global_bytes(), clean.2.as_slice());
}

/// A stalled launch trips the typed watchdog; under recovery the retry
/// (the stall site is one-shot) completes the region cleanly.
#[test]
fn stalled_launch_trips_watchdog_and_retries() {
    // Without recovery: the stall surfaces as HostError::Watchdog.
    let mut h = host(1);
    let img = h
        .load_image(scale_add_app(), BuildConfig::NewRtNoAssumptions)
        .unwrap();
    h.bind_image(0, img).unwrap();
    h.set_device_faults(0, device_plan(&[(0, DeviceFaultKind::StallLaunch)]))
        .unwrap();
    let s = h.stream();
    h.enqueue_region(&[s], img, "k", launch(), region_args()).unwrap();
    match h.sync() {
        Err(HostError::Watchdog { kernel, fuel }) => {
            assert_eq!(kernel, "k");
            assert!(fuel > 0);
        }
        other => panic!("expected a watchdog trip, got {other:?}"),
    }

    // With recovery: retried to the clean result.
    let clean = run_clean();
    let mut h = host(1);
    h.set_recovery(Some(RecoveryPolicy::default()));
    let img = h
        .load_image(scale_add_app(), BuildConfig::NewRtNoAssumptions)
        .unwrap();
    h.bind_image(0, img).unwrap();
    h.set_device_faults(0, device_plan(&[(0, DeviceFaultKind::StallLaunch)]))
        .unwrap();
    let s = h.stream();
    let region = h.enqueue_region(&[s], img, "k", launch(), region_args()).unwrap();
    h.sync().unwrap();
    let m = h.recovery_metrics();
    assert_eq!(m.watchdog_trips, 1);
    assert_eq!(m.retries, 1);
    assert_eq!(h.buf_bits(region.bufs[1].unwrap()).unwrap(), clean.0);
}

/// A genuinely runaway kernel (fuel exceeded under a binding host
/// watchdog) is a watchdog trip too — and exhausts the retry budget
/// instead of consuming the drain forever.
#[test]
fn runaway_kernel_exhausts_watchdog_retries() {
    let mut h = host(1);
    h.set_watchdog_fuel(Some(10));
    h.set_recovery(Some(RecoveryPolicy::default()));
    let img = h
        .load_image(scale_add_app(), BuildConfig::NewRtNoAssumptions)
        .unwrap();
    let s = h.stream();
    h.enqueue_region(&[s], img, "k", launch(), region_args()).unwrap();
    match h.sync() {
        Err(HostError::Watchdog { fuel, .. }) => assert_eq!(fuel, 10),
        other => panic!("expected a watchdog trip, got {other:?}"),
    }
    let m = h.recovery_metrics();
    assert_eq!(
        m.retries,
        u64::from(RecoveryPolicy::default().transient_retries),
        "the full transient budget was spent before surfacing"
    );
    assert_eq!(m.watchdog_trips, m.retries);
}

/// Device loss mid-drain: the host quarantines the dead device, binds a
/// replacement, replays the journal, and finishes with outputs, metrics,
/// and a device global-memory image bit-identical to the clean run.
#[test]
fn device_loss_fails_over_and_replays_bit_identically() {
    let clean = run_clean();
    let mut h = host(1);
    h.set_recovery(Some(RecoveryPolicy::default()));
    let img = h
        .load_image(scale_add_app(), BuildConfig::NewRtNoAssumptions)
        .unwrap();
    h.bind_image(0, img).unwrap();
    // after_ops=1: the input upload (op 0) completes; the launch (op 1)
    // hits the loss — the journal already holds allocations and the
    // upload.
    h.set_device_faults(0, device_plan(&[(1, DeviceFaultKind::Lost)]))
        .unwrap();
    let s = h.stream();
    let region = h.enqueue_region(&[s], img, "k", launch(), region_args()).unwrap();
    h.sync().unwrap();

    let m = h.recovery_metrics();
    assert_eq!(m.failovers, 1);
    assert_eq!(m.quarantines, 1);
    assert!(m.replayed_ops >= 3, "allocs + upload replayed, got {}", m.replayed_ops);
    assert_eq!(h.buf_bits(region.bufs[1].unwrap()).unwrap(), clean.0, "output bits");
    assert_eq!(h.take_metrics(region.ticket).unwrap(), clean.1, "kernel metrics");
    assert_eq!(
        h.device(0).unwrap().global_bytes(),
        clean.2.as_slice(),
        "device global-memory image"
    );
    assert_eq!(
        h.buf_f64(region.bufs[1].unwrap()).unwrap(),
        scale_add_expected(&input(N))
    );
    assert!(!h.quarantined(0), "the slot carries the replacement, not a tombstone");
}

/// When the last device dies with no failover budget, the outcome is the
/// typed `FleetLost` — and stays that way for later regions.
#[test]
fn all_devices_lost_is_typed_fleet_loss() {
    let mut h = host(1);
    h.set_eager(true);
    h.set_recovery(Some(RecoveryPolicy {
        max_failovers: 0,
        ..RecoveryPolicy::default()
    }));
    let img = h
        .load_image(scale_add_app(), BuildConfig::NewRtNoAssumptions)
        .unwrap();
    h.bind_image(0, img).unwrap();
    h.set_device_faults(0, device_plan(&[(0, DeviceFaultKind::Lost)]))
        .unwrap();
    let s = h.stream();
    match h.enqueue_region(&[s], img, "k", launch(), region_args()) {
        Err(HostError::FleetLost { devices }) => assert_eq!(devices, 1),
        other => panic!("expected fleet loss, got {other:?}"),
    }
    assert_eq!(h.live_devices(), 0);
    // Every later placement fails the same typed way.
    match h.enqueue_region(&[s], img, "k", launch(), region_args()) {
        Err(HostError::FleetLost { devices }) => assert_eq!(devices, 1),
        other => panic!("expected fleet loss, got {other:?}"),
    }
}

/// With a second healthy device, losing the first (budget spent) degrades
/// the fleet: the loss surfaces once, the slot is quarantined, and the
/// scheduler routes every subsequent region to the survivor.
#[test]
fn quarantined_device_is_excluded_and_fleet_degrades() {
    let mut h = host(2);
    h.set_eager(true);
    h.set_recovery(Some(RecoveryPolicy {
        max_failovers: 0,
        ..RecoveryPolicy::default()
    }));
    let img = h
        .load_image(scale_add_app(), BuildConfig::NewRtNoAssumptions)
        .unwrap();
    h.bind_image(0, img).unwrap();
    h.set_device_faults(0, device_plan(&[(0, DeviceFaultKind::Lost)]))
        .unwrap();
    let s = h.stream();
    // Round-robin places the first region on device 0 — which dies.
    match h.enqueue_region(&[s], img, "k", launch(), region_args()) {
        Err(HostError::Exec(e)) => assert_eq!(e.kind, TrapKind::DeviceLost),
        other => panic!("expected the surfaced device loss, got {other:?}"),
    }
    assert!(h.quarantined(0));
    assert_eq!(h.live_devices(), 1);
    // The degraded fleet keeps serving — every region lands on device 1
    // and produces the reference result.
    for _ in 0..3 {
        let region = h.enqueue_region(&[s], img, "k", launch(), region_args()).unwrap();
        assert_eq!(region.device, 1, "quarantined device scheduled");
        assert_eq!(
            h.buf_f64(region.bufs[1].unwrap()).unwrap(),
            scale_add_expected(&input(N))
        );
    }
}

/// With recovery disabled the runtime behaves exactly as before this
/// subsystem existed: the first device fault aborts the drain as a typed
/// error, nothing retries, nothing is journaled.
#[test]
fn recovery_disabled_surfaces_faults_unchanged() {
    let mut h = host(1);
    let img = h
        .load_image(scale_add_app(), BuildConfig::NewRtNoAssumptions)
        .unwrap();
    h.bind_image(0, img).unwrap();
    h.set_device_faults(0, device_plan(&[(0, DeviceFaultKind::Lost)]))
        .unwrap();
    let s = h.stream();
    h.enqueue_region(&[s], img, "k", launch(), region_args()).unwrap();
    match h.sync() {
        Err(HostError::Exec(e)) => assert_eq!(e.kind, TrapKind::DeviceLost),
        other => panic!("expected the raw device loss, got {other:?}"),
    }
    let m = h.recovery_metrics();
    assert_eq!(*m, nzomp_host::RecoveryMetrics::default(), "no recovery activity");
}

/// The recovered path reproduces the clean run under both scheduling
/// policies and several fleet sizes — the single-region shape of the
/// chaos suite's claim, asserted here with explicit seeds.
#[test]
fn failover_is_bit_identical_across_policies_and_fleets() {
    let clean = run_clean();
    for policy in [nzomp_host::SchedPolicy::RoundRobin, nzomp_host::SchedPolicy::LeastLoaded] {
        for devices in [1usize, 2, 4] {
            let mut h = host(devices);
            h.set_policy(policy);
            h.set_recovery(Some(RecoveryPolicy::default()));
            let img = h
                .load_image(scale_add_app(), BuildConfig::NewRtNoAssumptions)
                .unwrap();
            // Kill whichever device the scheduler will pick first (both
            // policies start at index 0 on an idle fleet).
            h.bind_image(0, img).unwrap();
            h.set_device_faults(0, device_plan(&[(1, DeviceFaultKind::Lost)]))
                .unwrap();
            let s = h.stream();
            let region = h.enqueue_region(&[s], img, "k", launch(), region_args()).unwrap();
            assert_eq!(region.device, 0);
            h.sync().unwrap();
            assert_eq!(
                h.buf_bits(region.bufs[1].unwrap()).unwrap(),
                clean.0,
                "policy {policy:?} devices {devices}"
            );
            assert_eq!(h.take_metrics(region.ticket).unwrap(), clean.1);
            assert_eq!(h.device(0).unwrap().global_bytes(), clean.2.as_slice());
            assert_eq!(h.recovery_metrics().failovers, 1);
        }
    }
}
