//! Shared fixtures of the host-runtime test suites: a tiny application
//! module (`out[i] = a[i] * 2 + i`) and its host reference.

use nzomp_front::{spmd_kernel_for, RuntimeFlavor};
use nzomp_ir::{Module, Operand, Ty};
use nzomp_vgpu::DeviceConfig;

/// An unlinked application module with one combined-directive kernel
/// `@k(ptr a, ptr out, i64 n)` — what `Host::load_image` compiles.
pub fn scale_add_app() -> Module {
    let mut m = Module::new("host_test_app");
    spmd_kernel_for(
        &mut m,
        RuntimeFlavor::Modern,
        "k",
        &[Ty::Ptr, Ty::Ptr, Ty::I64],
        |_b, p| p[2],
        |_m, b, iv, p| {
            let pa = b.gep(p[0], iv, 8);
            let x = b.load(Ty::F64, pa);
            let two = b.fmul(x, Operand::f64(2.0));
            let i_f = b.si_to_fp(iv);
            let v = b.fadd(two, i_f);
            let po = b.gep(p[1], iv, 8);
            b.store(Ty::F64, po, v);
        },
    );
    m
}

/// Host reference of [`scale_add_app`].
pub fn scale_add_expected(input: &[f64]) -> Vec<f64> {
    input
        .iter()
        .enumerate()
        .map(|(i, x)| x * 2.0 + i as f64)
        .collect()
}

/// Deterministic non-trivial input.
pub fn input(n: usize) -> Vec<f64> {
    (0..n).map(|i| (i as f64) * 0.5 - 3.0).collect()
}

pub fn quick() -> DeviceConfig {
    DeviceConfig {
        check_assumes: false,
        ..DeviceConfig::default()
    }
}
