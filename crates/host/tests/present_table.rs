//! Property tests of the present table against a naive shadow model:
//! random nested map/unmap sequences never leak pool memory, refcounts
//! hit zero exactly at the outermost exit, and every lookup agrees with
//! the shadow.

mod common;

use common::quick;
use nzomp_host::error::MapError;
use nzomp_host::map::{BufId, MapKind, MapSpec, MapStepError, PresentTable};
use nzomp_host::DevicePool;
use nzomp_ir::Module;
use nzomp_vgpu::Device;
use proptest::prelude::*;

const BUFS: usize = 3;
const BUF_LEN: u64 = 96;

fn device() -> Device {
    Device::load(Module::new("present_prop"), quick())
}

/// The naive reference: a flat list of `(off, len, refs)` ranges per
/// buffer, with the OpenMP rules spelled out directly.
#[derive(Default)]
struct Shadow {
    bufs: Vec<Vec<(u64, u64, u32)>>,
}

/// Outcome classes both implementations must agree on.
#[derive(Debug, PartialEq)]
enum Res {
    Ok,
    Partial,
    NotPresent,
    HostRange,
}

impl Shadow {
    fn new() -> Shadow {
        Shadow {
            bufs: vec![Vec::new(); BUFS],
        }
    }

    /// Containing range, or the error class.
    fn find(&self, buf: usize, off: u64, len: u64) -> Result<usize, Res> {
        for (i, &(eo, el, _)) in self.bufs[buf].iter().enumerate() {
            let disjoint = off + len <= eo || eo + el <= off;
            let contained = eo <= off && off + len <= eo + el;
            if contained {
                return Ok(i);
            }
            if !disjoint {
                return Err(Res::Partial);
            }
        }
        Err(Res::NotPresent)
    }

    fn enter(&mut self, buf: usize, off: u64, len: u64) -> Res {
        if off + len > BUF_LEN {
            return Res::HostRange;
        }
        match self.find(buf, off, len) {
            Ok(i) => {
                self.bufs[buf][i].2 += 1;
                Res::Ok
            }
            Err(Res::NotPresent) => {
                self.bufs[buf].push((off, len, 1));
                Res::Ok
            }
            Err(e) => e,
        }
    }

    fn exit(&mut self, buf: usize, off: u64, len: u64, delete: bool) -> Res {
        match self.find(buf, off, len) {
            Ok(i) => {
                if delete {
                    self.bufs[buf][i].2 = 1;
                }
                self.bufs[buf][i].2 -= 1;
                if self.bufs[buf][i].2 == 0 {
                    self.bufs[buf].remove(i);
                }
                Res::Ok
            }
            Err(e) => e,
        }
    }

    fn mapped_bytes_aligned(&self) -> u64 {
        self.bufs
            .iter()
            .flatten()
            .map(|&(_, len, _)| len.max(1).div_ceil(8) * 8)
            .sum()
    }
}

#[derive(Clone, Debug)]
enum OpSpec {
    Enter { buf: usize, off: u64, len: u64, kind: MapKind },
    Exit { buf: usize, off: u64, len: u64, kind: MapKind },
}

fn arb_op() -> impl Strategy<Value = OpSpec> {
    let range = (0..BUFS, 0u64..BUF_LEN + 16, 1u64..40);
    prop_oneof![
        (range.clone(), 0..4usize).prop_map(|((buf, off, len), k)| OpSpec::Enter {
            buf,
            off,
            len,
            kind: [MapKind::To, MapKind::From, MapKind::ToFrom, MapKind::Alloc][k],
        }),
        (range, 0..4usize).prop_map(|((buf, off, len), k)| OpSpec::Exit {
            buf,
            off,
            len,
            kind: [MapKind::From, MapKind::ToFrom, MapKind::Release, MapKind::Delete][k],
        }),
    ]
}

fn classify_step(r: Result<(), &MapStepError>) -> Res {
    match r {
        Ok(()) => Res::Ok,
        Err(MapStepError::Map(MapError::PartialOverlap { .. })) => Res::Partial,
        Err(MapStepError::Map(MapError::NotPresent { .. })) => Res::NotPresent,
        Err(MapStepError::Map(MapError::HostRange { .. })) => Res::HostRange,
        Err(e) => panic!("unexpected error class: {e:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Apply a random op sequence to the real table and the shadow:
    /// every outcome class matches, the live-entry sets match, the pool
    /// accounts exactly the mapped bytes, and releasing every remaining
    /// entry drains the pool to zero — no leak, ever.
    #[test]
    fn table_agrees_with_shadow_and_never_leaks(ops in prop::collection::vec(arb_op(), 1..80)) {
        let mut dev = device();
        let mut table = PresentTable::new();
        let mut pool = DevicePool::new();
        let mut shadow = Shadow::new();
        let mut hosts = vec![vec![0u8; BUF_LEN as usize]; BUFS];

        for op in &ops {
            match *op {
                OpSpec::Enter { buf, off, len, kind } => {
                    let spec = MapSpec::new(BufId(buf as u32), off, len, kind);
                    let got = table.enter(spec, &mut dev, &mut pool, &hosts[buf]);
                    let want = shadow.enter(buf, off, len);
                    prop_assert_eq!(classify_step(got.as_ref().map(|_| ())), want);
                }
                OpSpec::Exit { buf, off, len, kind } => {
                    let spec = MapSpec::new(BufId(buf as u32), off, len, kind);
                    let got = table.exit(spec, &mut dev, &mut pool, &mut hosts[buf]);
                    let want = shadow.exit(buf, off, len, kind == MapKind::Delete);
                    prop_assert_eq!(classify_step(got.as_ref().map(|_| ())), want);
                }
            }

            // Live-entry agreement after every step.
            let mut real: Vec<(u32, u64, u64, u32)> = table
                .entries()
                .iter()
                .map(|e| (e.buf.0, e.off, e.len, e.refs))
                .collect();
            real.sort_unstable();
            let mut model: Vec<(u32, u64, u64, u32)> = shadow
                .bufs
                .iter()
                .enumerate()
                .flat_map(|(b, v)| v.iter().map(move |&(o, l, r)| (b as u32, o, l, r)))
                .collect();
            model.sort_unstable();
            prop_assert_eq!(real, model);

            // Pool accounting: every live mapping holds at least its
            // aligned size (best-fit reuse may serve a larger block), and
            // nothing vanishes — every byte obtained from the device is
            // either in use or parked on the free list.
            prop_assert!(pool.in_use() >= shadow.mapped_bytes_aligned());
            prop_assert_eq!(pool.in_use() + pool.free_bytes(), pool.device_bytes);

            // Lookup agreement on a fixed probe grid.
            for buf in 0..BUFS {
                for off in (0..BUF_LEN).step_by(8) {
                    let real = table.lookup(BufId(buf as u32), off).is_ok();
                    let model = shadow.find(buf, off, 1).is_ok();
                    prop_assert_eq!(real, model, "lookup({}, {})", buf, off);
                }
            }
        }

        // Drain: release every remaining entry; the pool must hit zero.
        let leftovers: Vec<MapSpec> = table
            .entries()
            .iter()
            .map(|e| MapSpec::new(e.buf, e.off, e.len, MapKind::Delete))
            .collect();
        for spec in leftovers {
            let buf = spec.buf.0 as usize;
            table.exit(spec, &mut dev, &mut pool, &mut hosts[buf]).unwrap();
        }
        prop_assert_eq!(table.entries().len(), 0);
        prop_assert_eq!(pool.in_use(), 0, "pool leaked");
    }

    /// Refcounted nesting: after `k` nested enters of one range, the host
    /// copy-back happens exactly at the `k`-th exit, not before.
    #[test]
    fn from_copy_exactly_at_outermost_exit(k in 1u32..6) {
        let mut dev = device();
        let mut table = PresentTable::new();
        let mut pool = DevicePool::new();
        let mut host = vec![0u8; 32];
        let spec = MapSpec::whole(BufId(0), 32, MapKind::ToFrom);

        let ptr = table.enter(spec, &mut dev, &mut pool, &host).unwrap();
        for _ in 1..k {
            table.enter(spec, &mut dev, &mut pool, &host).unwrap();
        }
        dev.write_bytes(ptr, &[0x5a; 32]).unwrap();

        for i in 0..k {
            prop_assert!(host.iter().all(|&b| b == 0), "copied back before exit {}", i);
            table.exit(spec, &mut dev, &mut pool, &mut host).unwrap();
        }
        prop_assert!(host.iter().all(|&b| b == 0x5a), "outermost exit must copy back");
        prop_assert_eq!(pool.in_use(), 0);
        prop_assert_eq!(table.transfers_from, 1);
        prop_assert_eq!(table.transfers_to, 1);
    }
}
