//! `nzomp-host` — a libomptarget-style offload host runtime over one or
//! more [`nzomp_vgpu::Device`]s.
//!
//! The paper's near-zero-overhead claim is about the *device* runtime;
//! this crate supplies the layer a real deployment would wrap around it:
//!
//! * a ref-counted **present table** per device implementing OpenMP
//!   `map(to/from/tofrom/alloc/release/delete)` semantics with nested
//!   `target data` environments and a reusing device-memory pool
//!   ([`map`], [`pool`]);
//! * **async streams** — ordered queues of memcpy / launch / callback
//!   operations with events and cross-stream dependencies, drained by a
//!   deterministic seeded round-robin executor that is bit-identical to
//!   eager execution ([`stream`], [`Host::sync`]);
//! * a **multi-device scheduler** — N virtual GPUs behind round-robin or
//!   least-loaded placement, with a per-host kernel-image registry whose
//!   compile cache makes repeated launches skip the pipeline entirely
//!   ([`sched`], [`Host::load_image`]).
//!
//! Every failure is a typed [`HostError`]; the crate is panic-free by the
//! same contract (and clippy gate) as the rest of the workspace.
//!
//! See `docs/host-runtime.md` for the design rationale and the
//! bit-identity argument.

#![deny(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod error;
pub mod journal;
pub mod map;
pub mod pool;
pub mod recover;
pub mod sched;
pub mod stream;

use std::collections::VecDeque;
use std::rc::Rc;

use nzomp::{BuildConfig, CompileCache, CompileOutput};
use nzomp_ir::Module;
use nzomp_vgpu::device::Launch;
use nzomp_vgpu::memory::DevPtr;
use nzomp_vgpu::{Device, DeviceConfig, ExecError, ExecTier, FaultPlan, KernelMetrics, RtVal};

pub use error::{ErrorClass, HostError, MapError, StreamError};
pub use map::{BufId, MapKind, MapSpec, PresentTable};
pub use pool::DevicePool;
pub use recover::{RecoveryMetrics, RecoveryPolicy};
pub use sched::{ImageId, SchedPolicy};
pub use stream::{EventId, KArg, StreamId, Ticket};

use error::{MapError as ME, StreamError as SE};
use journal::JEffect;
use map::MapStepError;
use nzomp_vgpu::TrapKind;
use sched::{pick_device, DeviceSlot};
use stream::Op;

/// Encode `f64` values as the device byte image `Device::write_f64`
/// produces (IEEE bits, little-endian).
pub fn f64_bytes(v: &[f64]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

/// Encode `i64` values as device bytes.
pub fn i64_bytes(v: &[i64]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

/// Encode `i32` values as device bytes.
pub fn i32_bytes(v: &[i32]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

/// Decode a device/host byte image back into `f64`s.
pub fn bytes_to_f64(b: &[u8]) -> Vec<f64> {
    b.chunks_exact(8)
        .map(|c| {
            f64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]])
        })
        .collect()
}

/// Decode a byte image into raw 64-bit words (bit-exact comparisons).
pub fn bytes_to_bits(b: &[u8]) -> Vec<u64> {
    b.chunks_exact(8)
        .map(|c| {
            u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]])
        })
        .collect()
}

/// Declarative description of one argument of a `#pragma omp target`
/// region, in kernel-parameter order. [`Host::enqueue_region`] registers
/// the host buffers, enters the maps, launches, and exits — the driver
/// never touches device pointers.
#[derive(Clone, Debug)]
pub enum RegionArg {
    /// `map(to:)` — these bytes are the kernel's input.
    To(Vec<u8>),
    /// `map(from:)` — a fresh output buffer of this many bytes, copied
    /// back at region exit.
    From(u64),
    /// `map(alloc:)` — device-only scratch of this many bytes.
    Alloc(u64),
    /// A firstprivate scalar.
    Scalar(RtVal),
}

/// Handle of an enqueued target region: the launch ticket, the device the
/// scheduler placed it on, and the host buffer registered for each map
/// argument (`None` for scalars) — index with the kernel-parameter
/// position to read results back after [`Host::sync`].
#[derive(Clone, Debug)]
pub struct Region {
    pub ticket: Ticket,
    pub device: usize,
    pub bufs: Vec<Option<BufId>>,
}

/// Per-device slice of a [`HostStats`] snapshot: the load signals the
/// scheduler keys on plus pool and transfer counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Launches executed on this device.
    pub launches: u64,
    /// Simulated cycles of every launch executed here.
    pub executed_cycles: u64,
    /// Launches enqueued but not yet drained.
    pub pending_launches: u64,
    /// Device-touching stream ops queued but not yet drained.
    pub queued_ops: u64,
    /// Retired by the recovery layer.
    pub quarantined: bool,
    /// Fresh pool allocations on this device.
    pub pool_allocs: u64,
    /// Pool blocks served by reuse (zero-filled) instead of fresh allocs.
    pub pool_reuse_hits: u64,
    /// Bytes currently mapped on this device.
    pub pool_in_use: u64,
    /// Host→device transfers issued.
    pub transfers_to: u64,
    /// Device→host transfers issued.
    pub transfers_from: u64,
}

/// Consolidated host-runtime observability snapshot from [`Host::stats`]:
/// the public stats surface for layers above the host (`nzomp-serve`, the
/// load bench) — compile cache, recovery work, and per-device state in
/// one place.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HostStats {
    /// Compilations served from the compile cache.
    pub compile_hits: u64,
    /// Compilations that ran the real pipeline.
    pub compile_misses: u64,
    /// Distinct compiled images held by the cache.
    pub images: usize,
    /// Everything the recovery layer did so far.
    pub recovery: RecoveryMetrics,
    /// Total stream operations executed (eager + drained).
    pub ops_executed: u64,
    /// One entry per device slot, in fleet order.
    pub devices: Vec<DeviceStats>,
}

/// The offload host runtime: device fleet, image registry, host buffers,
/// streams, events, and launch tickets.
pub struct Host {
    dev_cfg: DeviceConfig,
    policy: SchedPolicy,
    slots: Vec<DeviceSlot>,
    rr_next: usize,

    cache: CompileCache,
    images: Vec<Rc<CompileOutput>>,

    bufs: Vec<Vec<u8>>,
    streams: Vec<VecDeque<Op>>,
    events: Vec<bool>,
    tickets: Vec<Option<Result<KernelMetrics, ExecError>>>,

    drain_seed: u64,
    eager: bool,
    ops_executed: u64,
    worker_threads: Option<usize>,
    /// Execution tier pinned on every current and future device (`None` =
    /// each device's own `NZOMP_EXEC_TIER` resolution). Pinning matters
    /// for recovery: journal replay and failover re-execution happen on
    /// replacement devices, which must run the same tier as the original
    /// so replayed launches are bit-identical.
    exec_tier: Option<ExecTier>,
    fault_plan: Option<FaultPlan>,

    /// `Some` enables the recovery layer (journaling, retries, failover);
    /// `None` is the PR 5 fast path, byte-for-byte.
    recovery: Option<RecoveryPolicy>,
    rmetrics: RecoveryMetrics,
    /// Host launch watchdog fuel, applied to every current and future
    /// device.
    watchdog_fuel: Option<u64>,
}

impl Host {
    /// A host over `n_devices` virtual GPUs (at least one) of identical
    /// shape. Devices are created lazily when an image is bound.
    pub fn new(dev_cfg: DeviceConfig, n_devices: usize) -> Host {
        Host {
            dev_cfg,
            policy: SchedPolicy::default(),
            slots: (0..n_devices.max(1)).map(|_| DeviceSlot::new()).collect(),
            rr_next: 0,
            cache: CompileCache::new(),
            images: Vec::new(),
            bufs: Vec::new(),
            streams: Vec::new(),
            events: Vec::new(),
            tickets: Vec::new(),
            drain_seed: 0,
            eager: false,
            ops_executed: 0,
            worker_threads: None,
            exec_tier: None,
            fault_plan: None,
            recovery: None,
            rmetrics: RecoveryMetrics::default(),
            watchdog_fuel: None,
        }
    }

    pub fn set_policy(&mut self, policy: SchedPolicy) {
        self.policy = policy;
    }

    /// Seed of the round-robin drain in [`Host::sync`] — any value yields
    /// the same results (the differential suite's claim), but a different
    /// deterministic interleaving.
    pub fn set_drain_seed(&mut self, seed: u64) {
        self.drain_seed = seed;
    }

    /// Eager mode executes every operation at enqueue time instead of
    /// deferring to [`Host::sync`] — the semantic reference the deferred
    /// executor is differentially tested against. Set before enqueuing.
    pub fn set_eager(&mut self, eager: bool) {
        self.eager = eager;
    }

    pub fn num_devices(&self) -> usize {
        self.slots.len()
    }

    // ---- image registry -------------------------------------------------

    /// Compile `app` under `config` (or reuse the cached image when this
    /// module/config pair was compiled before) and register it.
    pub fn load_image(&mut self, app: Module, config: BuildConfig) -> Result<ImageId, HostError> {
        let out = self.cache.compile(app, config)?;
        if let Some(i) = self.images.iter().position(|o| Rc::ptr_eq(o, &out)) {
            return Ok(ImageId(i as u32));
        }
        self.images.push(out);
        Ok(ImageId((self.images.len() - 1) as u32))
    }

    /// `(cache hits, cache misses)` of the compile cache. Repeated
    /// launches of a registered image cost zero pipeline runs — the
    /// overhead bench asserts hits.
    pub fn compile_stats(&self) -> (u64, u64) {
        (self.cache.hits, self.cache.misses)
    }

    /// The compiled image (module + remarks + pass timings) behind an id.
    pub fn image(&self, img: ImageId) -> Option<&CompileOutput> {
        self.images.get(img.0 as usize).map(|o| o.as_ref())
    }

    /// Ensure device slot `dev` runs image `img`, (re)creating the device
    /// if the slot is empty or held a different image. A reload resets
    /// the slot's present table, pool, and journal (fresh device memory).
    /// Binding revives a quarantined slot — the explicit opt-in to reuse
    /// a retired slot after the fleet degraded.
    pub fn bind_image(&mut self, dev: usize, img: ImageId) -> Result<(), HostError> {
        let devices = self.slots.len();
        let out = self
            .images
            .get(img.0 as usize)
            .ok_or(HostError::UnknownImage(img.0))?
            .clone();
        let global = self.fault_plan.clone();
        let workers = self.worker_threads;
        let tier = self.exec_tier;
        let watchdog = self.watchdog_fuel;
        let slot = self
            .slots
            .get_mut(dev)
            .ok_or(HostError::NoDevice { device: dev, devices })?;
        if slot.image == Some(img) && slot.dev.is_some() && !slot.quarantined {
            return Ok(());
        }
        let mut d = Device::load(out.module.clone(), self.dev_cfg.clone());
        if let Some(w) = workers {
            d.set_worker_threads(w);
        }
        if let Some(t) = tier {
            d.set_exec_tier(t);
        }
        if let Some(p) = effective_plan(&global, &slot.device_plan) {
            d.set_fault_plan(p);
        }
        d.set_watchdog_fuel(watchdog);
        slot.dev = Some(d);
        slot.image = Some(img);
        slot.table = PresentTable::new();
        slot.pool = DevicePool::new();
        slot.journal.clear();
        slot.quarantined = false;
        Ok(())
    }

    // ---- host buffers ---------------------------------------------------

    pub fn register_bytes(&mut self, bytes: Vec<u8>) -> BufId {
        self.bufs.push(bytes);
        BufId((self.bufs.len() - 1) as u32)
    }

    pub fn register_f64(&mut self, v: &[f64]) -> BufId {
        self.register_bytes(f64_bytes(v))
    }

    pub fn register_i64(&mut self, v: &[i64]) -> BufId {
        self.register_bytes(i64_bytes(v))
    }

    pub fn register_zeros(&mut self, len: u64) -> BufId {
        self.register_bytes(vec![0u8; len as usize])
    }

    pub fn buf_bytes(&self, b: BufId) -> Result<&[u8], HostError> {
        self.bufs
            .get(b.0 as usize)
            .map(|v| v.as_slice())
            .ok_or(HostError::UnknownBuffer(b.0))
    }

    /// The buffer decoded as `f64`s (post-`sync` result readback).
    pub fn buf_f64(&self, b: BufId) -> Result<Vec<f64>, HostError> {
        Ok(bytes_to_f64(self.buf_bytes(b)?))
    }

    /// The buffer as raw 64-bit words (bit-exact comparisons).
    pub fn buf_bits(&self, b: BufId) -> Result<Vec<u64>, HostError> {
        Ok(bytes_to_bits(self.buf_bytes(b)?))
    }

    // ---- streams and events ---------------------------------------------

    pub fn stream(&mut self) -> StreamId {
        self.streams.push(VecDeque::new());
        StreamId((self.streams.len() - 1) as u32)
    }

    pub fn event(&mut self) -> EventId {
        self.events.push(false);
        EventId((self.events.len() - 1) as u32)
    }

    /// Enqueue an event signal on `s`.
    pub fn record(&mut self, s: StreamId, e: EventId) -> Result<(), HostError> {
        self.check_stream(s)?;
        self.check_event(e)?;
        self.enqueue_op(s, Op::Record(e))
    }

    /// Enqueue a cross-stream dependency: `s` stalls until `e` is
    /// signaled.
    pub fn wait(&mut self, s: StreamId, e: EventId) -> Result<(), HostError> {
        self.check_stream(s)?;
        self.check_event(e)?;
        self.enqueue_op(s, Op::Wait(e))
    }

    /// Enqueue a host callback (runs in drain order).
    pub fn callback(&mut self, s: StreamId, f: impl FnOnce() + 'static) -> Result<(), HostError> {
        self.check_stream(s)?;
        self.enqueue_op(s, Op::Callback(Box::new(f)))
    }

    // ---- mapping --------------------------------------------------------

    /// Enter map clauses on device `dev` (a `target data` begin / `target
    /// enter data`). Table state — refcounts, device allocation — updates
    /// immediately in program order; the host→device copies owed by fresh
    /// `to`/`tofrom` entries are enqueued on `s`.
    pub fn data_enter(&mut self, s: StreamId, dev: usize, maps: &[MapSpec]) -> Result<(), HostError> {
        self.check_stream(s)?;
        let journaling = self.recovery.is_some();
        for spec in maps {
            let host_len = self.buf_bytes(spec.buf)?.len() as u64;
            let slot = self.slot_mut(dev)?;
            let d = slot
                .dev
                .as_mut()
                .ok_or(HostError::Map(ME::Misuse("no image bound to device (bind_image first)")))?;
            let (allocs0, reuse0) = (slot.pool.device_allocs, slot.pool.reuse_hits);
            let (ptr, needs_copy) = slot
                .table
                .enter_alloc(*spec, d, &mut slot.pool, host_len)
                .map_err(step_err)?;
            if journaling {
                // Journal how this entry changed device memory: a fresh
                // bump allocation (replayable pointer-for-pointer) or a
                // reused block's zero-fill. A pure refcount bump touches
                // no device state and records nothing.
                if slot.pool.device_allocs > allocs0 {
                    let size = slot.pool.block_size(ptr).unwrap_or(0);
                    slot.journal.push(JEffect::Grow { size, at: ptr });
                } else if slot.pool.reuse_hits > reuse0 {
                    let len = slot.pool.block_size(ptr).unwrap_or(0);
                    slot.journal.push(JEffect::Zero { ptr, len });
                }
            }
            if needs_copy {
                self.enqueue_op(
                    s,
                    Op::MemcpyTo {
                        dev,
                        dst: ptr,
                        buf: spec.buf,
                        off: spec.off,
                        len: spec.len,
                    },
                )?;
            }
        }
        Ok(())
    }

    /// Exit map clauses on device `dev`. Refcounts decide immediately (in
    /// program order); outermost `from`/`tofrom` copies and pool releases
    /// are enqueued on `s` — the free ordered behind its copy.
    pub fn data_exit(&mut self, s: StreamId, dev: usize, maps: &[MapSpec]) -> Result<(), HostError> {
        self.check_stream(s)?;
        for spec in maps {
            self.buf_bytes(spec.buf)?;
            let slot = self.slot_mut(dev)?;
            let action = slot.table.prepare_exit(*spec).map_err(HostError::Map)?;
            if let Some((src, host_off, len)) = action.copy {
                self.enqueue_op(
                    s,
                    Op::MemcpyFrom {
                        dev,
                        src,
                        buf: spec.buf,
                        off: host_off,
                        len,
                    },
                )?;
            }
            if let Some(ptr) = action.free {
                self.enqueue_op(s, Op::PoolFree { dev, ptr })?;
            }
        }
        Ok(())
    }

    /// Read `len` device bytes of a mapped host range without exiting the
    /// map — the non-destructive readback a serving layer needs for
    /// tenant-visible session state (a `from` exit would release the
    /// entry). The range must be present on device `dev`.
    pub fn read_present(
        &mut self,
        dev: usize,
        buf: BufId,
        off: u64,
        len: u64,
    ) -> Result<Vec<u8>, HostError> {
        let devices = self.slots.len();
        let ptr = self
            .slots
            .get(dev)
            .ok_or(HostError::NoDevice { device: dev, devices })?
            .table
            .lookup(buf, off)
            .map_err(HostError::Map)?;
        Ok(self.loaded_dev(dev)?.read_bytes(ptr, len as usize)?)
    }

    /// Device address of a mapped host location (diagnostics, tests).
    pub fn dev_addr(&self, dev: usize, buf: BufId, off: u64) -> Result<DevPtr, HostError> {
        let devices = self.slots.len();
        let slot = self
            .slots
            .get(dev)
            .ok_or(HostError::NoDevice { device: dev, devices })?;
        slot.table.lookup(buf, off).map_err(HostError::Map)
    }

    // ---- launches -------------------------------------------------------

    /// Enqueue a kernel launch on `s`. Buffer arguments are translated to
    /// device addresses through `dev`'s present table now (the maps must
    /// already be entered); the returned ticket holds the metrics (or the
    /// trap) after [`Host::sync`].
    pub fn enqueue_launch(
        &mut self,
        s: StreamId,
        dev: usize,
        kernel: &str,
        launch: Launch,
        args: &[KArg],
    ) -> Result<Ticket, HostError> {
        self.check_stream(s)?;
        let mut vals = Vec::with_capacity(args.len());
        {
            let slot = self.slot_mut(dev)?;
            for a in args {
                match a {
                    KArg::Buf(b) => vals.push(RtVal::P(slot.table.lookup(*b, 0).map_err(HostError::Map)?)),
                    KArg::BufAt(b, off) => {
                        vals.push(RtVal::P(slot.table.lookup(*b, *off).map_err(HostError::Map)?))
                    }
                    KArg::Val(v) => vals.push(*v),
                }
            }
        }
        let ticket = Ticket(self.tickets.len() as u32);
        self.tickets.push(None);
        if let Some(slot) = self.slots.get_mut(dev) {
            slot.pending += 1;
        }
        self.enqueue_op(
            s,
            Op::Launch {
                dev,
                kernel: kernel.to_string(),
                launch,
                args: vals,
                ticket,
            },
        )?;
        Ok(ticket)
    }

    /// Pick the device the scheduler would place the next launch on,
    /// advancing round-robin state. Skips quarantined slots; `None` iff
    /// the whole fleet is quarantined. Public so drivers layered above
    /// the host (the `nzomp-serve` admission engine) can reuse the
    /// placement policies instead of reimplementing them.
    pub fn pick_device(&mut self) -> Option<usize> {
        pick_device(self.policy, &self.slots, &mut self.rr_next)
    }

    /// Enqueue a whole `#pragma omp target` region: the scheduler picks a
    /// device (per [`SchedPolicy`]), the image is bound, buffers are
    /// registered and mapped in argument order (so device memory layout
    /// matches the direct `Device::alloc` path), input transfers are
    /// spread round-robin over `streams` (events ordering them before the
    /// launch on `streams[0]`), and the exits ride the primary stream.
    pub fn enqueue_region(
        &mut self,
        streams: &[StreamId],
        img: ImageId,
        kernel: &str,
        launch: Launch,
        args: Vec<RegionArg>,
    ) -> Result<Region, HostError> {
        let Some(&primary) = streams.first() else {
            return Err(HostError::Map(ME::Misuse("enqueue_region needs at least one stream")));
        };
        // Quarantined slots are excluded; an empty live fleet is the typed
        // terminal outcome of graceful degradation.
        let dev = self.pick_device().ok_or(HostError::FleetLost {
            devices: self.slots.len(),
        })?;
        self.bind_image(dev, img)?;

        let mut kargs = Vec::with_capacity(args.len());
        let mut bufids = Vec::with_capacity(args.len());
        let mut enter_specs = Vec::new();
        let mut exit_specs = Vec::new();
        for arg in args {
            match arg {
                RegionArg::To(bytes) => {
                    let len = bytes.len() as u64;
                    let b = self.register_bytes(bytes);
                    enter_specs.push(MapSpec::whole(b, len, MapKind::To));
                    exit_specs.push(MapSpec::whole(b, len, MapKind::Release));
                    kargs.push(KArg::Buf(b));
                    bufids.push(Some(b));
                }
                RegionArg::From(len) => {
                    let b = self.register_zeros(len);
                    enter_specs.push(MapSpec::whole(b, len, MapKind::From));
                    exit_specs.push(MapSpec::whole(b, len, MapKind::From));
                    kargs.push(KArg::Buf(b));
                    bufids.push(Some(b));
                }
                RegionArg::Alloc(len) => {
                    let b = self.register_zeros(len);
                    enter_specs.push(MapSpec::whole(b, len, MapKind::Alloc));
                    exit_specs.push(MapSpec::whole(b, len, MapKind::Release));
                    kargs.push(KArg::Buf(b));
                    bufids.push(Some(b));
                }
                RegionArg::Scalar(v) => {
                    kargs.push(KArg::Val(v));
                    bufids.push(None);
                }
            }
        }

        // Enter in argument order — this fixes the device memory layout
        // regardless of how many streams carry the transfers.
        let mut used = vec![false; streams.len()];
        for (i, spec) in enter_specs.iter().enumerate() {
            let si = i % streams.len();
            used[si] = true;
            self.data_enter(streams[si], dev, std::slice::from_ref(spec))?;
        }
        // Secondary streams signal completion; the launch stream waits.
        for (si, &s) in streams.iter().enumerate().skip(1) {
            if used[si] {
                let ev = self.event();
                self.record(s, ev)?;
                self.wait(primary, ev)?;
            }
        }
        let ticket = self.enqueue_launch(primary, dev, kernel, launch, &kargs)?;
        self.data_exit(primary, dev, &exit_specs)?;
        Ok(Region {
            ticket,
            device: dev,
            bufs: bufids,
        })
    }

    // ---- the executor ---------------------------------------------------

    /// Drain every stream to completion with a seeded round-robin
    /// schedule: starting from `drain_seed % streams`, scan for the first
    /// stream whose head is ready (a `Wait` is ready only once its event
    /// is signaled), execute exactly one operation, move the scan cursor
    /// past that stream, repeat. Deterministic for a given seed;
    /// bit-identical to eager execution for every seed. If no stream can
    /// make progress, the declared dependencies deadlock — a typed error,
    /// not a hang.
    pub fn sync(&mut self) -> Result<(), HostError> {
        let n = self.streams.len();
        if n == 0 {
            return Ok(());
        }
        let mut cursor = (self.drain_seed as usize) % n;
        loop {
            let mut progressed = false;
            for k in 0..n {
                let si = (cursor + k) % n;
                let ready = match self.streams[si].front() {
                    None => false,
                    Some(Op::Wait(e)) => self.events.get(e.0 as usize).copied().unwrap_or(false),
                    Some(_) => true,
                };
                if !ready {
                    continue;
                }
                let Some(op) = self.streams[si].pop_front() else {
                    continue;
                };
                // The op leaves the queue whether or not it succeeds —
                // mirror that in the per-device backlog counter.
                if let Some(d) = op_device(&op) {
                    if let Some(slot) = self.slots.get_mut(d) {
                        slot.queued_ops = slot.queued_ops.saturating_sub(1);
                    }
                }
                self.execute_op(op)?;
                cursor = (si + 1) % n;
                progressed = true;
                break;
            }
            if !progressed {
                let blocked = self.streams.iter().filter(|q| !q.is_empty()).count();
                if blocked == 0 {
                    return Ok(());
                }
                return Err(SE::Deadlock {
                    blocked_streams: blocked,
                }
                .into());
            }
        }
    }

    fn enqueue_op(&mut self, s: StreamId, op: Op) -> Result<(), HostError> {
        if self.eager {
            return self.execute_op(op);
        }
        let dev = op_device(&op);
        let q = self
            .streams
            .get_mut(s.0 as usize)
            .ok_or(HostError::Stream(SE::UnknownStream(s.0)))?;
        q.push_back(op);
        // Count the queued device work so LeastLoaded placement sees the
        // backlog committed to each device, not just enqueued launches.
        if let Some(d) = dev {
            if let Some(slot) = self.slots.get_mut(d) {
                slot.queued_ops += 1;
            }
        }
        Ok(())
    }

    fn execute_op(&mut self, op: Op) -> Result<(), HostError> {
        self.ops_executed += 1;
        match op {
            Op::Record(e) => {
                let v = self
                    .events
                    .get_mut(e.0 as usize)
                    .ok_or(HostError::Stream(SE::UnknownEvent(e.0)))?;
                *v = true;
                Ok(())
            }
            Op::Wait(e) => {
                let signaled = self
                    .events
                    .get(e.0 as usize)
                    .copied()
                    .ok_or(HostError::Stream(SE::UnknownEvent(e.0)))?;
                if !signaled {
                    // Only reachable in eager mode: a deferred Wait is held
                    // until its event signals.
                    return Err(SE::Deadlock { blocked_streams: 1 }.into());
                }
                Ok(())
            }
            Op::Callback(f) => {
                f();
                Ok(())
            }
            // Device-touching operations go through the recovery layer
            // (a no-op dispatch when recovery is disabled).
            device_op => {
                let res = if self.recovery.is_some() {
                    self.run_recoverable(&device_op)
                } else {
                    self.try_op(&device_op)
                };
                // One pending decrement per enqueued launch, at resolution
                // — success, surfaced trap, or exhausted retries alike
                // (retries within `run_recoverable` are invisible here).
                if let Op::Launch { dev, .. } = &device_op {
                    if let Some(slot) = self.slots.get_mut(*dev) {
                        slot.pending = slot.pending.saturating_sub(1);
                    }
                }
                res
            }
        }
    }

    /// Execute one device-touching stream operation, non-consuming so the
    /// recovery layer can re-run it verbatim. Journals the device effect
    /// on success when recovery is enabled.
    fn try_op(&mut self, op: &Op) -> Result<(), HostError> {
        let journaling = self.recovery.is_some();
        match op {
            Op::MemcpyTo { dev, dst, buf, off, len } => {
                let bytes = {
                    let b = self.buf_bytes(*buf)?;
                    b[*off as usize..(*off + *len) as usize].to_vec()
                };
                self.loaded_dev(*dev)?.write_bytes(*dst, &bytes)?;
                if journaling {
                    // The journal owns a shadow of the bytes: the host
                    // buffer may change before a replay needs them.
                    self.slot_mut(*dev)?
                        .journal
                        .push(JEffect::Write { ptr: *dst, bytes });
                }
                Ok(())
            }
            Op::MemcpyFrom { dev, src, buf, off, len } => {
                let bytes = self.loaded_dev(*dev)?.read_bytes(*src, *len as usize)?;
                let b = self
                    .bufs
                    .get_mut(buf.0 as usize)
                    .ok_or(HostError::UnknownBuffer(buf.0))?;
                b[*off as usize..(*off + *len) as usize].copy_from_slice(&bytes);
                if journaling {
                    self.slot_mut(*dev)?.journal.push(JEffect::ReadBack {
                        src: *src,
                        buf: *buf,
                        off: *off,
                        len: *len,
                    });
                }
                Ok(())
            }
            Op::PoolFree { dev, ptr } => {
                self.slot_mut(*dev)?.pool.free(*ptr);
                Ok(())
            }
            Op::Launch {
                dev,
                kernel,
                launch,
                args,
                ticket,
            } => {
                let slot = self.slot_mut(*dev)?;
                let Some(d) = slot.dev.as_mut() else {
                    return Err(HostError::Map(ME::Misuse("launch on a device with no image")));
                };
                // Whether the host watchdog (not the plan/config budget)
                // is the binding fuel constraint — decides if a plain
                // FuelExhausted trap is really a watchdog trip.
                let base_fuel = d
                    .fault_plan()
                    .and_then(|p| p.fuel_limit)
                    .unwrap_or(d.config.max_steps);
                let wd_binding = d.watchdog_fuel().is_some_and(|w| w <= base_fuel);
                let wd_fuel = d.watchdog_fuel().unwrap_or(0);
                let res = d.launch(kernel, *launch, args);
                if let Ok(m) = &res {
                    slot.executed_cycles += m.cycles;
                    slot.launches += 1;
                }
                let trap = res.as_ref().err().cloned();
                // Every attempt records its outcome; the last one wins —
                // after a successful retry the ticket holds the metrics.
                if let Some(t) = self.tickets.get_mut(ticket.0 as usize) {
                    *t = Some(res);
                }
                match trap {
                    None => {
                        if journaling {
                            self.slot_mut(*dev)?.journal.push(JEffect::Launch {
                                kernel: kernel.clone(),
                                launch: *launch,
                                args: args.clone(),
                                ticket: *ticket,
                            });
                        }
                        Ok(())
                    }
                    // A stall (and a fuel trap the watchdog caused) is the
                    // host watchdog's typed error; everything else aborts
                    // the drain as before: remaining operations (including
                    // result readbacks) stay queued, exactly as the direct
                    // harness stops at a failed `Device::launch`.
                    Some(e) => match e.kind {
                        TrapKind::Stalled { fuel } => Err(HostError::Watchdog {
                            kernel: kernel.clone(),
                            fuel,
                        }),
                        TrapKind::FuelExhausted if wd_binding => Err(HostError::Watchdog {
                            kernel: kernel.clone(),
                            fuel: wd_fuel,
                        }),
                        _ => Err(HostError::Exec(e)),
                    },
                }
            }
            // Host-only operations never reach the recovery dispatch.
            Op::Record(_) | Op::Wait(_) | Op::Callback(_) => Ok(()),
        }
    }

    // ---- recovery -------------------------------------------------------

    /// Run a device op under the armed [`RecoveryPolicy`]: transient
    /// errors back off (modeled cycles) and retry in place; `DeviceLost`
    /// fails over to a replacement device and replays the journal;
    /// program errors surface unchanged.
    fn run_recoverable(&mut self, op: &Op) -> Result<(), HostError> {
        let Some(policy) = self.recovery.clone() else {
            return self.try_op(op);
        };
        let mut transient_attempts: u32 = 0;
        loop {
            let e = match self.try_op(op) {
                Ok(()) => return Ok(()),
                Err(e) => e,
            };
            match e.class() {
                ErrorClass::Transient if transient_attempts < policy.transient_retries => {
                    transient_attempts += 1;
                    self.rmetrics.retries += 1;
                    if matches!(e, HostError::Watchdog { .. }) {
                        self.rmetrics.watchdog_trips += 1;
                    }
                    self.rmetrics.backoff_cycles += policy.backoff_cycles(transient_attempts);
                }
                ErrorClass::Permanent if !matches!(e, HostError::FleetLost { .. }) => {
                    let Some(dev) = op_device(op) else {
                        return Err(e);
                    };
                    // `?` surfaces budget exhaustion / replay divergence;
                    // on success the loop retries the op on the fresh
                    // device with a reset transient budget.
                    self.failover(dev, &policy)?;
                    transient_attempts = 0;
                }
                _ => return Err(e),
            }
        }
    }

    /// Replace the lost device in slot `dev`: quarantine the dead one,
    /// bind a fresh vGPU of the same image (host-wide fault plan only —
    /// the replacement models healthy hardware, so the slot's chaos
    /// campaign is not re-armed), and replay the journal so present
    /// table, pool, and already-translated kernel arguments stay valid
    /// verbatim. When the failover budget is spent the slot is retired
    /// instead and the loss surfaces (typed, never a panic).
    fn failover(&mut self, dev: usize, policy: &RecoveryPolicy) -> Result<(), HostError> {
        self.rmetrics.quarantines += 1;
        if self.rmetrics.failovers >= u64::from(policy.max_failovers) {
            let devices = self.slots.len();
            let slot = self.slot_mut(dev)?;
            slot.quarantined = true;
            slot.dev = None;
            if self.slots.iter().all(|s| s.quarantined) {
                return Err(HostError::FleetLost { devices });
            }
            return Err(HostError::Exec(ExecError {
                kind: TrapKind::DeviceLost,
                team: 0,
                thread: 0,
                func: "<failover budget exhausted>".to_string(),
            }));
        }
        self.rmetrics.failovers += 1;

        let slot_img = self.slots.get(dev).and_then(|s| s.image);
        let Some(img) = slot_img else {
            return Err(HostError::Replay("failover on a slot with no image".to_string()));
        };
        let out = self
            .images
            .get(img.0 as usize)
            .ok_or(HostError::UnknownImage(img.0))?
            .clone();
        let mut d = Device::load(out.module.clone(), self.dev_cfg.clone());
        if let Some(w) = self.worker_threads {
            d.set_worker_threads(w);
        }
        if let Some(t) = self.exec_tier {
            d.set_exec_tier(t);
        }
        if let Some(p) = &self.fault_plan {
            d.set_fault_plan(p.clone());
        }
        d.set_watchdog_fuel(self.watchdog_fuel);
        let slot = self.slot_mut(dev)?;
        slot.dev = Some(d);
        slot.device_plan = None;
        // Replay rebuilds these from the journal; resetting first keeps
        // the recovered totals identical to a clean run's.
        slot.executed_cycles = 0;
        slot.launches = 0;
        self.replay_journal(dev)
    }

    /// Re-execute the slot's journal on its (fresh) device. Determinism
    /// does the heavy lifting: bump allocation reproduces every pointer
    /// (asserted), and the interpreter reproduces every byte and metric.
    /// Any divergence is a typed [`HostError::Replay`].
    fn replay_journal(&mut self, dev: usize) -> Result<(), HostError> {
        let effects = self
            .slots
            .get(dev)
            .map(|s| s.journal.effects.clone())
            .unwrap_or_default();
        for eff in effects {
            self.rmetrics.replayed_ops += 1;
            match eff {
                JEffect::Grow { size, at } => {
                    let p = self.loaded_dev(dev)?.alloc(size);
                    if p != at {
                        return Err(HostError::Replay(format!(
                            "replayed alloc({size}) returned {p:?}, journal recorded {at:?}"
                        )));
                    }
                }
                JEffect::Zero { ptr, len } => {
                    self.loaded_dev(dev)?
                        .write_bytes(ptr, &vec![0u8; len as usize])
                        .map_err(|e| HostError::Replay(format!("zero-fill diverged: {e}")))?;
                }
                JEffect::Write { ptr, bytes } => {
                    self.loaded_dev(dev)?
                        .write_bytes(ptr, &bytes)
                        .map_err(|e| HostError::Replay(format!("write diverged: {e}")))?;
                }
                JEffect::Launch {
                    kernel,
                    launch,
                    args,
                    ticket,
                } => {
                    let slot = self.slot_mut(dev)?;
                    let Some(d) = slot.dev.as_mut() else {
                        return Err(HostError::Replay("replay on an empty slot".to_string()));
                    };
                    let res = d.launch(&kernel, launch, &args);
                    match res {
                        Ok(m) => {
                            slot.executed_cycles += m.cycles;
                            slot.launches += 1;
                            if let Some(t) = self.tickets.get_mut(ticket.0 as usize) {
                                *t = Some(Ok(m));
                            }
                        }
                        // Journaled launches all completed originally; a
                        // trap on replay is a broken invariant, not a
                        // recoverable fault.
                        Err(e) => {
                            return Err(HostError::Replay(format!(
                                "journaled launch @{kernel} trapped on replay: {e}"
                            )))
                        }
                    }
                }
                JEffect::ReadBack { src, buf, off, len } => {
                    let bytes = self
                        .loaded_dev(dev)?
                        .read_bytes(src, len as usize)
                        .map_err(|e| HostError::Replay(format!("readback diverged: {e}")))?;
                    let b = self
                        .bufs
                        .get_mut(buf.0 as usize)
                        .ok_or(HostError::UnknownBuffer(buf.0))?;
                    b[off as usize..(off + len) as usize].copy_from_slice(&bytes);
                }
            }
        }
        Ok(())
    }

    // ---- results and observability --------------------------------------

    /// The outcome of an enqueued launch: `Ok(None)` while still pending,
    /// `Ok(Some(_))` once executed (metrics or the trap).
    pub fn ticket_result(&self, t: Ticket) -> Result<Option<&Result<KernelMetrics, ExecError>>, HostError> {
        self.tickets
            .get(t.0 as usize)
            .map(|o| o.as_ref())
            .ok_or(HostError::Stream(SE::UnknownTicket(t.0)))
    }

    /// The metrics of a completed launch; a trap or a still-pending ticket
    /// is a typed error.
    pub fn take_metrics(&self, t: Ticket) -> Result<KernelMetrics, HostError> {
        match self.ticket_result(t)? {
            Some(Ok(m)) => Ok(m.clone()),
            Some(Err(e)) => Err(HostError::Exec(e.clone())),
            None => Err(HostError::Stream(SE::UnknownTicket(t.0))),
        }
    }

    /// The device in slot `i`, if an image has been bound.
    pub fn device(&self, i: usize) -> Option<&Device> {
        self.slots.get(i).and_then(|s| s.dev.as_ref())
    }

    /// Simulated cycles of every launch executed on device `i` — the
    /// per-device makespan input of the multi-device scaling model.
    pub fn device_cycles(&self, i: usize) -> u64 {
        self.slots.get(i).map_or(0, |s| s.executed_cycles)
    }

    /// Launches executed on device `i`.
    pub fn device_launches(&self, i: usize) -> u64 {
        self.slots.get(i).map_or(0, |s| s.launches)
    }

    /// `(fresh device allocations, pool reuse hits, bytes currently
    /// mapped)` of device `i`'s pool.
    pub fn pool_stats(&self, i: usize) -> (u64, u64, u64) {
        self.slots
            .get(i)
            .map_or((0, 0, 0), |s| (s.pool.device_allocs, s.pool.reuse_hits, s.pool.in_use()))
    }

    /// `(host→device, device→host)` transfers issued on device `i`.
    pub fn transfer_counts(&self, i: usize) -> (u64, u64) {
        self.slots
            .get(i)
            .map_or((0, 0), |s| (s.table.transfers_to, s.table.transfers_from))
    }

    /// Total stream operations executed (eager + drained).
    pub fn ops_executed(&self) -> u64 {
        self.ops_executed
    }

    /// One consolidated snapshot of everything the host runtime counts:
    /// compile-cache hits/misses, the recovery layer's work, and the
    /// per-device load/pool/transfer state that was previously internal.
    /// This is the stats surface `nzomp-serve` and the load bench report
    /// from, so neither reaches into crate internals.
    pub fn stats(&self) -> HostStats {
        HostStats {
            compile_hits: self.cache.hits,
            compile_misses: self.cache.misses,
            images: self.cache.len(),
            recovery: self.rmetrics.clone(),
            ops_executed: self.ops_executed,
            devices: self
                .slots
                .iter()
                .map(|s| DeviceStats {
                    launches: s.launches,
                    executed_cycles: s.executed_cycles,
                    pending_launches: s.pending,
                    queued_ops: s.queued_ops,
                    quarantined: s.quarantined,
                    pool_allocs: s.pool.device_allocs,
                    pool_reuse_hits: s.pool.reuse_hits,
                    pool_in_use: s.pool.in_use(),
                    transfers_to: s.table.transfers_to,
                    transfers_from: s.table.transfers_from,
                })
                .collect(),
        }
    }

    /// Pin the worker-thread count of every current and future device
    /// (overrides `NZOMP_VGPU_THREADS` resolution in `Device::load`).
    pub fn set_worker_threads(&mut self, n: usize) {
        self.worker_threads = Some(n);
        for s in &mut self.slots {
            if let Some(d) = s.dev.as_mut() {
                d.set_worker_threads(n);
            }
        }
    }

    /// Pin the execution tier of every current and future device
    /// (overrides `NZOMP_EXEC_TIER` resolution in `Device::load`). The
    /// pin survives failover: replacement devices — and therefore journal
    /// replays — run the same tier as the device they replace, keeping
    /// recovery bit-identical to the original execution.
    pub fn set_exec_tier(&mut self, tier: ExecTier) {
        self.exec_tier = Some(tier);
        for s in &mut self.slots {
            if let Some(d) = s.dev.as_mut() {
                d.set_exec_tier(tier);
            }
        }
    }

    /// Arm a fault plan on every current and future device (merged with
    /// any per-slot plan from [`Host::set_device_faults`]).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = Some(plan);
        for s in &mut self.slots {
            if let Some(d) = s.dev.as_mut() {
                if let Some(p) = effective_plan(&self.fault_plan, &s.device_plan) {
                    d.set_fault_plan(p);
                }
            }
        }
    }

    pub fn clear_fault_plan(&mut self) {
        self.fault_plan = None;
        for s in &mut self.slots {
            if let Some(d) = s.dev.as_mut() {
                match effective_plan(&None, &s.device_plan) {
                    Some(p) => d.set_fault_plan(p),
                    None => d.clear_fault_plan(),
                }
            }
        }
    }

    /// Arm a fault plan scoped to device slot `dev` only — how a chaos
    /// campaign kills one device of a fleet. Merged over the host-wide
    /// plan; applied to the slot's device now (if one is bound) and at
    /// every future bind. Failover replacements are *not* re-armed: the
    /// replacement models healthy hardware.
    pub fn set_device_faults(&mut self, dev: usize, plan: FaultPlan) -> Result<(), HostError> {
        let global = self.fault_plan.clone();
        let slot = self.slot_mut(dev)?;
        slot.device_plan = Some(plan);
        if let Some(d) = slot.dev.as_mut() {
            if let Some(p) = effective_plan(&global, &slot.device_plan) {
                d.set_fault_plan(p);
            }
        }
        Ok(())
    }

    /// Arm (or disarm) the host launch watchdog on every current and
    /// future device: a kernel that exceeds `fuel` modeled steps trips a
    /// typed [`HostError::Watchdog`] instead of consuming the drain.
    pub fn set_watchdog_fuel(&mut self, fuel: Option<u64>) {
        self.watchdog_fuel = fuel;
        for s in &mut self.slots {
            if let Some(d) = s.dev.as_mut() {
                d.set_watchdog_fuel(fuel);
            }
        }
    }

    /// Enable (`Some`) or disable (`None`) the recovery layer. Enabling
    /// turns on op journaling, transient retries with seeded backoff, and
    /// `DeviceLost` failover; disabled (the default) the host behaves
    /// exactly as the PR 5 runtime. Set before enqueuing — the journal
    /// only records while recovery is armed.
    pub fn set_recovery(&mut self, policy: Option<RecoveryPolicy>) {
        self.recovery = policy;
    }

    /// Everything the recovery layer did so far.
    pub fn recovery_metrics(&self) -> &RecoveryMetrics {
        &self.rmetrics
    }

    /// Whether slot `i` has been retired by the recovery layer.
    pub fn quarantined(&self, i: usize) -> bool {
        self.slots.get(i).is_some_and(|s| s.quarantined)
    }

    /// Slots still eligible for scheduling (fleet size after degradation).
    pub fn live_devices(&self) -> usize {
        self.slots.iter().filter(|s| !s.quarantined).count()
    }

    // ---- internals ------------------------------------------------------

    fn check_stream(&self, s: StreamId) -> Result<(), HostError> {
        if (s.0 as usize) < self.streams.len() {
            Ok(())
        } else {
            Err(HostError::Stream(SE::UnknownStream(s.0)))
        }
    }

    fn check_event(&self, e: EventId) -> Result<(), HostError> {
        if (e.0 as usize) < self.events.len() {
            Ok(())
        } else {
            Err(HostError::Stream(SE::UnknownEvent(e.0)))
        }
    }

    fn slot_mut(&mut self, dev: usize) -> Result<&mut DeviceSlot, HostError> {
        let devices = self.slots.len();
        self.slots
            .get_mut(dev)
            .ok_or(HostError::NoDevice { device: dev, devices })
    }

    fn loaded_dev(&mut self, dev: usize) -> Result<&mut Device, HostError> {
        let devices = self.slots.len();
        self.slots
            .get_mut(dev)
            .and_then(|s| s.dev.as_mut())
            .ok_or(HostError::NoDevice { device: dev, devices })
    }
}

fn step_err(e: MapStepError) -> HostError {
    match e {
        MapStepError::Map(m) => HostError::Map(m),
        MapStepError::Exec(x) => HostError::Exec(x),
    }
}

/// The device slot a stream operation touches (`None` for host-only ops).
fn op_device(op: &Op) -> Option<usize> {
    match op {
        Op::MemcpyTo { dev, .. }
        | Op::MemcpyFrom { dev, .. }
        | Op::PoolFree { dev, .. }
        | Op::Launch { dev, .. } => Some(*dev),
        Op::Record(_) | Op::Wait(_) | Op::Callback(_) => None,
    }
}

/// Merge the host-wide fault plan with a slot-scoped one: sites of both
/// fire; the slot plan's fuel/heap overrides win when set.
fn effective_plan(global: &Option<FaultPlan>, device: &Option<FaultPlan>) -> Option<FaultPlan> {
    match (global, device) {
        (None, None) => None,
        (Some(g), None) => Some(g.clone()),
        (None, Some(d)) => Some(d.clone()),
        (Some(g), Some(d)) => {
            let mut p = g.clone();
            p.sites.extend(d.sites.iter().cloned());
            p.device_sites.extend(d.device_sites.iter().copied());
            if d.fuel_limit.is_some() {
                p.fuel_limit = d.fuel_limit;
            }
            if d.heap_limit.is_some() {
                p.heap_limit = d.heap_limit;
            }
            Some(p)
        }
    }
}
