//! Multi-device scheduling: device slots, kernel-image registry, and
//! launch-placement policies.

use nzomp_vgpu::Device;

use crate::map::PresentTable;
use crate::pool::DevicePool;

/// Handle of a compiled kernel image in the host's registry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ImageId(pub u32);

/// How [`crate::Host::enqueue_target`] places launches across devices.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Strict rotation over the fleet.
    #[default]
    RoundRobin,
    /// The device with the fewest pending launches (ties: lowest index;
    /// second tie-break: least simulated cycles executed so far).
    LeastLoaded,
}

/// One registered virtual GPU plus its host-side shadow state. The
/// device itself is created lazily when an image is first placed on the
/// slot; re-placing a different image resets the device (fresh memory)
/// and with it the present table and pool.
pub(crate) struct DeviceSlot {
    pub dev: Option<Device>,
    pub image: Option<ImageId>,
    pub table: PresentTable,
    pub pool: DevicePool,
    /// Launches enqueued but not yet executed (LeastLoaded's signal).
    pub pending: u64,
    /// Simulated cycles of every launch executed on this device — the
    /// per-device makespan input of the multi-device scaling model.
    pub executed_cycles: u64,
    /// Launches executed on this device.
    pub launches: u64,
}

impl DeviceSlot {
    pub fn new() -> DeviceSlot {
        DeviceSlot {
            dev: None,
            image: None,
            table: PresentTable::new(),
            pool: DevicePool::new(),
            pending: 0,
            executed_cycles: 0,
            launches: 0,
        }
    }
}

/// Pick a device for the next launch. `slots` is never empty.
pub(crate) fn pick_device(policy: SchedPolicy, slots: &[DeviceSlot], rr_next: &mut usize) -> usize {
    match policy {
        SchedPolicy::RoundRobin => {
            let d = *rr_next % slots.len();
            *rr_next = (*rr_next + 1) % slots.len();
            d
        }
        SchedPolicy::LeastLoaded => slots
            .iter()
            .enumerate()
            .min_by_key(|(i, s)| (s.pending, s.executed_cycles, *i))
            .map(|(i, _)| i)
            .unwrap_or(0),
    }
}
