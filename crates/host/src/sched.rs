//! Multi-device scheduling: device slots, kernel-image registry, and
//! launch-placement policies.

use nzomp_vgpu::{Device, FaultPlan};

use crate::journal::OpJournal;
use crate::map::PresentTable;
use crate::pool::DevicePool;

/// Handle of a compiled kernel image in the host's registry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ImageId(pub u32);

/// How [`crate::Host::enqueue_target`] places launches across devices.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Strict rotation over the fleet.
    #[default]
    RoundRobin,
    /// The device with the fewest pending launches (ties broken by the
    /// least queued-but-undrained stream work, then by least simulated
    /// cycles executed so far, then by lowest index).
    LeastLoaded,
}

/// One registered virtual GPU plus its host-side shadow state. The
/// device itself is created lazily when an image is first placed on the
/// slot; re-placing a different image resets the device (fresh memory)
/// and with it the present table, pool, and journal.
pub(crate) struct DeviceSlot {
    pub dev: Option<Device>,
    pub image: Option<ImageId>,
    pub table: PresentTable,
    pub pool: DevicePool,
    /// Launches enqueued but not yet executed (LeastLoaded's signal).
    pub pending: u64,
    /// Device-touching stream operations (memcpys, frees, launches)
    /// queued but not yet drained. `pending` alone misses the transfer
    /// work already committed to a device, so placement under concurrent
    /// enqueue used to send a launch to a device with a deep memcpy
    /// backlog; LeastLoaded now breaks `pending` ties on this count.
    pub queued_ops: u64,
    /// Simulated cycles of every launch executed on this device — the
    /// per-device makespan input of the multi-device scaling model.
    pub executed_cycles: u64,
    /// Launches executed on this device.
    pub launches: u64,
    /// The slot is retired: its device was lost and the failover budget
    /// is exhausted. The scheduler never places work here; only an
    /// explicit `bind_image` revives it.
    pub quarantined: bool,
    /// A fault plan scoped to *this* slot's device (chaos campaigns),
    /// merged over the host-wide plan at bind. Deliberately not re-armed
    /// on a failover replacement — the replacement models healthy
    /// hardware.
    pub device_plan: Option<FaultPlan>,
    /// Redo log of every device-state effect since the image was bound —
    /// what failover replays onto a replacement device.
    pub journal: OpJournal,
}

impl DeviceSlot {
    pub fn new() -> DeviceSlot {
        DeviceSlot {
            dev: None,
            image: None,
            table: PresentTable::new(),
            pool: DevicePool::new(),
            pending: 0,
            queued_ops: 0,
            executed_cycles: 0,
            launches: 0,
            quarantined: false,
            device_plan: None,
            journal: OpJournal::new(),
        }
    }
}

/// Pick a device for the next launch, skipping quarantined slots. `None`
/// iff every slot is quarantined — the caller surfaces
/// [`crate::HostError::FleetLost`].
pub(crate) fn pick_device(
    policy: SchedPolicy,
    slots: &[DeviceSlot],
    rr_next: &mut usize,
) -> Option<usize> {
    match policy {
        SchedPolicy::RoundRobin => {
            let n = slots.len();
            for k in 0..n {
                let d = (*rr_next + k) % n;
                if !slots[d].quarantined {
                    *rr_next = (d + 1) % n;
                    return Some(d);
                }
            }
            None
        }
        SchedPolicy::LeastLoaded => slots
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.quarantined)
            .min_by_key(|(i, s)| (s.pending, s.queued_ops, s.executed_cycles, *i))
            .map(|(i, _)| i),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(n: usize) -> Vec<DeviceSlot> {
        (0..n).map(|_| DeviceSlot::new()).collect()
    }

    #[test]
    fn least_loaded_breaks_ties_by_cycles_then_index() {
        let mut slots = fleet(3);
        // Same pending everywhere: the cycle tie-break decides.
        slots[0].executed_cycles = 500;
        slots[1].executed_cycles = 100;
        slots[2].executed_cycles = 100;
        let mut rr = 0;
        assert_eq!(
            pick_device(SchedPolicy::LeastLoaded, &slots, &mut rr),
            Some(1),
            "equal cycles resolve to the lowest index"
        );
        // Pending dominates cycles.
        slots[1].pending = 2;
        slots[2].pending = 2;
        assert_eq!(
            pick_device(SchedPolicy::LeastLoaded, &slots, &mut rr),
            Some(0),
            "fewest pending wins even with the most cycles"
        );
        // Full tie: lowest index.
        let slots = fleet(4);
        assert_eq!(pick_device(SchedPolicy::LeastLoaded, &slots, &mut rr), Some(0));
    }

    /// The satellite fix: queued-but-undrained stream work (transfers,
    /// frees) counts toward a device's load, not just enqueued launches
    /// and completed cycles. The full corrected tie-break order is
    /// `pending > queued_ops > executed_cycles > index`.
    #[test]
    fn least_loaded_counts_queued_stream_work() {
        let mut rr = 0;
        let mut slots = fleet(3);
        // No launches pending anywhere, but slot 0 has a deep memcpy
        // backlog: a fresh enqueue must avoid it.
        slots[0].queued_ops = 6;
        slots[1].queued_ops = 2;
        slots[2].queued_ops = 2;
        assert_eq!(
            pick_device(SchedPolicy::LeastLoaded, &slots, &mut rr),
            Some(1),
            "queued stream work breaks the pending tie; equal backlogs fall to index"
        );
        // Queued work dominates executed cycles (history never outranks
        // committed-but-undrained work)...
        slots[1].executed_cycles = 9_999;
        slots[2].queued_ops = 3;
        assert_eq!(
            pick_device(SchedPolicy::LeastLoaded, &slots, &mut rr),
            Some(1),
            "least queued work wins regardless of cycle history"
        );
        // ...but pending launches dominate queued transfer work.
        slots[1].pending = 1;
        slots[2].pending = 1;
        assert_eq!(
            pick_device(SchedPolicy::LeastLoaded, &slots, &mut rr),
            Some(0),
            "fewest pending launches still outranks everything"
        );
    }

    #[test]
    fn quarantined_slots_are_never_picked() {
        let mut slots = fleet(3);
        slots[1].quarantined = true;
        let mut rr = 0;
        // Round-robin skips slot 1 but keeps rotating over the survivors.
        let picks: Vec<_> = (0..4)
            .map(|_| pick_device(SchedPolicy::RoundRobin, &slots, &mut rr))
            .collect();
        assert_eq!(picks, vec![Some(0), Some(2), Some(0), Some(2)]);
        // Least-loaded ignores the quarantined slot even when it looks
        // idle.
        slots[0].pending = 9;
        slots[2].pending = 9;
        let mut rr = 0;
        assert_eq!(
            pick_device(SchedPolicy::LeastLoaded, &slots, &mut rr),
            Some(0)
        );
    }

    #[test]
    fn all_quarantined_is_none_not_a_panic() {
        let mut slots = fleet(2);
        slots[0].quarantined = true;
        slots[1].quarantined = true;
        let mut rr = 0;
        assert_eq!(pick_device(SchedPolicy::RoundRobin, &slots, &mut rr), None);
        assert_eq!(pick_device(SchedPolicy::LeastLoaded, &slots, &mut rr), None);
    }

    #[test]
    fn round_robin_preserves_rotation_without_quarantine() {
        let slots = fleet(3);
        let mut rr = 0;
        let picks: Vec<_> = (0..6)
            .map(|_| pick_device(SchedPolicy::RoundRobin, &slots, &mut rr))
            .collect();
        assert_eq!(
            picks,
            vec![Some(0), Some(1), Some(2), Some(0), Some(1), Some(2)]
        );
    }
}
