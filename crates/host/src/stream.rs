//! Async streams: ordered queues of memcpy / launch / callback operations
//! with events and cross-stream dependencies.
//!
//! A stream is a FIFO; operations on one stream execute in enqueue order.
//! Across streams the only ordering is through events: a stream whose head
//! is an [`Op::Wait`] stalls until some stream has executed the matching
//! [`Op::Record`]. The executor ([`crate::Host::sync`]) drains all streams
//! with a **seeded round-robin** schedule: deterministic for a given seed,
//! and — because mapping decisions (refcounts, device allocation, launch
//! argument translation) are taken at *enqueue* time in driver program
//! order, leaving streams nothing but byte movement and launches — every
//! seed produces results bit-identical to eager (enqueue-time) execution.
//! The differential suite proves this on every proxy.

use nzomp_vgpu::device::Launch;
use nzomp_vgpu::memory::DevPtr;
use nzomp_vgpu::RtVal;

use crate::map::BufId;

/// Handle of a stream created by [`crate::Host::stream`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamId(pub u32);

/// Handle of an event created by [`crate::Host::event`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventId(pub u32);

/// Handle for retrieving the result of an enqueued launch after `sync`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ticket(pub u32);

/// A kernel launch argument, host-side: buffer references are translated
/// to device addresses through the present table when the launch is
/// enqueued (the buffer must be mapped by then).
#[derive(Clone, Debug)]
pub enum KArg {
    /// Device address of host buffer byte 0.
    Buf(BufId),
    /// Device address of a byte offset into a host buffer.
    BufAt(BufId, u64),
    /// A plain scalar.
    Val(RtVal),
}

/// One stream operation. Device addresses were resolved at enqueue time;
/// executing an op only moves bytes, launches, or touches events.
pub(crate) enum Op {
    /// Copy `len` bytes of host buffer `buf` at `off` to device memory.
    MemcpyTo {
        dev: usize,
        dst: DevPtr,
        buf: BufId,
        off: u64,
        len: u64,
    },
    /// Copy `len` device bytes back into host buffer `buf` at `off`.
    MemcpyFrom {
        dev: usize,
        src: DevPtr,
        buf: BufId,
        off: u64,
        len: u64,
    },
    /// Return an unmapped block to the device's pool. Deferred behind any
    /// `MemcpyFrom` of the same range so the copy reads intact bytes.
    PoolFree { dev: usize, ptr: DevPtr },
    /// Launch a kernel; the outcome lands in `ticket`.
    Launch {
        dev: usize,
        kernel: String,
        launch: Launch,
        args: Vec<RtVal>,
        ticket: Ticket,
    },
    /// Signal an event.
    Record(EventId),
    /// Block the stream until the event is signaled.
    Wait(EventId),
    /// Host-side callback (ordering probe, notification, ...).
    Callback(Box<dyn FnOnce()>),
}

impl std::fmt::Debug for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Op::MemcpyTo { dev, buf, off, len, .. } => {
                write!(f, "MemcpyTo(dev{dev}, buf{}[{off}..+{len}])", buf.0)
            }
            Op::MemcpyFrom { dev, buf, off, len, .. } => {
                write!(f, "MemcpyFrom(dev{dev}, buf{}[{off}..+{len}])", buf.0)
            }
            Op::PoolFree { dev, ptr } => write!(f, "PoolFree(dev{dev}, {:#x})", ptr.0),
            Op::Launch { dev, kernel, .. } => write!(f, "Launch(dev{dev}, @{kernel})"),
            Op::Record(e) => write!(f, "Record({})", e.0),
            Op::Wait(e) => write!(f, "Wait({})", e.0),
            Op::Callback(_) => write!(f, "Callback"),
        }
    }
}
