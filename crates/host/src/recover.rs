//! Recovery policy and metrics — retry budgets, deterministic backoff,
//! and the counters the chaos report prints.
//!
//! The policy decides what [`crate::Host`] does with a failed stream
//! operation, dispatching on [`crate::error::ErrorClass`]:
//!
//! * **Transient** (memcpy fault, stalled launch, watchdog trip): back
//!   off and retry the same operation on the same device, up to
//!   [`RecoveryPolicy::transient_retries`] times per operation.
//! * **Permanent** (`DeviceLost`): quarantine the dead device, bind a
//!   replacement, replay the slot's [`crate::journal::OpJournal`], and
//!   retry — up to [`RecoveryPolicy::max_failovers`] times per host.
//! * **Program**: surface immediately; a retry would reproduce it.
//!
//! Backoff is measured in *modeled* cycles, not wall clock, and is
//! derived from a seed — two runs with the same seed charge the same
//! backoff, so recovery never perturbs the bit-identity discipline.

/// Retry/failover budgets and the seeded backoff schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Retries per operation for transient errors (same device).
    pub transient_retries: u32,
    /// Device replacements per host before a lost slot is retired.
    pub max_failovers: u32,
    /// Base backoff charge in modeled cycles; attempt `n` charges
    /// `base << (n-1)` plus seeded jitter in `[0, base)`.
    pub backoff_base: u64,
    /// Seed of the jitter term — deterministic per (seed, attempt).
    pub backoff_seed: u64,
}

impl Default for RecoveryPolicy {
    fn default() -> RecoveryPolicy {
        RecoveryPolicy {
            transient_retries: 3,
            max_failovers: 4,
            backoff_base: 1000,
            backoff_seed: 0,
        }
    }
}

/// SplitMix64 — the same generator the fault planner uses, local because
/// `nzomp_vgpu::faults::Mix` is private.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl RecoveryPolicy {
    /// Modeled-cycle charge of retry attempt `attempt` (1-based):
    /// exponential in the attempt number with seeded jitter. Pure —
    /// the same (policy, attempt) always charges the same cycles.
    pub fn backoff_cycles(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(16);
        // checked_shl caps runaway attempt counts instead of wrapping.
        let exp = self.backoff_base.checked_shl(shift).unwrap_or(u64::MAX);
        let jitter = splitmix(self.backoff_seed ^ u64::from(attempt)) % self.backoff_base.max(1);
        exp.saturating_add(jitter)
    }
}

/// Counters of everything the recovery layer did — surfaced via
/// [`crate::Host::recovery_metrics`] and printed by the
/// `recovery_chaos` report table.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryMetrics {
    /// Transient retries performed (each after a backoff charge).
    pub retries: u64,
    /// How many of those retries answered a watchdog trip / stall.
    pub watchdog_trips: u64,
    /// Replacement devices bound after `DeviceLost`.
    pub failovers: u64,
    /// Dead devices quarantined (== failovers + retired slots).
    pub quarantines: u64,
    /// Journal effects re-executed on replacement devices.
    pub replayed_ops: u64,
    /// Total modeled-cycle backoff charged.
    pub backoff_cycles: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_grows() {
        let p = RecoveryPolicy::default();
        for attempt in 1..=5 {
            assert_eq!(
                p.backoff_cycles(attempt),
                p.backoff_cycles(attempt),
                "backoff must be pure"
            );
        }
        // The exponential term dominates the jitter: attempt n+1 charges
        // at least as much as attempt n once the doubling outpaces base.
        assert!(p.backoff_cycles(3) > p.backoff_cycles(1));
        // Different seeds change only the jitter, within [0, base).
        let q = RecoveryPolicy { backoff_seed: 7, ..p.clone() };
        let (a, b) = (p.backoff_cycles(2), q.backoff_cycles(2));
        assert!(a.abs_diff(b) < p.backoff_base);
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        let p = RecoveryPolicy {
            backoff_base: u64::MAX / 2,
            ..RecoveryPolicy::default()
        };
        // Would overflow a plain shift; must cap, not wrap or panic.
        assert!(p.backoff_cycles(40) >= p.backoff_cycles(1));
        let _ = p.backoff_cycles(u32::MAX);
    }
}
