//! Enqueue-time op journal — the redo log behind device-loss recovery.
//!
//! The host cannot snapshot a virtual GPU (a real one even less), but it
//! does not need to: every byte of device state a target region produces
//! is the result of a *deterministic* sequence of host-visible effects —
//! allocations, zero-fills, host→device copies, kernel launches. The
//! journal records exactly that sequence per device slot, in
//! device-mutation order, and [`crate::Host`] replays it verbatim on a
//! replacement device after a `DeviceLost` fault.
//!
//! Two properties make replay sound (see `docs/robustness.md`):
//!
//! * `Device::alloc` is a pure bump allocator, so replaying the recorded
//!   [`JEffect::Grow`]s on a fresh device of the same image reproduces
//!   the *identical* device pointers — the present table, pool, and every
//!   already-translated kernel argument stay valid without rewriting.
//!   Replay asserts this ([`crate::HostError::Replay`] on divergence).
//! * The device interpreter is deterministic, so replaying the recorded
//!   launches reproduces bit-identical memory, metrics, and sanitizer
//!   verdicts — the chaos suite's recovered-equals-clean claim.
//!
//! Pool frees are deliberately *not* journaled: freeing only moves a
//! block to the host-side free list and touches no device memory, and the
//! pool object itself survives the failover.

use nzomp_vgpu::device::Launch;
use nzomp_vgpu::memory::DevPtr;
use nzomp_vgpu::RtVal;

use crate::map::BufId;
use crate::stream::Ticket;

/// One recorded device-state effect.
#[derive(Clone, Debug)]
pub enum JEffect {
    /// `Device::alloc(size)` returned `at` (via a fresh pool allocation).
    /// Replay re-allocates and verifies the pointer matches.
    Grow { size: u64, at: DevPtr },
    /// A reused pool block was zero-filled before being handed out.
    Zero { ptr: DevPtr, len: u64 },
    /// A host→device copy landed these bytes at `ptr`. The journal owns a
    /// shadow of the bytes — the host buffer may be overwritten by later
    /// readbacks.
    Write { ptr: DevPtr, bytes: Vec<u8> },
    /// A kernel launch that completed (trapped launches abort the drain
    /// and are never journaled). Replay refreshes the ticket's metrics.
    Launch {
        kernel: String,
        launch: Launch,
        args: Vec<RtVal>,
        ticket: Ticket,
    },
    /// A device→host copy into host buffer `buf`. Replayed so the host
    /// shadow reflects the replacement device's (bit-identical) memory.
    ReadBack {
        src: DevPtr,
        buf: BufId,
        off: u64,
        len: u64,
    },
}

/// The per-device-slot redo log. Cleared when the slot is rebound to a
/// (different) image — a rebind resets device memory, so the history no
/// longer describes reachable state.
#[derive(Default)]
pub struct OpJournal {
    pub effects: Vec<JEffect>,
}

impl OpJournal {
    pub fn new() -> OpJournal {
        OpJournal::default()
    }

    pub fn push(&mut self, e: JEffect) {
        self.effects.push(e);
    }

    pub fn clear(&mut self) {
        self.effects.clear();
    }

    pub fn len(&self) -> usize {
        self.effects.len()
    }

    pub fn is_empty(&self) -> bool {
        self.effects.is_empty()
    }
}
