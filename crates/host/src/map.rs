//! The ref-counted present table: `map(to/from/tofrom/alloc/release/
//! delete)` semantics with nested `target data` environments.
//!
//! This is the host half of the paper's nested data environments
//! (§III-C, `crates/rt/src/abi.rs`): the device runtime walks its ICV
//! environment chain, the host runtime keeps the mirror structure — which
//! host ranges are *present* on the device, at which device address, and
//! how many enclosing data environments still reference them.
//!
//! Semantics follow OpenMP 5.1 / libomptarget:
//!
//! * **enter** (`to`/`tofrom`/`from`/`alloc`): if a containing entry is
//!   present, its refcount is incremented and **no transfer happens**
//!   (presence wins). Otherwise device memory is pool-allocated and, for
//!   `to`/`tofrom`, the host bytes are copied in.
//! * **exit** (`from`/`tofrom`/`release`/`delete`): the containing
//!   entry's refcount is decremented; `from`/`tofrom` copy device→host
//!   only when the count reaches zero (outermost exit); at zero the block
//!   returns to the pool. `delete` forces the count to zero without any
//!   transfer.
//! * A range that **partially overlaps** a present entry (neither
//!   contained nor disjoint) is a typed [`MapError::PartialOverlap`].
//!
//! The table operations are split in two phases so the async stream layer
//! can defer byte movement without perturbing device memory layout:
//! [`PresentTable::enter_alloc`] / [`PresentTable::prepare_exit`] mutate
//! the table (refcounts, pool allocation, entry removal) synchronously —
//! in driver program order — and merely *describe* the transfer, which
//! the stream executor performs later. The combined [`PresentTable::enter`]
//! / [`PresentTable::exit`] perform everything immediately (the semantic
//! reference, used by the property tests).

use nzomp_vgpu::memory::DevPtr;
use nzomp_vgpu::{Device, ExecError};

use crate::error::MapError;
use crate::pool::DevicePool;

/// Id of a registered host buffer (see [`crate::Host::register_bytes`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BufId(pub u32);

/// A map clause kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MapKind {
    /// `map(to:)` — copy host→device at entry.
    To,
    /// `map(from:)` — allocate at entry, copy device→host at outermost exit.
    From,
    /// `map(tofrom:)` — both.
    ToFrom,
    /// `map(alloc:)` — device-only storage, no transfers.
    Alloc,
    /// `map(release:)` — exit-only: decrement, no transfer.
    Release,
    /// `map(delete:)` — exit-only: force the count to zero, no transfer.
    Delete,
}

/// One map clause: a byte range of a host buffer plus its kind.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MapSpec {
    pub buf: BufId,
    pub off: u64,
    pub len: u64,
    pub kind: MapKind,
}

impl MapSpec {
    pub fn new(buf: BufId, off: u64, len: u64, kind: MapKind) -> MapSpec {
        MapSpec { buf, off, len, kind }
    }

    /// Whole-buffer map of `len` bytes.
    pub fn whole(buf: BufId, len: u64, kind: MapKind) -> MapSpec {
        MapSpec::new(buf, 0, len, kind)
    }
}

/// One present-table entry: a mapped range and its device block.
#[derive(Clone, Copy, Debug)]
pub struct PresentEntry {
    pub buf: BufId,
    pub off: u64,
    pub len: u64,
    pub dev_ptr: DevPtr,
    /// How many data environments currently reference the range.
    pub refs: u32,
}

/// The per-device present table.
#[derive(Default)]
pub struct PresentTable {
    entries: Vec<PresentEntry>,
    /// Host→device transfers issued (the overhead bench checks repeated
    /// launches add none).
    pub transfers_to: u64,
    /// Device→host transfers issued.
    pub transfers_from: u64,
}

/// What the caller must still do after [`PresentTable::prepare_exit`]:
/// copy the device range back to the host (outermost `from`) and/or
/// return the block to the pool — in that order.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExitAction {
    /// `(device address of the spec range, host offset, length)`.
    pub copy: Option<(DevPtr, u64, u64)>,
    /// Block to free once any copy has been performed.
    pub free: Option<DevPtr>,
}

/// Relation of a requested range to an entry.
enum Overlap {
    Disjoint,
    Contained,
    Partial,
}

fn classify(e: &PresentEntry, buf: BufId, off: u64, len: u64) -> Overlap {
    let (new_end, e_end) = (off.saturating_add(len), e.off.saturating_add(e.len));
    if e.buf != buf || new_end <= e.off || e_end <= off {
        return Overlap::Disjoint;
    }
    if e.off <= off && new_end <= e_end {
        return Overlap::Contained;
    }
    Overlap::Partial
}

impl PresentTable {
    pub fn new() -> PresentTable {
        PresentTable::default()
    }

    /// All live entries (diagnostics and the property-test shadow check).
    pub fn entries(&self) -> &[PresentEntry] {
        &self.entries
    }

    /// Find the entry containing `(buf, off, len)`, or the typed error.
    fn find(&self, buf: BufId, off: u64, len: u64) -> Result<usize, MapError> {
        for (i, e) in self.entries.iter().enumerate() {
            match classify(e, buf, off, len) {
                Overlap::Contained => return Ok(i),
                Overlap::Partial => {
                    return Err(MapError::PartialOverlap {
                        buf,
                        new: (off, len),
                        existing: (e.off, e.len),
                    })
                }
                Overlap::Disjoint => {}
            }
        }
        Err(MapError::NotPresent { buf, off, len })
    }

    /// Device address of host location `(buf, off)` — for launch-argument
    /// translation. The offset within the mapped range is preserved.
    pub fn lookup(&self, buf: BufId, off: u64) -> Result<DevPtr, MapError> {
        let i = self.find(buf, off, 1)?;
        let e = &self.entries[i];
        Ok(e.dev_ptr.add_bytes((off - e.off) as i64))
    }

    /// Phase one of an enter: refcount or allocate, **no transfer**.
    /// Returns the device address of the spec range and whether a
    /// host→device copy is owed (fresh `to`/`tofrom` entry).
    pub fn enter_alloc(
        &mut self,
        spec: MapSpec,
        dev: &mut Device,
        pool: &mut DevicePool,
        host_len: u64,
    ) -> Result<(DevPtr, bool), MapStepError> {
        if spec.len == 0 {
            return Err(MapError::Misuse("zero-length map range").into());
        }
        if matches!(spec.kind, MapKind::Release | MapKind::Delete) {
            return Err(MapError::Misuse("release/delete are exit-only map kinds").into());
        }
        if spec.off.saturating_add(spec.len) > host_len {
            return Err(MapError::HostRange {
                buf: spec.buf,
                off: spec.off,
                len: spec.len,
                buf_len: host_len,
            }
            .into());
        }
        match self.find(spec.buf, spec.off, spec.len) {
            Ok(i) => {
                // Present: refcount up, no transfer (presence wins).
                let e = &mut self.entries[i];
                e.refs += 1;
                Ok((e.dev_ptr.add_bytes((spec.off - e.off) as i64), false))
            }
            Err(MapError::NotPresent { .. }) => {
                let dev_ptr = pool.alloc(dev, spec.len).map_err(MapStepError::Exec)?;
                self.entries.push(PresentEntry {
                    buf: spec.buf,
                    off: spec.off,
                    len: spec.len,
                    dev_ptr,
                    refs: 1,
                });
                let needs_copy = matches!(spec.kind, MapKind::To | MapKind::ToFrom);
                if needs_copy {
                    self.transfers_to += 1;
                }
                Ok((dev_ptr, needs_copy))
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Phase one of an exit: decide the refcount outcome now (in driver
    /// program order) and describe the deferred work. The entry is
    /// removed from the table when the count hits zero — the caller owns
    /// the copy/free described by the returned [`ExitAction`].
    pub fn prepare_exit(&mut self, spec: MapSpec) -> Result<ExitAction, MapError> {
        if spec.len == 0 {
            return Err(MapError::Misuse("zero-length map range"));
        }
        if matches!(spec.kind, MapKind::To | MapKind::Alloc) {
            return Err(MapError::Misuse("to/alloc are enter-only map kinds"));
        }
        let i = self.find(spec.buf, spec.off, spec.len)?;
        let e = &mut self.entries[i];
        if spec.kind == MapKind::Delete {
            e.refs = 1; // force the decrement below to hit zero
        }
        e.refs -= 1;
        if e.refs > 0 {
            return Ok(ExitAction::default());
        }
        let entry = self.entries.remove(i);
        let copy = (matches!(spec.kind, MapKind::From | MapKind::ToFrom)).then(|| {
            self.transfers_from += 1;
            (
                entry.dev_ptr.add_bytes((spec.off - entry.off) as i64),
                spec.off,
                spec.len,
            )
        });
        Ok(ExitAction {
            copy,
            free: Some(entry.dev_ptr),
        })
    }

    /// Immediate-mode enter: [`PresentTable::enter_alloc`] plus the
    /// host→device copy it describes. Returns the device address.
    pub fn enter(
        &mut self,
        spec: MapSpec,
        dev: &mut Device,
        pool: &mut DevicePool,
        host: &[u8],
    ) -> Result<DevPtr, MapStepError> {
        let (ptr, needs_copy) = self.enter_alloc(spec, dev, pool, host.len() as u64)?;
        if needs_copy {
            let bytes = &host[spec.off as usize..(spec.off + spec.len) as usize];
            dev.write_bytes(ptr, bytes).map_err(MapStepError::Exec)?;
        }
        Ok(ptr)
    }

    /// Immediate-mode exit: [`PresentTable::prepare_exit`] plus the copy
    /// and free it describes.
    pub fn exit(
        &mut self,
        spec: MapSpec,
        dev: &mut Device,
        pool: &mut DevicePool,
        host: &mut [u8],
    ) -> Result<(), MapStepError> {
        let action = self.prepare_exit(spec)?;
        if let Some((dev_ptr, host_off, len)) = action.copy {
            let bytes = dev
                .read_bytes(dev_ptr, len as usize)
                .map_err(MapStepError::Exec)?;
            host[host_off as usize..(host_off + len) as usize].copy_from_slice(&bytes);
        }
        if let Some(ptr) = action.free {
            pool.free(ptr);
        }
        Ok(())
    }
}

/// A mapping step fails either as table misuse ([`MapError`]) or as a
/// device-side memcpy trap ([`ExecError`]).
#[derive(Debug)]
pub enum MapStepError {
    Map(MapError),
    Exec(ExecError),
}

impl From<MapError> for MapStepError {
    fn from(e: MapError) -> MapStepError {
        MapStepError::Map(e)
    }
}
