//! Reusing device-memory pool allocator.
//!
//! [`nzomp_vgpu::Device::alloc`] only ever grows device global memory; a
//! host runtime that maps and unmaps buffers per target region would leak
//! the device arena without a pool on top. [`DevicePool`] keeps a free
//! list of released blocks and serves new mappings from it (deterministic
//! best-fit) before falling back to a fresh device allocation.
//!
//! Two properties matter for the bit-identity contract with the direct
//! `Device::alloc` path (see `docs/host-runtime.md`):
//!
//! * A fresh allocation calls `Device::alloc` with the same 8-byte-aligned
//!   size the direct path would, so as long as mapping order matches
//!   allocation order, device addresses are identical.
//! * A **reused** block is zero-filled before it is handed out, because a
//!   fresh `Device::alloc` block is zero-filled by construction — a kernel
//!   that reads its scratch before writing it must see the same bytes on
//!   both paths.

use std::collections::HashMap;

use nzomp_vgpu::memory::DevPtr;
use nzomp_vgpu::{Device, ExecError};

/// A released block available for reuse.
#[derive(Clone, Copy, Debug)]
struct FreeBlock {
    ptr: DevPtr,
    size: u64,
}

/// Pool allocator over one device's global memory.
#[derive(Default)]
pub struct DevicePool {
    /// Free blocks, kept sorted by `(size, offset)` so the best-fit scan
    /// (first block large enough) is deterministic.
    free: Vec<FreeBlock>,
    /// Size of every block currently handed out, keyed by pointer bits.
    live: HashMap<u64, u64>,
    /// Total bytes obtained from `Device::alloc` over the pool's life.
    pub device_bytes: u64,
    /// Fresh `Device::alloc` calls.
    pub device_allocs: u64,
    /// Allocations served from the free list.
    pub reuse_hits: u64,
}

impl DevicePool {
    pub fn new() -> DevicePool {
        DevicePool::default()
    }

    /// Allocate `size` bytes (rounded up to 8) on `dev`, reusing a free
    /// block when one is large enough.
    pub fn alloc(&mut self, dev: &mut Device, size: u64) -> Result<DevPtr, ExecError> {
        let aligned = size.max(1).div_ceil(8) * 8;
        // Best fit: `free` is sorted by size, so the first block that fits
        // is the smallest adequate one.
        if let Some(i) = self.free.iter().position(|b| b.size >= aligned) {
            let block = self.free.remove(i);
            // Reused memory must look like fresh memory (zero-filled).
            dev.write_bytes(block.ptr, &vec![0u8; block.size as usize])?;
            self.live.insert(block.ptr.0, block.size);
            self.reuse_hits += 1;
            return Ok(block.ptr);
        }
        let ptr = dev.alloc(aligned);
        self.device_bytes += aligned;
        self.device_allocs += 1;
        self.live.insert(ptr.0, aligned);
        Ok(ptr)
    }

    /// Return a block to the free list. Unknown pointers are ignored
    /// (freeing is driven by the present table, which only frees what it
    /// allocated; tolerating stray frees keeps this panic-free).
    pub fn free(&mut self, ptr: DevPtr) {
        let Some(size) = self.live.remove(&ptr.0) else {
            return;
        };
        let block = FreeBlock { ptr, size };
        let at = self
            .free
            .partition_point(|b| (b.size, b.ptr.offset()) < (size, ptr.offset()));
        self.free.insert(at, block);
    }

    /// Size of the live block at `ptr`, if the pool handed it out — how
    /// the journal learns the byte count of a `Grow`/`Zero` effect.
    pub fn block_size(&self, ptr: DevPtr) -> Option<u64> {
        self.live.get(&ptr.0).copied()
    }

    /// Bytes currently handed out. Zero once every mapping has been
    /// released — the present-table property test's no-leak invariant.
    pub fn in_use(&self) -> u64 {
        self.live.values().sum()
    }

    /// Bytes parked on the free list, available for reuse.
    pub fn free_bytes(&self) -> u64 {
        self.free.iter().map(|b| b.size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nzomp_ir::Module;
    use nzomp_vgpu::DeviceConfig;

    fn dev() -> Device {
        Device::load(Module::new("pool_test"), DeviceConfig::default())
    }

    #[test]
    fn reuses_freed_blocks_best_fit() {
        let mut d = dev();
        let mut pool = DevicePool::new();
        let a = pool.alloc(&mut d, 64).unwrap();
        let b = pool.alloc(&mut d, 16).unwrap();
        assert_eq!(pool.device_allocs, 2);
        pool.free(a);
        pool.free(b);
        assert_eq!(pool.in_use(), 0);
        // 16 bytes fits both; best fit picks the 16-byte block.
        let c = pool.alloc(&mut d, 16).unwrap();
        assert_eq!(c, b);
        // 40 bytes only fits the 64-byte block.
        let e = pool.alloc(&mut d, 40).unwrap();
        assert_eq!(e, a);
        assert_eq!(pool.reuse_hits, 2);
        assert_eq!(pool.device_allocs, 2, "no new device allocation");
    }

    #[test]
    fn reused_blocks_are_zeroed() {
        let mut d = dev();
        let mut pool = DevicePool::new();
        let a = pool.alloc(&mut d, 32).unwrap();
        d.write_bytes(a, &[0xab; 32]).unwrap();
        pool.free(a);
        let b = pool.alloc(&mut d, 32).unwrap();
        assert_eq!(b, a);
        assert_eq!(d.read_bytes(b, 32).unwrap(), vec![0u8; 32]);
    }
}
