//! Typed, panic-free errors of the offload host runtime.
//!
//! [`HostError`] folds every failure class a host-side offload operation
//! can hit — compile pipeline failures, device traps, mapping-table
//! misuse, and stream-graph problems — into one error the drivers (and
//! the differential harness) can inspect, log, and continue past, in the
//! same spirit as [`nzomp::CompileError`] and [`nzomp_vgpu::ExecError`]
//! (the PR 1 robustness contract).

use std::fmt;

use nzomp::CompileError;
use nzomp_vgpu::{ExecError, TrapKind};

use crate::map::BufId;

/// Why a mapping-table operation was refused.
#[derive(Clone, Debug, PartialEq)]
pub enum MapError {
    /// A new map range partially overlaps an existing present-table entry
    /// (neither contained in it nor disjoint from it) — the libomptarget
    /// "trying to map a partially overlapping buffer" condition.
    PartialOverlap {
        buf: BufId,
        new: (u64, u64),
        existing: (u64, u64),
    },
    /// A `from`/`release`/`delete` (or a launch argument lookup) named a
    /// range with no containing present-table entry.
    NotPresent { buf: BufId, off: u64, len: u64 },
    /// The map range lies outside its host buffer.
    HostRange {
        buf: BufId,
        off: u64,
        len: u64,
        buf_len: u64,
    },
    /// API misuse caught at the call site (zero-length map, an exit-only
    /// map kind passed to `enter`, ...).
    Misuse(&'static str),
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::PartialOverlap { buf, new, existing } => write!(
                f,
                "map range [{}, {}) of buffer {} partially overlaps mapped [{}, {})",
                new.0,
                new.0 + new.1,
                buf.0,
                existing.0,
                existing.0 + existing.1
            ),
            MapError::NotPresent { buf, off, len } => write!(
                f,
                "range [{off}, {}) of buffer {} is not present on the device",
                off + len,
                buf.0
            ),
            MapError::HostRange { buf, off, len, buf_len } => write!(
                f,
                "range [{off}, {}) exceeds buffer {} of {buf_len} bytes",
                off + len,
                buf.0
            ),
            MapError::Misuse(m) => write!(f, "invalid mapping operation: {m}"),
        }
    }
}

impl std::error::Error for MapError {}

/// Why the stream layer refused or aborted.
#[derive(Clone, Debug, PartialEq)]
pub enum StreamError {
    UnknownStream(u32),
    UnknownEvent(u32),
    UnknownTicket(u32),
    /// Every non-empty stream is blocked on an event no stream will ever
    /// record — the dependency graph has a cycle (or a wait on a never-
    /// recorded event).
    Deadlock { blocked_streams: usize },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::UnknownStream(s) => write!(f, "unknown stream {s}"),
            StreamError::UnknownEvent(e) => write!(f, "unknown event {e}"),
            StreamError::UnknownTicket(t) => write!(f, "unknown launch ticket {t}"),
            StreamError::Deadlock { blocked_streams } => write!(
                f,
                "stream drain deadlocked: {blocked_streams} non-empty stream(s) \
                 blocked on events that will never be recorded"
            ),
        }
    }
}

impl std::error::Error for StreamError {}

/// Any failure of the offload host runtime. Never a panic: drivers match
/// on the class and decide whether to retry, skip, or surface.
#[derive(Debug)]
pub enum HostError {
    /// The compile pipeline refused the application module.
    Compile(CompileError),
    /// A device trap during a launch (or a host-side memcpy out of
    /// bounds) — the launch's ticket also records it.
    Exec(ExecError),
    /// Present-table / mapping misuse.
    Map(MapError),
    /// Stream-graph misuse or deadlock.
    Stream(StreamError),
    /// A device index outside the registered fleet.
    NoDevice { device: usize, devices: usize },
    /// An image id that was never produced by `load_image`.
    UnknownImage(u32),
    /// A launch argument named a host buffer id that was never registered.
    UnknownBuffer(u32),
    /// The host launch watchdog fired: the kernel made no progress within
    /// `fuel` modeled steps. Transient by classification — a stall can be
    /// contention, so the recovery policy retries before surfacing.
    Watchdog { kernel: String, fuel: u64 },
    /// Every device in the fleet has been lost and quarantined; there is
    /// nothing left to fail over to. The typed terminal outcome of
    /// graceful degradation — never a panic.
    FleetLost { devices: usize },
    /// Journal replay on a replacement device diverged from the recorded
    /// history (an internal recovery invariant broke). Carries a
    /// diagnostic; always a program error, never retried.
    Replay(String),
}

/// Coarse failure classes the recovery layer dispatches on — the
/// classification promised by the [`HostError`] doc above.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorClass {
    /// Worth retrying on the same device after backoff: transient memcpy
    /// faults, stalled launches, watchdog trips.
    Transient,
    /// The device is gone; retrying on it is pointless. Fail over to a
    /// replacement (or surface `FleetLost` when none remains).
    Permanent,
    /// The program (or the host API caller) is wrong: compile errors,
    /// genuine kernel traps, mapping misuse. Retrying would reproduce the
    /// identical failure — surface immediately.
    Program,
}

impl HostError {
    /// Classify for the recovery policy: retry ([`ErrorClass::Transient`]),
    /// fail over ([`ErrorClass::Permanent`]), or surface
    /// ([`ErrorClass::Program`]).
    pub fn class(&self) -> ErrorClass {
        match self {
            HostError::Exec(e) => match e.kind {
                TrapKind::DeviceLost => ErrorClass::Permanent,
                TrapKind::MemcpyFault | TrapKind::Stalled { .. } => ErrorClass::Transient,
                _ => ErrorClass::Program,
            },
            HostError::Watchdog { .. } => ErrorClass::Transient,
            HostError::FleetLost { .. } => ErrorClass::Permanent,
            HostError::Compile(_)
            | HostError::Map(_)
            | HostError::Stream(_)
            | HostError::NoDevice { .. }
            | HostError::UnknownImage(_)
            | HostError::UnknownBuffer(_)
            | HostError::Replay(_) => ErrorClass::Program,
        }
    }

    /// Whether a retry of the same operation can possibly succeed
    /// (on the same device for [`ErrorClass::Transient`], on a
    /// replacement for [`ErrorClass::Permanent`] device loss).
    pub fn is_retryable(&self) -> bool {
        match self.class() {
            ErrorClass::Transient => true,
            // Device loss is recoverable by failover; fleet exhaustion is
            // not — there is no device left to retry on.
            ErrorClass::Permanent => !matches!(self, HostError::FleetLost { .. }),
            ErrorClass::Program => false,
        }
    }
}

impl fmt::Display for HostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostError::Compile(e) => write!(f, "offload compile failed: {e}"),
            HostError::Exec(e) => write!(f, "offload launch trapped: {e}"),
            HostError::Map(e) => write!(f, "offload mapping failed: {e}"),
            HostError::Stream(e) => write!(f, "offload stream failed: {e}"),
            HostError::NoDevice { device, devices } => {
                write!(f, "device {device} out of range ({devices} registered)")
            }
            HostError::UnknownImage(i) => write!(f, "unknown kernel image {i}"),
            HostError::UnknownBuffer(b) => write!(f, "unknown host buffer {b}"),
            HostError::Watchdog { kernel, fuel } => write!(
                f,
                "watchdog: kernel @{kernel} made no progress within {fuel} steps"
            ),
            HostError::FleetLost { devices } => {
                write!(f, "all {devices} device(s) lost; offload fleet exhausted")
            }
            HostError::Replay(m) => write!(f, "recovery replay diverged: {m}"),
        }
    }
}

impl From<CompileError> for HostError {
    fn from(e: CompileError) -> HostError {
        HostError::Compile(e)
    }
}

impl From<ExecError> for HostError {
    fn from(e: ExecError) -> HostError {
        HostError::Exec(e)
    }
}

impl From<MapError> for HostError {
    fn from(e: MapError) -> HostError {
        HostError::Map(e)
    }
}

impl From<StreamError> for HostError {
    fn from(e: StreamError) -> HostError {
        HostError::Stream(e)
    }
}

impl std::error::Error for HostError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec(kind: TrapKind) -> HostError {
        HostError::Exec(ExecError {
            kind,
            team: 0,
            thread: 0,
            func: "k".into(),
        })
    }

    /// Every `HostError` variant (and every `TrapKind` under `Exec`)
    /// lands in exactly the class the recovery policy expects. This is
    /// the exhaustive contract test for the "drivers match on the class"
    /// promise of the `HostError` doc.
    #[test]
    fn every_variant_classifies_as_documented() {
        use ErrorClass::*;

        // Transient: the retry-worthy device hiccups.
        for e in [
            exec(TrapKind::MemcpyFault),
            exec(TrapKind::Stalled { fuel: 100 }),
            HostError::Watchdog { kernel: "k".into(), fuel: 100 },
        ] {
            assert_eq!(e.class(), Transient, "{e}");
            assert!(e.is_retryable(), "{e}");
        }

        // Permanent: device gone (retryable by failover), fleet gone
        // (terminal).
        let lost = exec(TrapKind::DeviceLost);
        assert_eq!(lost.class(), Permanent);
        assert!(lost.is_retryable(), "device loss recovers via failover");
        let fleet = HostError::FleetLost { devices: 4 };
        assert_eq!(fleet.class(), Permanent);
        assert!(!fleet.is_retryable(), "nothing left to fail over to");

        // Program: genuine kernel traps — retrying reproduces them.
        for kind in [
            TrapKind::OutOfBounds,
            TrapKind::NullDeref,
            TrapKind::CrossThreadLocalAccess { owner: 0, accessor: 1 },
            TrapKind::BadIndirectCall,
            TrapKind::UnresolvedCall("f".into()),
            TrapKind::AssumeViolated,
            TrapKind::AssertFail,
            TrapKind::BarrierDeadlock,
            TrapKind::FuelExhausted,
            TrapKind::DivByZero,
            TrapKind::OutOfMemory,
            TrapKind::BadFree,
            TrapKind::BadLaunch("m".into()),
            TrapKind::MalformedIr("m".into()),
            TrapKind::SanitizerViolation { races: 1, divergences: 0 },
        ] {
            let e = exec(kind);
            assert_eq!(e.class(), Program, "{e}");
            assert!(!e.is_retryable(), "{e}");
        }

        // Program: host-side misuse and pipeline failures.
        for e in [
            HostError::Map(MapError::Misuse("zero-length map")),
            HostError::Stream(StreamError::UnknownStream(7)),
            HostError::Stream(StreamError::Deadlock { blocked_streams: 2 }),
            HostError::NoDevice { device: 9, devices: 2 },
            HostError::UnknownImage(3),
            HostError::UnknownBuffer(5),
            HostError::Replay("ptr mismatch".into()),
        ] {
            assert_eq!(e.class(), Program, "{e}");
            assert!(!e.is_retryable(), "{e}");
        }
    }

    #[test]
    fn new_variants_display() {
        let w = HostError::Watchdog { kernel: "spmv".into(), fuel: 4096 };
        assert_eq!(
            w.to_string(),
            "watchdog: kernel @spmv made no progress within 4096 steps"
        );
        let fl = HostError::FleetLost { devices: 4 };
        assert_eq!(fl.to_string(), "all 4 device(s) lost; offload fleet exhausted");
        let r = HostError::Replay("grow returned 0x40, journal says 0x80".into());
        assert_eq!(
            r.to_string(),
            "recovery replay diverged: grow returned 0x40, journal says 0x80"
        );
    }
}
