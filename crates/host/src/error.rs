//! Typed, panic-free errors of the offload host runtime.
//!
//! [`HostError`] folds every failure class a host-side offload operation
//! can hit — compile pipeline failures, device traps, mapping-table
//! misuse, and stream-graph problems — into one error the drivers (and
//! the differential harness) can inspect, log, and continue past, in the
//! same spirit as [`nzomp::CompileError`] and [`nzomp_vgpu::ExecError`]
//! (the PR 1 robustness contract).

use std::fmt;

use nzomp::CompileError;
use nzomp_vgpu::ExecError;

use crate::map::BufId;

/// Why a mapping-table operation was refused.
#[derive(Clone, Debug, PartialEq)]
pub enum MapError {
    /// A new map range partially overlaps an existing present-table entry
    /// (neither contained in it nor disjoint from it) — the libomptarget
    /// "trying to map a partially overlapping buffer" condition.
    PartialOverlap {
        buf: BufId,
        new: (u64, u64),
        existing: (u64, u64),
    },
    /// A `from`/`release`/`delete` (or a launch argument lookup) named a
    /// range with no containing present-table entry.
    NotPresent { buf: BufId, off: u64, len: u64 },
    /// The map range lies outside its host buffer.
    HostRange {
        buf: BufId,
        off: u64,
        len: u64,
        buf_len: u64,
    },
    /// API misuse caught at the call site (zero-length map, an exit-only
    /// map kind passed to `enter`, ...).
    Misuse(&'static str),
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::PartialOverlap { buf, new, existing } => write!(
                f,
                "map range [{}, {}) of buffer {} partially overlaps mapped [{}, {})",
                new.0,
                new.0 + new.1,
                buf.0,
                existing.0,
                existing.0 + existing.1
            ),
            MapError::NotPresent { buf, off, len } => write!(
                f,
                "range [{off}, {}) of buffer {} is not present on the device",
                off + len,
                buf.0
            ),
            MapError::HostRange { buf, off, len, buf_len } => write!(
                f,
                "range [{off}, {}) exceeds buffer {} of {buf_len} bytes",
                off + len,
                buf.0
            ),
            MapError::Misuse(m) => write!(f, "invalid mapping operation: {m}"),
        }
    }
}

impl std::error::Error for MapError {}

/// Why the stream layer refused or aborted.
#[derive(Clone, Debug, PartialEq)]
pub enum StreamError {
    UnknownStream(u32),
    UnknownEvent(u32),
    UnknownTicket(u32),
    /// Every non-empty stream is blocked on an event no stream will ever
    /// record — the dependency graph has a cycle (or a wait on a never-
    /// recorded event).
    Deadlock { blocked_streams: usize },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::UnknownStream(s) => write!(f, "unknown stream {s}"),
            StreamError::UnknownEvent(e) => write!(f, "unknown event {e}"),
            StreamError::UnknownTicket(t) => write!(f, "unknown launch ticket {t}"),
            StreamError::Deadlock { blocked_streams } => write!(
                f,
                "stream drain deadlocked: {blocked_streams} non-empty stream(s) \
                 blocked on events that will never be recorded"
            ),
        }
    }
}

impl std::error::Error for StreamError {}

/// Any failure of the offload host runtime. Never a panic: drivers match
/// on the class and decide whether to retry, skip, or surface.
#[derive(Debug)]
pub enum HostError {
    /// The compile pipeline refused the application module.
    Compile(CompileError),
    /// A device trap during a launch (or a host-side memcpy out of
    /// bounds) — the launch's ticket also records it.
    Exec(ExecError),
    /// Present-table / mapping misuse.
    Map(MapError),
    /// Stream-graph misuse or deadlock.
    Stream(StreamError),
    /// A device index outside the registered fleet.
    NoDevice { device: usize, devices: usize },
    /// An image id that was never produced by `load_image`.
    UnknownImage(u32),
    /// A launch argument named a host buffer id that was never registered.
    UnknownBuffer(u32),
}

impl fmt::Display for HostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostError::Compile(e) => write!(f, "offload compile failed: {e}"),
            HostError::Exec(e) => write!(f, "offload launch trapped: {e}"),
            HostError::Map(e) => write!(f, "offload mapping failed: {e}"),
            HostError::Stream(e) => write!(f, "offload stream failed: {e}"),
            HostError::NoDevice { device, devices } => {
                write!(f, "device {device} out of range ({devices} registered)")
            }
            HostError::UnknownImage(i) => write!(f, "unknown kernel image {i}"),
            HostError::UnknownBuffer(b) => write!(f, "unknown host buffer {b}"),
        }
    }
}

impl From<CompileError> for HostError {
    fn from(e: CompileError) -> HostError {
        HostError::Compile(e)
    }
}

impl From<ExecError> for HostError {
    fn from(e: ExecError) -> HostError {
        HostError::Exec(e)
    }
}

impl From<MapError> for HostError {
    fn from(e: MapError) -> HostError {
        HostError::Map(e)
    }
}

impl From<StreamError> for HostError {
    fn from(e: StreamError) -> HostError {
        HostError::Stream(e)
    }
}

impl std::error::Error for HostError {}
