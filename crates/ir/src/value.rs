//! SSA operands.

use crate::func::BlockId;
use crate::global::GlobalId;
use crate::inst::InstId;
use crate::types::Ty;

/// A use of an SSA value: either the result of an instruction, a function
/// parameter, or an immediate constant. `Operand` is `Copy` so rewriting
/// passes can freely replace uses.
///
/// Equality is *bitwise* for float constants (`NaN == NaN`,
/// `0.0 != -0.0`): the printer/parser round-trip contract
/// (`parse(print(m)) == m`, see `docs/ir-format.md`) needs module equality
/// to be an equivalence relation over every representable constant, which
/// IEEE `==` is not.
#[derive(Clone, Copy, Debug)]
pub enum Operand {
    /// Result of instruction `InstId` in the same function.
    Inst(InstId),
    /// The `n`-th parameter of the enclosing function.
    Param(u32),
    /// Integer constant of the given type (value stored sign-extended).
    ConstI(i64, Ty),
    /// Floating-point constant.
    ConstF(f64),
    /// Address of a module global.
    Global(GlobalId),
    /// Address of a function (for indirect calls / outlined parallel bodies).
    Func(crate::module::FuncRef),
}

impl PartialEq for Operand {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Operand::Inst(a), Operand::Inst(b)) => a == b,
            (Operand::Param(a), Operand::Param(b)) => a == b,
            (Operand::ConstI(a, at), Operand::ConstI(b, bt)) => a == b && at == bt,
            // Bitwise: distinguishes -0.0 from 0.0 and makes NaN reflexive.
            (Operand::ConstF(a), Operand::ConstF(b)) => a.to_bits() == b.to_bits(),
            (Operand::Global(a), Operand::Global(b)) => a == b,
            (Operand::Func(a), Operand::Func(b)) => a == b,
            _ => false,
        }
    }
}

impl Operand {
    /// Null pointer constant.
    pub const NULL: Operand = Operand::ConstI(0, Ty::Ptr);

    /// `true` constant.
    pub const TRUE: Operand = Operand::ConstI(1, Ty::I1);

    /// `false` constant.
    pub const FALSE: Operand = Operand::ConstI(0, Ty::I1);

    pub fn i64(v: i64) -> Operand {
        Operand::ConstI(v, Ty::I64)
    }

    pub fn i32(v: i32) -> Operand {
        Operand::ConstI(v as i64, Ty::I32)
    }

    pub fn f64(v: f64) -> Operand {
        Operand::ConstF(v)
    }

    pub fn bool_(v: bool) -> Operand {
        Operand::ConstI(v as i64, Ty::I1)
    }

    /// Returns the integer value if this is an integer constant.
    pub fn as_const_int(&self) -> Option<i64> {
        match self {
            Operand::ConstI(v, _) => Some(*v),
            _ => None,
        }
    }

    /// Returns the float value if this is a float constant.
    pub fn as_const_f64(&self) -> Option<f64> {
        match self {
            Operand::ConstF(v) => Some(*v),
            _ => None,
        }
    }

    /// Is this any kind of constant (including globals/function addresses,
    /// which are link-time constants)?
    pub fn is_constant(&self) -> bool {
        !matches!(self, Operand::Inst(_) | Operand::Param(_))
    }
}

/// An incoming edge of a phi node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhiIncoming {
    pub pred: BlockId,
    pub value: Operand,
}
