//! Modules: functions + globals + kernel entry points.

use std::collections::HashMap;

use crate::func::{Function, Linkage};
use crate::global::{Global, GlobalId};
use crate::types::Space;

/// Dense index of a function within its module.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncRef(pub u32);

impl FuncRef {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Kernel execution mode (paper §II-C). Generic-mode kernels run the
/// fork-join state machine; SPMD kernels start all threads in parallel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    Generic,
    Spmd,
}

/// Grid shape a kernel is launched with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaunchDims {
    pub teams: u32,
    pub threads_per_team: u32,
}

/// Kernel entry-point metadata (mirrors the named-symbol + exec-mode pair
/// the LLVM offload plugin loads, §II-B).
#[derive(Clone, Debug, PartialEq)]
pub struct Kernel {
    pub func: FuncRef,
    pub exec_mode: ExecMode,
}

/// A translation unit / linked binary image.
///
/// `PartialEq` is structural, and deliberately so: the printer/parser
/// round-trip property (`parse(print(m)) == m`) is checked against it.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Module {
    pub name: String,
    pub funcs: Vec<Function>,
    pub globals: Vec<Global>,
    pub kernels: Vec<Kernel>,
}

impl Module {
    pub fn new(name: impl Into<String>) -> Module {
        Module {
            name: name.into(),
            ..Module::default()
        }
    }

    pub fn add_function(&mut self, f: Function) -> FuncRef {
        self.funcs.push(f);
        FuncRef((self.funcs.len() - 1) as u32)
    }

    pub fn add_global(&mut self, g: Global) -> GlobalId {
        self.globals.push(g);
        GlobalId((self.globals.len() - 1) as u32)
    }

    pub fn add_kernel(&mut self, func: FuncRef, exec_mode: ExecMode) {
        self.kernels.push(Kernel { func, exec_mode });
    }

    pub fn func(&self, r: FuncRef) -> &Function {
        &self.funcs[r.index()]
    }

    pub fn func_mut(&mut self, r: FuncRef) -> &mut Function {
        &mut self.funcs[r.index()]
    }

    pub fn global(&self, g: GlobalId) -> &Global {
        &self.globals[g.index()]
    }

    pub fn global_mut(&mut self, g: GlobalId) -> &mut Global {
        &mut self.globals[g.index()]
    }

    pub fn find_func(&self, name: &str) -> Option<FuncRef> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncRef(i as u32))
    }

    pub fn find_global(&self, name: &str) -> Option<GlobalId> {
        self.globals
            .iter()
            .position(|g| g.name == name)
            .map(|i| GlobalId(i as u32))
    }

    /// The kernel entry for `func`, if it is one.
    pub fn kernel_of(&self, func: FuncRef) -> Option<&Kernel> {
        self.kernels.iter().find(|k| k.func == func)
    }

    pub fn set_exec_mode(&mut self, func: FuncRef, mode: ExecMode) {
        if let Some(k) = self.kernels.iter_mut().find(|k| k.func == func) {
            k.exec_mode = mode;
        }
    }

    /// Map of function name -> ref (for linking and call resolution).
    pub fn func_names(&self) -> HashMap<&str, FuncRef> {
        self.funcs
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.as_str(), FuncRef(i as u32)))
            .collect()
    }

    /// Total bytes of shared-space globals: the static shared-memory
    /// footprint ("SMem" in Fig. 11) before the launcher adds dynamic
    /// shared memory.
    pub fn shared_memory_bytes(&self) -> u64 {
        self.globals
            .iter()
            .filter(|g| g.space == Space::Shared)
            .map(|g| g.size)
            .sum()
    }

    /// Total live instruction count across all function bodies.
    pub fn live_inst_count(&self) -> usize {
        self.funcs.iter().map(|f| f.live_inst_count()).sum()
    }

    /// Are all function bodies in normal form (dense instruction arenas in
    /// block order)? See [`Function::is_normalized`].
    pub fn is_normalized(&self) -> bool {
        self.funcs.iter().all(Function::is_normalized)
    }

    /// Renumber every function into normal form ([`Function::renumber`]).
    /// After this, `parse(print(m)) == m` holds *exactly* — the round-trip
    /// contract of the versioned text format (`docs/ir-format.md`).
    /// Returns whether any function changed.
    pub fn renumber(&mut self) -> bool {
        let mut changed = false;
        for f in &mut self.funcs {
            changed |= f.renumber();
        }
        changed
    }

    /// Mark every non-kernel definition internal (paper §IV-A1 performs
    /// aggressive internalization; we model the effect directly since the
    /// whole image is one module after linking). Returns whether any
    /// linkage actually changed.
    pub fn internalize(&mut self) -> bool {
        let kernel_funcs: Vec<FuncRef> = self.kernels.iter().map(|k| k.func).collect();
        let mut changed = false;
        for (i, f) in self.funcs.iter_mut().enumerate() {
            if !kernel_funcs.contains(&FuncRef(i as u32))
                && !f.is_declaration()
                && f.linkage != Linkage::Internal
            {
                f.linkage = Linkage::Internal;
                changed = true;
            }
        }
        for g in &mut self.globals {
            if g.linkage != Linkage::Internal {
                g.linkage = Linkage::Internal;
                changed = true;
            }
        }
        changed
    }
}
