//! Functions and basic blocks.

use crate::inst::{Inst, InstId, Term};
use crate::types::Ty;
use crate::value::Operand;

/// Dense index of a basic block within its function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl BlockId {
    pub const ENTRY: BlockId = BlockId(0);

    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A basic block: instruction list plus mandatory terminator.
#[derive(Clone, Debug, PartialEq)]
pub struct Block {
    pub insts: Vec<InstId>,
    pub term: Term,
}

impl Block {
    pub fn new() -> Block {
        Block {
            insts: Vec::new(),
            term: Term::Unreachable,
        }
    }
}

impl Default for Block {
    fn default() -> Self {
        Self::new()
    }
}

/// Symbol linkage. `Internal` functions may be freely specialized and
/// removed; `External` ones must be preserved unless internalized first
/// (paper §IV-A1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Linkage {
    Internal,
    External,
}

/// Function attributes. These carry the OpenMP 5.1 `assumes` extensions the
/// paper attaches to runtime code (Fig. 6), plus inlining control.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FnAttrs {
    /// `ext_aligned_barrier`: every barrier this function executes is
    /// aligned, i.e. reached by all threads of the team together.
    pub aligned_barrier: bool,
    /// `ext_no_call_asm`: the function will not transfer execution to
    /// another (unknown) function.
    pub no_call_asm: bool,
    /// Inliner must inline every call site of this function.
    pub always_inline: bool,
    /// Inliner must not inline this function.
    pub no_inline: bool,
    /// Function does not access memory visible to other threads (pure up to
    /// local state). Used for runtime helpers like id computations.
    pub read_none: bool,
}

/// A function: parameter types, optional return, block/instruction arenas.
#[derive(Clone, Debug, PartialEq)]
pub struct Function {
    pub name: String,
    pub params: Vec<Ty>,
    pub ret: Option<Ty>,
    /// Block 0 is the entry. Blocks may become unreachable after
    /// transformations; `analysis::cfg` recomputes reachability on demand.
    pub blocks: Vec<Block>,
    /// Instruction arena; blocks refer into it by [`InstId`]. Dead entries
    /// are tolerated (they are skipped because no block lists them).
    pub insts: Vec<Inst>,
    pub attrs: FnAttrs,
    pub linkage: Linkage,
}

impl Function {
    /// Create a declaration (no body) — resolved at link time.
    pub fn declaration(name: impl Into<String>, params: Vec<Ty>, ret: Option<Ty>) -> Function {
        Function {
            name: name.into(),
            params,
            ret,
            blocks: Vec::new(),
            insts: Vec::new(),
            attrs: FnAttrs::default(),
            linkage: Linkage::External,
        }
    }

    pub fn is_declaration(&self) -> bool {
        self.blocks.is_empty()
    }

    pub fn inst(&self, id: InstId) -> &Inst {
        &self.insts[id.index()]
    }

    pub fn inst_mut(&mut self, id: InstId) -> &mut Inst {
        &mut self.insts[id.index()]
    }

    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Append a fresh empty block and return its id.
    pub fn add_block(&mut self) -> BlockId {
        self.blocks.push(Block::new());
        BlockId((self.blocks.len() - 1) as u32)
    }

    /// Append an instruction to the arena (not to any block).
    pub fn add_inst(&mut self, inst: Inst) -> InstId {
        self.insts.push(inst);
        InstId((self.insts.len() - 1) as u32)
    }

    /// Iterate `(BlockId, &Block)` in index order.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// All block ids in index order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Number of instructions currently listed in blocks (live code size).
    pub fn live_inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Is the instruction arena in *normal form*: exactly the live
    /// instructions, stored in block-traversal order? Normal form is what
    /// the textual format can represent losslessly — the parser produces
    /// it, and `parse(print(f)) == f` holds exactly iff `f` is normalized
    /// (see [`Function::renumber`] and `docs/ir-format.md`).
    pub fn is_normalized(&self) -> bool {
        let mut next = 0u32;
        for b in &self.blocks {
            for &iid in &b.insts {
                if iid.0 != next {
                    return false;
                }
                next += 1;
            }
        }
        next as usize == self.insts.len()
    }

    /// Rewrite the instruction arena into normal form: dense ids in
    /// block-traversal order, dead (unlisted) entries dropped, every
    /// operand remapped. Returns whether anything changed. Transformation
    /// passes leave holes and out-of-order entries behind; renumbering is
    /// how a module becomes exactly representable in the text format.
    pub fn renumber(&mut self) -> bool {
        if self.is_normalized() {
            return false;
        }
        let mut order: Vec<InstId> = Vec::with_capacity(self.insts.len());
        for b in &self.blocks {
            order.extend_from_slice(&b.insts);
        }
        let mut map: Vec<Option<InstId>> = vec![None; self.insts.len()];
        for (new, old) in order.iter().enumerate() {
            map[old.index()] = Some(InstId(new as u32));
        }
        // A malformed module may reference an unlisted (dead) instruction;
        // leave such operands unchanged rather than abort — the verifier is
        // the place that reports them.
        let remap = |op: Operand| -> Operand {
            match op {
                Operand::Inst(i) => match map.get(i.index()).copied().flatten() {
                    Some(n) => Operand::Inst(n),
                    None => op,
                },
                other => other,
            }
        };
        let mut insts: Vec<Inst> = Vec::with_capacity(order.len());
        for old in &order {
            let mut inst = self.insts[old.index()].clone();
            inst.map_operands(remap);
            insts.push(inst);
        }
        let mut next = 0u32;
        for b in &mut self.blocks {
            for iid in &mut b.insts {
                *iid = InstId(next);
                next += 1;
            }
            b.term.map_operands(remap);
        }
        self.insts = insts;
        true
    }
}
