//! Analysis manager: epoch-keyed caching of per-function analyses (CFG
//! predecessors, dominators, liveness) and module-level ones (call graph),
//! with a `PreservedAnalyses`-style invalidation API — the mini version of
//! LLVM's new-pass-manager `AnalysisManager` that the paper's `openmp-opt`
//! lives in.
//!
//! Each function carries a modification *epoch*; cached results are stamped
//! with the epoch they were computed at and hit only while the stamps match.
//! After a pass runs, [`AnalysisManager::invalidate`] bumps the epochs of
//! the functions the pass touched and either drops cached results or — for
//! analyses the pass declared preserved — re-stamps them to the new epoch.
//! A pass that only deletes barriers therefore keeps dominators cached.
//!
//! Function indices must stay stable for the lifetime of the cache (the
//! optimizer's `global_dce` strips bodies in place and never reorders
//! `Module::funcs`, so they do).

use std::rc::Rc;

use crate::analysis::callgraph::CallGraph;
use crate::analysis::dom::DomTree;
use crate::analysis::liveness::{self, Liveness};
use crate::analysis::cfg;
use crate::func::BlockId;
use crate::module::Module;

/// The analyses the manager knows how to cache and invalidate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnalysisKind {
    /// CFG predecessor lists.
    Cfg,
    /// Dominator tree.
    Dominators,
    /// SSA liveness / register-pressure estimate.
    Liveness,
    /// Module-level call graph.
    CallGraph,
}

impl AnalysisKind {
    pub const ALL: [AnalysisKind; 4] = [
        AnalysisKind::Cfg,
        AnalysisKind::Dominators,
        AnalysisKind::Liveness,
        AnalysisKind::CallGraph,
    ];

    fn bit(self) -> u8 {
        match self {
            AnalysisKind::Cfg => 1 << 0,
            AnalysisKind::Dominators => 1 << 1,
            AnalysisKind::Liveness => 1 << 2,
            AnalysisKind::CallGraph => 1 << 3,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            AnalysisKind::Cfg => "cfg",
            AnalysisKind::Dominators => "dominators",
            AnalysisKind::Liveness => "liveness",
            AnalysisKind::CallGraph => "callgraph",
        }
    }
}

/// What a pass promises it left intact — the LLVM `PreservedAnalyses`
/// analogue. Preservation applies to the functions the pass *touched*;
/// untouched functions keep their caches regardless.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PreservedAnalyses {
    mask: u8,
}

impl PreservedAnalyses {
    /// The pass changed nothing the caches care about.
    pub fn all() -> PreservedAnalyses {
        PreservedAnalyses { mask: u8::MAX }
    }

    /// The pass may have invalidated everything (the conservative default).
    pub fn none() -> PreservedAnalyses {
        PreservedAnalyses { mask: 0 }
    }

    /// Mark one analysis as preserved (builder-style).
    pub fn preserve(mut self, kind: AnalysisKind) -> PreservedAnalyses {
        self.mask |= kind.bit();
        self
    }

    pub fn preserves(&self, kind: AnalysisKind) -> bool {
        self.mask & kind.bit() != 0
    }
}

/// Which functions a pass mutated, for targeted invalidation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Touched {
    /// The pass changed nothing (all caches survive untouched).
    None,
    /// Only these function indices changed.
    Funcs(Vec<u32>),
    /// Assume every function changed (the conservative default).
    All,
}

/// Hit/miss counters per analysis kind, for compile-time observability.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: [u64; 4],
    pub misses: [u64; 4],
}

impl CacheStats {
    pub fn hits_of(&self, kind: AnalysisKind) -> u64 {
        self.hits[kind_index(kind)]
    }

    pub fn misses_of(&self, kind: AnalysisKind) -> u64 {
        self.misses[kind_index(kind)]
    }

    pub fn total_hits(&self) -> u64 {
        self.hits.iter().sum()
    }

    pub fn total_misses(&self) -> u64 {
        self.misses.iter().sum()
    }

    /// Overall hit rate in [0, 1]; `None` before any query.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.total_hits() + self.total_misses();
        (total > 0).then(|| self.total_hits() as f64 / total as f64)
    }
}

fn kind_index(kind: AnalysisKind) -> usize {
    match kind {
        AnalysisKind::Cfg => 0,
        AnalysisKind::Dominators => 1,
        AnalysisKind::Liveness => 2,
        AnalysisKind::CallGraph => 3,
    }
}

/// One cached per-function result, stamped with the epoch it was computed at.
struct Cached<T> {
    epoch: u64,
    value: Rc<T>,
}

/// The manager. Create one per `optimize_module` run and thread it through
/// every pass; query analyses lazily via the getters.
#[derive(Default)]
pub struct AnalysisManager {
    /// Per-function modification epoch (bumped on invalidation).
    func_epoch: Vec<u64>,
    /// Module-level epoch (any function change bumps it — the call graph
    /// depends on every body).
    module_epoch: u64,
    preds: Vec<Option<Cached<Vec<Vec<BlockId>>>>>,
    doms: Vec<Option<Cached<DomTree>>>,
    live: Vec<Option<Cached<Liveness>>>,
    callgraph: Option<Cached<CallGraph>>,
    stats: CacheStats,
    /// When false every query recomputes (for measuring the cache win).
    caching: bool,
}

impl AnalysisManager {
    pub fn new() -> AnalysisManager {
        AnalysisManager {
            caching: true,
            ..AnalysisManager::default()
        }
    }

    /// Disable/enable caching (stats still collected); used by the compile
    /// profiler to measure the speedup caching buys.
    pub fn set_caching(&mut self, on: bool) {
        self.caching = on;
        if !on {
            self.preds.iter_mut().for_each(|c| *c = None);
            self.doms.iter_mut().for_each(|c| *c = None);
            self.live.iter_mut().for_each(|c| *c = None);
            self.callgraph = None;
        }
    }

    pub fn caching_enabled(&self) -> bool {
        self.caching
    }

    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Current epoch of function `f` (test/diagnostic hook).
    pub fn epoch_of(&mut self, m: &Module, f: u32) -> u64 {
        self.ensure(m);
        self.func_epoch[f as usize]
    }

    /// Grow the per-function tables to the module's function count (new
    /// functions start at epoch 0 with empty caches).
    fn ensure(&mut self, m: &Module) {
        let n = m.funcs.len();
        if self.func_epoch.len() < n {
            self.func_epoch.resize(n, 0);
            self.preds.resize_with(n, || None);
            self.doms.resize_with(n, || None);
            self.live.resize_with(n, || None);
        }
    }

    /// CFG predecessor lists of function `f` (cached).
    pub fn predecessors(&mut self, m: &Module, f: u32) -> Rc<Vec<Vec<BlockId>>> {
        self.ensure(m);
        let epoch = self.func_epoch[f as usize];
        let slot = &mut self.preds[f as usize];
        if let Some(c) = slot {
            if c.epoch == epoch {
                self.stats.hits[kind_index(AnalysisKind::Cfg)] += 1;
                return Rc::clone(&c.value);
            }
        }
        self.stats.misses[kind_index(AnalysisKind::Cfg)] += 1;
        let value = Rc::new(cfg::predecessors(&m.funcs[f as usize]));
        if self.caching {
            *slot = Some(Cached { epoch, value: Rc::clone(&value) });
        }
        value
    }

    /// Dominator tree of function `f` (cached).
    pub fn dominators(&mut self, m: &Module, f: u32) -> Rc<DomTree> {
        self.ensure(m);
        let epoch = self.func_epoch[f as usize];
        let slot = &mut self.doms[f as usize];
        if let Some(c) = slot {
            if c.epoch == epoch {
                self.stats.hits[kind_index(AnalysisKind::Dominators)] += 1;
                return Rc::clone(&c.value);
            }
        }
        self.stats.misses[kind_index(AnalysisKind::Dominators)] += 1;
        let value = Rc::new(DomTree::compute(&m.funcs[f as usize]));
        if self.caching {
            *slot = Some(Cached { epoch, value: Rc::clone(&value) });
        }
        value
    }

    /// Liveness of function `f` (cached).
    pub fn liveness(&mut self, m: &Module, f: u32) -> Rc<Liveness> {
        self.ensure(m);
        let epoch = self.func_epoch[f as usize];
        let slot = &mut self.live[f as usize];
        if let Some(c) = slot {
            if c.epoch == epoch {
                self.stats.hits[kind_index(AnalysisKind::Liveness)] += 1;
                return Rc::clone(&c.value);
            }
        }
        self.stats.misses[kind_index(AnalysisKind::Liveness)] += 1;
        let value = Rc::new(liveness::compute(&m.funcs[f as usize]));
        if self.caching {
            *slot = Some(Cached { epoch, value: Rc::clone(&value) });
        }
        value
    }

    /// Module call graph (cached at module granularity).
    pub fn callgraph(&mut self, m: &Module) -> Rc<CallGraph> {
        self.ensure(m);
        if let Some(c) = &self.callgraph {
            if c.epoch == self.module_epoch {
                self.stats.hits[kind_index(AnalysisKind::CallGraph)] += 1;
                return Rc::clone(&c.value);
            }
        }
        self.stats.misses[kind_index(AnalysisKind::CallGraph)] += 1;
        let value = Rc::new(CallGraph::build(m));
        if self.caching {
            self.callgraph = Some(Cached {
                epoch: self.module_epoch,
                value: Rc::clone(&value),
            });
        }
        value
    }

    /// Record that a pass mutated `touched` functions while preserving the
    /// analyses in `preserved`: bump the touched functions' epochs, drop
    /// their non-preserved caches, and re-stamp preserved ones so they keep
    /// hitting at the new epoch.
    pub fn invalidate(&mut self, m: &Module, touched: &Touched, preserved: &PreservedAnalyses) {
        self.ensure(m);
        let idxs: Vec<usize> = match touched {
            Touched::None => return,
            Touched::Funcs(fs) => fs.iter().map(|&f| f as usize).collect(),
            Touched::All => (0..self.func_epoch.len()).collect(),
        };
        for &i in &idxs {
            if i >= self.func_epoch.len() {
                continue;
            }
            self.func_epoch[i] += 1;
            let epoch = self.func_epoch[i];
            restamp(&mut self.preds[i], epoch, preserved.preserves(AnalysisKind::Cfg));
            restamp(&mut self.doms[i], epoch, preserved.preserves(AnalysisKind::Dominators));
            restamp(&mut self.live[i], epoch, preserved.preserves(AnalysisKind::Liveness));
        }
        // Any body change invalidates the module-level view unless the pass
        // promised the call structure survived.
        self.module_epoch += 1;
        restamp(
            &mut self.callgraph,
            self.module_epoch,
            preserved.preserves(AnalysisKind::CallGraph),
        );
    }
}

/// Keep a cached entry alive at `epoch` when preserved, drop it otherwise.
fn restamp<T>(slot: &mut Option<Cached<T>>, epoch: u64, preserved: bool) {
    match slot {
        Some(c) if preserved => c.epoch = epoch,
        _ => *slot = None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FuncBuilder, Operand, Ty};

    fn tiny_module() -> Module {
        let mut m = Module::new("t");
        let mut b = FuncBuilder::new("f", vec![Ty::I64], Some(Ty::I64));
        let p = b.param(0);
        let v = b.add(p, Operand::i64(1));
        b.ret(Some(v));
        m.add_function(b.finish());
        m
    }

    #[test]
    fn repeated_queries_hit() {
        let m = tiny_module();
        let mut am = AnalysisManager::new();
        let d1 = am.dominators(&m, 0);
        let d2 = am.dominators(&m, 0);
        assert!(Rc::ptr_eq(&d1, &d2));
        assert_eq!(am.stats().hits_of(AnalysisKind::Dominators), 1);
        assert_eq!(am.stats().misses_of(AnalysisKind::Dominators), 1);
    }

    #[test]
    fn invalidation_drops_unpreserved_and_keeps_preserved() {
        let m = tiny_module();
        let mut am = AnalysisManager::new();
        am.dominators(&m, 0);
        am.liveness(&m, 0);
        // A barrier-deleting pass: dominators survive, liveness does not.
        let pa = PreservedAnalyses::none().preserve(AnalysisKind::Dominators);
        am.invalidate(&m, &Touched::Funcs(vec![0]), &pa);
        am.dominators(&m, 0);
        am.liveness(&m, 0);
        assert_eq!(am.stats().hits_of(AnalysisKind::Dominators), 1);
        assert_eq!(am.stats().misses_of(AnalysisKind::Liveness), 2);
    }

    #[test]
    fn untouched_functions_keep_caches() {
        let mut m = tiny_module();
        let mut b = FuncBuilder::new("g", vec![], Some(Ty::I64));
        let v = b.add(Operand::i64(2), Operand::i64(3));
        b.ret(Some(v));
        m.add_function(b.finish());
        let mut am = AnalysisManager::new();
        am.dominators(&m, 0);
        am.dominators(&m, 1);
        am.invalidate(&m, &Touched::Funcs(vec![1]), &PreservedAnalyses::none());
        am.dominators(&m, 0); // hit: untouched
        am.dominators(&m, 1); // miss: invalidated
        assert_eq!(am.stats().hits_of(AnalysisKind::Dominators), 1);
        assert_eq!(am.stats().misses_of(AnalysisKind::Dominators), 3);
    }

    #[test]
    fn callgraph_restamps_when_preserved() {
        let m = tiny_module();
        let mut am = AnalysisManager::new();
        am.callgraph(&m);
        let pa = PreservedAnalyses::none().preserve(AnalysisKind::CallGraph);
        am.invalidate(&m, &Touched::All, &pa);
        am.callgraph(&m);
        assert_eq!(am.stats().hits_of(AnalysisKind::CallGraph), 1);
        am.invalidate(&m, &Touched::All, &PreservedAnalyses::none());
        am.callgraph(&m);
        assert_eq!(am.stats().misses_of(AnalysisKind::CallGraph), 2);
    }

    #[test]
    fn disabled_caching_always_recomputes() {
        let m = tiny_module();
        let mut am = AnalysisManager::new();
        am.set_caching(false);
        am.dominators(&m, 0);
        am.dominators(&m, 0);
        assert_eq!(am.stats().hits_of(AnalysisKind::Dominators), 0);
        assert_eq!(am.stats().misses_of(AnalysisKind::Dominators), 2);
    }
}
