//! Control-flow-graph helpers: predecessors, reachability, orderings.

use crate::func::{BlockId, Function};

/// Predecessor lists indexed by block.
pub fn predecessors(f: &Function) -> Vec<Vec<BlockId>> {
    let mut preds = vec![Vec::new(); f.blocks.len()];
    for (bid, block) in f.iter_blocks() {
        for succ in block.term.succs() {
            let list = &mut preds[succ.index()];
            if !list.contains(&bid) {
                list.push(bid);
            }
        }
    }
    preds
}

/// Blocks reachable from entry, as a bitset-like bool vec.
pub fn reachable(f: &Function) -> Vec<bool> {
    let mut seen = vec![false; f.blocks.len()];
    if f.blocks.is_empty() {
        return seen;
    }
    let mut stack = vec![BlockId::ENTRY];
    seen[BlockId::ENTRY.index()] = true;
    while let Some(b) = stack.pop() {
        for s in f.block(b).term.succs() {
            if !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        }
    }
    seen
}

/// Reverse post-order of the reachable CFG (entry first).
pub fn reverse_post_order(f: &Function) -> Vec<BlockId> {
    let mut post = Vec::with_capacity(f.blocks.len());
    let mut state = vec![0u8; f.blocks.len()]; // 0 unseen, 1 open, 2 done
    if f.blocks.is_empty() {
        return post;
    }
    // Iterative DFS with explicit successor cursor to get true post-order.
    let mut stack: Vec<(BlockId, usize)> = vec![(BlockId::ENTRY, 0)];
    state[BlockId::ENTRY.index()] = 1;
    while let Some(top) = stack.last_mut() {
        let b = top.0;
        let succs = f.block(b).term.succs();
        if top.1 < succs.len() {
            let s = succs[top.1];
            top.1 += 1;
            if state[s.index()] == 0 {
                state[s.index()] = 1;
                stack.push((s, 0));
            }
        } else {
            state[b.index()] = 2;
            post.push(b);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// Can execution starting at block `from` reach block `to`? (Trivially true
/// when `from == to` only if `to` is in a cycle or equals `from` — here we
/// use the inclusive convention: `from == to` returns true.)
pub fn block_reaches(f: &Function, from: BlockId, to: BlockId) -> bool {
    if from == to {
        return true;
    }
    let mut seen = vec![false; f.blocks.len()];
    let mut stack = vec![from];
    seen[from.index()] = true;
    while let Some(b) = stack.pop() {
        for s in f.block(b).term.succs() {
            if s == to {
                return true;
            }
            if !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        }
    }
    false
}
