//! SSA liveness and register-pressure estimation.
//!
//! The virtual GPU reports a "#Regs" metric per kernel (Fig. 11 of the
//! paper) computed as the maximum number of simultaneously-live SSA values
//! in the final, optimized kernel plus a fixed ABI reserve. Eliminating
//! runtime state and loop-carried values (e.g. via the oversubscription
//! assumptions, §III-F) lowers this number exactly as the paper describes.

use std::collections::HashSet;

use crate::func::{BlockId, Function};
use crate::inst::Inst;
use crate::value::Operand;

/// A live "value key": instruction result or parameter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Key {
    Inst(u32),
    Param(u32),
}

fn key_of(op: Operand) -> Option<Key> {
    match op {
        Operand::Inst(i) => Some(Key::Inst(i.0)),
        Operand::Param(p) => Some(Key::Param(p)),
        _ => None,
    }
}

/// Result of the liveness computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Liveness {
    /// Per-block live-out sets (over both insts and params).
    live_out_sizes: Vec<usize>,
    /// Maximum live-set size at any program point.
    pub max_live: usize,
}

impl Liveness {
    pub fn live_out_size(&self, b: BlockId) -> usize {
        self.live_out_sizes[b.index()]
    }
}

/// Compute liveness for `f`.
pub fn compute(f: &Function) -> Liveness {
    let nb = f.blocks.len();
    let mut live_in: Vec<HashSet<Key>> = vec![HashSet::new(); nb];
    let mut live_out: Vec<HashSet<Key>> = vec![HashSet::new(); nb];
    let preds = crate::analysis::cfg::predecessors(f);

    // Iterate to fixpoint (backward dataflow).
    let mut changed = true;
    while changed {
        changed = false;
        for bi in (0..nb).rev() {
            let b = BlockId(bi as u32);
            let block = f.block(b);
            // live-out = union over successors of (live-in(s) minus s's phi
            // defs) plus the phi incomings contributed along this edge.
            let mut out: HashSet<Key> = HashSet::new();
            for s in block.term.succs() {
                for k in &live_in[s.index()] {
                    out.insert(*k);
                }
                for &iid in &f.block(s).insts {
                    match f.inst(iid) {
                        Inst::Phi { incomings, .. } => {
                            out.remove(&Key::Inst(iid.0));
                            for inc in incomings {
                                if inc.pred == b {
                                    if let Some(k) = key_of(inc.value) {
                                        out.insert(k);
                                    }
                                }
                            }
                        }
                        _ => break,
                    }
                }
            }
            // live-in = (live-out minus defs) plus uses, walked backward.
            let mut cur = out.clone();
            for op in block.term.operands() {
                if let Some(k) = key_of(op) {
                    cur.insert(k);
                }
            }
            for &iid in block.insts.iter().rev() {
                let inst = f.inst(iid);
                cur.remove(&Key::Inst(iid.0));
                if !inst.is_phi() {
                    for op in inst.operands() {
                        if let Some(k) = key_of(op) {
                            cur.insert(k);
                        }
                    }
                }
            }
            // Phi defs are live-in (they are defined "at the block start"),
            // so add them back.
            for &iid in &block.insts {
                if f.inst(iid).is_phi() {
                    cur.insert(Key::Inst(iid.0));
                } else {
                    break;
                }
            }
            if cur != live_in[bi] || out != live_out[bi] {
                live_in[bi] = cur;
                live_out[bi] = out;
                changed = true;
            }
        }
        let _ = &preds; // preds reserved for future precision work
    }

    // Max pressure: walk each block forward tracking the live set.
    let mut max_live = 0usize;
    for (bi, block) in f.blocks.iter().enumerate() {
        // Recompute backward death points within the block.
        let mut live: HashSet<Key> = live_out[bi].clone();
        max_live = max_live.max(live.len());
        for op in block.term.operands() {
            if let Some(k) = key_of(op) {
                live.insert(k);
            }
        }
        max_live = max_live.max(live.len());
        for &iid in block.insts.iter().rev() {
            let inst = f.inst(iid);
            live.remove(&Key::Inst(iid.0));
            if !inst.is_phi() {
                for op in inst.operands() {
                    if let Some(k) = key_of(op) {
                        live.insert(k);
                    }
                }
            }
            max_live = max_live.max(live.len());
        }
    }
    let live_out_sizes = live_out.iter().map(|s| s.len()).collect();
    Liveness {
        live_out_sizes,
        max_live,
    }
}

/// Register estimate for a kernel entry function: max-live SSA values plus a
/// small fixed ABI/base reserve (grid bookkeeping, stack pointer…).
pub fn register_estimate(f: &Function) -> u32 {
    const ABI_BASE: u32 = 16;
    compute(f).max_live as u32 + ABI_BASE
}
