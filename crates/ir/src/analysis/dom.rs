//! Dominator tree (Cooper–Harvey–Kennedy iterative algorithm). Used by the
//! lifetime-aware reachability & dominance analysis (paper §IV-B2) and the
//! verifier of SSA dominance in debug builds.

use crate::analysis::cfg;
use crate::func::{BlockId, Function};

/// Immediate-dominator table. Unreachable blocks have `idom == None` and
/// `None` for the entry as well (the entry dominates itself implicitly).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DomTree {
    idom: Vec<Option<BlockId>>,
    /// RPO index per block (usize::MAX for unreachable).
    #[allow(dead_code)]
    order: Vec<usize>,
}

impl DomTree {
    pub fn compute(f: &Function) -> DomTree {
        let rpo = cfg::reverse_post_order(f);
        let mut order = vec![usize::MAX; f.blocks.len()];
        for (i, b) in rpo.iter().enumerate() {
            order[b.index()] = i;
        }
        let preds = cfg::predecessors(f);
        let mut idom: Vec<Option<BlockId>> = vec![None; f.blocks.len()];
        if f.blocks.is_empty() {
            return DomTree { idom, order };
        }
        idom[BlockId::ENTRY.index()] = Some(BlockId::ENTRY);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.index()] {
                    if idom[p.index()].is_none() {
                        continue; // unreachable or not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => self_intersect(&idom, &order, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        // Entry's idom is conventionally itself; normalize to None for the
        // public API (entry has no strict dominator).
        DomTree { idom, order }
    }

    /// Immediate dominator (None for the entry block and unreachable blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        match self.idom[b.index()] {
            Some(d) if d != b => Some(d),
            Some(_) => None, // entry
            None => None,
        }
    }

    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.idom[b.index()].is_some()
    }

    /// Does block `a` dominate block `b`? (Reflexive.)
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if !self.is_reachable(a) || !self.is_reachable(b) {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }
}

fn self_intersect(
    idom: &[Option<BlockId>],
    order: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    // Both walks stay within processed (reachable) blocks, whose idoms are
    // always set; a `None` cannot occur, and degrading to the other finger
    // just terminates the loop at the current meeting point.
    while a != b {
        while order[a.index()] > order[b.index()] {
            a = idom[a.index()].unwrap_or(b);
        }
        while order[b.index()] > order[a.index()] {
            b = idom[b.index()].unwrap_or(a);
        }
    }
    a
}
