//! Call graph over a module, including conservative treatment of indirect
//! calls via the address-taken set (needed by the interprocedural analyses
//! of §IV-B2, which must account for "unknown callers and callees").

use std::collections::{HashMap, HashSet};

use crate::inst::Inst;
use crate::module::{FuncRef, Module};
use crate::value::Operand;

pub struct CallGraph {
    /// Direct call edges caller -> callees (deduped).
    pub callees: HashMap<FuncRef, Vec<FuncRef>>,
    /// Inverse edges.
    pub callers: HashMap<FuncRef, Vec<FuncRef>>,
    /// Functions whose address escapes into data / indirect calls.
    pub address_taken: HashSet<FuncRef>,
    /// Functions containing at least one indirect call.
    pub has_indirect_call: HashSet<FuncRef>,
}

impl CallGraph {
    pub fn build(m: &Module) -> CallGraph {
        let mut callees: HashMap<FuncRef, Vec<FuncRef>> = HashMap::new();
        let mut callers: HashMap<FuncRef, Vec<FuncRef>> = HashMap::new();
        let mut address_taken = HashSet::new();
        let mut has_indirect_call = HashSet::new();

        for (i, f) in m.funcs.iter().enumerate() {
            let me = FuncRef(i as u32);
            for (_bid, block) in f.iter_blocks() {
                for &iid in &block.insts {
                    let inst = f.inst(iid);
                    if let Inst::Call { callee, args, .. } = inst {
                        match callee {
                            Operand::Func(target) => {
                                let list = callees.entry(me).or_default();
                                if !list.contains(target) {
                                    list.push(*target);
                                }
                                let rlist = callers.entry(*target).or_default();
                                if !rlist.contains(&me) {
                                    rlist.push(me);
                                }
                            }
                            _ => {
                                has_indirect_call.insert(me);
                            }
                        }
                        // A function passed *as an argument* is address-taken.
                        for a in args {
                            if let Operand::Func(fr) = a {
                                address_taken.insert(*fr);
                            }
                        }
                    } else {
                        for op in inst.operands() {
                            if let Operand::Func(fr) = op {
                                address_taken.insert(fr);
                            }
                        }
                    }
                }
            }
        }
        CallGraph {
            callees,
            callers,
            address_taken,
            has_indirect_call,
        }
    }

    /// All functions transitively reachable from `roots` through direct
    /// calls, plus (conservatively) every address-taken function if any
    /// reachable function performs an indirect call.
    pub fn reachable_from(&self, m: &Module, roots: &[FuncRef]) -> HashSet<FuncRef> {
        let mut seen: HashSet<FuncRef> = HashSet::new();
        let mut stack: Vec<FuncRef> = roots.to_vec();
        let mut saw_indirect = false;
        while let Some(f) = stack.pop() {
            if !seen.insert(f) {
                continue;
            }
            if self.has_indirect_call.contains(&f) {
                saw_indirect = true;
            }
            if let Some(cs) = self.callees.get(&f) {
                stack.extend(cs.iter().copied());
            }
            // Address-taken functions referenced inside f also escape there.
            let func = m.func(f);
            for block in &func.blocks {
                for &iid in &block.insts {
                    for op in func.inst(iid).operands() {
                        if let Operand::Func(fr) = op {
                            if self.address_taken.contains(&fr) && !seen.contains(&fr) {
                                stack.push(fr);
                            }
                        }
                    }
                }
            }
        }
        if saw_indirect {
            for fr in &self.address_taken {
                if !seen.contains(fr) {
                    // Pull in the whole closure below them too.
                    let more = self.reachable_from(m, &[*fr]);
                    seen.extend(more);
                }
            }
        }
        seen
    }

    /// Is `f` potentially recursive (participates in a directed cycle of
    /// direct calls, or performs indirect calls while being address-taken)?
    pub fn maybe_recursive(&self, f: FuncRef) -> bool {
        if self.address_taken.contains(&f) && self.has_indirect_call.contains(&f) {
            return true;
        }
        // DFS from f looking for a path back to f.
        let mut seen = HashSet::new();
        let mut stack: Vec<FuncRef> = self.callees.get(&f).cloned().unwrap_or_default();
        while let Some(c) = stack.pop() {
            if c == f {
                return true;
            }
            if seen.insert(c) {
                if let Some(cs) = self.callees.get(&c) {
                    stack.extend(cs.iter().copied());
                }
            }
        }
        false
    }
}
