//! Program analyses shared by the optimizer and the virtual GPU's metric
//! collection (register-pressure estimation).

pub mod callgraph;
pub mod cfg;
pub mod dom;
pub mod liveness;
pub mod manager;

pub use manager::{AnalysisKind, AnalysisManager, CacheStats, PreservedAnalyses, Touched};
