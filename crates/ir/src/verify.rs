//! Structural IR verifier. Run after construction and between passes in
//! debug builds; catches malformed CFGs, dangling references and type
//! mismatches early instead of deep inside the interpreter.

use std::fmt;

use crate::func::{BlockId, Function};
use crate::inst::{Inst, Term};
use crate::module::Module;
use crate::value::Operand;

#[derive(Debug, Clone, PartialEq)]
pub struct VerifyError {
    pub func: String,
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verify error in @{}: {}", self.func, self.message)
    }
}

impl std::error::Error for VerifyError {}

fn err(func: &Function, message: impl Into<String>) -> VerifyError {
    VerifyError {
        func: func.name.clone(),
        message: message.into(),
    }
}

fn check_operand(f: &Function, m: Option<&Module>, op: Operand) -> Result<(), VerifyError> {
    match op {
        Operand::Inst(i) => {
            if i.index() >= f.insts.len() {
                return Err(err(f, format!("operand references missing inst %{}", i.0)));
            }
            if f.insts[i.index()].result_ty().is_none() {
                return Err(err(f, format!("operand references void inst %{}", i.0)));
            }
        }
        Operand::Param(p) if p as usize >= f.params.len() => {
            return Err(err(f, format!("operand references missing param {p}")));
        }
        Operand::Global(g) => {
            if let Some(m) = m {
                if g.index() >= m.globals.len() {
                    return Err(err(f, format!("operand references missing global {}", g.0)));
                }
            }
        }
        Operand::Func(fr) => {
            if let Some(m) = m {
                if fr.index() >= m.funcs.len() {
                    return Err(err(f, format!("operand references missing func {}", fr.0)));
                }
            }
        }
        _ => {}
    }
    Ok(())
}

/// Verify one function. With a module, also checks cross-references and
/// direct-call signatures.
pub fn verify_function(f: &Function, m: Option<&Module>) -> Result<(), VerifyError> {
    if f.is_declaration() {
        return Ok(());
    }
    if f.blocks.is_empty() {
        return Err(err(f, "defined function with no blocks"));
    }
    let nblocks = f.blocks.len() as u32;
    // No instruction may be listed in more than one block.
    let mut seen = vec![false; f.insts.len()];
    for (bid, block) in f.iter_blocks() {
        let mut in_phi_prefix = true;
        for &iid in &block.insts {
            if iid.index() >= f.insts.len() {
                return Err(err(f, format!("bb{} lists missing inst %{}", bid.0, iid.0)));
            }
            if seen[iid.index()] {
                return Err(err(f, format!("inst %{} listed twice", iid.0)));
            }
            seen[iid.index()] = true;
            let inst = f.inst(iid);
            if inst.is_phi() {
                if !in_phi_prefix {
                    return Err(err(f, format!("phi %{} not at start of bb{}", iid.0, bid.0)));
                }
            } else {
                in_phi_prefix = false;
            }
            for op in inst.operands() {
                check_operand(f, m, op)?;
            }
            // Phi incomings must name existing blocks.
            if let Inst::Phi { incomings, .. } = inst {
                for inc in incomings {
                    if inc.pred.0 >= nblocks {
                        return Err(err(
                            f,
                            format!("phi %{} has incoming from missing bb{}", iid.0, inc.pred.0),
                        ));
                    }
                }
            }
            // Direct calls: check arity/signature against the module.
            if let (Inst::Call { callee: Operand::Func(fr), args, ret }, Some(m)) = (inst, m) {
                let callee_f = m.func(*fr);
                if callee_f.params.len() != args.len() {
                    return Err(err(
                        f,
                        format!(
                            "call to @{} with {} args, expected {}",
                            callee_f.name,
                            args.len(),
                            callee_f.params.len()
                        ),
                    ));
                }
                if callee_f.ret != *ret {
                    return Err(err(
                        f,
                        format!(
                            "call to @{} returns {:?}, call site expects {:?}",
                            callee_f.name, callee_f.ret, ret
                        ),
                    ));
                }
            }
        }
        for target in block.term.succs() {
            if target.0 >= nblocks {
                return Err(err(f, format!("bb{} branches to missing bb{}", bid.0, target.0)));
            }
        }
        for op in block.term.operands() {
            check_operand(f, m, op)?;
        }
        if let Term::Ret(v) = &block.term {
            match (v, f.ret) {
                (Some(_), None) => return Err(err(f, "ret with value in void function")),
                (None, Some(_)) => return Err(err(f, "ret void in non-void function")),
                _ => {}
            }
        }
    }
    verify_ssa_dominance(f)?;

    // Phi incoming edges must match actual predecessors.
    let preds = crate::analysis::cfg::predecessors(f);
    for (bid, block) in f.iter_blocks() {
        for &iid in &block.insts {
            if let Inst::Phi { incomings, .. } = f.inst(iid) {
                let bp = &preds[bid.index()];
                for inc in incomings {
                    if !bp.contains(&inc.pred) {
                        return Err(err(
                            f,
                            format!(
                                "phi %{} in bb{} has incoming from non-predecessor bb{}",
                                iid.0, bid.0, inc.pred.0
                            ),
                        ));
                    }
                }
                for p in bp {
                    if !incomings.iter().any(|i| i.pred == *p) {
                        return Err(err(
                            f,
                            format!(
                                "phi %{} in bb{} missing incoming for predecessor bb{}",
                                iid.0, bid.0, p.0
                            ),
                        ));
                    }
                }
                // A predecessor may appear at most once; duplicates make
                // the materialized value depend on list order.
                for (i, inc) in incomings.iter().enumerate() {
                    if incomings[..i].iter().any(|e| e.pred == inc.pred) {
                        return Err(err(
                            f,
                            format!(
                                "phi %{} in bb{} has duplicate incoming for bb{}",
                                iid.0, bid.0, inc.pred.0
                            ),
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// SSA dominance: every use must be dominated by its definition. Catches
/// the easy-to-make builder mistake of referencing a value computed later
/// in a loop header from a phi's initial incoming.
fn verify_ssa_dominance(f: &Function) -> Result<(), VerifyError> {
    use crate::analysis::{cfg, dom::DomTree};
    let dt = DomTree::compute(f);
    let reach = cfg::reachable(f);
    // def location per inst: (block, position). Phis count as position 0.
    let mut def_at: Vec<Option<(BlockId, usize)>> = vec![None; f.insts.len()];
    for (bid, block) in f.iter_blocks() {
        for (pos, &iid) in block.insts.iter().enumerate() {
            def_at[iid.index()] = Some((bid, pos));
        }
    }
    let check_use = |op: Operand, bid: BlockId, pos: usize| -> Result<(), VerifyError> {
        let Operand::Inst(v) = op else { return Ok(()) };
        let Some((db, dp)) = def_at[v.index()] else {
            return Err(err(f, format!("use of %{} which is in no block", v.0)));
        };
        let ok = if db == bid { dp < pos } else { dt.dominates(db, bid) };
        if !ok {
            return Err(err(
                f,
                format!("use of %{} in bb{} not dominated by its definition in bb{}", v.0, bid.0, db.0),
            ));
        }
        Ok(())
    };
    for (bid, block) in f.iter_blocks() {
        if !reach[bid.index()] {
            continue;
        }
        for (pos, &iid) in block.insts.iter().enumerate() {
            match f.inst(iid) {
                Inst::Phi { incomings, .. } => {
                    // Incomings must be available at the end of their pred.
                    for inc in incomings {
                        if !reach[inc.pred.index()] {
                            continue;
                        }
                        if let Operand::Inst(v) = inc.value {
                            let Some((db, _)) = def_at[v.index()] else {
                                return Err(err(
                                    f,
                                    format!("phi %{} uses %{} which is in no block", iid.0, v.0),
                                ));
                            };
                            if !dt.dominates(db, inc.pred) {
                                return Err(err(
                                    f,
                                    format!(
                                        "phi %{} incoming %{} from bb{} not dominated by its definition in bb{}",
                                        iid.0, v.0, inc.pred.0, db.0
                                    ),
                                ));
                            }
                        }
                    }
                }
                inst => {
                    for op in inst.operands() {
                        check_use(op, bid, pos)?;
                    }
                }
            }
        }
        let end = block.insts.len();
        for op in block.term.operands() {
            check_use(op, bid, end)?;
        }
    }
    Ok(())
}

/// Verify all functions of a module plus kernel metadata.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    for f in &m.funcs {
        verify_function(f, Some(m))?;
    }
    for k in &m.kernels {
        if k.func.index() >= m.funcs.len() {
            return Err(VerifyError {
                func: "<module>".into(),
                message: format!("kernel references missing func {}", k.func.0),
            });
        }
        if m.func(k.func).is_declaration() {
            return Err(VerifyError {
                func: m.func(k.func).name.clone(),
                message: "kernel entry is a declaration".into(),
            });
        }
    }
    Ok(())
}

#[allow(dead_code)]
fn block_exists(f: &Function, b: BlockId) -> bool {
    b.index() < f.blocks.len()
}
