//! Scalar types and memory address spaces.

use std::fmt;

/// Scalar value types. Aggregates are expressed as byte offsets off a base
/// pointer (like LLVM after SROA/GEP lowering), so the type system stays
/// flat. Integer arithmetic is performed in 64-bit two's complement; the
/// narrower integer types only matter for memory access width and for
/// explicit casts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Ty {
    /// 1-bit boolean (stored as one byte).
    I1,
    /// 8-bit integer.
    I8,
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
    /// IEEE-754 double.
    F64,
    /// Pointer (8 bytes; address-space tag lives in the value at runtime).
    Ptr,
}

impl Ty {
    /// Width in bytes when stored to memory.
    #[inline]
    pub fn size(self) -> u64 {
        match self {
            Ty::I1 | Ty::I8 => 1,
            Ty::I32 => 4,
            Ty::I64 | Ty::F64 | Ty::Ptr => 8,
        }
    }

    /// True for the integer family (including `I1`).
    pub fn is_int(self) -> bool {
        matches!(self, Ty::I1 | Ty::I8 | Ty::I32 | Ty::I64)
    }

    #[inline]
    pub fn is_float(self) -> bool {
        matches!(self, Ty::F64)
    }

    pub fn is_ptr(self) -> bool {
        matches!(self, Ty::Ptr)
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Ty::I1 => "i1",
            Ty::I8 => "i8",
            Ty::I32 => "i32",
            Ty::I64 => "i64",
            Ty::F64 => "f64",
            Ty::Ptr => "ptr",
        };
        f.write_str(s)
    }
}

/// GPU memory spaces (ref. paper Fig. 2). The space determines both access
/// cost in the virtual GPU and visibility: `Local` memory belongs to a
/// single thread — other threads dereferencing it trap, which is exactly why
/// the OpenMP frontend performs *globalization* of shared locals (§IV-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Space {
    /// Device global memory: visible to all threads of all teams.
    Global,
    /// Per-team shared memory (CUDA `__shared__`): visible within the team.
    Shared,
    /// Per-thread private memory (registers/stack spills).
    Local,
    /// Read-only constant memory, set before launch.
    Constant,
}

impl fmt::Display for Space {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Space::Global => "global",
            Space::Shared => "shared",
            Space::Local => "local",
            Space::Constant => "constant",
        };
        f.write_str(s)
    }
}
