//! `nzomp-ir` — a miniature SSA intermediate representation.
//!
//! This crate is the substrate standing in for LLVM IR in the reproduction of
//! *"Co-Designing an OpenMP GPU Runtime and Optimizations for Near-Zero
//! Overhead Execution"* (IPDPS 2022). The paper's device runtime is shipped
//! as an IR library, linked into application kernels, and optimized together
//! with them; everything in `nzomp-opt` and `nzomp-vgpu` operates on the
//! types defined here.
//!
//! Design notes:
//! * SSA values are instruction results ([`InstId`]) or function parameters;
//!   [`Operand`] is a small copyable reference to either, or to a constant.
//! * Pointers are address-space tagged **at runtime** (see `nzomp-vgpu`);
//!   statically there is a single [`Ty::Ptr`] type. Globals carry their
//!   [`Space`], which is what the field-sensitive access analysis needs.
//! * Blocks always have a terminator; the builder installs
//!   [`Term::Unreachable`] until one is set, so no `Option` noise.
//!
//! Library code must not abort on malformed input: `unwrap`/`expect` are
//! denied crate-wide (tests are exempt).

#![deny(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod analysis;
pub mod builder;
pub mod func;
pub mod global;
pub mod inst;
pub mod link;
pub mod module;
pub mod parser;
pub mod printer;
pub mod types;
pub mod value;
pub mod verify;

pub use builder::FuncBuilder;
pub use func::{Block, BlockId, FnAttrs, Function, Linkage};
pub use global::{Global, GlobalId, Init};
pub use inst::{AtomicOp, BinOp, CastKind, Inst, InstId, Intrinsic, Pred, Term, UnOp};
pub use module::{ExecMode, Kernel, LaunchDims, Module};
pub use parser::{parse_module, parse_module_strict, ParseError};
pub use printer::{fmt_f64, print_function, print_module, FORMAT_VERSION};
pub use types::{Space, Ty};
pub use value::Operand;
pub use verify::{verify_function, verify_module, VerifyError};
