//! Ergonomic construction of functions.

use crate::func::{Block, BlockId, FnAttrs, Function, Linkage};
use crate::inst::{AtomicOp, BinOp, CastKind, Inst, InstId, Intrinsic, Pred, Term, UnOp};
use crate::types::Ty;
use crate::value::{Operand, PhiIncoming};

/// Builder for one function. Instructions are appended to the *current*
/// block; `switch_to` moves the insertion point. The finished function is
/// obtained with [`FuncBuilder::finish`].
pub struct FuncBuilder {
    func: Function,
    cur: BlockId,
}

impl FuncBuilder {
    pub fn new(name: impl Into<String>, params: Vec<Ty>, ret: Option<Ty>) -> FuncBuilder {
        let func = Function {
            name: name.into(),
            params,
            ret,
            blocks: vec![Block::new()],
            insts: Vec::new(),
            attrs: FnAttrs::default(),
            linkage: Linkage::External,
        };
        FuncBuilder {
            func,
            cur: BlockId::ENTRY,
        }
    }

    pub fn attrs_mut(&mut self) -> &mut FnAttrs {
        &mut self.func.attrs
    }

    pub fn set_linkage(&mut self, l: Linkage) {
        self.func.linkage = l;
    }

    /// `n`-th parameter as an operand.
    pub fn param(&self, n: u32) -> Operand {
        assert!(
            (n as usize) < self.func.params.len(),
            "param {} out of range in {}",
            n,
            self.func.name
        );
        Operand::Param(n)
    }

    pub fn new_block(&mut self) -> BlockId {
        self.func.add_block()
    }

    pub fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
    }

    pub fn current_block(&self) -> BlockId {
        self.cur
    }

    fn push(&mut self, inst: Inst) -> InstId {
        let id = self.func.add_inst(inst);
        self.func.blocks[self.cur.index()].insts.push(id);
        id
    }

    fn push_val(&mut self, inst: Inst) -> Operand {
        Operand::Inst(self.push(inst))
    }

    // ---- arithmetic -----------------------------------------------------

    pub fn bin(&mut self, op: BinOp, ty: Ty, lhs: Operand, rhs: Operand) -> Operand {
        self.push_val(Inst::Bin { op, ty, lhs, rhs })
    }

    pub fn add(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.bin(BinOp::Add, Ty::I64, lhs, rhs)
    }

    pub fn sub(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.bin(BinOp::Sub, Ty::I64, lhs, rhs)
    }

    pub fn mul(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.bin(BinOp::Mul, Ty::I64, lhs, rhs)
    }

    pub fn sdiv(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.bin(BinOp::SDiv, Ty::I64, lhs, rhs)
    }

    pub fn srem(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.bin(BinOp::SRem, Ty::I64, lhs, rhs)
    }

    pub fn and(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.bin(BinOp::And, Ty::I64, lhs, rhs)
    }

    pub fn or(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.bin(BinOp::Or, Ty::I64, lhs, rhs)
    }

    pub fn shl(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.bin(BinOp::Shl, Ty::I64, lhs, rhs)
    }

    pub fn fadd(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.bin(BinOp::FAdd, Ty::F64, lhs, rhs)
    }

    pub fn fsub(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.bin(BinOp::FSub, Ty::F64, lhs, rhs)
    }

    pub fn fmul(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.bin(BinOp::FMul, Ty::F64, lhs, rhs)
    }

    pub fn fdiv(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.bin(BinOp::FDiv, Ty::F64, lhs, rhs)
    }

    pub fn un(&mut self, op: UnOp, ty: Ty, arg: Operand) -> Operand {
        self.push_val(Inst::Un { op, ty, arg })
    }

    pub fn sqrt(&mut self, arg: Operand) -> Operand {
        self.un(UnOp::Sqrt, Ty::F64, arg)
    }

    pub fn cast(&mut self, kind: CastKind, to: Ty, arg: Operand) -> Operand {
        self.push_val(Inst::Cast { kind, to, arg })
    }

    pub fn si_to_fp(&mut self, arg: Operand) -> Operand {
        self.cast(CastKind::SiToFp, Ty::F64, arg)
    }

    pub fn fp_to_si(&mut self, arg: Operand) -> Operand {
        self.cast(CastKind::FpToSi, Ty::I64, arg)
    }

    // ---- comparisons / select -------------------------------------------

    pub fn cmp(&mut self, pred: Pred, ty: Ty, lhs: Operand, rhs: Operand) -> Operand {
        self.push_val(Inst::Cmp { pred, ty, lhs, rhs })
    }

    pub fn icmp_eq(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.cmp(Pred::Eq, Ty::I64, lhs, rhs)
    }

    pub fn icmp_ne(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.cmp(Pred::Ne, Ty::I64, lhs, rhs)
    }

    pub fn icmp_slt(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.cmp(Pred::Slt, Ty::I64, lhs, rhs)
    }

    pub fn icmp_sge(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.cmp(Pred::Sge, Ty::I64, lhs, rhs)
    }

    pub fn select(&mut self, ty: Ty, cond: Operand, t: Operand, f: Operand) -> Operand {
        self.push_val(Inst::Select {
            ty,
            cond,
            if_true: t,
            if_false: f,
        })
    }

    // ---- memory ----------------------------------------------------------

    pub fn load(&mut self, ty: Ty, ptr: Operand) -> Operand {
        self.push_val(Inst::Load { ty, ptr })
    }

    pub fn store(&mut self, ty: Ty, ptr: Operand, value: Operand) {
        self.push(Inst::Store { ty, ptr, value });
    }

    pub fn ptr_add(&mut self, base: Operand, offset: Operand) -> Operand {
        self.push_val(Inst::PtrAdd { base, offset })
    }

    /// `base + idx * scale` — the common array-indexing GEP.
    pub fn gep(&mut self, base: Operand, idx: Operand, scale: u64) -> Operand {
        let off = self.mul(idx, Operand::i64(scale as i64));
        self.ptr_add(base, off)
    }

    /// Allocate `size` bytes of thread-local memory. Placed in the entry
    /// block regardless of the current insertion point so that the lifetime
    /// covers the whole function (as LLVM requires for static allocas).
    pub fn alloca(&mut self, size: u64) -> Operand {
        let id = self.func.add_inst(Inst::Alloca { size });
        // Insert after any existing allocas at the top of the entry block.
        let entry = &self.func.blocks[BlockId::ENTRY.index()];
        let pos = entry
            .insts
            .iter()
            .position(|i| !matches!(self.func.insts[i.index()], Inst::Alloca { .. }))
            .unwrap_or(entry.insts.len());
        self.func.blocks[BlockId::ENTRY.index()].insts.insert(pos, id);
        Operand::Inst(id)
    }

    pub fn atomic(&mut self, op: AtomicOp, ty: Ty, ptr: Operand, value: Operand) -> Operand {
        self.push_val(Inst::Atomic { op, ty, ptr, value })
    }

    pub fn atomic_add(&mut self, ty: Ty, ptr: Operand, value: Operand) -> Operand {
        self.atomic(AtomicOp::Add, ty, ptr, value)
    }

    pub fn cas(&mut self, ty: Ty, ptr: Operand, expected: Operand, new: Operand) -> Operand {
        self.push_val(Inst::Cas {
            ty,
            ptr,
            expected,
            new,
        })
    }

    // ---- calls / intrinsics ----------------------------------------------

    pub fn call(&mut self, callee: Operand, args: Vec<Operand>, ret: Option<Ty>) -> Option<Operand> {
        let id = self.push(Inst::Call { callee, args, ret });
        ret.map(|_| Operand::Inst(id))
    }

    pub fn intr(&mut self, intr: Intrinsic, args: Vec<Operand>) -> Option<Operand> {
        let has_result = matches!(
            intr,
            Intrinsic::ThreadId
                | Intrinsic::BlockId
                | Intrinsic::BlockDim
                | Intrinsic::GridDim
                | Intrinsic::Malloc
        );
        let id = self.push(Inst::Intr { intr, args });
        has_result.then_some(Operand::Inst(id))
    }

    /// Like [`intr`](FuncBuilder::intr) for intrinsics that always produce
    /// a result.
    fn intr_val(&mut self, intr: Intrinsic, args: Vec<Operand>) -> Operand {
        let id = self.push(Inst::Intr { intr, args });
        Operand::Inst(id)
    }

    pub fn thread_id(&mut self) -> Operand {
        self.intr_val(Intrinsic::ThreadId, vec![])
    }

    pub fn block_id(&mut self) -> Operand {
        self.intr_val(Intrinsic::BlockId, vec![])
    }

    pub fn block_dim(&mut self) -> Operand {
        self.intr_val(Intrinsic::BlockDim, vec![])
    }

    pub fn grid_dim(&mut self) -> Operand {
        self.intr_val(Intrinsic::GridDim, vec![])
    }

    pub fn aligned_barrier(&mut self) {
        self.intr(Intrinsic::AlignedBarrier, vec![]);
    }

    pub fn barrier(&mut self) {
        self.intr(Intrinsic::Barrier, vec![]);
    }

    pub fn assume(&mut self, cond: Operand) {
        self.intr(Intrinsic::Assume(()), vec![cond]);
    }

    pub fn malloc(&mut self, size: Operand) -> Operand {
        self.intr_val(Intrinsic::Malloc, vec![size])
    }

    pub fn free(&mut self, ptr: Operand) {
        self.intr(Intrinsic::Free, vec![ptr]);
    }

    pub fn assert_fail(&mut self) {
        self.intr(Intrinsic::AssertFail, vec![]);
    }

    pub fn phi(&mut self, ty: Ty, incomings: Vec<(BlockId, Operand)>) -> Operand {
        let incomings = incomings
            .into_iter()
            .map(|(pred, value)| PhiIncoming { pred, value })
            .collect();
        // Phis must precede non-phi instructions in their block.
        let id = self.func.add_inst(Inst::Phi { ty, incomings });
        let blk = &self.func.blocks[self.cur.index()];
        let pos = blk
            .insts
            .iter()
            .position(|i| !self.func.insts[i.index()].is_phi())
            .unwrap_or(blk.insts.len());
        self.func.blocks[self.cur.index()].insts.insert(pos, id);
        Operand::Inst(id)
    }

    /// Add a later-filled incoming edge to an existing phi.
    pub fn phi_add_incoming(&mut self, phi: Operand, pred: BlockId, value: Operand) {
        let Operand::Inst(id) = phi else {
            panic!("phi_add_incoming on non-instruction")
        };
        match self.func.inst_mut(id) {
            Inst::Phi { incomings, .. } => incomings.push(PhiIncoming { pred, value }),
            _ => panic!("phi_add_incoming on non-phi"),
        }
    }

    // ---- terminators -----------------------------------------------------

    pub fn br(&mut self, target: BlockId) {
        self.func.blocks[self.cur.index()].term = Term::Br(target);
    }

    pub fn cond_br(&mut self, cond: Operand, if_true: BlockId, if_false: BlockId) {
        self.func.blocks[self.cur.index()].term = Term::CondBr {
            cond,
            if_true,
            if_false,
        };
    }

    pub fn ret(&mut self, value: Option<Operand>) {
        self.func.blocks[self.cur.index()].term = Term::Ret(value);
    }

    pub fn unreachable(&mut self) {
        self.func.blocks[self.cur.index()].term = Term::Unreachable;
    }

    pub fn finish(self) -> Function {
        self.func
    }
}

/// Build a simple loop `for (i = lo; i < hi; i += step) body(i)`.
///
/// `body` receives the builder and the induction variable and must leave the
/// insertion point in a block that falls through (it must not install a
/// terminator in its final block). Returns after the loop with the insertion
/// point in the exit block.
pub fn build_counted_loop(
    b: &mut FuncBuilder,
    lo: Operand,
    hi: Operand,
    step: Operand,
    body: impl FnOnce(&mut FuncBuilder, Operand),
) {
    let preheader = b.current_block();
    let header = b.new_block();
    let body_bb = b.new_block();
    let exit = b.new_block();

    b.br(header);
    b.switch_to(header);
    let iv = b.phi(Ty::I64, vec![(preheader, lo)]);
    let cond = b.icmp_slt(iv, hi);
    b.cond_br(cond, body_bb, exit);

    b.switch_to(body_bb);
    body(b, iv);
    let next = b.add(iv, step);
    let latch = b.current_block();
    b.br(header);
    b.phi_add_incoming(iv, latch, next);

    b.switch_to(exit);
}
