//! Parser for the textual IR format produced by [`crate::printer`].
//!
//! Round-trip property: for any module `m`, `parse(print(m))` is
//! semantically equivalent to `m` (instruction ids are renumbered densely,
//! so the *text* re-normalizes after one round trip). Useful for file-based
//! test cases, debugging dumps, and diffing optimizer stages.

use std::collections::HashMap;

use crate::func::{Block, BlockId, FnAttrs, Function, Linkage};
use crate::global::{Global, Init};
use crate::inst::{AtomicOp, BinOp, CastKind, Inst, InstId, Intrinsic, Pred, Term, UnOp};
use crate::module::{ExecMode, FuncRef, Module};
use crate::types::{Space, Ty};
use crate::value::{Operand, PhiIncoming};

/// Parse error with line context.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

type PResult<T> = Result<T, ParseError>;

fn err<T>(line: usize, message: impl Into<String>) -> PResult<T> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

fn parse_ty(s: &str, line: usize) -> PResult<Ty> {
    match s {
        "i1" => Ok(Ty::I1),
        "i8" => Ok(Ty::I8),
        "i32" => Ok(Ty::I32),
        "i64" => Ok(Ty::I64),
        "f64" => Ok(Ty::F64),
        "ptr" => Ok(Ty::Ptr),
        other => err(line, format!("unknown type {other:?}")),
    }
}

fn parse_space(s: &str, line: usize) -> PResult<Space> {
    match s {
        "global" => Ok(Space::Global),
        "shared" => Ok(Space::Shared),
        "local" => Ok(Space::Local),
        "constant" => Ok(Space::Constant),
        other => err(line, format!("unknown space {other:?}")),
    }
}

fn parse_bin_op(s: &str) -> Option<BinOp> {
    Some(match s {
        "Add" => BinOp::Add,
        "Sub" => BinOp::Sub,
        "Mul" => BinOp::Mul,
        "SDiv" => BinOp::SDiv,
        "SRem" => BinOp::SRem,
        "UDiv" => BinOp::UDiv,
        "URem" => BinOp::URem,
        "And" => BinOp::And,
        "Or" => BinOp::Or,
        "Xor" => BinOp::Xor,
        "Shl" => BinOp::Shl,
        "LShr" => BinOp::LShr,
        "AShr" => BinOp::AShr,
        "SMin" => BinOp::SMin,
        "SMax" => BinOp::SMax,
        "FAdd" => BinOp::FAdd,
        "FSub" => BinOp::FSub,
        "FMul" => BinOp::FMul,
        "FDiv" => BinOp::FDiv,
        "FMin" => BinOp::FMin,
        "FMax" => BinOp::FMax,
        _ => return None,
    })
}

fn parse_un_op(s: &str) -> Option<UnOp> {
    Some(match s {
        "Neg" => UnOp::Neg,
        "Not" => UnOp::Not,
        "FNeg" => UnOp::FNeg,
        "FAbs" => UnOp::FAbs,
        "Sqrt" => UnOp::Sqrt,
        "Sin" => UnOp::Sin,
        "Cos" => UnOp::Cos,
        "Exp" => UnOp::Exp,
        "Log" => UnOp::Log,
        _ => return None,
    })
}

fn parse_cast_kind(s: &str) -> Option<CastKind> {
    Some(match s {
        "IntCast" => CastKind::IntCast,
        "ZExtCast" => CastKind::ZExtCast,
        "SiToFp" => CastKind::SiToFp,
        "FpToSi" => CastKind::FpToSi,
        "PtrCast" => CastKind::PtrCast,
        _ => return None,
    })
}

fn parse_pred(s: &str) -> Option<Pred> {
    Some(match s {
        "Eq" => Pred::Eq,
        "Ne" => Pred::Ne,
        "Slt" => Pred::Slt,
        "Sle" => Pred::Sle,
        "Sgt" => Pred::Sgt,
        "Sge" => Pred::Sge,
        "Ult" => Pred::Ult,
        "Ule" => Pred::Ule,
        "Ugt" => Pred::Ugt,
        "Uge" => Pred::Uge,
        _ => return None,
    })
}

fn parse_atomic_op(s: &str) -> Option<AtomicOp> {
    Some(match s {
        "Add" => AtomicOp::Add,
        "Max" => AtomicOp::Max,
        "Min" => AtomicOp::Min,
        "Exchange" => AtomicOp::Exchange,
        _ => return None,
    })
}

const INTRINSICS: &[(&str, Intrinsic)] = &[
    ("thread.id", Intrinsic::ThreadId),
    ("block.id", Intrinsic::BlockId),
    ("block.dim", Intrinsic::BlockDim),
    ("grid.dim", Intrinsic::GridDim),
    ("barrier.aligned", Intrinsic::AlignedBarrier),
    ("barrier", Intrinsic::Barrier),
    ("assume", Intrinsic::Assume(())),
    ("assert.fail", Intrinsic::AssertFail),
    ("malloc", Intrinsic::Malloc),
    ("free", Intrinsic::Free),
];

/// An operand as written (resolved in a second phase).
#[derive(Clone, Debug)]
enum RawOp {
    Inst(u32),
    Param(u32),
    ConstI(i64, Ty),
    ConstF(f64),
    Symbol(String),
}

/// Split a comma-separated argument list, respecting that our operands
/// never contain commas or parens.
fn split_args(s: &str) -> Vec<&str> {
    let s = s.trim();
    if s.is_empty() {
        return vec![];
    }
    s.split(',').map(|a| a.trim()).collect()
}

/// Parse one operand token like `%5`, `%arg0`, `i64 -3`, `f64 2.5`, `@name`.
fn parse_raw_op(tok: &str, line: usize) -> PResult<RawOp> {
    let tok = tok.trim();
    if let Some(rest) = tok.strip_prefix("%arg") {
        return rest
            .parse::<u32>()
            .map(RawOp::Param)
            .or_else(|_| err(line, format!("bad param {tok:?}")));
    }
    if let Some(rest) = tok.strip_prefix('%') {
        return rest
            .parse::<u32>()
            .map(RawOp::Inst)
            .or_else(|_| err(line, format!("bad value id {tok:?}")));
    }
    if let Some(rest) = tok.strip_prefix('@') {
        return Ok(RawOp::Symbol(rest.to_string()));
    }
    if let Some((ty_s, val)) = tok.split_once(' ') {
        let ty = parse_ty(ty_s, line)?;
        if ty == Ty::F64 {
            let v = parse_f64(val.trim(), line)?;
            return Ok(RawOp::ConstF(v));
        }
        let v = val
            .trim()
            .parse::<i64>()
            .or_else(|_| err(line, format!("bad int constant {val:?}")))?;
        return Ok(RawOp::ConstI(v, ty));
    }
    err(line, format!("cannot parse operand {tok:?}"))
}

fn parse_f64(s: &str, line: usize) -> PResult<f64> {
    match s {
        "NaN" => Ok(f64::NAN),
        "inf" => Ok(f64::INFINITY),
        "-inf" => Ok(f64::NEG_INFINITY),
        _ => s
            .parse::<f64>()
            .or_else(|_| err(line, format!("bad float constant {s:?}"))),
    }
}

fn parse_block_ref(tok: &str, line: usize) -> PResult<BlockId> {
    tok.trim()
        .strip_prefix("bb")
        .and_then(|n| n.parse::<u32>().ok())
        .map(BlockId)
        .ok_or(ParseError {
            line,
            message: format!("bad block reference {tok:?}"),
        })
}

/// A parsed instruction before operand resolution.
struct RawInst {
    line: usize,
    /// Printed result id (None for void instructions).
    result: Option<u32>,
    body: RawBody,
}

enum RawBody {
    Bin(BinOp, Ty, RawOp, RawOp),
    Un(UnOp, Ty, RawOp),
    Cast(CastKind, Ty, RawOp),
    Cmp(Pred, Ty, RawOp, RawOp),
    Select(Ty, RawOp, RawOp, RawOp),
    Load(Ty, RawOp),
    Store(Ty, RawOp, RawOp), // value, ptr
    PtrAdd(RawOp, RawOp),
    Alloca(u64),
    Call(Option<Ty>, RawOp, Vec<RawOp>),
    Atomic(AtomicOp, Ty, RawOp, RawOp),
    Cas(Ty, RawOp, RawOp, RawOp),
    Intr(Intrinsic, Vec<RawOp>),
    Phi(Ty, Vec<(BlockId, RawOp)>),
}

/// Parse the right-hand side of an instruction line.
fn parse_inst_body(s: &str, line: usize) -> PResult<RawBody> {
    let s = s.trim();
    // Intrinsics: `name(args)`.
    for (name, intr) in INTRINSICS {
        if let Some(rest) = s.strip_prefix(name) {
            if let Some(inner) = rest.trim().strip_prefix('(').and_then(|r| r.strip_suffix(')')) {
                let args = split_args(inner)
                    .into_iter()
                    .map(|a| parse_raw_op(a, line))
                    .collect::<PResult<Vec<_>>>()?;
                return Ok(RawBody::Intr(*intr, args));
            }
        }
    }
    if let Some(rest) = s.strip_prefix("load ") {
        let (ty_s, ptr) = rest
            .split_once(',')
            .ok_or_else(|| ParseError { line, message: "load needs `ty, ptr`".into() })?;
        return Ok(RawBody::Load(
            parse_ty(ty_s.trim(), line)?,
            parse_raw_op(ptr, line)?,
        ));
    }
    if let Some(rest) = s.strip_prefix("store ") {
        // `store ty VALUE, PTR` — value may itself start with a type token
        // (constants), so split at the LAST comma.
        let comma = rest
            .rfind(',')
            .ok_or_else(|| ParseError { line, message: "store needs `,`".into() })?;
        let (head, ptr) = rest.split_at(comma);
        let ptr = &ptr[1..];
        let (ty_s, value) = head
            .trim()
            .split_once(' ')
            .ok_or_else(|| ParseError { line, message: "store needs `ty value`".into() })?;
        return Ok(RawBody::Store(
            parse_ty(ty_s, line)?,
            parse_raw_op(value, line)?,
            parse_raw_op(ptr, line)?,
        ));
    }
    if let Some(rest) = s.strip_prefix("ptradd ") {
        let (a, b) = rest
            .split_once(',')
            .ok_or_else(|| ParseError { line, message: "ptradd needs 2 args".into() })?;
        return Ok(RawBody::PtrAdd(parse_raw_op(a, line)?, parse_raw_op(b, line)?));
    }
    if let Some(rest) = s.strip_prefix("alloca ") {
        let size = rest
            .trim()
            .parse::<u64>()
            .or_else(|_| err(line, "bad alloca size"))?;
        return Ok(RawBody::Alloca(size));
    }
    if let Some(rest) = s.strip_prefix("call ") {
        let (retty_s, rest) = rest
            .split_once(' ')
            .ok_or_else(|| ParseError { line, message: "call needs ret type".into() })?;
        let ret = if retty_s == "void" {
            None
        } else {
            Some(parse_ty(retty_s, line)?)
        };
        let open = rest
            .find('(')
            .ok_or_else(|| ParseError { line, message: "call needs `(`".into() })?;
        let callee = parse_raw_op(&rest[..open], line)?;
        let inner = rest[open + 1..]
            .strip_suffix(')')
            .ok_or_else(|| ParseError { line, message: "call needs `)`".into() })?;
        let args = split_args(inner)
            .into_iter()
            .map(|a| parse_raw_op(a, line))
            .collect::<PResult<Vec<_>>>()?;
        return Ok(RawBody::Call(ret, callee, args));
    }
    if let Some(rest) = s.strip_prefix("select.") {
        let (ty_s, rest) = rest
            .split_once(' ')
            .ok_or_else(|| ParseError { line, message: "select needs type".into() })?;
        let ty = parse_ty(ty_s, line)?;
        let args = split_args(rest);
        if args.len() != 3 {
            return err(line, "select needs 3 operands");
        }
        return Ok(RawBody::Select(
            ty,
            parse_raw_op(args[0], line)?,
            parse_raw_op(args[1], line)?,
            parse_raw_op(args[2], line)?,
        ));
    }
    if let Some(rest) = s.strip_prefix("cmp.") {
        let (pred_s, rest) = rest
            .split_once('.')
            .ok_or_else(|| ParseError { line, message: "cmp needs pred.ty".into() })?;
        let pred = parse_pred(pred_s)
            .ok_or_else(|| ParseError { line, message: format!("bad predicate {pred_s:?}") })?;
        let (ty_s, rest) = rest
            .split_once(' ')
            .ok_or_else(|| ParseError { line, message: "cmp needs type".into() })?;
        let args = split_args(rest);
        if args.len() != 2 {
            return err(line, "cmp needs 2 operands");
        }
        return Ok(RawBody::Cmp(
            pred,
            parse_ty(ty_s, line)?,
            parse_raw_op(args[0], line)?,
            parse_raw_op(args[1], line)?,
        ));
    }
    if let Some(rest) = s.strip_prefix("atomic.") {
        let (op_s, rest) = rest
            .split_once('.')
            .ok_or_else(|| ParseError { line, message: "atomic needs op.ty".into() })?;
        let op = parse_atomic_op(op_s)
            .ok_or_else(|| ParseError { line, message: format!("bad atomic op {op_s:?}") })?;
        let (ty_s, rest) = rest
            .split_once(' ')
            .ok_or_else(|| ParseError { line, message: "atomic needs type".into() })?;
        let args = split_args(rest);
        if args.len() != 2 {
            return err(line, "atomic needs 2 operands");
        }
        return Ok(RawBody::Atomic(
            op,
            parse_ty(ty_s, line)?,
            parse_raw_op(args[0], line)?,
            parse_raw_op(args[1], line)?,
        ));
    }
    if let Some(rest) = s.strip_prefix("cas.") {
        let (ty_s, rest) = rest
            .split_once(' ')
            .ok_or_else(|| ParseError { line, message: "cas needs type".into() })?;
        let args = split_args(rest);
        if args.len() != 3 {
            return err(line, "cas needs 3 operands");
        }
        return Ok(RawBody::Cas(
            parse_ty(ty_s, line)?,
            parse_raw_op(args[0], line)?,
            parse_raw_op(args[1], line)?,
            parse_raw_op(args[2], line)?,
        ));
    }
    if let Some(rest) = s.strip_prefix("phi ") {
        let (ty_s, rest) = rest
            .split_once(' ')
            .ok_or_else(|| ParseError { line, message: "phi needs type".into() })?;
        let ty = parse_ty(ty_s, line)?;
        let mut incomings = Vec::new();
        for part in rest.split("],") {
            let part = part.trim().trim_start_matches('[').trim_end_matches(']');
            if part.is_empty() {
                continue;
            }
            let (bb, val) = part
                .split_once(':')
                .ok_or_else(|| ParseError { line, message: "phi incoming needs `bb: val`".into() })?;
            incomings.push((parse_block_ref(bb, line)?, parse_raw_op(val, line)?));
        }
        return Ok(RawBody::Phi(ty, incomings));
    }
    // Bin/Un/Cast: `<Op>.<ty> ...` or `<CastKind> <op> to <ty>`.
    if let Some((head, rest)) = s.split_once(' ') {
        if let Some(kind) = parse_cast_kind(head) {
            let (arg, to) = rest
                .rsplit_once(" to ")
                .ok_or_else(|| ParseError { line, message: "cast needs `to <ty>`".into() })?;
            return Ok(RawBody::Cast(
                kind,
                parse_ty(to.trim(), line)?,
                parse_raw_op(arg, line)?,
            ));
        }
        if let Some((op_s, ty_s)) = head.split_once('.') {
            let ty = parse_ty(ty_s, line)?;
            let args = split_args(rest);
            if let Some(op) = parse_bin_op(op_s) {
                if args.len() != 2 {
                    return err(line, "binary op needs 2 operands");
                }
                return Ok(RawBody::Bin(
                    op,
                    ty,
                    parse_raw_op(args[0], line)?,
                    parse_raw_op(args[1], line)?,
                ));
            }
            if let Some(op) = parse_un_op(op_s) {
                if args.len() != 1 {
                    return err(line, "unary op needs 1 operand");
                }
                return Ok(RawBody::Un(op, ty, parse_raw_op(args[0], line)?));
            }
        }
    }
    err(line, format!("cannot parse instruction {s:?}"))
}

enum RawTerm {
    Br(BlockId),
    CondBr(RawOp, BlockId, BlockId),
    RetVoid,
    Ret(RawOp),
    Unreachable,
}

fn parse_term(s: &str, line: usize) -> PResult<Option<RawTerm>> {
    let s = s.trim();
    if s == "unreachable" {
        return Ok(Some(RawTerm::Unreachable));
    }
    if s == "ret void" {
        return Ok(Some(RawTerm::RetVoid));
    }
    if let Some(rest) = s.strip_prefix("ret ") {
        return Ok(Some(RawTerm::Ret(parse_raw_op(rest, line)?)));
    }
    if let Some(rest) = s.strip_prefix("br ") {
        let args = split_args(rest);
        return match args.len() {
            1 => Ok(Some(RawTerm::Br(parse_block_ref(args[0], line)?))),
            3 => Ok(Some(RawTerm::CondBr(
                parse_raw_op(args[0], line)?,
                parse_block_ref(args[1], line)?,
                parse_block_ref(args[2], line)?,
            ))),
            _ => err(line, "br needs 1 or 3 arguments"),
        };
    }
    Ok(None)
}

struct RawFunc {
    name: String,
    params: Vec<Ty>,
    ret: Option<Ty>,
    attrs: FnAttrs,
    linkage: Linkage,
    /// Blocks: (id, instructions, terminator).
    blocks: Vec<(BlockId, Vec<RawInst>, RawTerm)>,
    is_decl: bool,
}

/// Parse a function header like
/// `define internal i64 @f(i64 %arg0, ptr %arg1) [noinline] {`.
fn parse_header(line_s: &str, line: usize, decl: bool) -> PResult<RawFunc> {
    let mut rest = line_s.trim();
    rest = match rest.strip_prefix(if decl { "declare" } else { "define" }) {
        Some(r) => r.trim(),
        None => return err(line, "expected `define` or `declare`"),
    };
    let linkage = if let Some(r) = rest.strip_prefix("internal ") {
        rest = r;
        Linkage::Internal
    } else {
        Linkage::External
    };
    let (ret_s, r) = rest
        .split_once(' ')
        .ok_or_else(|| ParseError { line, message: "missing return type".into() })?;
    let ret = if ret_s == "void" {
        None
    } else {
        Some(parse_ty(ret_s, line)?)
    };
    let r = r.trim();
    let at = r
        .strip_prefix('@')
        .ok_or_else(|| ParseError { line, message: "missing @name".into() })?;
    let open = at
        .find('(')
        .ok_or_else(|| ParseError { line, message: "missing `(`".into() })?;
    let name = at[..open].to_string();
    let close = at
        .find(')')
        .ok_or_else(|| ParseError { line, message: "missing `)`".into() })?;
    let params = split_args(&at[open + 1..close])
        .into_iter()
        .map(|p| {
            let ty_s = p.split_whitespace().next().unwrap_or(p);
            parse_ty(ty_s, line)
        })
        .collect::<PResult<Vec<_>>>()?;
    let tail = &at[close + 1..];
    let mut attrs = FnAttrs::default();
    if let Some(a0) = tail.find('[') {
        if let Some(a1) = tail.find(']') {
            for a in tail[a0 + 1..a1].split(',') {
                match a.trim() {
                    "aligned_barrier" => attrs.aligned_barrier = true,
                    "no_call_asm" => attrs.no_call_asm = true,
                    "always_inline" => attrs.always_inline = true,
                    "noinline" => attrs.no_inline = true,
                    "read_none" => attrs.read_none = true,
                    other => return err(line, format!("unknown attribute {other:?}")),
                }
            }
        }
    }
    Ok(RawFunc {
        name,
        params,
        ret,
        attrs,
        linkage,
        blocks: Vec::new(),
        is_decl: decl,
    })
}

/// Parse a full module from the printer's format.
pub fn parse_module(text: &str) -> PResult<Module> {
    let mut module_name = String::from("parsed");
    let mut globals: Vec<(usize, String)> = Vec::new();
    let mut kernels: Vec<(String, ExecMode)> = Vec::new();
    let mut funcs: Vec<RawFunc> = Vec::new();
    let mut cur: Option<RawFunc> = None;
    let mut cur_block: Option<(BlockId, Vec<RawInst>)> = None;

    for (idx, raw_line) in text.lines().enumerate() {
        let ln = idx + 1;
        let line_s = raw_line.trim();
        if line_s.is_empty() {
            continue;
        }
        if let Some(rest) = line_s.strip_prefix("; module ") {
            module_name = rest.trim().to_string();
            continue;
        }
        if let Some(rest) = line_s.strip_prefix("; kernel @") {
            let (name, mode) = rest
                .split_once(" mode=")
                .ok_or_else(|| ParseError { line: ln, message: "kernel needs mode".into() })?;
            let mode = match mode.trim() {
                "Generic" => ExecMode::Generic,
                "Spmd" => ExecMode::Spmd,
                other => return err(ln, format!("unknown exec mode {other:?}")),
            };
            kernels.push((name.trim().to_string(), mode));
            continue;
        }
        if line_s.starts_with(';') {
            continue; // other comments
        }
        if line_s.starts_with('@') && cur.is_none() {
            globals.push((ln, line_s.to_string()));
            continue;
        }
        if line_s.starts_with("declare ") {
            funcs.push(parse_header(line_s, ln, true)?);
            continue;
        }
        if line_s.starts_with("define ") {
            cur = Some(parse_header(line_s.trim_end_matches('{').trim(), ln, false)?);
            continue;
        }
        if line_s == "}" {
            let mut f = cur
                .take()
                .ok_or_else(|| ParseError { line: ln, message: "stray `}`".into() })?;
            if let Some((bid, insts)) = cur_block.take() {
                return err(
                    ln,
                    format!("bb{} has no terminator ({} insts)", bid.0, insts.len()),
                );
            }
            f.is_decl = false;
            funcs.push(f);
            continue;
        }
        if let Some(rest) = line_s.strip_suffix(':') {
            // Block label.
            if let Some((bid, insts)) = cur_block.take() {
                return err(
                    ln,
                    format!("bb{} not terminated before new label ({} insts)", bid.0, insts.len()),
                );
            }
            cur_block = Some((parse_block_ref(rest, ln)?, Vec::new()));
            continue;
        }
        // Inside a block: instruction or terminator.
        let Some(f) = cur.as_mut() else {
            return err(ln, format!("unexpected line outside function: {line_s:?}"));
        };
        let Some((bid, insts)) = cur_block.as_mut() else {
            return err(ln, "instruction outside a block");
        };
        if let Some(term) = parse_term(line_s, ln)? {
            let done = std::mem::take(insts);
            f.blocks.push((*bid, done, term));
            cur_block = None;
            continue;
        }
        // `%N = body` or void `body`.
        let (result, body_s) = if line_s.starts_with('%') {
            let (lhs, rhs) = line_s
                .split_once('=')
                .ok_or_else(|| ParseError { line: ln, message: "expected `=`".into() })?;
            let id = lhs
                .trim()
                .strip_prefix('%')
                .and_then(|n| n.parse::<u32>().ok())
                .ok_or_else(|| ParseError { line: ln, message: "bad result id".into() })?;
            (Some(id), rhs.trim())
        } else {
            (None, line_s)
        };
        insts.push(RawInst {
            line: ln,
            result,
            body: parse_inst_body(body_s, ln)?,
        });
    }
    if cur.is_some() {
        return err(text.lines().count(), "unterminated function");
    }

    build_module(module_name, globals, kernels, funcs)
}

fn parse_global_line(ln: usize, s: &str) -> PResult<Global> {
    // `@name = space [N x i8] const? init=... linkage=...`
    let Some(rest) = s.strip_prefix('@') else {
        return err(ln, "global must start with `@`");
    };
    let (name, rest) = rest
        .split_once('=')
        .ok_or_else(|| ParseError { line: ln, message: "global needs `=`".into() })?;
    let toks: Vec<&str> = rest.split_whitespace().collect();
    if toks.len() < 4 {
        return err(ln, "malformed global");
    }
    let space = parse_space(toks[0], ln)?;
    let size = toks[1]
        .trim_start_matches('[')
        .parse::<u64>()
        .or_else(|_| err(ln, "bad global size"))?;
    let mut constant = false;
    let mut init = Init::Zero;
    let mut linkage = Linkage::Internal;
    for t in &toks[2..] {
        if *t == "const" {
            constant = true;
        } else if let Some(v) = t.strip_prefix("init=") {
            init = if v == "zero" {
                Init::Zero
            } else if let Some(n) = v.strip_prefix("i64:") {
                Init::I64(n.parse::<i64>().or_else(|_| err(ln, "bad i64 init"))?)
            } else if let Some(h) = v.strip_prefix("hex:") {
                let bytes = (0..h.len() / 2)
                    .map(|i| u8::from_str_radix(&h[2 * i..2 * i + 2], 16))
                    .collect::<Result<Vec<u8>, _>>()
                    .or_else(|_| err(ln, "bad hex init"))?;
                Init::Bytes(bytes)
            } else {
                return err(ln, format!("bad init {v:?}"));
            };
        } else if let Some(l) = t.strip_prefix("linkage=") {
            linkage = match l {
                "internal" => Linkage::Internal,
                "external" => Linkage::External,
                other => return err(ln, format!("bad linkage {other:?}")),
            };
        }
    }
    Ok(Global {
        name: name.trim().to_string(),
        space,
        size,
        init,
        constant,
        linkage,
    })
}

fn build_module(
    name: String,
    globals: Vec<(usize, String)>,
    kernels: Vec<(String, ExecMode)>,
    raw_funcs: Vec<RawFunc>,
) -> PResult<Module> {
    let mut m = Module::new(name);
    for (ln, g) in globals {
        let g = parse_global_line(ln, &g)?;
        m.add_global(g);
    }
    // Pre-create all function shells so symbols resolve.
    for rf in &raw_funcs {
        m.add_function(Function {
            name: rf.name.clone(),
            params: rf.params.clone(),
            ret: rf.ret,
            blocks: Vec::new(),
            insts: Vec::new(),
            attrs: rf.attrs.clone(),
            linkage: rf.linkage,
        });
    }
    let func_by_name: HashMap<String, FuncRef> = m
        .funcs
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.clone(), FuncRef(i as u32)))
        .collect();
    let global_by_name: HashMap<String, crate::global::GlobalId> = m
        .globals
        .iter()
        .enumerate()
        .map(|(i, g)| (g.name.clone(), crate::global::GlobalId(i as u32)))
        .collect();

    for (fi, rf) in raw_funcs.into_iter().enumerate() {
        if rf.is_decl {
            continue;
        }
        // Phase 1: allocate dense InstIds for every printed result id.
        let mut id_map: HashMap<u32, InstId> = HashMap::new();
        let mut next: u32 = 0;
        for (_bid, insts, _t) in &rf.blocks {
            for ri in insts {
                if let Some(r) = ri.result {
                    id_map.insert(r, InstId(next));
                }
                next += 1;
            }
        }
        let resolve = |op: &RawOp, line: usize| -> PResult<Operand> {
            Ok(match op {
                RawOp::Inst(n) => Operand::Inst(*id_map.get(n).ok_or(ParseError {
                    line,
                    message: format!("unknown value %{n}"),
                })?),
                RawOp::Param(p) => Operand::Param(*p),
                RawOp::ConstI(v, ty) => Operand::ConstI(*v, *ty),
                RawOp::ConstF(v) => Operand::ConstF(*v),
                RawOp::Symbol(s) => {
                    if let Some(g) = global_by_name.get(s) {
                        Operand::Global(*g)
                    } else if let Some(f) = func_by_name.get(s) {
                        Operand::Func(*f)
                    } else {
                        return err(line, format!("unknown symbol @{s}"));
                    }
                }
            })
        };

        // Phase 2: build blocks. Block ids in the text may be sparse (the
        // printer emits every block including empty unreachable ones), so
        // size the vector to the max id.
        let max_bid = rf.blocks.iter().map(|(b, _, _)| b.0).max().unwrap_or(0);
        let mut blocks: Vec<Block> = (0..=max_bid).map(|_| Block::new()).collect();
        let mut insts: Vec<Inst> = Vec::new();
        for (bid, rinsts, rterm) in &rf.blocks {
            let mut list = Vec::with_capacity(rinsts.len());
            for ri in rinsts {
                let inst = match &ri.body {
                    RawBody::Bin(op, ty, a, b) => Inst::Bin {
                        op: *op,
                        ty: *ty,
                        lhs: resolve(a, ri.line)?,
                        rhs: resolve(b, ri.line)?,
                    },
                    RawBody::Un(op, ty, a) => Inst::Un {
                        op: *op,
                        ty: *ty,
                        arg: resolve(a, ri.line)?,
                    },
                    RawBody::Cast(kind, to, a) => Inst::Cast {
                        kind: *kind,
                        to: *to,
                        arg: resolve(a, ri.line)?,
                    },
                    RawBody::Cmp(pred, ty, a, b) => Inst::Cmp {
                        pred: *pred,
                        ty: *ty,
                        lhs: resolve(a, ri.line)?,
                        rhs: resolve(b, ri.line)?,
                    },
                    RawBody::Select(ty, c, t, f) => Inst::Select {
                        ty: *ty,
                        cond: resolve(c, ri.line)?,
                        if_true: resolve(t, ri.line)?,
                        if_false: resolve(f, ri.line)?,
                    },
                    RawBody::Load(ty, p) => Inst::Load {
                        ty: *ty,
                        ptr: resolve(p, ri.line)?,
                    },
                    RawBody::Store(ty, v, p) => Inst::Store {
                        ty: *ty,
                        ptr: resolve(p, ri.line)?,
                        value: resolve(v, ri.line)?,
                    },
                    RawBody::PtrAdd(a, b) => Inst::PtrAdd {
                        base: resolve(a, ri.line)?,
                        offset: resolve(b, ri.line)?,
                    },
                    RawBody::Alloca(size) => Inst::Alloca { size: *size },
                    RawBody::Call(ret, callee, args) => Inst::Call {
                        callee: resolve(callee, ri.line)?,
                        args: args
                            .iter()
                            .map(|a| resolve(a, ri.line))
                            .collect::<PResult<Vec<_>>>()?,
                        ret: *ret,
                    },
                    RawBody::Atomic(op, ty, p, v) => Inst::Atomic {
                        op: *op,
                        ty: *ty,
                        ptr: resolve(p, ri.line)?,
                        value: resolve(v, ri.line)?,
                    },
                    RawBody::Cas(ty, p, e, n) => Inst::Cas {
                        ty: *ty,
                        ptr: resolve(p, ri.line)?,
                        expected: resolve(e, ri.line)?,
                        new: resolve(n, ri.line)?,
                    },
                    RawBody::Intr(intr, args) => Inst::Intr {
                        intr: *intr,
                        args: args
                            .iter()
                            .map(|a| resolve(a, ri.line))
                            .collect::<PResult<Vec<_>>>()?,
                    },
                    RawBody::Phi(ty, incs) => Inst::Phi {
                        ty: *ty,
                        incomings: incs
                            .iter()
                            .map(|(b, v)| {
                                Ok(PhiIncoming {
                                    pred: *b,
                                    value: resolve(v, ri.line)?,
                                })
                            })
                            .collect::<PResult<Vec<_>>>()?,
                    },
                };
                let id = InstId(insts.len() as u32);
                insts.push(inst);
                list.push(id);
            }
            let term = match rterm {
                RawTerm::Br(b) => Term::Br(*b),
                RawTerm::CondBr(c, t, f) => Term::CondBr {
                    cond: resolve(c, 0)?,
                    if_true: *t,
                    if_false: *f,
                },
                RawTerm::RetVoid => Term::Ret(None),
                RawTerm::Ret(v) => Term::Ret(Some(resolve(v, 0)?)),
                RawTerm::Unreachable => Term::Unreachable,
            };
            blocks[bid.index()] = Block {
                insts: list,
                term,
            };
        }
        let f = &mut m.funcs[fi];
        f.blocks = blocks;
        f.insts = insts;
    }

    for (kname, mode) in kernels {
        let fr = m
            .find_func(&kname)
            .ok_or_else(|| ParseError { line: 0, message: format!("kernel @{kname} not defined") })?;
        m.add_kernel(fr, mode);
    }
    Ok(m)
}
