//! Parser for the versioned textual IR format produced by [`crate::printer`].
//!
//! Round-trip contract (see `docs/ir-format.md`): for any module `m` in
//! *normal form* (dense instruction arenas in block order — see
//! [`crate::Module::renumber`]), `parse(print(m)) == m` holds as exact
//! structural equality. For modules that are not normalized (transformation
//! passes leave arena holes behind), `parse(print(m))` equals the
//! normalized `m` — the text format cannot represent dead arena entries.
//!
//! Two entry points:
//! * [`parse_module`] — lenient: accepts input with or without the
//!   `; nzomp-ir vN` header (but rejects a header with the wrong version).
//! * [`parse_module_strict`] — the on-disk `.nzir` contract: the first
//!   non-blank line must be the version header.
//!
//! Errors carry the 1-based line, and where the offending token is known,
//! the 1-based column.

use std::collections::HashMap;

use crate::func::{Block, BlockId, FnAttrs, Function, Linkage};
use crate::global::{Global, Init};
use crate::inst::{AtomicOp, BinOp, CastKind, Inst, InstId, Intrinsic, Pred, Term, UnOp};
use crate::module::{ExecMode, FuncRef, Module};
use crate::printer::FORMAT_VERSION;
use crate::types::{Space, Ty};
use crate::value::{Operand, PhiIncoming};

/// Parse error with line (and, when the offending token is known, column)
/// context. `col == 0` means "column unknown".
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub line: usize,
    pub col: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.col > 0 {
            write!(
                f,
                "parse error at line {}, col {}: {}",
                self.line, self.col, self.message
            )
        } else {
            write!(f, "parse error at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

type PResult<T> = Result<T, ParseError>;

/// Per-line parse context: the 1-based line number plus the raw line text.
/// Every token the parser handles is a subslice of `raw`, so a column can
/// be recovered from pointer arithmetic — no separate span plumbing.
#[derive(Clone, Copy)]
struct Cx<'a> {
    line: usize,
    raw: &'a str,
}

impl<'a> Cx<'a> {
    fn new(line: usize, raw: &'a str) -> Cx<'a> {
        Cx { line, raw }
    }

    /// 1-based column of `tok` within the raw line, or 0 when `tok` is not
    /// a subslice of it.
    fn col_of(&self, tok: &str) -> usize {
        let raw_start = self.raw.as_ptr() as usize;
        let raw_end = raw_start + self.raw.len();
        let tok_start = tok.as_ptr() as usize;
        if tok_start >= raw_start && tok_start + tok.len() <= raw_end {
            tok_start - raw_start + 1
        } else {
            0
        }
    }

    /// Error without a column.
    fn err<T>(&self, message: impl Into<String>) -> PResult<T> {
        Err(ParseError {
            line: self.line,
            col: 0,
            message: message.into(),
        })
    }

    /// Error anchored at the offending token.
    fn err_at<T>(&self, tok: &str, message: impl Into<String>) -> PResult<T> {
        Err(ParseError {
            line: self.line,
            col: self.col_of(tok),
            message: message.into(),
        })
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            col: 0,
            message: message.into(),
        }
    }

    fn error_at(&self, tok: &str, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            col: self.col_of(tok),
            message: message.into(),
        }
    }
}

fn parse_ty(s: &str, cx: &Cx<'_>) -> PResult<Ty> {
    match s {
        "i1" => Ok(Ty::I1),
        "i8" => Ok(Ty::I8),
        "i32" => Ok(Ty::I32),
        "i64" => Ok(Ty::I64),
        "f64" => Ok(Ty::F64),
        "ptr" => Ok(Ty::Ptr),
        other => cx.err_at(other, format!("unknown type {other:?}")),
    }
}

fn parse_space(s: &str, cx: &Cx<'_>) -> PResult<Space> {
    match s {
        "global" => Ok(Space::Global),
        "shared" => Ok(Space::Shared),
        "local" => Ok(Space::Local),
        "constant" => Ok(Space::Constant),
        other => cx.err_at(other, format!("unknown space {other:?}")),
    }
}

fn parse_bin_op(s: &str) -> Option<BinOp> {
    Some(match s {
        "Add" => BinOp::Add,
        "Sub" => BinOp::Sub,
        "Mul" => BinOp::Mul,
        "SDiv" => BinOp::SDiv,
        "SRem" => BinOp::SRem,
        "UDiv" => BinOp::UDiv,
        "URem" => BinOp::URem,
        "And" => BinOp::And,
        "Or" => BinOp::Or,
        "Xor" => BinOp::Xor,
        "Shl" => BinOp::Shl,
        "LShr" => BinOp::LShr,
        "AShr" => BinOp::AShr,
        "SMin" => BinOp::SMin,
        "SMax" => BinOp::SMax,
        "FAdd" => BinOp::FAdd,
        "FSub" => BinOp::FSub,
        "FMul" => BinOp::FMul,
        "FDiv" => BinOp::FDiv,
        "FMin" => BinOp::FMin,
        "FMax" => BinOp::FMax,
        _ => return None,
    })
}

fn parse_un_op(s: &str) -> Option<UnOp> {
    Some(match s {
        "Neg" => UnOp::Neg,
        "Not" => UnOp::Not,
        "FNeg" => UnOp::FNeg,
        "FAbs" => UnOp::FAbs,
        "Sqrt" => UnOp::Sqrt,
        "Sin" => UnOp::Sin,
        "Cos" => UnOp::Cos,
        "Exp" => UnOp::Exp,
        "Log" => UnOp::Log,
        _ => return None,
    })
}

fn parse_cast_kind(s: &str) -> Option<CastKind> {
    Some(match s {
        "IntCast" => CastKind::IntCast,
        "ZExtCast" => CastKind::ZExtCast,
        "SiToFp" => CastKind::SiToFp,
        "FpToSi" => CastKind::FpToSi,
        "PtrCast" => CastKind::PtrCast,
        _ => return None,
    })
}

fn parse_pred(s: &str) -> Option<Pred> {
    Some(match s {
        "Eq" => Pred::Eq,
        "Ne" => Pred::Ne,
        "Slt" => Pred::Slt,
        "Sle" => Pred::Sle,
        "Sgt" => Pred::Sgt,
        "Sge" => Pred::Sge,
        "Ult" => Pred::Ult,
        "Ule" => Pred::Ule,
        "Ugt" => Pred::Ugt,
        "Uge" => Pred::Uge,
        _ => return None,
    })
}

fn parse_atomic_op(s: &str) -> Option<AtomicOp> {
    Some(match s {
        "Add" => AtomicOp::Add,
        "Max" => AtomicOp::Max,
        "Min" => AtomicOp::Min,
        "Exchange" => AtomicOp::Exchange,
        _ => return None,
    })
}

const INTRINSICS: &[(&str, Intrinsic)] = &[
    ("thread.id", Intrinsic::ThreadId),
    ("block.id", Intrinsic::BlockId),
    ("block.dim", Intrinsic::BlockDim),
    ("grid.dim", Intrinsic::GridDim),
    ("barrier.aligned", Intrinsic::AlignedBarrier),
    ("barrier", Intrinsic::Barrier),
    ("assume", Intrinsic::Assume(())),
    ("assert.fail", Intrinsic::AssertFail),
    ("malloc", Intrinsic::Malloc),
    ("free", Intrinsic::Free),
];

/// An operand as written (resolved in a second phase).
#[derive(Clone, Debug)]
enum RawOp {
    Inst(u32),
    Param(u32),
    ConstI(i64, Ty),
    ConstF(f64),
    Symbol(String),
}

/// Split a comma-separated argument list, respecting that our operands
/// never contain commas or parens.
fn split_args(s: &str) -> Vec<&str> {
    let s = s.trim();
    if s.is_empty() {
        return vec![];
    }
    s.split(',').map(|a| a.trim()).collect()
}

/// Parse one operand token like `%5`, `%arg0`, `i64 -3`, `f64 2.5`, `@name`.
fn parse_raw_op(tok: &str, cx: &Cx<'_>) -> PResult<RawOp> {
    let tok = tok.trim();
    if let Some(rest) = tok.strip_prefix("%arg") {
        return rest
            .parse::<u32>()
            .map(RawOp::Param)
            .or_else(|_| cx.err_at(tok, format!("bad param {tok:?}")));
    }
    if let Some(rest) = tok.strip_prefix('%') {
        return rest
            .parse::<u32>()
            .map(RawOp::Inst)
            .or_else(|_| cx.err_at(tok, format!("bad value id {tok:?}")));
    }
    if let Some(rest) = tok.strip_prefix('@') {
        return Ok(RawOp::Symbol(rest.to_string()));
    }
    if let Some((ty_s, val)) = tok.split_once(' ') {
        let ty = parse_ty(ty_s, cx)?;
        if ty == Ty::F64 {
            let v = parse_f64(val.trim(), cx)?;
            return Ok(RawOp::ConstF(v));
        }
        let v = val
            .trim()
            .parse::<i64>()
            .or_else(|_| cx.err_at(val.trim(), format!("bad int constant {val:?}")))?;
        return Ok(RawOp::ConstI(v, ty));
    }
    cx.err_at(tok, format!("cannot parse operand {tok:?}"))
}

/// Parse an f64 literal. Inverse of [`crate::printer::fmt_f64`]: accepts
/// `inf`/`-inf`, a `nan:0xBITS` bit pattern (exact, payload-preserving),
/// the legacy bare `NaN` (maps to the canonical quiet NaN), and any decimal
/// literal Rust's float parser accepts (shortest-exact decimals round-trip
/// bit-for-bit, including `-0.0` and subnormals).
fn parse_f64(s: &str, cx: &Cx<'_>) -> PResult<f64> {
    if let Some(hex) = s.strip_prefix("nan:0x") {
        let bits = u64::from_str_radix(hex, 16)
            .or_else(|_| cx.err_at(s, format!("bad NaN bit pattern {s:?}")))?;
        let v = f64::from_bits(bits);
        if !v.is_nan() {
            return cx.err_at(s, format!("{s:?} is not a NaN bit pattern"));
        }
        return Ok(v);
    }
    match s {
        "NaN" => Ok(f64::NAN),
        "inf" => Ok(f64::INFINITY),
        "-inf" => Ok(f64::NEG_INFINITY),
        _ => s
            .parse::<f64>()
            .or_else(|_| cx.err_at(s, format!("bad float constant {s:?}"))),
    }
}

fn parse_block_ref(tok: &str, cx: &Cx<'_>) -> PResult<BlockId> {
    let tok = tok.trim();
    tok.strip_prefix("bb")
        .and_then(|n| n.parse::<u32>().ok())
        .map(BlockId)
        .ok_or_else(|| cx.error_at(tok, format!("bad block reference {tok:?}")))
}

/// A parsed instruction before operand resolution.
struct RawInst {
    line: usize,
    /// Printed result id (None for void instructions).
    result: Option<u32>,
    body: RawBody,
}

enum RawBody {
    Bin(BinOp, Ty, RawOp, RawOp),
    Un(UnOp, Ty, RawOp),
    Cast(CastKind, Ty, RawOp),
    Cmp(Pred, Ty, RawOp, RawOp),
    Select(Ty, RawOp, RawOp, RawOp),
    Load(Ty, RawOp),
    Store(Ty, RawOp, RawOp), // value, ptr
    PtrAdd(RawOp, RawOp),
    Alloca(u64),
    Call(Option<Ty>, RawOp, Vec<RawOp>),
    Atomic(AtomicOp, Ty, RawOp, RawOp),
    Cas(Ty, RawOp, RawOp, RawOp),
    Intr(Intrinsic, Vec<RawOp>),
    Phi(Ty, Vec<(BlockId, RawOp)>),
}

/// Parse the right-hand side of an instruction line.
fn parse_inst_body(s: &str, cx: &Cx<'_>) -> PResult<RawBody> {
    let s = s.trim();
    // Intrinsics: `name(args)`.
    for (name, intr) in INTRINSICS {
        if let Some(rest) = s.strip_prefix(name) {
            if let Some(inner) = rest.trim().strip_prefix('(').and_then(|r| r.strip_suffix(')')) {
                let args = split_args(inner)
                    .into_iter()
                    .map(|a| parse_raw_op(a, cx))
                    .collect::<PResult<Vec<_>>>()?;
                return Ok(RawBody::Intr(*intr, args));
            }
        }
    }
    if let Some(rest) = s.strip_prefix("load ") {
        let (ty_s, ptr) = rest
            .split_once(',')
            .ok_or_else(|| cx.error_at(rest, "load needs `ty, ptr`"))?;
        return Ok(RawBody::Load(
            parse_ty(ty_s.trim(), cx)?,
            parse_raw_op(ptr, cx)?,
        ));
    }
    if let Some(rest) = s.strip_prefix("store ") {
        // `store ty VALUE, PTR` — value may itself start with a type token
        // (constants), so split at the LAST comma.
        let comma = rest
            .rfind(',')
            .ok_or_else(|| cx.error_at(rest, "store needs `,`"))?;
        let (head, ptr) = rest.split_at(comma);
        let ptr = &ptr[1..];
        let (ty_s, value) = head
            .trim()
            .split_once(' ')
            .ok_or_else(|| cx.error_at(head, "store needs `ty value`"))?;
        return Ok(RawBody::Store(
            parse_ty(ty_s, cx)?,
            parse_raw_op(value, cx)?,
            parse_raw_op(ptr, cx)?,
        ));
    }
    if let Some(rest) = s.strip_prefix("ptradd ") {
        let (a, b) = rest
            .split_once(',')
            .ok_or_else(|| cx.error_at(rest, "ptradd needs 2 args"))?;
        return Ok(RawBody::PtrAdd(parse_raw_op(a, cx)?, parse_raw_op(b, cx)?));
    }
    if let Some(rest) = s.strip_prefix("alloca ") {
        let size = rest
            .trim()
            .parse::<u64>()
            .or_else(|_| cx.err_at(rest.trim(), "bad alloca size"))?;
        return Ok(RawBody::Alloca(size));
    }
    if let Some(rest) = s.strip_prefix("call ") {
        let (retty_s, rest) = rest
            .split_once(' ')
            .ok_or_else(|| cx.error_at(rest, "call needs ret type"))?;
        let ret = if retty_s == "void" {
            None
        } else {
            Some(parse_ty(retty_s, cx)?)
        };
        let open = rest
            .find('(')
            .ok_or_else(|| cx.error_at(rest, "call needs `(`"))?;
        let callee = parse_raw_op(&rest[..open], cx)?;
        let inner = rest[open + 1..]
            .strip_suffix(')')
            .ok_or_else(|| cx.error_at(rest, "call needs `)`"))?;
        let args = split_args(inner)
            .into_iter()
            .map(|a| parse_raw_op(a, cx))
            .collect::<PResult<Vec<_>>>()?;
        return Ok(RawBody::Call(ret, callee, args));
    }
    if let Some(rest) = s.strip_prefix("select.") {
        let (ty_s, rest) = rest
            .split_once(' ')
            .ok_or_else(|| cx.error_at(rest, "select needs type"))?;
        let ty = parse_ty(ty_s, cx)?;
        let args = split_args(rest);
        if args.len() != 3 {
            return cx.err_at(rest, "select needs 3 operands");
        }
        return Ok(RawBody::Select(
            ty,
            parse_raw_op(args[0], cx)?,
            parse_raw_op(args[1], cx)?,
            parse_raw_op(args[2], cx)?,
        ));
    }
    if let Some(rest) = s.strip_prefix("cmp.") {
        let (pred_s, rest) = rest
            .split_once('.')
            .ok_or_else(|| cx.error_at(rest, "cmp needs pred.ty"))?;
        let pred = parse_pred(pred_s)
            .ok_or_else(|| cx.error_at(pred_s, format!("bad predicate {pred_s:?}")))?;
        let (ty_s, rest) = rest
            .split_once(' ')
            .ok_or_else(|| cx.error_at(rest, "cmp needs type"))?;
        let args = split_args(rest);
        if args.len() != 2 {
            return cx.err_at(rest, "cmp needs 2 operands");
        }
        return Ok(RawBody::Cmp(
            pred,
            parse_ty(ty_s, cx)?,
            parse_raw_op(args[0], cx)?,
            parse_raw_op(args[1], cx)?,
        ));
    }
    if let Some(rest) = s.strip_prefix("atomic.") {
        let (op_s, rest) = rest
            .split_once('.')
            .ok_or_else(|| cx.error_at(rest, "atomic needs op.ty"))?;
        let op = parse_atomic_op(op_s)
            .ok_or_else(|| cx.error_at(op_s, format!("bad atomic op {op_s:?}")))?;
        let (ty_s, rest) = rest
            .split_once(' ')
            .ok_or_else(|| cx.error_at(rest, "atomic needs type"))?;
        let args = split_args(rest);
        if args.len() != 2 {
            return cx.err_at(rest, "atomic needs 2 operands");
        }
        return Ok(RawBody::Atomic(
            op,
            parse_ty(ty_s, cx)?,
            parse_raw_op(args[0], cx)?,
            parse_raw_op(args[1], cx)?,
        ));
    }
    if let Some(rest) = s.strip_prefix("cas.") {
        let (ty_s, rest) = rest
            .split_once(' ')
            .ok_or_else(|| cx.error_at(rest, "cas needs type"))?;
        let args = split_args(rest);
        if args.len() != 3 {
            return cx.err_at(rest, "cas needs 3 operands");
        }
        return Ok(RawBody::Cas(
            parse_ty(ty_s, cx)?,
            parse_raw_op(args[0], cx)?,
            parse_raw_op(args[1], cx)?,
            parse_raw_op(args[2], cx)?,
        ));
    }
    if let Some(rest) = s.strip_prefix("phi ") {
        let (ty_s, rest) = rest
            .split_once(' ')
            .ok_or_else(|| cx.error_at(rest, "phi needs type"))?;
        let ty = parse_ty(ty_s, cx)?;
        let mut incomings = Vec::new();
        for part in rest.split("],") {
            let part = part.trim().trim_start_matches('[').trim_end_matches(']');
            if part.is_empty() {
                continue;
            }
            let (bb, val) = part
                .split_once(':')
                .ok_or_else(|| cx.error_at(part, "phi incoming needs `bb: val`"))?;
            incomings.push((parse_block_ref(bb, cx)?, parse_raw_op(val, cx)?));
        }
        return Ok(RawBody::Phi(ty, incomings));
    }
    // Bin/Un/Cast: `<Op>.<ty> ...` or `<CastKind> <op> to <ty>`.
    if let Some((head, rest)) = s.split_once(' ') {
        if let Some(kind) = parse_cast_kind(head) {
            let (arg, to) = rest
                .rsplit_once(" to ")
                .ok_or_else(|| cx.error_at(rest, "cast needs `to <ty>`"))?;
            return Ok(RawBody::Cast(
                kind,
                parse_ty(to.trim(), cx)?,
                parse_raw_op(arg, cx)?,
            ));
        }
        if let Some((op_s, ty_s)) = head.split_once('.') {
            let ty = parse_ty(ty_s, cx)?;
            let args = split_args(rest);
            if let Some(op) = parse_bin_op(op_s) {
                if args.len() != 2 {
                    return cx.err_at(rest, "binary op needs 2 operands");
                }
                return Ok(RawBody::Bin(
                    op,
                    ty,
                    parse_raw_op(args[0], cx)?,
                    parse_raw_op(args[1], cx)?,
                ));
            }
            if let Some(op) = parse_un_op(op_s) {
                if args.len() != 1 {
                    return cx.err_at(rest, "unary op needs 1 operand");
                }
                return Ok(RawBody::Un(op, ty, parse_raw_op(args[0], cx)?));
            }
        }
    }
    cx.err_at(s, format!("unknown opcode: cannot parse instruction {s:?}"))
}

enum RawTerm {
    Br(BlockId),
    CondBr(RawOp, BlockId, BlockId),
    RetVoid,
    Ret(RawOp),
    Unreachable,
}

fn parse_term(s: &str, cx: &Cx<'_>) -> PResult<Option<RawTerm>> {
    let s = s.trim();
    if s == "unreachable" {
        return Ok(Some(RawTerm::Unreachable));
    }
    if s == "ret void" {
        return Ok(Some(RawTerm::RetVoid));
    }
    if let Some(rest) = s.strip_prefix("ret ") {
        return Ok(Some(RawTerm::Ret(parse_raw_op(rest, cx)?)));
    }
    if let Some(rest) = s.strip_prefix("br ") {
        let args = split_args(rest);
        return match args.len() {
            1 => Ok(Some(RawTerm::Br(parse_block_ref(args[0], cx)?))),
            3 => Ok(Some(RawTerm::CondBr(
                parse_raw_op(args[0], cx)?,
                parse_block_ref(args[1], cx)?,
                parse_block_ref(args[2], cx)?,
            ))),
            _ => cx.err_at(rest, "br needs 1 or 3 arguments"),
        };
    }
    Ok(None)
}

struct RawFunc {
    /// Line of the `define`/`declare` (for duplicate-symbol reporting).
    line: usize,
    name: String,
    params: Vec<Ty>,
    ret: Option<Ty>,
    attrs: FnAttrs,
    linkage: Linkage,
    /// Blocks: (id, instructions, terminator, terminator line).
    blocks: Vec<(BlockId, Vec<RawInst>, RawTerm, usize)>,
    is_decl: bool,
}

/// Parse a function header like
/// `define internal i64 @f(i64 %arg0, ptr %arg1) [noinline] {`.
fn parse_header(line_s: &str, cx: &Cx<'_>, decl: bool) -> PResult<RawFunc> {
    let mut rest = line_s.trim();
    rest = match rest.strip_prefix(if decl { "declare" } else { "define" }) {
        Some(r) => r.trim(),
        None => return cx.err("expected `define` or `declare`"),
    };
    let linkage = if let Some(r) = rest.strip_prefix("internal ") {
        rest = r;
        Linkage::Internal
    } else {
        Linkage::External
    };
    let (ret_s, r) = rest
        .split_once(' ')
        .ok_or_else(|| cx.error_at(rest, "malformed header: missing return type"))?;
    let ret = if ret_s == "void" {
        None
    } else {
        Some(parse_ty(ret_s, cx)?)
    };
    let r = r.trim();
    let at = r
        .strip_prefix('@')
        .ok_or_else(|| cx.error_at(r, "malformed header: missing @name"))?;
    let open = at
        .find('(')
        .ok_or_else(|| cx.error_at(at, "malformed header: missing `(`"))?;
    let name = at[..open].to_string();
    let close = at
        .find(')')
        .ok_or_else(|| cx.error_at(at, "malformed header: missing `)`"))?;
    let params = split_args(&at[open + 1..close])
        .into_iter()
        .map(|p| {
            let ty_s = p.split_whitespace().next().unwrap_or(p);
            parse_ty(ty_s, cx)
        })
        .collect::<PResult<Vec<_>>>()?;
    let tail = &at[close + 1..];
    let mut attrs = FnAttrs::default();
    if let Some(a0) = tail.find('[') {
        if let Some(a1) = tail.find(']') {
            for a in tail[a0 + 1..a1].split(',') {
                match a.trim() {
                    "aligned_barrier" => attrs.aligned_barrier = true,
                    "no_call_asm" => attrs.no_call_asm = true,
                    "always_inline" => attrs.always_inline = true,
                    "noinline" => attrs.no_inline = true,
                    "read_none" => attrs.read_none = true,
                    other => return cx.err_at(a, format!("unknown attribute {other:?}")),
                }
            }
        }
    }
    Ok(RawFunc {
        line: cx.line,
        name,
        params,
        ret,
        attrs,
        linkage,
        blocks: Vec::new(),
        is_decl: decl,
    })
}

/// Lenient parse: the `; nzomp-ir vN` header is optional (a *wrong*
/// version is still rejected). Use [`parse_module_strict`] for on-disk
/// `.nzir` files.
pub fn parse_module(text: &str) -> PResult<Module> {
    parse_module_inner(text, false)
}

/// Strict parse of the on-disk `.nzir` format: the first non-blank line
/// must be the `; nzomp-ir v1` version header.
pub fn parse_module_strict(text: &str) -> PResult<Module> {
    parse_module_inner(text, true)
}

fn parse_module_inner(text: &str, strict: bool) -> PResult<Module> {
    let mut module_name = String::from("parsed");
    let mut globals: Vec<(usize, String)> = Vec::new();
    let mut kernels: Vec<(usize, String, ExecMode)> = Vec::new();
    let mut funcs: Vec<RawFunc> = Vec::new();
    let mut cur: Option<RawFunc> = None;
    let mut cur_block: Option<(BlockId, Vec<RawInst>)> = None;
    let mut saw_any = false;
    let mut saw_header = false;

    for (idx, raw_line) in text.lines().enumerate() {
        let ln = idx + 1;
        let cx = Cx::new(ln, raw_line);
        let line_s = raw_line.trim();
        if line_s.is_empty() {
            continue;
        }
        if let Some(rest) = line_s.strip_prefix("; nzomp-ir ") {
            let tok = rest.trim();
            match tok.strip_prefix('v').and_then(|n| n.parse::<u32>().ok()) {
                Some(v) if v == FORMAT_VERSION => {
                    if saw_any {
                        return cx.err("version header must be the first line");
                    }
                    saw_header = true;
                    saw_any = true;
                    continue;
                }
                Some(v) => {
                    return cx.err_at(
                        tok,
                        format!("unsupported format version v{v} (this parser reads v{FORMAT_VERSION})"),
                    );
                }
                None => {
                    return cx.err_at(tok, format!("malformed version header {tok:?}"));
                }
            }
        }
        if strict && !saw_header {
            return cx.err(format!(
                "strict mode: first line must be the `; nzomp-ir v{FORMAT_VERSION}` header"
            ));
        }
        saw_any = true;
        if let Some(rest) = line_s.strip_prefix("; module ") {
            module_name = rest.trim().to_string();
            continue;
        }
        if let Some(rest) = line_s.strip_prefix("; kernel @") {
            let (name, mode) = rest
                .split_once(" mode=")
                .ok_or_else(|| cx.error_at(rest, "kernel needs mode"))?;
            let mode = match mode.trim() {
                "Generic" => ExecMode::Generic,
                "Spmd" => ExecMode::Spmd,
                other => return cx.err_at(other, format!("unknown exec mode {other:?}")),
            };
            kernels.push((ln, name.trim().to_string(), mode));
            continue;
        }
        if line_s.starts_with(';') {
            continue; // other comments
        }
        if line_s.starts_with('@') && cur.is_none() {
            globals.push((ln, line_s.to_string()));
            continue;
        }
        if line_s.starts_with("declare ") {
            funcs.push(parse_header(line_s, &cx, true)?);
            continue;
        }
        if line_s.starts_with("define ") {
            if cur.is_some() {
                return cx.err("nested `define` (missing `}`?)");
            }
            cur = Some(parse_header(line_s.trim_end_matches('{').trim(), &cx, false)?);
            continue;
        }
        if line_s == "}" {
            let mut f = cur.take().ok_or_else(|| cx.error("stray `}`"))?;
            if let Some((bid, insts)) = cur_block.take() {
                return cx.err(format!(
                    "bb{} has no terminator ({} insts)",
                    bid.0,
                    insts.len()
                ));
            }
            f.is_decl = false;
            funcs.push(f);
            continue;
        }
        if let Some(rest) = line_s.strip_suffix(':') {
            // Block label.
            if let Some((bid, insts)) = cur_block.take() {
                return cx.err(format!(
                    "bb{} not terminated before new label ({} insts)",
                    bid.0,
                    insts.len()
                ));
            }
            cur_block = Some((parse_block_ref(rest, &cx)?, Vec::new()));
            continue;
        }
        // Inside a block: instruction or terminator.
        let Some(f) = cur.as_mut() else {
            return cx.err(format!("unexpected line outside function: {line_s:?}"));
        };
        let Some((bid, insts)) = cur_block.as_mut() else {
            return cx.err("instruction outside a block");
        };
        if let Some(term) = parse_term(line_s, &cx)? {
            let done = std::mem::take(insts);
            f.blocks.push((*bid, done, term, ln));
            cur_block = None;
            continue;
        }
        // `%N = body` or void `body`.
        let (result, body_s) = if line_s.starts_with('%') {
            let (lhs, rhs) = line_s
                .split_once('=')
                .ok_or_else(|| cx.error("expected `=`"))?;
            let id = lhs
                .trim()
                .strip_prefix('%')
                .and_then(|n| n.parse::<u32>().ok())
                .ok_or_else(|| cx.error_at(lhs.trim(), "bad result id"))?;
            (Some(id), rhs.trim())
        } else {
            (None, line_s)
        };
        insts.push(RawInst {
            line: ln,
            result,
            body: parse_inst_body(body_s, &cx)?,
        });
    }
    if cur.is_some() {
        return Err(ParseError {
            line: text.lines().count(),
            col: 0,
            message: "unterminated function".into(),
        });
    }

    build_module(module_name, globals, kernels, funcs)
}

fn parse_global_line(ln: usize, s: &str) -> PResult<Global> {
    let cx = Cx::new(ln, s);
    // `@name = space [N x i8] const? init=... linkage=...`
    let Some(rest) = s.strip_prefix('@') else {
        return cx.err("global must start with `@`");
    };
    let (name, rest) = rest
        .split_once('=')
        .ok_or_else(|| cx.error("global needs `=`"))?;
    let toks: Vec<&str> = rest.split_whitespace().collect();
    if toks.len() < 4 {
        return cx.err("malformed global");
    }
    let space = parse_space(toks[0], &cx)?;
    let size = toks[1]
        .trim_start_matches('[')
        .parse::<u64>()
        .or_else(|_| cx.err_at(toks[1], "bad global size"))?;
    let mut constant = false;
    let mut init = Init::Zero;
    let mut linkage = Linkage::Internal;
    for t in &toks[2..] {
        if *t == "const" {
            constant = true;
        } else if let Some(v) = t.strip_prefix("init=") {
            init = if v == "zero" {
                Init::Zero
            } else if let Some(n) = v.strip_prefix("i64:") {
                Init::I64(n.parse::<i64>().or_else(|_| cx.err_at(t, "bad i64 init"))?)
            } else if let Some(h) = v.strip_prefix("hex:") {
                let bytes = (0..h.len() / 2)
                    .map(|i| u8::from_str_radix(&h[2 * i..2 * i + 2], 16))
                    .collect::<Result<Vec<u8>, _>>()
                    .or_else(|_| cx.err_at(t, "bad hex init"))?;
                Init::Bytes(bytes)
            } else {
                return cx.err_at(t, format!("bad init {v:?}"));
            };
        } else if let Some(l) = t.strip_prefix("linkage=") {
            linkage = match l {
                "internal" => Linkage::Internal,
                "external" => Linkage::External,
                other => return cx.err_at(t, format!("bad linkage {other:?}")),
            };
        }
    }
    Ok(Global {
        name: name.trim().to_string(),
        space,
        size,
        init,
        constant,
        linkage,
    })
}

fn build_module(
    name: String,
    globals: Vec<(usize, String)>,
    kernels: Vec<(usize, String, ExecMode)>,
    raw_funcs: Vec<RawFunc>,
) -> PResult<Module> {
    let mut m = Module::new(name);
    // Duplicate-symbol detection: `@name` must be unambiguous — the printer
    // emits one flat symbol namespace shared by globals and functions.
    let mut symbols: HashMap<&str, (&'static str, usize)> = HashMap::new();
    let mut parsed_globals = Vec::with_capacity(globals.len());
    for (ln, g) in &globals {
        let g = parse_global_line(*ln, g)?;
        parsed_globals.push((*ln, g));
    }
    for (ln, g) in &parsed_globals {
        if let Some((kind, first)) = symbols.get(g.name.as_str()) {
            return Err(ParseError {
                line: *ln,
                col: 0,
                message: format!(
                    "duplicate symbol @{}: already defined as a {kind} at line {first}",
                    g.name
                ),
            });
        }
        symbols.insert(g.name.as_str(), ("global", *ln));
    }
    for rf in &raw_funcs {
        if let Some((kind, first)) = symbols.get(rf.name.as_str()) {
            return Err(ParseError {
                line: rf.line,
                col: 0,
                message: format!(
                    "duplicate symbol @{}: already defined as a {kind} at line {first}",
                    rf.name
                ),
            });
        }
        symbols.insert(rf.name.as_str(), ("function", rf.line));
    }
    for (_, g) in parsed_globals {
        m.add_global(g);
    }
    // Pre-create all function shells so symbols resolve.
    for rf in &raw_funcs {
        m.add_function(Function {
            name: rf.name.clone(),
            params: rf.params.clone(),
            ret: rf.ret,
            blocks: Vec::new(),
            insts: Vec::new(),
            attrs: rf.attrs.clone(),
            linkage: rf.linkage,
        });
    }
    let func_by_name: HashMap<String, FuncRef> = m
        .funcs
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.clone(), FuncRef(i as u32)))
        .collect();
    let global_by_name: HashMap<String, crate::global::GlobalId> = m
        .globals
        .iter()
        .enumerate()
        .map(|(i, g)| (g.name.clone(), crate::global::GlobalId(i as u32)))
        .collect();

    for (fi, rf) in raw_funcs.into_iter().enumerate() {
        if rf.is_decl {
            continue;
        }
        // Phase 1: allocate dense InstIds for every instruction in printed
        // order — value results and void instructions alike. This is what
        // makes the parser reproduce a normalized module's arena exactly.
        let mut id_map: HashMap<u32, InstId> = HashMap::new();
        let mut next: u32 = 0;
        for (_bid, insts, _t, _tl) in &rf.blocks {
            for ri in insts {
                if let Some(r) = ri.result {
                    if id_map.insert(r, InstId(next)).is_some() {
                        return Err(ParseError {
                            line: ri.line,
                            col: 0,
                            message: format!("duplicate result id %{r}"),
                        });
                    }
                }
                next += 1;
            }
        }
        let resolve = |op: &RawOp, line: usize| -> PResult<Operand> {
            Ok(match op {
                RawOp::Inst(n) => Operand::Inst(*id_map.get(n).ok_or(ParseError {
                    line,
                    col: 0,
                    message: format!("unknown value %{n}"),
                })?),
                RawOp::Param(p) => Operand::Param(*p),
                RawOp::ConstI(v, ty) => Operand::ConstI(*v, *ty),
                RawOp::ConstF(v) => Operand::ConstF(*v),
                RawOp::Symbol(s) => {
                    if let Some(g) = global_by_name.get(s) {
                        Operand::Global(*g)
                    } else if let Some(f) = func_by_name.get(s) {
                        Operand::Func(*f)
                    } else {
                        return Err(ParseError {
                            line,
                            col: 0,
                            message: format!("unknown symbol @{s}"),
                        });
                    }
                }
            })
        };

        // Phase 2: build blocks. Block ids in the text may be sparse (the
        // printer emits every block including empty unreachable ones), so
        // size the vector to the max id.
        let max_bid = rf.blocks.iter().map(|(b, _, _, _)| b.0).max().unwrap_or(0);
        let mut blocks: Vec<Block> = (0..=max_bid).map(|_| Block::new()).collect();
        let mut insts: Vec<Inst> = Vec::new();
        for (bid, rinsts, rterm, term_line) in &rf.blocks {
            let mut list = Vec::with_capacity(rinsts.len());
            for ri in rinsts {
                let inst = match &ri.body {
                    RawBody::Bin(op, ty, a, b) => Inst::Bin {
                        op: *op,
                        ty: *ty,
                        lhs: resolve(a, ri.line)?,
                        rhs: resolve(b, ri.line)?,
                    },
                    RawBody::Un(op, ty, a) => Inst::Un {
                        op: *op,
                        ty: *ty,
                        arg: resolve(a, ri.line)?,
                    },
                    RawBody::Cast(kind, to, a) => Inst::Cast {
                        kind: *kind,
                        to: *to,
                        arg: resolve(a, ri.line)?,
                    },
                    RawBody::Cmp(pred, ty, a, b) => Inst::Cmp {
                        pred: *pred,
                        ty: *ty,
                        lhs: resolve(a, ri.line)?,
                        rhs: resolve(b, ri.line)?,
                    },
                    RawBody::Select(ty, c, t, f) => Inst::Select {
                        ty: *ty,
                        cond: resolve(c, ri.line)?,
                        if_true: resolve(t, ri.line)?,
                        if_false: resolve(f, ri.line)?,
                    },
                    RawBody::Load(ty, p) => Inst::Load {
                        ty: *ty,
                        ptr: resolve(p, ri.line)?,
                    },
                    RawBody::Store(ty, v, p) => Inst::Store {
                        ty: *ty,
                        ptr: resolve(p, ri.line)?,
                        value: resolve(v, ri.line)?,
                    },
                    RawBody::PtrAdd(a, b) => Inst::PtrAdd {
                        base: resolve(a, ri.line)?,
                        offset: resolve(b, ri.line)?,
                    },
                    RawBody::Alloca(size) => Inst::Alloca { size: *size },
                    RawBody::Call(ret, callee, args) => Inst::Call {
                        callee: resolve(callee, ri.line)?,
                        args: args
                            .iter()
                            .map(|a| resolve(a, ri.line))
                            .collect::<PResult<Vec<_>>>()?,
                        ret: *ret,
                    },
                    RawBody::Atomic(op, ty, p, v) => Inst::Atomic {
                        op: *op,
                        ty: *ty,
                        ptr: resolve(p, ri.line)?,
                        value: resolve(v, ri.line)?,
                    },
                    RawBody::Cas(ty, p, e, n) => Inst::Cas {
                        ty: *ty,
                        ptr: resolve(p, ri.line)?,
                        expected: resolve(e, ri.line)?,
                        new: resolve(n, ri.line)?,
                    },
                    RawBody::Intr(intr, args) => Inst::Intr {
                        intr: *intr,
                        args: args
                            .iter()
                            .map(|a| resolve(a, ri.line))
                            .collect::<PResult<Vec<_>>>()?,
                    },
                    RawBody::Phi(ty, incs) => Inst::Phi {
                        ty: *ty,
                        incomings: incs
                            .iter()
                            .map(|(b, v)| {
                                Ok(PhiIncoming {
                                    pred: *b,
                                    value: resolve(v, ri.line)?,
                                })
                            })
                            .collect::<PResult<Vec<_>>>()?,
                    },
                };
                let id = InstId(insts.len() as u32);
                insts.push(inst);
                list.push(id);
            }
            let term = match rterm {
                RawTerm::Br(b) => Term::Br(*b),
                RawTerm::CondBr(c, t, f) => Term::CondBr {
                    cond: resolve(c, *term_line)?,
                    if_true: *t,
                    if_false: *f,
                },
                RawTerm::RetVoid => Term::Ret(None),
                RawTerm::Ret(v) => Term::Ret(Some(resolve(v, *term_line)?)),
                RawTerm::Unreachable => Term::Unreachable,
            };
            blocks[bid.index()] = Block {
                insts: list,
                term,
            };
        }
        let f = &mut m.funcs[fi];
        f.blocks = blocks;
        f.insts = insts;
    }

    for (kline, kname, mode) in kernels {
        let fr = m.find_func(&kname).ok_or(ParseError {
            line: kline,
            col: 0,
            message: format!("kernel @{kname} not defined"),
        })?;
        m.add_kernel(fr, mode);
    }
    Ok(m)
}
