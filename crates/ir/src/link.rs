//! Module linking: merge the device runtime (an IR library, ref. §II-B:
//! "the GPU runtime library is first linked into the user code as an LLVM
//! bytecode library and then optimized together with the user application")
//! into the application module, resolving declarations to definitions.

use std::collections::HashMap;
use std::fmt;

use crate::global::GlobalId;
use crate::module::{FuncRef, Module};
use crate::value::Operand;

#[derive(Debug, Clone, PartialEq)]
pub enum LinkError {
    DuplicateFunction(String),
    DuplicateGlobal(String),
    SignatureMismatch(String),
    /// A `src` kernel names a function index the module does not contain.
    MalformedKernel(u32),
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::DuplicateFunction(n) => write!(f, "duplicate definition of function @{n}"),
            LinkError::DuplicateGlobal(n) => write!(f, "duplicate definition of global @{n}"),
            LinkError::SignatureMismatch(n) => {
                write!(f, "declaration/definition signature mismatch for @{n}")
            }
            LinkError::MalformedKernel(i) => {
                write!(f, "kernel references missing function index {i}")
            }
        }
    }
}

impl std::error::Error for LinkError {}

/// Link `src` into `dst`. Declarations in either module are resolved against
/// definitions in the other; remaining unresolved declarations are allowed
/// (they fail at execution time if actually called).
pub fn link(dst: &mut Module, src: Module) -> Result<(), LinkError> {
    // --- globals: names must be unique across modules -------------------
    let mut global_map: HashMap<GlobalId, GlobalId> = HashMap::new();
    for (i, g) in src.globals.iter().enumerate() {
        if dst.find_global(&g.name).is_some() {
            return Err(LinkError::DuplicateGlobal(g.name.clone()));
        }
        let new_id = dst.add_global(g.clone());
        global_map.insert(GlobalId(i as u32), new_id);
    }

    // --- functions -------------------------------------------------------
    // First decide, for every src function, which dst slot it maps to.
    let mut func_map: HashMap<FuncRef, FuncRef> = HashMap::new();
    let mut to_install: Vec<(FuncRef, FuncRef)> = Vec::new(); // (dst slot, src idx)
    for (i, sf) in src.funcs.iter().enumerate() {
        let src_ref = FuncRef(i as u32);
        match dst.find_func(&sf.name) {
            Some(existing) => {
                let df = dst.func(existing);
                if df.params != sf.params || df.ret != sf.ret {
                    return Err(LinkError::SignatureMismatch(sf.name.clone()));
                }
                match (df.is_declaration(), sf.is_declaration()) {
                    (true, false) => {
                        // dst declared, src defines: install src body later.
                        to_install.push((existing, src_ref));
                        func_map.insert(src_ref, existing);
                    }
                    (_, true) => {
                        // src only declares; resolve to dst's slot.
                        func_map.insert(src_ref, existing);
                    }
                    (false, false) => {
                        return Err(LinkError::DuplicateFunction(sf.name.clone()));
                    }
                }
            }
            None => {
                let new_ref = dst.add_function(sf.clone());
                func_map.insert(src_ref, new_ref);
                if !sf.is_declaration() {
                    to_install.push((new_ref, src_ref));
                }
            }
        }
    }

    // Install bodies for replaced declarations.
    for &(dst_ref, src_ref) in &to_install {
        let sf = &src.funcs[src_ref.index()];
        let d = dst.func_mut(dst_ref);
        d.blocks = sf.blocks.clone();
        d.insts = sf.insts.clone();
        d.attrs = sf.attrs.clone();
        d.linkage = sf.linkage;
    }

    // Remap Func/Global operands in every function we pulled from src.
    let remap = |op: Operand| -> Operand {
        match op {
            Operand::Func(fr) => Operand::Func(*func_map.get(&fr).unwrap_or(&fr)),
            Operand::Global(g) => Operand::Global(*global_map.get(&g).unwrap_or(&g)),
            other => other,
        }
    };
    for &(dst_ref, _) in &to_install {
        let f = dst.func_mut(dst_ref);
        for inst in &mut f.insts {
            inst.map_operands(remap);
        }
        for block in &mut f.blocks {
            block.term.map_operands(remap);
        }
    }

    // Kernels from src (rare, but allowed). Every src function index is in
    // `func_map`, so a miss means the kernel table itself is malformed.
    for k in &src.kernels {
        let func = *func_map
            .get(&k.func)
            .ok_or(LinkError::MalformedKernel(k.func.0))?;
        dst.add_kernel(func, k.exec_mode);
    }
    Ok(())
}
