//! Textual printer for the versioned on-disk IR format (`.nzir`).
//!
//! The format is specified in `docs/ir-format.md`. [`print_module`] emits a
//! `; nzomp-ir vN` header ([`FORMAT_VERSION`]); [`crate::parser`] is its
//! exact inverse: `parse(print(m)) == m` (structural equality) for every
//! module in normal form (see [`crate::Module::renumber`]).

use std::fmt::Write;

use crate::func::{BlockId, Function};
use crate::inst::{Inst, InstId, Intrinsic, Term};
use crate::module::Module;
use crate::value::Operand;

/// Version of the on-disk text format this printer emits. Bumped on any
/// change that alters the printed bytes of an existing module; the parser
/// accepts exactly this version (see `docs/ir-format.md` for the
/// stability guarantees).
pub const FORMAT_VERSION: u32 = 1;

/// Exact f64 literal: every bit pattern round-trips through
/// [`crate::parser`]. Finite values use Rust's shortest-exact decimal
/// representation (which preserves `-0.0` and subnormals); infinities
/// print as `inf`/`-inf`; NaNs print their full bit pattern, because a
/// decimal literal cannot carry a NaN payload or sign.
pub fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        format!("nan:0x{:016x}", v.to_bits())
    } else if v == f64::INFINITY {
        "inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-inf".to_string()
    } else {
        format!("{v:?}")
    }
}

fn fmt_operand(m: Option<&Module>, op: Operand) -> String {
    match op {
        Operand::Inst(i) => format!("%{}", i.0),
        Operand::Param(p) => format!("%arg{p}"),
        Operand::ConstI(v, ty) => format!("{ty} {v}"),
        Operand::ConstF(v) => format!("f64 {}", fmt_f64(v)),
        Operand::Global(g) => match m {
            Some(m) => format!("@{}", m.global(g).name),
            None => format!("@g{}", g.0),
        },
        Operand::Func(f) => match m {
            Some(m) => format!("@{}", m.func(f).name),
            None => format!("@f{}", f.0),
        },
    }
}

fn fmt_inst(m: Option<&Module>, id: InstId, inst: &Inst) -> String {
    let lhs = if inst.result_ty().is_some() {
        format!("%{} = ", id.0)
    } else {
        String::new()
    };
    let o = |op: Operand| fmt_operand(m, op);
    let body = match inst {
        Inst::Bin { op, ty, lhs, rhs } => {
            format!("{op:?}.{ty} {}, {}", o(*lhs), o(*rhs))
        }
        Inst::Un { op, ty, arg } => format!("{op:?}.{ty} {}", o(*arg)),
        Inst::Cast { kind, to, arg } => format!("{kind:?} {} to {to}", o(*arg)),
        Inst::Cmp { pred, ty, lhs, rhs } => {
            format!("cmp.{pred:?}.{ty} {}, {}", o(*lhs), o(*rhs))
        }
        Inst::Select {
            ty,
            cond,
            if_true,
            if_false,
        } => format!(
            "select.{ty} {}, {}, {}",
            o(*cond),
            o(*if_true),
            o(*if_false)
        ),
        Inst::Load { ty, ptr } => format!("load {ty}, {}", o(*ptr)),
        Inst::Store { ty, ptr, value } => format!("store {ty} {}, {}", o(*value), o(*ptr)),
        Inst::PtrAdd { base, offset } => format!("ptradd {}, {}", o(*base), o(*offset)),
        Inst::Alloca { size } => format!("alloca {size}"),
        Inst::Call { callee, args, ret } => {
            let args: Vec<String> = args.iter().map(|a| o(*a)).collect();
            let retty = ret.map(|t| t.to_string()).unwrap_or_else(|| "void".into());
            format!("call {retty} {}({})", o(*callee), args.join(", "))
        }
        Inst::Atomic { op, ty, ptr, value } => {
            format!("atomic.{op:?}.{ty} {}, {}", o(*ptr), o(*value))
        }
        Inst::Cas {
            ty,
            ptr,
            expected,
            new,
        } => format!("cas.{ty} {}, {}, {}", o(*ptr), o(*expected), o(*new)),
        Inst::Intr { intr, args } => {
            let args: Vec<String> = args.iter().map(|a| o(*a)).collect();
            let name = match intr {
                Intrinsic::ThreadId => "thread.id",
                Intrinsic::BlockId => "block.id",
                Intrinsic::BlockDim => "block.dim",
                Intrinsic::GridDim => "grid.dim",
                Intrinsic::AlignedBarrier => "barrier.aligned",
                Intrinsic::Barrier => "barrier",
                Intrinsic::Assume(()) => "assume",
                Intrinsic::AssertFail => "assert.fail",
                Intrinsic::Malloc => "malloc",
                Intrinsic::Free => "free",
            };
            format!("{name}({})", args.join(", "))
        }
        Inst::Phi { ty, incomings } => {
            let inc: Vec<String> = incomings
                .iter()
                .map(|i| format!("[bb{}: {}]", i.pred.0, o(i.value)))
                .collect();
            format!("phi {ty} {}", inc.join(", "))
        }
    };
    format!("{lhs}{body}")
}

fn fmt_term(m: Option<&Module>, t: &Term) -> String {
    match t {
        Term::Br(b) => format!("br bb{}", b.0),
        Term::CondBr {
            cond,
            if_true,
            if_false,
        } => format!(
            "br {}, bb{}, bb{}",
            fmt_operand(m, *cond),
            if_true.0,
            if_false.0
        ),
        Term::Ret(None) => "ret void".into(),
        Term::Ret(Some(v)) => format!("ret {}", fmt_operand(m, *v)),
        Term::Unreachable => "unreachable".into(),
    }
}

/// Print a function (with module context for symbol names if available).
pub fn print_function(m: Option<&Module>, f: &Function) -> String {
    let mut s = String::new();
    let params: Vec<String> = f
        .params
        .iter()
        .enumerate()
        .map(|(i, t)| format!("{t} %arg{i}"))
        .collect();
    let ret = f.ret.map(|t| t.to_string()).unwrap_or_else(|| "void".into());
    let mut attrs = Vec::new();
    if f.attrs.aligned_barrier {
        attrs.push("aligned_barrier");
    }
    if f.attrs.no_call_asm {
        attrs.push("no_call_asm");
    }
    if f.attrs.always_inline {
        attrs.push("always_inline");
    }
    if f.attrs.no_inline {
        attrs.push("noinline");
    }
    if f.attrs.read_none {
        attrs.push("read_none");
    }
    let attrs = if attrs.is_empty() {
        String::new()
    } else {
        format!(" [{}]", attrs.join(","))
    };
    let linkage = if f.linkage == crate::func::Linkage::Internal {
        "internal "
    } else {
        ""
    };
    if f.is_declaration() {
        let _ = writeln!(
            s,
            "declare {linkage}{ret} @{}({}){attrs}",
            f.name,
            params.join(", ")
        );
        return s;
    }
    let _ = writeln!(
        s,
        "define {linkage}{ret} @{}({}){attrs} {{",
        f.name,
        params.join(", ")
    );
    for (bid, block) in f.iter_blocks() {
        let _ = writeln!(s, "bb{}:", bid.0);
        for &iid in &block.insts {
            let _ = writeln!(s, "  {}", fmt_inst(m, iid, f.inst(iid)));
        }
        let _ = writeln!(s, "  {}", fmt_term(m, &block.term));
    }
    let _ = writeln!(s, "}}");
    s
}

/// Print an entire module in the versioned on-disk format.
pub fn print_module(m: &Module) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "; nzomp-ir v{FORMAT_VERSION}");
    let _ = writeln!(s, "; module {}", m.name);
    for g in &m.globals {
        let c = if g.constant { " const" } else { "" };
        let init = match &g.init {
            crate::global::Init::Zero => "zero".to_string(),
            crate::global::Init::I64(v) => format!("i64:{v}"),
            crate::global::Init::Bytes(b) => {
                let hex: String = b.iter().map(|x| format!("{x:02x}")).collect();
                format!("hex:{hex}")
            }
        };
        let linkage = match g.linkage {
            crate::func::Linkage::Internal => "internal",
            crate::func::Linkage::External => "external",
        };
        let _ = writeln!(
            s,
            "@{} = {} [{} x i8]{c} init={init} linkage={linkage}",
            g.name, g.space, g.size
        );
    }
    for k in &m.kernels {
        let _ = writeln!(
            s,
            "; kernel @{} mode={:?}",
            m.func(k.func).name,
            k.exec_mode
        );
    }
    for f in &m.funcs {
        s.push_str(&print_function(Some(m), f));
    }
    s
}

/// Convenience for `{:?}`-style debugging of a single block.
pub fn print_block(m: Option<&Module>, f: &Function, b: BlockId) -> String {
    let mut s = format!("bb{}:\n", b.0);
    for &iid in &f.block(b).insts {
        let _ = writeln!(s, "  {}", fmt_inst(m, iid, f.inst(iid)));
    }
    let _ = writeln!(s, "  {}", fmt_term(m, &f.block(b).term));
    s
}
