//! Module-level global variables.

use crate::func::Linkage;
use crate::types::Space;

/// Dense index of a global within its module.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId(pub u32);

impl GlobalId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Static initializer of a global.
#[derive(Clone, Debug, PartialEq)]
pub enum Init {
    /// All-zero bytes. The field-sensitive access analysis exploits this for
    /// the "loads from a zero-initialized region fold to zero" deduction
    /// (paper §IV-B1, thread-states array).
    Zero,
    /// Explicit byte image.
    Bytes(Vec<u8>),
    /// Convenience: a single little-endian i64 (e.g. the compile-time
    /// configuration globals the oversubscription flags lower to, §III-F).
    I64(i64),
}

impl Init {
    pub fn byte_at(&self, off: u64) -> u8 {
        match self {
            Init::Zero => 0,
            Init::Bytes(b) => b.get(off as usize).copied().unwrap_or(0),
            Init::I64(v) => {
                if off < 8 {
                    v.to_le_bytes()[off as usize]
                } else {
                    0
                }
            }
        }
    }

    /// Read `size` (1/4/8) little-endian bytes at `off` as a sign-free int.
    pub fn read_int(&self, off: u64, size: u64) -> i64 {
        let mut bytes = [0u8; 8];
        for i in 0..size {
            bytes[i as usize] = self.byte_at(off + i);
        }
        i64::from_le_bytes(bytes)
    }
}

/// A global variable. Shared-space globals are the runtime state the
/// paper's optimizations try to eliminate — their total retained size is
/// the "SMem" column of Fig. 11.
#[derive(Clone, Debug, PartialEq)]
pub struct Global {
    pub name: String,
    pub space: Space,
    pub size: u64,
    pub init: Init,
    /// Immutable after launch. Constant globals participate in load folding
    /// (this is how the compile-time flag globals of §III-F/§III-G work).
    pub constant: bool,
    pub linkage: Linkage,
}

impl Global {
    pub fn new(name: impl Into<String>, space: Space, size: u64, init: Init) -> Global {
        Global {
            name: name.into(),
            space,
            size,
            init,
            constant: false,
            linkage: Linkage::Internal,
        }
    }

    pub fn constant(name: impl Into<String>, space: Space, size: u64, init: Init) -> Global {
        Global {
            constant: true,
            ..Global::new(name, space, size, init)
        }
    }
}
