//! Instructions and block terminators.

use crate::func::BlockId;
use crate::types::Ty;
use crate::value::{Operand, PhiIncoming};

/// Dense index of an instruction within its function's arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId(pub u32);

impl InstId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Integer / float binary operators. Integer semantics are 64-bit wrapping
/// two's complement regardless of the nominal type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    SDiv,
    SRem,
    UDiv,
    URem,
    And,
    Or,
    Xor,
    Shl,
    LShr,
    AShr,
    SMin,
    SMax,
    FAdd,
    FSub,
    FMul,
    FDiv,
    FMin,
    FMax,
}

impl BinOp {
    #[inline]
    pub fn is_float(self) -> bool {
        matches!(
            self,
            BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv | BinOp::FMin | BinOp::FMax
        )
    }

    /// Commutative operators, used by the folder to canonicalize.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add
                | BinOp::Mul
                | BinOp::And
                | BinOp::Or
                | BinOp::Xor
                | BinOp::SMin
                | BinOp::SMax
                | BinOp::FAdd
                | BinOp::FMul
                | BinOp::FMin
                | BinOp::FMax
        )
    }
}

/// Unary operators (transcendentals are intrinsic-like but modeled as unops
/// since they are pure).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    Neg,
    Not,
    FNeg,
    FAbs,
    Sqrt,
    Sin,
    Cos,
    Exp,
    Log,
}

/// Cast kinds between the scalar types.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CastKind {
    /// Integer-to-integer resize (sign-extends when widening from a signed
    /// narrower value; truncates when narrowing).
    IntCast,
    /// Zero-extending integer resize.
    ZExtCast,
    /// Signed int -> f64.
    SiToFp,
    /// f64 -> signed int (round toward zero).
    FpToSi,
    /// Reinterpret pointer as i64 or back.
    PtrCast,
}

/// Comparison predicates. Apply to ints, floats, or pointers depending on
/// the operand type recorded on the instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Pred {
    Eq,
    Ne,
    Slt,
    Sle,
    Sgt,
    Sge,
    Ult,
    Ule,
    Ugt,
    Uge,
}

/// Read-modify-write atomic operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AtomicOp {
    Add,
    Max,
    Min,
    Exchange,
}

/// GPU / runtime intrinsics. These are the only operations with
/// target-specific semantics; everything the paper's optimizations reason
/// about (barrier alignment, thread identity, assumptions) is explicit here.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    /// Hardware thread id within the team (i64).
    ThreadId,
    /// Team (block) id within the grid (i64).
    BlockId,
    /// Number of threads per team (i64).
    BlockDim,
    /// Number of teams in the grid (i64).
    GridDim,
    /// Team-wide barrier that every thread of the team is guaranteed to
    /// reach (paper §III-G / Fig. 6: `ext_aligned_barrier`). Removable by
    /// the aligned-barrier-elimination pass (§IV-D).
    AlignedBarrier,
    /// Team-wide barrier that may be reached from divergent control flow
    /// (e.g. the generic-mode state machine). Never removed.
    Barrier,
    /// Compiler assumption: the i1 operand is true (paper §III-G). In debug
    /// builds the vGPU verifies it; in release it is free.
    Assume(()),
    /// Abort kernel execution with an assertion failure.
    AssertFail,
    /// Device-side heap allocation (fallback of the shared-memory stack).
    Malloc,
    /// Device-side heap free.
    Free,
}

/// One instruction. Instructions that produce a value have a well-defined
/// result type (see [`Inst::result_ty`]); the rest are `void`.
#[derive(Clone, Debug, PartialEq)]
pub enum Inst {
    Bin {
        op: BinOp,
        ty: Ty,
        lhs: Operand,
        rhs: Operand,
    },
    Un {
        op: UnOp,
        ty: Ty,
        arg: Operand,
    },
    Cast {
        kind: CastKind,
        to: Ty,
        arg: Operand,
    },
    Cmp {
        pred: Pred,
        ty: Ty,
        lhs: Operand,
        rhs: Operand,
    },
    Select {
        ty: Ty,
        cond: Operand,
        if_true: Operand,
        if_false: Operand,
    },
    /// Load `ty.size()` bytes from `ptr`.
    Load {
        ty: Ty,
        ptr: Operand,
    },
    /// Store `ty.size()` bytes of `value` to `ptr`.
    Store {
        ty: Ty,
        ptr: Operand,
        value: Operand,
    },
    /// `base + offset` in bytes (the GEP of this IR).
    PtrAdd {
        base: Operand,
        offset: Operand,
    },
    /// Reserve `size` bytes of per-thread local memory. Always in the entry
    /// block (the builder enforces this).
    Alloca {
        size: u64,
    },
    /// Direct or indirect call. `callee` is `Operand::Func` for direct
    /// calls; anything else is an indirect call through a function pointer.
    Call {
        callee: Operand,
        args: Vec<Operand>,
        ret: Option<Ty>,
    },
    /// Atomic read-modify-write; returns the previous value.
    Atomic {
        op: AtomicOp,
        ty: Ty,
        ptr: Operand,
        value: Operand,
    },
    /// Atomic compare-and-swap; returns the previous value.
    Cas {
        ty: Ty,
        ptr: Operand,
        expected: Operand,
        new: Operand,
    },
    Intr {
        intr: Intrinsic,
        args: Vec<Operand>,
    },
    Phi {
        ty: Ty,
        incomings: Vec<PhiIncoming>,
    },
}

impl Inst {
    /// Result type, or `None` for void instructions.
    pub fn result_ty(&self) -> Option<Ty> {
        match self {
            Inst::Bin { ty, .. } | Inst::Un { ty, .. } => Some(*ty),
            Inst::Cast { to, .. } => Some(*to),
            Inst::Cmp { .. } => Some(Ty::I1),
            Inst::Select { ty, .. } => Some(*ty),
            Inst::Load { ty, .. } => Some(*ty),
            Inst::Store { .. } => None,
            Inst::PtrAdd { .. } | Inst::Alloca { .. } => Some(Ty::Ptr),
            Inst::Call { ret, .. } => *ret,
            Inst::Atomic { ty, .. } | Inst::Cas { ty, .. } => Some(*ty),
            Inst::Intr { intr, .. } => match intr {
                Intrinsic::ThreadId
                | Intrinsic::BlockId
                | Intrinsic::BlockDim
                | Intrinsic::GridDim => Some(Ty::I64),
                Intrinsic::Malloc => Some(Ty::Ptr),
                _ => None,
            },
            Inst::Phi { ty, .. } => Some(*ty),
        }
    }

    /// Does executing this instruction read or write memory, synchronize, or
    /// otherwise have an effect beyond producing its result? Loads count:
    /// they observe shared state (this is the conservative side used by the
    /// barrier-elimination pass).
    pub fn has_side_effects(&self) -> bool {
        match self {
            Inst::Load { .. }
            | Inst::Store { .. }
            | Inst::Call { .. }
            | Inst::Atomic { .. }
            | Inst::Cas { .. } => true,
            Inst::Intr { intr, .. } => !matches!(
                intr,
                Intrinsic::ThreadId
                    | Intrinsic::BlockId
                    | Intrinsic::BlockDim
                    | Intrinsic::GridDim
                    | Intrinsic::Assume(())
            ),
            _ => false,
        }
    }

    /// Iterate over all operand uses (not including phi predecessors).
    pub fn operands(&self) -> Vec<Operand> {
        match self {
            Inst::Bin { lhs, rhs, .. } | Inst::Cmp { lhs, rhs, .. } => vec![*lhs, *rhs],
            Inst::Un { arg, .. } | Inst::Cast { arg, .. } => vec![*arg],
            Inst::Select {
                cond,
                if_true,
                if_false,
                ..
            } => vec![*cond, *if_true, *if_false],
            Inst::Load { ptr, .. } => vec![*ptr],
            Inst::Store { ptr, value, .. } => vec![*ptr, *value],
            Inst::PtrAdd { base, offset } => vec![*base, *offset],
            Inst::Alloca { .. } => vec![],
            Inst::Call { callee, args, .. } => {
                let mut v = vec![*callee];
                v.extend_from_slice(args);
                v
            }
            Inst::Atomic { ptr, value, .. } => vec![*ptr, *value],
            Inst::Cas {
                ptr, expected, new, ..
            } => vec![*ptr, *expected, *new],
            Inst::Intr { args, .. } => args.clone(),
            Inst::Phi { incomings, .. } => incomings.iter().map(|i| i.value).collect(),
        }
    }

    /// Apply `f` to every operand use in place (including phi incomings).
    pub fn map_operands(&mut self, mut f: impl FnMut(Operand) -> Operand) {
        match self {
            Inst::Bin { lhs, rhs, .. } | Inst::Cmp { lhs, rhs, .. } => {
                *lhs = f(*lhs);
                *rhs = f(*rhs);
            }
            Inst::Un { arg, .. } | Inst::Cast { arg, .. } => *arg = f(*arg),
            Inst::Select {
                cond,
                if_true,
                if_false,
                ..
            } => {
                *cond = f(*cond);
                *if_true = f(*if_true);
                *if_false = f(*if_false);
            }
            Inst::Load { ptr, .. } => *ptr = f(*ptr),
            Inst::Store { ptr, value, .. } => {
                *ptr = f(*ptr);
                *value = f(*value);
            }
            Inst::PtrAdd { base, offset } => {
                *base = f(*base);
                *offset = f(*offset);
            }
            Inst::Alloca { .. } => {}
            Inst::Call { callee, args, .. } => {
                *callee = f(*callee);
                for a in args {
                    *a = f(*a);
                }
            }
            Inst::Atomic { ptr, value, .. } => {
                *ptr = f(*ptr);
                *value = f(*value);
            }
            Inst::Cas {
                ptr, expected, new, ..
            } => {
                *ptr = f(*ptr);
                *expected = f(*expected);
                *new = f(*new);
            }
            Inst::Intr { args, .. } => {
                for a in args {
                    *a = f(*a);
                }
            }
            Inst::Phi { incomings, .. } => {
                for inc in incomings {
                    inc.value = f(inc.value);
                }
            }
        }
    }

    pub fn is_phi(&self) -> bool {
        matches!(self, Inst::Phi { .. })
    }
}

/// Block terminators.
#[derive(Clone, Debug, PartialEq)]
pub enum Term {
    Br(BlockId),
    CondBr {
        cond: Operand,
        if_true: BlockId,
        if_false: BlockId,
    },
    Ret(Option<Operand>),
    Unreachable,
}

impl Term {
    /// Successor blocks in order.
    pub fn succs(&self) -> Vec<BlockId> {
        match self {
            Term::Br(b) => vec![*b],
            Term::CondBr {
                if_true, if_false, ..
            } => vec![*if_true, *if_false],
            Term::Ret(_) | Term::Unreachable => vec![],
        }
    }

    pub fn operands(&self) -> Vec<Operand> {
        match self {
            Term::CondBr { cond, .. } => vec![*cond],
            Term::Ret(Some(v)) => vec![*v],
            _ => vec![],
        }
    }

    pub fn map_operands(&mut self, mut f: impl FnMut(Operand) -> Operand) {
        match self {
            Term::CondBr { cond, .. } => *cond = f(*cond),
            Term::Ret(Some(v)) => *v = f(*v),
            _ => {}
        }
    }
}
