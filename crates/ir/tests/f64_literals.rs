//! Exact f64 literal round-trips: every representable bit pattern must
//! survive print → parse bit-for-bit (NaN payloads, signed zero, infinities,
//! subnormals). This is what makes the corpus differential suite able to
//! assert bit-identical results across optimization variants.

use nzomp_ir::parser::parse_module;
use nzomp_ir::printer::{fmt_f64, print_module};
use nzomp_ir::{ExecMode, FuncBuilder, Module, Operand, Ty};

/// Build a one-kernel module that stores `v` as an f64 constant.
fn module_with_const(v: f64) -> Module {
    let mut m = Module::new("fp");
    let mut b = FuncBuilder::new("k", vec![Ty::Ptr], None);
    b.store(Ty::F64, b.param(0), Operand::f64(v));
    b.ret(None);
    let k = m.add_function(b.finish());
    m.add_kernel(k, ExecMode::Spmd);
    m
}

/// Extract the stored constant's bits back out of a parsed module.
fn stored_bits(m: &Module) -> u64 {
    for f in &m.funcs {
        for inst in &f.insts {
            if let nzomp_ir::Inst::Store {
                value: Operand::ConstF(v),
                ..
            } = inst
            {
                return v.to_bits();
            }
        }
    }
    panic!("no f64 store found");
}

fn assert_bits_roundtrip(v: f64) {
    let m = module_with_const(v);
    let text = print_module(&m);
    let m2 = parse_module(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
    assert_eq!(
        stored_bits(&m2),
        v.to_bits(),
        "bits changed for {} (printed as {:?})",
        v,
        fmt_f64(v)
    );
    // And the module as a whole is structurally equal (bitwise f64 eq).
    assert_eq!(m2, m);
}

#[test]
fn nan_payloads_roundtrip_exactly() {
    assert_bits_roundtrip(f64::NAN);
    // Negative quiet NaN.
    assert_bits_roundtrip(f64::from_bits(0xfff8_0000_0000_0000));
    // Signalling NaN with a payload.
    assert_bits_roundtrip(f64::from_bits(0x7ff0_0000_dead_beef));
    // All-ones NaN.
    assert_bits_roundtrip(f64::from_bits(0xffff_ffff_ffff_ffff));
}

#[test]
fn infinities_roundtrip() {
    assert_bits_roundtrip(f64::INFINITY);
    assert_bits_roundtrip(f64::NEG_INFINITY);
}

#[test]
fn signed_zero_roundtrips() {
    assert_bits_roundtrip(0.0);
    assert_bits_roundtrip(-0.0);
    assert_ne!(fmt_f64(0.0), fmt_f64(-0.0), "-0.0 must print distinctly");
}

#[test]
fn subnormals_roundtrip() {
    assert_bits_roundtrip(f64::MIN_POSITIVE); // smallest normal
    assert_bits_roundtrip(f64::from_bits(1)); // smallest subnormal
    assert_bits_roundtrip(f64::from_bits(0x000f_ffff_ffff_ffff)); // largest subnormal
    assert_bits_roundtrip(-f64::from_bits(1));
}

#[test]
fn shortest_exact_decimals_roundtrip() {
    assert_bits_roundtrip(1.0000000000000002); // 1.0 + ulp
    assert_bits_roundtrip(0.1); // classic non-representable decimal
    assert_bits_roundtrip(f64::MAX);
    assert_bits_roundtrip(f64::MIN);
    assert_bits_roundtrip(std::f64::consts::PI);
    assert_bits_roundtrip(1e308);
    assert_bits_roundtrip(-1e-308);
}

#[test]
fn fmt_f64_formats() {
    assert_eq!(fmt_f64(f64::INFINITY), "inf");
    assert_eq!(fmt_f64(f64::NEG_INFINITY), "-inf");
    assert_eq!(fmt_f64(-0.0), "-0.0");
    assert!(fmt_f64(f64::NAN).starts_with("nan:0x"), "{}", fmt_f64(f64::NAN));
    assert_eq!(fmt_f64(f64::from_bits(0x7ff0_0000_dead_beef)), "nan:0x7ff00000deadbeef");
}

#[test]
fn nan_bit_pattern_syntax_is_validated() {
    // A nan:0x literal whose bits are not a NaN must be rejected.
    let text = "define void @k(ptr %arg0) {\nbb0:\n  store f64 f64 nan:0x3ff0000000000000, %arg0\n  ret void\n}\n";
    assert!(parse_module(text).is_err());
    // Malformed hex too.
    let text = "define void @k(ptr %arg0) {\nbb0:\n  store f64 f64 nan:0xzz, %arg0\n  ret void\n}\n";
    assert!(parse_module(text).is_err());
    // A valid payload parses to those exact bits.
    let text = "define void @k(ptr %arg0) {\nbb0:\n  store f64 f64 nan:0x7ff80000000000ff, %arg0\n  ret void\n}\n";
    let m = parse_module(text).expect("valid NaN literal");
    assert_eq!(stored_bits(&m), 0x7ff8_0000_0000_00ff);
}

#[test]
fn legacy_bare_nan_still_parses() {
    let text = "define void @k(ptr %arg0) {\nbb0:\n  store f64 f64 NaN, %arg0\n  ret void\n}\n";
    let m = parse_module(text).expect("legacy NaN");
    assert!(f64::from_bits(stored_bits(&m)).is_nan());
}
