//! Parser error-path coverage: every failure class reports the offending
//! line (and, where the token is known, a column). One test per class.

use nzomp_ir::parser::{parse_module, parse_module_strict, ParseError};

fn expect_err(text: &str) -> ParseError {
    match parse_module(text) {
        Err(e) => e,
        Ok(_) => panic!("expected parse error for:\n{text}"),
    }
}

#[test]
fn bad_type_reports_line_and_col() {
    let text = "define void @f(i64 %arg0) {\n\
                bb0:\n\
                \x20 %0 = Add.q7 %arg0, i64 1\n\
                \x20 ret void\n\
                }\n";
    let e = expect_err(text);
    assert_eq!(e.line, 3, "{e}");
    assert!(e.col > 0, "expected a column for the bad type token: {e}");
    assert!(e.message.contains("unknown type"), "{e}");
}

#[test]
fn bad_block_ref_reports_line() {
    let text = "define void @f() {\n\
                bb0:\n\
                \x20 br bbQ\n\
                }\n";
    let e = expect_err(text);
    assert_eq!(e.line, 3, "{e}");
    assert!(e.message.contains("bad block reference"), "{e}");
}

#[test]
fn unknown_opcode_reports_line() {
    let text = "define void @f() {\n\
                bb0:\n\
                \x20 %0 = zorp %arg0\n\
                \x20 ret void\n\
                }\n";
    let e = expect_err(text);
    assert_eq!(e.line, 3, "{e}");
    assert!(e.message.contains("unknown opcode"), "{e}");
}

#[test]
fn malformed_header_reports_line() {
    let text = "\n\ndefine void f() {\nbb0:\n  ret void\n}\n";
    let e = expect_err(text);
    assert_eq!(e.line, 3, "{e}");
    assert!(e.message.contains("malformed header"), "{e}");
}

#[test]
fn duplicate_function_reports_second_definition_line() {
    let text = "define void @f() {\n\
                bb0:\n\
                \x20 ret void\n\
                }\n\
                define void @f() {\n\
                bb0:\n\
                \x20 ret void\n\
                }\n";
    let e = expect_err(text);
    assert_eq!(e.line, 5, "{e}");
    assert!(e.message.contains("duplicate symbol @f"), "{e}");
    assert!(e.message.contains("line 1"), "{e}");
}

#[test]
fn duplicate_global_reports_line() {
    let text = "@g = shared [8 x i8] init=zero linkage=internal\n\
                @g = shared [8 x i8] init=zero linkage=internal\n";
    let e = expect_err(text);
    assert_eq!(e.line, 2, "{e}");
    assert!(e.message.contains("duplicate symbol @g"), "{e}");
}

#[test]
fn global_function_collision_is_rejected() {
    let text = "@f = global [8 x i8] init=zero linkage=internal\n\
                define void @f() {\n\
                bb0:\n\
                \x20 ret void\n\
                }\n";
    let e = expect_err(text);
    assert_eq!(e.line, 2, "{e}");
    assert!(e.message.contains("already defined as a global"), "{e}");
}

#[test]
fn duplicate_result_id_is_rejected() {
    let text = "define void @f() {\n\
                bb0:\n\
                \x20 %0 = thread.id()\n\
                \x20 %0 = block.id()\n\
                \x20 ret void\n\
                }\n";
    let e = expect_err(text);
    assert_eq!(e.line, 4, "{e}");
    assert!(e.message.contains("duplicate result id"), "{e}");
}

#[test]
fn unknown_value_reports_use_line() {
    let text = "define void @f(ptr %arg0) {\n\
                bb0:\n\
                \x20 store i64 %9, %arg0\n\
                \x20 ret void\n\
                }\n";
    let e = expect_err(text);
    assert_eq!(e.line, 3, "{e}");
    assert!(e.message.contains("unknown value %9"), "{e}");
}

#[test]
fn missing_terminator_reports_line() {
    let text = "define void @f() {\n\
                bb0:\n\
                \x20 %0 = thread.id()\n\
                }\n";
    let e = expect_err(text);
    assert_eq!(e.line, 4, "{e}");
    assert!(e.message.contains("no terminator"), "{e}");
}

#[test]
fn unsupported_version_is_rejected() {
    let e = expect_err("; nzomp-ir v99\n; module m\n");
    assert_eq!(e.line, 1, "{e}");
    assert!(e.message.contains("unsupported format version v99"), "{e}");
}

#[test]
fn malformed_version_header_is_rejected() {
    let e = expect_err("; nzomp-ir vintage\n");
    assert_eq!(e.line, 1, "{e}");
    assert!(e.message.contains("malformed version header"), "{e}");
}

#[test]
fn strict_mode_requires_header() {
    let text = "; module m\ndefine void @f() {\nbb0:\n  ret void\n}\n";
    // Lenient parse accepts it...
    assert!(parse_module(text).is_ok());
    // ...strict parse demands the version header first.
    let e = match parse_module_strict(text) {
        Err(e) => e,
        Ok(_) => panic!("strict mode accepted headerless input"),
    };
    assert_eq!(e.line, 1, "{e}");
    assert!(e.message.contains("nzomp-ir v1"), "{e}");
    // With the header, strict parse succeeds.
    let with = format!("; nzomp-ir v1\n{text}");
    assert!(parse_module_strict(&with).is_ok());
}

#[test]
fn display_includes_line_and_col() {
    let e = ParseError {
        line: 7,
        col: 0,
        message: "boom".into(),
    };
    assert_eq!(e.to_string(), "parse error at line 7: boom");
    let e = ParseError {
        line: 7,
        col: 12,
        message: "boom".into(),
    };
    assert_eq!(e.to_string(), "parse error at line 7, col 12: boom");
}
