//! Print → parse → print round-trip tests, including the full runtime
//! libraries and hand-written corner cases.

use nzomp_ir::parser::parse_module;
use nzomp_ir::printer::print_module;
use nzomp_ir::{ExecMode, FuncBuilder, Global, Init, Module, Operand, Space, Ty};

/// The exact round-trip contract: `parse(print(m))` equals the normalized
/// `m` structurally, and is itself a fixed point of the round-trip.
fn assert_roundtrip(m: &Module) {
    let mut norm = m.clone();
    norm.renumber();
    let t1 = print_module(m);
    let m2 = parse_module(&t1).unwrap_or_else(|e| panic!("{e}\n--- text ---\n{t1}"));
    nzomp_ir::verify_module(&m2).unwrap_or_else(|e| panic!("{e}\n--- text ---\n{t1}"));
    assert_eq!(m2, norm, "parse(print(m)) != normalized m\n--- text ---\n{t1}");
    // A parsed module is normalized, so it round-trips exactly.
    let t2 = print_module(&m2);
    let m3 = parse_module(&t2).expect("reparse");
    assert_eq!(m3, m2, "parse(print(m2)) != m2 for normalized m2");
    assert_eq!(t2, print_module(&m3), "printing not a fixpoint");
    // Strict mode accepts printer output (it always carries the header).
    assert_eq!(
        nzomp_ir::parse_module_strict(&t1).expect("strict parse of printer output"),
        norm
    );
    // Structure is preserved.
    assert_eq!(m.funcs.len(), m2.funcs.len());
    assert_eq!(m.globals.len(), m2.globals.len());
    assert_eq!(m.kernels.len(), m2.kernels.len());
    assert_eq!(m.live_inst_count(), m2.live_inst_count());
    assert_eq!(m.shared_memory_bytes(), m2.shared_memory_bytes());
}

#[test]
fn roundtrip_feature_corners() {
    let mut m = Module::new("corners");
    m.add_global(Global::constant("cfg", Space::Constant, 8, Init::I64(-7)));
    m.add_global(Global::new("buf", Space::Shared, 64, Init::Zero));
    m.add_global(Global::new(
        "blob",
        Space::Global,
        4,
        Init::Bytes(vec![0xde, 0xad, 0xbe, 0xef]),
    ));
    let g = m.find_global("buf").unwrap();

    let mut helper = FuncBuilder::new("helper", vec![Ty::F64], Some(Ty::F64));
    helper.attrs_mut().no_inline = true;
    helper.set_linkage(nzomp_ir::Linkage::Internal);
    let s = helper.sqrt(helper.param(0));
    helper.ret(Some(s));
    let helper = m.add_function(helper.finish());

    let mut b = FuncBuilder::new("k", vec![Ty::Ptr, Ty::I64], None);
    b.attrs_mut().aligned_barrier = true;
    let tid = b.thread_id();
    let slot = b.gep(Operand::Global(g), tid, 8);
    b.store(Ty::I64, slot, tid);
    b.aligned_barrier();
    let v = b.load(Ty::I64, slot);
    let f = b.si_to_fp(v);
    let r = b.call(Operand::Func(helper), vec![f], Some(Ty::F64)).unwrap();
    let cast = b.fp_to_si(r);
    let neg = b.un(nzomp_ir::UnOp::Neg, Ty::I64, cast);
    let cmped = b.cmp(nzomp_ir::Pred::Ule, Ty::I64, neg, Operand::i64(3));
    let sel = b.select(Ty::I64, cmped, neg, Operand::i64(0));
    let old = b.atomic_add(Ty::I64, b.param(0), sel);
    let _cas = b.cas(Ty::I64, b.param(0), old, Operand::i64(1));
    let mp = b.malloc(Operand::i64(32));
    b.store(Ty::F64, mp, Operand::f64(2.5));
    b.free(mp);
    let c = b.icmp_slt(tid, b.param(1));
    b.assume(c);
    // A loop with a phi.
    let hi = b.param(1);
    nzomp_ir::builder::build_counted_loop(
        &mut b,
        Operand::i64(0),
        hi,
        Operand::i64(1),
        |b, iv| {
            let p = b.gep(Operand::Global(g), iv, 8);
            let x = b.load(Ty::I64, p);
            let y = b.add(x, Operand::i64(1));
            b.store(Ty::I64, p, y);
        },
    );
    b.barrier();
    b.ret(None);
    let k = m.add_function(b.finish());
    m.add_kernel(k, ExecMode::Spmd);
    m.add_function(nzomp_ir::Function::declaration(
        "external_thing",
        vec![Ty::Ptr],
        Some(Ty::I64),
    ));
    nzomp_ir::verify_module(&m).unwrap();
    assert_roundtrip(&m);
}

#[test]
fn roundtrip_modern_runtime() {
    let m = nzomp_rt_build(true);
    assert_roundtrip(&m);
}

#[test]
fn roundtrip_legacy_runtime() {
    let m = nzomp_rt_build(false);
    assert_roundtrip(&m);
}

/// Both runtime libraries, built in-tree (avoids a dev-dependency cycle by
/// rebuilding the IR through the public nzomp-rt API is not possible here,
/// so we approximate with the largest structures this crate can produce).
fn nzomp_rt_build(modern: bool) -> Module {
    // The runtime crates depend on nzomp-ir, so we cannot link them here;
    // instead, exercise an equally rich module: a generic-mode-style state
    // machine with conditional writes and assumes.
    let mut m = Module::new(if modern { "modernish" } else { "legacyish" });
    let state = m.add_global(Global::new("state", Space::Shared, 64, Init::Zero));
    let dummy = m.add_global(Global::new("dummy", Space::Shared, 8, Init::Zero));
    let mut b = FuncBuilder::new("k", vec![Ty::Ptr], None);
    let tid = b.thread_id();
    let is0 = b.icmp_eq(tid, Operand::i64(0));
    let target = b.select(Ty::Ptr, is0, Operand::Global(state), Operand::Global(dummy));
    let bdim = b.block_dim();
    b.store(Ty::I64, target, bdim);
    b.aligned_barrier();
    let v = b.load(Ty::I64, Operand::Global(state));
    let eq = b.icmp_eq(v, bdim);
    b.assume(eq);
    let head = b.new_block();
    let work = b.new_block();
    let exit = b.new_block();
    b.br(head);
    b.switch_to(head);
    b.barrier();
    let f = b.load(Ty::Ptr, Operand::Global(state));
    let live = b.cmp(nzomp_ir::Pred::Ne, Ty::Ptr, f, Operand::NULL);
    b.cond_br(live, work, exit);
    b.switch_to(work);
    b.call(f, vec![b.param(0)], None);
    b.br(head);
    b.switch_to(exit);
    b.ret(None);
    let k = m.add_function(b.finish());
    m.add_kernel(k, if modern { ExecMode::Spmd } else { ExecMode::Generic });
    nzomp_ir::verify_module(&m).unwrap();
    m
}

#[test]
fn parse_rejects_garbage() {
    assert!(parse_module("define broken").is_err());
    assert!(parse_module("define void @f() {\nbb0:\n  %1 = zorp %2\n  ret void\n}\n").is_err());
    assert!(parse_module("define void @f() {\nbb0:\n  br bb9\n").is_err());
    // Unknown symbol.
    let bad = "define void @f() {\nbb0:\n  call void @missing()\n  ret void\n}\n";
    assert!(parse_module(bad).is_err());
}

#[test]
fn parse_f64_specials() {
    let mut m = Module::new("fp");
    let mut b = FuncBuilder::new("k", vec![Ty::Ptr], None);
    b.store(Ty::F64, b.param(0), Operand::f64(f64::NAN));
    b.store(Ty::F64, b.param(0), Operand::f64(f64::INFINITY));
    b.store(Ty::F64, b.param(0), Operand::f64(f64::NEG_INFINITY));
    b.store(Ty::F64, b.param(0), Operand::f64(1.0000000000000002));
    b.ret(None);
    let k = m.add_function(b.finish());
    m.add_kernel(k, ExecMode::Spmd);
    assert_roundtrip(&m);
}
