//! Unit tests for the IR crate: types, builder, printer, verifier, linker
//! and analyses.

use nzomp_ir::analysis::{callgraph::CallGraph, cfg, dom::DomTree, liveness};
use nzomp_ir::builder::build_counted_loop;
use nzomp_ir::link::{link, LinkError};
use nzomp_ir::printer::{print_function, print_module};
use nzomp_ir::{
    BlockId, ExecMode, FuncBuilder, Function, Global, Init, Module, Operand, Pred, Space, Term,
    Ty, VerifyError,
};

// ---------------------------------------------------------------------------
// types / operands
// ---------------------------------------------------------------------------

#[test]
fn type_sizes() {
    assert_eq!(Ty::I1.size(), 1);
    assert_eq!(Ty::I8.size(), 1);
    assert_eq!(Ty::I32.size(), 4);
    assert_eq!(Ty::I64.size(), 8);
    assert_eq!(Ty::F64.size(), 8);
    assert_eq!(Ty::Ptr.size(), 8);
}

#[test]
fn operand_constants() {
    assert_eq!(Operand::i64(5).as_const_int(), Some(5));
    assert_eq!(Operand::f64(2.5).as_const_f64(), Some(2.5));
    assert_eq!(Operand::TRUE.as_const_int(), Some(1));
    assert!(Operand::NULL.is_constant());
    assert!(!Operand::Param(0).is_constant());
}

#[test]
fn init_read_int() {
    let i = Init::I64(0x1122334455667788);
    assert_eq!(i.read_int(0, 8), 0x1122334455667788);
    assert_eq!(i.read_int(0, 4), 0x55667788);
    assert_eq!(i.read_int(4, 4), 0x11223344);
    assert_eq!(Init::Zero.read_int(3, 8), 0);
    let b = Init::Bytes(vec![1, 2, 3]);
    assert_eq!(b.read_int(0, 1), 1);
    assert_eq!(b.read_int(2, 4), 3); // out-of-init bytes read as zero
}

// ---------------------------------------------------------------------------
// builder
// ---------------------------------------------------------------------------

#[test]
fn builder_allocas_go_to_entry() {
    let mut b = FuncBuilder::new("f", vec![], None);
    let bb = b.new_block();
    b.br(bb);
    b.switch_to(bb);
    let _a = b.alloca(16);
    b.ret(None);
    let f = b.finish();
    // Alloca listed in the entry block, not bb.
    let entry_first = f.block(BlockId::ENTRY).insts[0];
    assert!(matches!(f.inst(entry_first), nzomp_ir::Inst::Alloca { size: 16 }));
}

#[test]
fn builder_phis_stay_at_block_start() {
    let mut b = FuncBuilder::new("f", vec![Ty::I64], Some(Ty::I64));
    let entry = b.current_block();
    let next = b.new_block();
    b.br(next);
    b.switch_to(next);
    let x = b.add(b.param(0), Operand::i64(1));
    let p = b.phi(Ty::I64, vec![(entry, Operand::i64(0))]);
    let y = b.add(p, x);
    b.ret(Some(y));
    let f = b.finish();
    let first = f.block(next).insts[0];
    assert!(f.inst(first).is_phi());
    nzomp_ir::verify_function(&f, None).unwrap();
}

#[test]
fn counted_loop_covers_range() {
    // Structure check: loop with trip count 0 never enters the body.
    let mut b = FuncBuilder::new("f", vec![], None);
    build_counted_loop(&mut b, Operand::i64(5), Operand::i64(5), Operand::i64(1), |_b, _iv| {});
    b.ret(None);
    let f = b.finish();
    nzomp_ir::verify_function(&f, None).unwrap();
    assert!(f.blocks.len() >= 4);
}

// ---------------------------------------------------------------------------
// verifier
// ---------------------------------------------------------------------------

fn expect_err(f: Function, needle: &str) {
    match nzomp_ir::verify_function(&f, None) {
        Err(VerifyError { message, .. }) => {
            assert!(message.contains(needle), "got: {message}");
        }
        Ok(()) => panic!("expected verifier error containing {needle:?}"),
    }
}

#[test]
fn verify_rejects_missing_param() {
    let mut b = FuncBuilder::new("f", vec![Ty::I64], None);
    let bogus = Operand::Param(3);
    b.add(bogus, Operand::i64(1));
    b.ret(None);
    expect_err(b.finish(), "missing param");
}

#[test]
fn verify_rejects_branch_to_missing_block() {
    let mut b = FuncBuilder::new("f", vec![], None);
    b.br(BlockId(99));
    expect_err(b.finish(), "missing bb");
}

#[test]
fn verify_rejects_ret_mismatch() {
    let mut b = FuncBuilder::new("f", vec![], Some(Ty::I64));
    b.ret(None);
    expect_err(b.finish(), "ret void in non-void function");
}

#[test]
fn verify_rejects_use_before_def() {
    // A phi incoming that references a value defined in the header itself
    // (the bug class caught during development).
    let mut b = FuncBuilder::new("f", vec![Ty::I64], None);
    let entry = b.current_block();
    let header = b.new_block();
    let exit = b.new_block();
    b.br(header);
    b.switch_to(header);
    let late = b.add(b.param(0), Operand::i64(1));
    let p = b.phi(Ty::I64, vec![(entry, late)]);
    let c = b.icmp_slt(p, Operand::i64(10));
    b.cond_br(c, header, exit);
    b.phi_add_incoming(p, header, p);
    b.switch_to(exit);
    b.ret(None);
    expect_err(b.finish(), "not dominated");
}

#[test]
fn verify_rejects_call_arity_mismatch() {
    let mut m = Module::new("m");
    let callee = m.add_function(Function::declaration("g", vec![Ty::I64, Ty::I64], None));
    let mut b = FuncBuilder::new("f", vec![], None);
    b.call(Operand::Func(callee), vec![Operand::i64(1)], None);
    b.ret(None);
    let f = m.add_function(b.finish());
    let err = nzomp_ir::verify_module(&m).unwrap_err();
    assert!(err.message.contains("expected 2"), "{err}");
    let _ = f;
}

#[test]
fn verify_rejects_kernel_declaration() {
    let mut m = Module::new("m");
    let d = m.add_function(Function::declaration("k", vec![], None));
    m.add_kernel(d, ExecMode::Spmd);
    let err = nzomp_ir::verify_module(&m).unwrap_err();
    assert!(err.message.contains("declaration"), "{err}");
}

// ---------------------------------------------------------------------------
// printer
// ---------------------------------------------------------------------------

#[test]
fn printer_emits_symbols_and_attrs() {
    let mut m = Module::new("m");
    m.add_global(Global::constant("flag", Space::Constant, 8, Init::I64(1)));
    let mut b = FuncBuilder::new("f", vec![Ty::Ptr], Some(Ty::I64));
    b.attrs_mut().aligned_barrier = true;
    let g = m.find_global("flag").unwrap();
    let v = b.load(Ty::I64, Operand::Global(g));
    b.aligned_barrier();
    b.ret(Some(v));
    let fr = m.add_function(b.finish());
    m.add_kernel(fr, ExecMode::Spmd);
    let text = print_module(&m);
    assert!(text.contains("@flag"), "{text}");
    assert!(text.contains("aligned_barrier"), "{text}");
    assert!(text.contains("barrier.aligned()"), "{text}");
    assert!(text.contains("kernel @f mode=Spmd"), "{text}");
    let ftext = print_function(Some(&m), m.func(fr));
    assert!(ftext.contains("define i64 @f(ptr %arg0)"), "{ftext}");
}

// ---------------------------------------------------------------------------
// linker
// ---------------------------------------------------------------------------

fn def_fn(name: &str) -> Function {
    let mut b = FuncBuilder::new(name, vec![], Some(Ty::I64));
    b.ret(Some(Operand::i64(7)));
    b.finish()
}

#[test]
fn link_resolves_declarations() {
    let mut app = Module::new("app");
    let decl = app.add_function(Function::declaration("util", vec![], Some(Ty::I64)));
    let mut kb = FuncBuilder::new("k", vec![], Some(Ty::I64));
    let v = kb.call(Operand::Func(decl), vec![], Some(Ty::I64)).unwrap();
    kb.ret(Some(v));
    app.add_function(kb.finish());

    let mut lib = Module::new("lib");
    lib.add_function(def_fn("util"));
    link(&mut app, lib).unwrap();
    assert!(!app.func(app.find_func("util").unwrap()).is_declaration());
    nzomp_ir::verify_module(&app).unwrap();
}

#[test]
fn link_rejects_duplicate_definitions() {
    let mut a = Module::new("a");
    a.add_function(def_fn("dup"));
    let mut b = Module::new("b");
    b.add_function(def_fn("dup"));
    assert!(matches!(link(&mut a, b), Err(LinkError::DuplicateFunction(_))));
}

#[test]
fn link_rejects_signature_mismatch() {
    let mut a = Module::new("a");
    a.add_function(Function::declaration("f", vec![Ty::I64], None));
    let mut b = Module::new("b");
    b.add_function(Function::declaration("f", vec![Ty::Ptr], None));
    assert!(matches!(link(&mut a, b), Err(LinkError::SignatureMismatch(_))));
}

#[test]
fn link_rejects_duplicate_globals() {
    let mut a = Module::new("a");
    a.add_global(Global::new("g", Space::Global, 8, Init::Zero));
    let mut b = Module::new("b");
    b.add_global(Global::new("g", Space::Global, 8, Init::Zero));
    assert!(matches!(link(&mut a, b), Err(LinkError::DuplicateGlobal(_))));
}

#[test]
fn link_remaps_global_and_func_operands() {
    let mut app = Module::new("app");
    app.add_global(Global::new("app_g", Space::Global, 8, Init::Zero));
    let mut lib = Module::new("lib");
    let lg = lib.add_global(Global::new("lib_g", Space::Shared, 8, Init::Zero));
    let helper = lib.add_function(def_fn("helper"));
    let mut b = FuncBuilder::new("uses", vec![], Some(Ty::I64));
    let _l = b.load(Ty::I64, Operand::Global(lg));
    let v = b.call(Operand::Func(helper), vec![], Some(Ty::I64)).unwrap();
    b.ret(Some(v));
    lib.add_function(b.finish());
    link(&mut app, lib).unwrap();
    nzomp_ir::verify_module(&app).unwrap();
    // lib_g moved to index 1 in app; the load must point at it.
    let uses = app.find_func("uses").unwrap();
    let f = app.func(uses);
    let found = f.blocks.iter().flat_map(|b| &b.insts).any(|&i| {
        f.inst(i).operands().iter().any(|o| {
            matches!(o, Operand::Global(g) if app.global(*g).name == "lib_g")
        })
    });
    assert!(found);
}

// ---------------------------------------------------------------------------
// analyses
// ---------------------------------------------------------------------------

/// Diamond CFG: entry -> (a | b) -> join.
fn diamond() -> Function {
    let mut fb = FuncBuilder::new("d", vec![Ty::I1], Some(Ty::I64));
    let a = fb.new_block();
    let b = fb.new_block();
    let join = fb.new_block();
    fb.cond_br(fb.param(0), a, b);
    fb.switch_to(a);
    fb.br(join);
    fb.switch_to(b);
    fb.br(join);
    fb.switch_to(join);
    let p = fb.phi(Ty::I64, vec![(a, Operand::i64(1)), (b, Operand::i64(2))]);
    fb.ret(Some(p));
    fb.finish()
}

#[test]
fn dominators_on_diamond() {
    let f = diamond();
    let dt = DomTree::compute(&f);
    let (e, a, b, j) = (BlockId(0), BlockId(1), BlockId(2), BlockId(3));
    assert!(dt.dominates(e, a) && dt.dominates(e, b) && dt.dominates(e, j));
    assert!(!dt.dominates(a, j) && !dt.dominates(b, j));
    assert_eq!(dt.idom(j), Some(e));
    assert_eq!(dt.idom(a), Some(e));
    assert!(dt.dominates(j, j));
}

#[test]
fn rpo_starts_at_entry_and_covers_reachable() {
    let f = diamond();
    let rpo = cfg::reverse_post_order(&f);
    assert_eq!(rpo[0], BlockId::ENTRY);
    assert_eq!(rpo.len(), 4);
}

#[test]
fn reachability_queries() {
    let f = diamond();
    assert!(cfg::block_reaches(&f, BlockId(0), BlockId(3)));
    assert!(!cfg::block_reaches(&f, BlockId(1), BlockId(2)));
    let reach = cfg::reachable(&f);
    assert!(reach.iter().all(|&r| r));
}

#[test]
fn liveness_counts_pressure() {
    // Ten simultaneously-live values -> max_live >= 10.
    let mut b = FuncBuilder::new("fat", vec![Ty::I64], Some(Ty::I64));
    let vals: Vec<Operand> = (0..10)
        .map(|i| b.add(b.param(0), Operand::i64(i)))
        .collect();
    let mut acc = vals[0];
    for v in &vals[1..] {
        acc = b.add(acc, *v);
    }
    b.ret(Some(acc));
    let f = b.finish();
    let lv = liveness::compute(&f);
    assert!(lv.max_live >= 10, "max_live = {}", lv.max_live);

    // A chain keeps pressure tiny.
    let mut b = FuncBuilder::new("thin", vec![Ty::I64], Some(Ty::I64));
    let mut acc = b.param(0);
    for i in 0..10 {
        acc = b.add(acc, Operand::i64(i));
    }
    b.ret(Some(acc));
    let thin = liveness::compute(&b.finish());
    assert!(thin.max_live <= 3, "max_live = {}", thin.max_live);
}

#[test]
fn callgraph_edges_and_recursion() {
    let mut m = Module::new("cg");
    let mut b = FuncBuilder::new("leaf", vec![], None);
    b.ret(None);
    let leaf = m.add_function(b.finish());

    let mut b = FuncBuilder::new("rec", vec![Ty::I64], None);
    let self_ref = nzomp_ir::module::FuncRef(1); // will be "rec" itself
    b.call(Operand::Func(leaf), vec![], None);
    b.call(Operand::Func(self_ref), vec![Operand::i64(0)], None);
    b.ret(None);
    let rec = m.add_function(b.finish());
    assert_eq!(rec, self_ref);

    let cg = CallGraph::build(&m);
    assert!(cg.maybe_recursive(rec));
    assert!(!cg.maybe_recursive(leaf));
    assert!(cg.callees.get(&rec).unwrap().contains(&leaf));
    assert!(cg.callers.get(&leaf).unwrap().contains(&rec));
}

#[test]
fn callgraph_address_taken_reachability() {
    let mut m = Module::new("cg2");
    let mut b = FuncBuilder::new("target", vec![Ty::Ptr], None);
    b.ret(None);
    let target = m.add_function(b.finish());
    // Kernel passes @target as a function-pointer argument to a runtime
    // declaration, then nothing calls it directly.
    let decl = m.add_function(Function::declaration("sink", vec![Ty::Ptr], None));
    let mut b = FuncBuilder::new("k", vec![], None);
    b.call(Operand::Func(decl), vec![Operand::Func(target)], None);
    b.ret(None);
    let k = m.add_function(b.finish());
    m.add_kernel(k, ExecMode::Spmd);
    let cg = CallGraph::build(&m);
    assert!(cg.address_taken.contains(&target));
    let live = cg.reachable_from(&m, &[k]);
    assert!(live.contains(&target), "address-taken functions stay live");
}

// ---------------------------------------------------------------------------
// module helpers
// ---------------------------------------------------------------------------

#[test]
fn shared_memory_accounting() {
    let mut m = Module::new("m");
    m.add_global(Global::new("a", Space::Shared, 100, Init::Zero));
    m.add_global(Global::new("b", Space::Global, 100, Init::Zero));
    m.add_global(Global::new("c", Space::Shared, 28, Init::Zero));
    assert_eq!(m.shared_memory_bytes(), 128);
}

#[test]
fn internalize_spares_kernels() {
    let mut m = Module::new("m");
    let f = m.add_function(def_fn("helper"));
    let k = m.add_function(def_fn("kernel"));
    m.add_kernel(k, ExecMode::Spmd);
    m.internalize();
    assert_eq!(m.func(f).linkage, nzomp_ir::Linkage::Internal);
    assert_eq!(m.func(k).linkage, nzomp_ir::Linkage::External);
}

#[test]
fn exec_mode_update() {
    let mut m = Module::new("m");
    let k = m.add_function(def_fn("k"));
    m.add_kernel(k, ExecMode::Generic);
    m.set_exec_mode(k, ExecMode::Spmd);
    assert_eq!(m.kernel_of(k).unwrap().exec_mode, ExecMode::Spmd);
}

#[test]
fn term_successors() {
    assert_eq!(Term::Br(BlockId(3)).succs(), vec![BlockId(3)]);
    assert_eq!(Term::Ret(None).succs(), vec![]);
    let t = Term::CondBr {
        cond: Operand::TRUE,
        if_true: BlockId(1),
        if_false: BlockId(2),
    };
    assert_eq!(t.succs(), vec![BlockId(1), BlockId(2)]);
}

#[test]
fn cmp_results_are_i1() {
    let mut b = FuncBuilder::new("f", vec![Ty::I64], Some(Ty::I1));
    let c = b.cmp(Pred::Slt, Ty::I64, b.param(0), Operand::i64(3));
    b.ret(Some(c));
    let f = b.finish();
    nzomp_ir::verify_function(&f, None).unwrap();
}
