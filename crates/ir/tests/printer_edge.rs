//! Printer edge cases: shapes that exercise the corners of the text format.
//! Every one must round-trip exactly (`parse(print(m)) == normalized m`).

use nzomp_ir::parser::parse_module;
use nzomp_ir::printer::print_module;
use nzomp_ir::{
    ExecMode, FuncBuilder, Function, Global, Init, Module, Operand, Space, Ty,
};

fn assert_exact_roundtrip(m: &Module) {
    let mut norm = m.clone();
    norm.renumber();
    let text = print_module(m);
    let m2 = parse_module(&text).unwrap_or_else(|e| panic!("{e}\n--- text ---\n{text}"));
    assert_eq!(m2, norm, "--- text ---\n{text}");
}

#[test]
fn empty_unreachable_blocks_roundtrip() {
    let mut m = Module::new("edge");
    let mut b = FuncBuilder::new("k", vec![], None);
    b.ret(None);
    let mut f = b.finish();
    // Two trailing empty blocks (as left behind by CFG transforms): no
    // instructions, `unreachable` terminator.
    f.add_block();
    f.add_block();
    let k = m.add_function(f);
    m.add_kernel(k, ExecMode::Spmd);
    assert_exact_roundtrip(&m);
    let text = print_module(&m);
    assert!(text.contains("bb1:\n  unreachable"), "{text}");
    assert!(text.contains("bb2:\n  unreachable"), "{text}");
}

#[test]
fn declaration_only_module_roundtrips() {
    let mut m = Module::new("decls");
    m.add_function(Function::declaration("ext0", vec![], None));
    m.add_function(Function::declaration(
        "ext1",
        vec![Ty::Ptr, Ty::I64],
        Some(Ty::I64),
    ));
    let mut d = Function::declaration("ext2", vec![Ty::F64], Some(Ty::F64));
    d.attrs.always_inline = true;
    d.attrs.read_none = true;
    m.add_function(d);
    // Internal linkage on a declaration must survive too (internalize()
    // marks runtime decls internal before optimization).
    let mut d = Function::declaration("ext3", vec![], None);
    d.linkage = nzomp_ir::Linkage::Internal;
    m.add_function(d);
    assert_exact_roundtrip(&m);
    let text = print_module(&m);
    assert!(text.contains("declare internal void @ext3()"), "{text}");
    assert!(!text.contains("define"), "{text}");
}

#[test]
fn globals_in_every_address_space_roundtrip() {
    let mut m = Module::new("spaces");
    m.add_global(Global::new("g_global", Space::Global, 128, Init::Zero));
    m.add_global(Global::new("g_shared", Space::Shared, 64, Init::I64(42)));
    m.add_global(Global::new("g_local", Space::Local, 16, Init::Zero));
    m.add_global(Global::constant(
        "g_constant",
        Space::Constant,
        4,
        Init::Bytes(vec![1, 2, 3, 4]),
    ));
    // External-linkage global as well.
    let mut g = Global::new("g_ext", Space::Global, 8, Init::Zero);
    g.linkage = nzomp_ir::Linkage::External;
    m.add_global(g);
    assert_exact_roundtrip(&m);
    let text = print_module(&m);
    for needle in [
        "@g_global = global [128 x i8] init=zero",
        "@g_shared = shared [64 x i8] init=i64:42",
        "@g_local = local [16 x i8] init=zero",
        "@g_constant = constant [4 x i8] const init=hex:01020304",
        "linkage=external",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
}

#[test]
fn phi_with_many_incoming_edges_roundtrips() {
    let mut m = Module::new("phis");
    let mut b = FuncBuilder::new("k", vec![Ty::I64], Some(Ty::I64));
    let b1 = b.new_block();
    let b2 = b.new_block();
    let b3 = b.new_block();
    let b4 = b.new_block();
    let merge = b.new_block();
    let c1 = b.icmp_eq(b.param(0), Operand::i64(1));
    b.cond_br(c1, b1, b2);
    b.switch_to(b2);
    let c2 = b.icmp_eq(b.param(0), Operand::i64(2));
    b.cond_br(c2, b3, b4);
    for blk in [b1, b3, b4] {
        b.switch_to(blk);
        b.br(merge);
    }
    b.switch_to(merge);
    // Four incoming edges — more than the common two-way join.
    let p = b.phi(
        Ty::I64,
        vec![
            (b1, Operand::i64(10)),
            (b3, Operand::i64(30)),
            (b4, Operand::i64(40)),
        ],
    );
    b.ret(Some(p));
    let k = m.add_function(b.finish());
    m.add_kernel(k, ExecMode::Spmd);
    nzomp_ir::verify_module(&m).unwrap();
    assert_exact_roundtrip(&m);
    let text = print_module(&m);
    assert!(
        text.contains("phi i64 [bb1: i64 10], [bb3: i64 30], [bb4: i64 40]"),
        "{text}"
    );
}

#[test]
fn kernel_modes_and_module_name_roundtrip() {
    let mut m = Module::new("two kernels");
    for (name, mode) in [("kg", ExecMode::Generic), ("ks", ExecMode::Spmd)] {
        let mut b = FuncBuilder::new(name, vec![], None);
        b.ret(None);
        let k = m.add_function(b.finish());
        m.add_kernel(k, mode);
    }
    assert_exact_roundtrip(&m);
    let text = print_module(&m);
    assert!(text.contains("; kernel @kg mode=Generic"), "{text}");
    assert!(text.contains("; kernel @ks mode=Spmd"), "{text}");
    assert!(text.contains("; module two kernels"), "{text}");
}

#[test]
fn non_normalized_module_parses_to_normal_form() {
    // A function with arena holes (simulating what DCE leaves behind): the
    // printed text densifies ids, so parse(print(m)) == m.renumber()ed.
    let mut b = FuncBuilder::new("k", vec![Ty::Ptr], None);
    let t = b.thread_id();
    let dead = b.add(t, Operand::i64(9));
    let live = b.add(t, Operand::i64(1));
    b.store(Ty::I64, b.param(0), live);
    b.ret(None);
    let mut f = b.finish();
    // Remove the dead add from its block but leave the arena entry.
    let Operand::Inst(dead_id) = dead else {
        panic!()
    };
    for blk in &mut f.blocks {
        blk.insts.retain(|&i| i != dead_id);
    }
    let mut m = Module::new("holes");
    let k = m.add_function(f);
    m.add_kernel(k, ExecMode::Spmd);
    assert!(!m.is_normalized());
    let text = print_module(&m);
    let parsed = parse_module(&text).unwrap();
    assert!(parsed.is_normalized());
    let mut norm = m.clone();
    assert!(norm.renumber());
    assert_eq!(parsed, norm);
    // renumber() is idempotent.
    assert!(!norm.renumber());
}
