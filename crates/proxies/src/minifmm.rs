//! MiniFMM — proxy for the fast-multipole dual-tree traversal (paper
//! §V-A): irregular per-cell interaction lists, a particle-staging P2P
//! kernel in a **non-inlined** device function (the call boundary is what
//! makes the interprocedural analyses of §IV-B2 matter here), and the
//! generic-mode lowering (the app's task parallelism does not map onto the
//! combined directive), which SPMDization (§IV-A3) must rescue.

use nzomp_front::{generic_kernel, omp_num_threads, omp_team_num, omp_thread_num};
use nzomp_ir::builder::build_counted_loop;
use nzomp_ir::module::FuncRef;
use nzomp_ir::{ExecMode, FuncBuilder, Module, Operand, Ty, UnOp};
use nzomp_host::{f64_bytes, i64_bytes, RegionArg};
use nzomp_vgpu::device::Launch;
use nzomp_vgpu::RtVal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{HostPrepared, KernelKind, Proxy};

#[derive(Clone, Debug)]
pub struct MiniFmm {
    pub n_cells: usize,
    pub min_particles: usize,
    pub max_particles: usize,
    pub min_interactions: usize,
    pub max_interactions: usize,
    pub teams: u32,
    pub threads_per_team: u32,
    pub seed: u64,
}

impl MiniFmm {
    pub fn small() -> MiniFmm {
        MiniFmm {
            n_cells: 48,
            min_particles: 2,
            max_particles: 8,
            min_interactions: 1,
            max_interactions: 5,
            teams: 4,
            threads_per_team: 16,
            seed: 0x5eed_0005,
        }
    }

    pub fn large() -> MiniFmm {
        MiniFmm {
            n_cells: 256,
            min_particles: 4,
            max_particles: 16,
            min_interactions: 2,
            max_interactions: 10,
            teams: 8,
            threads_per_team: 32,
            seed: 0x5eed_0005,
        }
    }

    fn cells_per_team(&self) -> usize {
        self.n_cells.div_ceil(self.teams as usize)
    }

    fn generate(&self) -> Inputs {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut cell_start = vec![0i64; self.n_cells + 1];
        for c in 0..self.n_cells {
            let n = rng.gen_range(self.min_particles..=self.max_particles) as i64;
            cell_start[c + 1] = cell_start[c] + n;
        }
        let n_particles = cell_start[self.n_cells] as usize;
        let px: Vec<f64> = (0..n_particles).map(|_| rng.gen_range(0.0..1.0)).collect();
        let py: Vec<f64> = (0..n_particles).map(|_| rng.gen_range(0.0..1.0)).collect();
        let pz: Vec<f64> = (0..n_particles).map(|_| rng.gen_range(0.0..1.0)).collect();
        let w: Vec<f64> = (0..n_particles).map(|_| rng.gen_range(0.1..1.0)).collect();
        let mut inter_start = vec![0i64; self.n_cells + 1];
        let mut inter_list = Vec::new();
        for c in 0..self.n_cells {
            let n = rng.gen_range(self.min_interactions..=self.max_interactions);
            for _ in 0..n {
                inter_list.push(rng.gen_range(0..self.n_cells as i64));
            }
            inter_start[c + 1] = inter_start[c] + n as i64;
        }
        Inputs {
            cell_start,
            inter_start,
            inter_list,
            px,
            py,
            pz,
            w,
        }
    }

    fn reference(&self, inp: &Inputs) -> Vec<f64> {
        let mut pot = vec![0.0f64; self.n_cells];
        for c in 0..self.n_cells {
            let (t_lo, t_hi) = (inp.cell_start[c] as usize, inp.cell_start[c + 1] as usize);
            let mut acc = 0.0f64;
            for s_idx in inp.inter_start[c]..inp.inter_start[c + 1] {
                let s = inp.inter_list[s_idx as usize] as usize;
                let (s_lo, s_hi) = (inp.cell_start[s] as usize, inp.cell_start[s + 1] as usize);
                let mut sum = 0.0f64;
                for t in t_lo..t_hi {
                    for j in s_lo..s_hi {
                        let dx = inp.px[t] - inp.px[j];
                        let dy = inp.py[t] - inp.py[j];
                        let dz = inp.pz[t] - inp.pz[j];
                        let r2 = dx * dx + dy * dy + dz * dz + 0.01;
                        let inv = 1.0 / r2.sqrt();
                        sum += inp.w[t] * (inp.w[j] * inv);
                    }
                }
                acc += sum;
            }
            pot[c] = acc;
        }
        pot
    }
}

struct Inputs {
    cell_start: Vec<i64>,
    inter_start: Vec<i64>,
    inter_list: Vec<i64>,
    px: Vec<f64>,
    py: Vec<f64>,
    pz: Vec<f64>,
    w: Vec<f64>,
}

/// Kernel parameters, in order: cell_start, inter_start, inter_list,
/// px, py, pz, w, scratch, pot, n_cells, max_particles.
const PARAMS: [Ty; 11] = [
    Ty::Ptr,
    Ty::Ptr,
    Ty::Ptr,
    Ty::Ptr,
    Ty::Ptr,
    Ty::Ptr,
    Ty::Ptr,
    Ty::Ptr,
    Ty::Ptr,
    Ty::I64,
    Ty::I64,
];

/// Build the non-inlined P2P leaf routine. It stages the source cell's
/// particles into a per-hardware-thread scratch slice before the pairwise
/// loop (the classic staging idiom), so it must know its global thread id —
/// in the OpenMP variant through ICV queries whose folding requires the
/// interprocedural machinery of §IV-B2.
///
/// Params: t_lo, t_hi, s_lo, s_hi, px, py, pz, w, scratch, max_particles.
fn build_p2p_leaf(m: &mut Module, omp: bool) -> FuncRef {
    let name = if omp { "p2p_leaf_omp" } else { "p2p_leaf_cuda" };
    let mut b = FuncBuilder::new(
        name,
        vec![
            Ty::I64,
            Ty::I64,
            Ty::I64,
            Ty::I64,
            Ty::Ptr,
            Ty::Ptr,
            Ty::Ptr,
            Ty::Ptr,
            Ty::Ptr,
            Ty::I64,
        ],
        Some(Ty::F64),
    );
    b.attrs_mut().no_inline = true;
    b.set_linkage(nzomp_ir::Linkage::Internal);
    let (t_lo, t_hi, s_lo, s_hi) = (b.param(0), b.param(1), b.param(2), b.param(3));
    let (px, py, pz, w) = (b.param(4), b.param(5), b.param(6), b.param(7));
    let scratch = b.param(8);
    let max_pc = b.param(9);

    // Global hardware thread id for the scratch slice.
    let gtid = if omp {
        let team = omp_team_num(m, &mut b);
        let nth = omp_num_threads(m, &mut b);
        let tn = omp_thread_num(m, &mut b);
        let base = b.mul(team, nth);
        b.add(base, tn)
    } else {
        let bid = b.block_id();
        let bdim = b.block_dim();
        let tid = b.thread_id();
        let base = b.mul(bid, bdim);
        b.add(base, tid)
    };
    let slot_sz = b.mul(max_pc, Operand::i64(4 * 8));
    let slice = b.mul(gtid, slot_sz);
    let my_scratch = b.ptr_add(scratch, slice);

    // Stage the source particles.
    let ns = b.sub(s_hi, s_lo);
    build_counted_loop(&mut b, Operand::i64(0), ns, Operand::i64(1), |b, j| {
        let k = b.add(s_lo, j);
        let entry = b.mul(j, Operand::i64(32));
        let dst = b.ptr_add(my_scratch, entry);
        for (fi, arr) in [px, py, pz, w].into_iter().enumerate() {
            let pa = b.gep(arr, k, 8);
            let v = b.load(Ty::F64, pa);
            let pd = b.ptr_add(dst, Operand::i64(fi as i64 * 8));
            b.store(Ty::F64, pd, v);
        }
    });

    // Pairwise interactions against the staged copies.
    let acc = b.alloca(8);
    b.store(Ty::F64, acc, Operand::f64(0.0));
    build_counted_loop(&mut b, t_lo, t_hi, Operand::i64(1), |b, t| {
        let ptx = b.gep(px, t, 8);
        let tx = b.load(Ty::F64, ptx);
        let pty = b.gep(py, t, 8);
        let ty = b.load(Ty::F64, pty);
        let ptz = b.gep(pz, t, 8);
        let tz = b.load(Ty::F64, ptz);
        let ptw = b.gep(w, t, 8);
        let tw = b.load(Ty::F64, ptw);
        build_counted_loop(b, Operand::i64(0), ns, Operand::i64(1), |b, j| {
            let entry = b.mul(j, Operand::i64(32));
            let src = b.ptr_add(my_scratch, entry);
            let sx = b.load(Ty::F64, src);
            let p1 = b.ptr_add(src, Operand::i64(8));
            let sy = b.load(Ty::F64, p1);
            let p2 = b.ptr_add(src, Operand::i64(16));
            let sz = b.load(Ty::F64, p2);
            let p3 = b.ptr_add(src, Operand::i64(24));
            let sw = b.load(Ty::F64, p3);
            let dx = b.fsub(tx, sx);
            let dy = b.fsub(ty, sy);
            let dz = b.fsub(tz, sz);
            let xx = b.fmul(dx, dx);
            let yy = b.fmul(dy, dy);
            let zz = b.fmul(dz, dz);
            let t1 = b.fadd(xx, yy);
            let t2 = b.fadd(t1, zz);
            let r2 = b.fadd(t2, Operand::f64(0.01));
            let root = b.un(UnOp::Sqrt, Ty::F64, r2);
            let inv = b.fdiv(Operand::f64(1.0), root);
            let wi = b.fmul(sw, inv);
            let contrib = b.fmul(tw, wi);
            let cur = b.load(Ty::F64, acc);
            let nv = b.fadd(cur, contrib);
            b.store(Ty::F64, acc, nv);
        });
    });
    let total = b.load(Ty::F64, acc);
    b.ret(Some(total));
    m.add_function(b.finish())
}

/// Per-target-cell body shared by both variants.
fn emit_cell(
    b: &mut FuncBuilder,
    leaf: FuncRef,
    cell: Operand,
    caps: &[Operand], // cell_start, inter_start, inter_list, px,py,pz,w, scratch, pot, max_pc
) {
    let (cell_start, inter_start, inter_list) = (caps[0], caps[1], caps[2]);
    let (px, py, pz, w) = (caps[3], caps[4], caps[5], caps[6]);
    let (scratch, pot, max_pc) = (caps[7], caps[8], caps[9]);

    let pt = b.gep(cell_start, cell, 8);
    let t_lo = b.load(Ty::I64, pt);
    let cell1 = b.add(cell, Operand::i64(1));
    let pt1 = b.gep(cell_start, cell1, 8);
    let t_hi = b.load(Ty::I64, pt1);
    let pi = b.gep(inter_start, cell, 8);
    let i_lo = b.load(Ty::I64, pi);
    let pi1 = b.gep(inter_start, cell1, 8);
    let i_hi = b.load(Ty::I64, pi1);

    let acc = b.alloca(8);
    b.store(Ty::F64, acc, Operand::f64(0.0));
    build_counted_loop(b, i_lo, i_hi, Operand::i64(1), |b, s_idx| {
        let ps = b.gep(inter_list, s_idx, 8);
        let s = b.load(Ty::I64, ps);
        let psl = b.gep(cell_start, s, 8);
        let s_lo = b.load(Ty::I64, psl);
        let s1 = b.add(s, Operand::i64(1));
        let psh = b.gep(cell_start, s1, 8);
        let s_hi = b.load(Ty::I64, psh);
        let part = b
            .call(
                Operand::Func(leaf),
                vec![t_lo, t_hi, s_lo, s_hi, px, py, pz, w, scratch, max_pc],
                Some(Ty::F64),
            )
            .unwrap();
        let cur = b.load(Ty::F64, acc);
        let nv = b.fadd(cur, part);
        b.store(Ty::F64, acc, nv);
    });
    let total = b.load(Ty::F64, acc);
    let po = b.gep(pot, cell, 8);
    b.store(Ty::F64, po, total);
}

impl Proxy for MiniFmm {
    fn name(&self) -> &'static str {
        "MiniFMM"
    }

    fn kernel_name(&self) -> &'static str {
        "fmm_p2p_kernel"
    }

    fn build(&self, kind: KernelKind) -> Module {
        let mut m = Module::new("minifmm");
        match kind {
            KernelKind::Omp(flavor) => {
                let leaf = build_p2p_leaf(&mut m, true);
                generic_kernel(
                    &mut m,
                    flavor,
                    self.kernel_name(),
                    &PARAMS,
                    |ctx, p| {
                        // Manual distribute: each team takes a contiguous
                        // slice of cells (the app's task decomposition).
                        let n_cells = p[9];
                        let team = omp_team_num(ctx.m, &mut ctx.kb);
                        let f = nzomp::rt::declare_api(ctx.m, nzomp::rt::abi::OMP_GET_NUM_TEAMS);
                        let nteams = ctx
                            .kb
                            .call(Operand::Func(f), vec![], Some(Ty::I64))
                            .unwrap();
                        let b = ctx.b();
                        let ntm1 = b.add(nteams, Operand::i64(-1));
                        let num = b.add(n_cells, ntm1);
                        let cpt = b.sdiv(num, nteams);
                        let lo = b.mul(team, cpt);
                        let hi0 = b.add(lo, cpt);
                        let hi = b.bin(nzomp_ir::BinOp::SMin, Ty::I64, hi0, n_cells);
                        let span = b.sub(hi, lo);
                        let mut caps: Vec<(Operand, Ty)> =
                            p[..9].iter().map(|&o| (o, Ty::Ptr)).collect();
                        caps.push((p[10], Ty::I64)); // max_pc
                        caps.push((lo, Ty::I64));
                        ctx.parallel_for(&caps, span, move |_m, b, iv, caps| {
                            let lo = caps[10];
                            let cell = b.add(lo, iv);
                            emit_cell(b, leaf, cell, caps);
                        });
                    },
                );
            }
            KernelKind::Cuda => {
                let leaf = build_p2p_leaf(&mut m, false);
                // CUDA: one thread per cell, grid-stride.
                let mut kb = FuncBuilder::new(self.kernel_name(), PARAMS.to_vec(), None);
                let p: Vec<Operand> = (0..PARAMS.len() as u32).map(Operand::Param).collect();
                let n_cells = p[9];
                let tid = kb.thread_id();
                let bid = kb.block_id();
                let bdim = kb.block_dim();
                let gdim = kb.grid_dim();
                let base = kb.mul(bid, bdim);
                let start = kb.add(base, tid);
                let stride = kb.mul(gdim, bdim);
                build_counted_loop(&mut kb, start, n_cells, stride, |kb, cell| {
                    let mut caps: Vec<Operand> = p[..9].to_vec();
                    caps.push(p[10]);
                    emit_cell(kb, leaf, cell, &caps);
                });
                kb.ret(None);
                let k = m.add_function(kb.finish());
                m.add_kernel(k, ExecMode::Spmd);
            }
        }
        nzomp_ir::verify_module(&m).expect("minifmm module verifies");
        m
    }

    fn host_prepare(&self) -> HostPrepared {
        let inp = self.generate();
        let expected = self.reference(&inp);
        let hw_threads = (self.teams * self.threads_per_team) as usize;
        HostPrepared {
            launch: Launch::new(self.teams, self.threads_per_team),
            args: vec![
                RegionArg::To(i64_bytes(&inp.cell_start)),
                RegionArg::To(i64_bytes(&inp.inter_start)),
                RegionArg::To(i64_bytes(&inp.inter_list)),
                RegionArg::To(f64_bytes(&inp.px)),
                RegionArg::To(f64_bytes(&inp.py)),
                RegionArg::To(f64_bytes(&inp.pz)),
                RegionArg::To(f64_bytes(&inp.w)),
                RegionArg::Alloc((hw_threads * self.max_particles * 4 * 8) as u64),
                RegionArg::From((self.n_cells * 8) as u64),
                RegionArg::Scalar(RtVal::I(self.n_cells as i64)),
                RegionArg::Scalar(RtVal::I(self.max_particles as i64)),
            ],
            out_arg: 8,
            expected,
            tol: 1e-12,
        }
    }

    /// The worksharing loop covers `cells_per_team` iterations per team;
    /// the assumption only holds when a team's threads cover its slice.
    fn supports_oversubscription(&self) -> bool {
        self.cells_per_team() <= self.threads_per_team as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{quick_device, run_config};
    use nzomp::BuildConfig;

    #[test]
    fn minifmm_correct_under_all_configs() {
        let p = MiniFmm::small();
        assert!(p.supports_oversubscription());
        for cfg in BuildConfig::ALL {
            let r = run_config(&p, cfg, &quick_device());
            assert!(r.is_ok(), "{cfg:?}: {:?}", r.err().map(|e| e.to_string()));
        }
    }

    #[test]
    fn minifmm_needs_interprocedural_dominance() {
        // Without §IV-B2 the ICV queries inside the non-inlined leaf cannot
        // fold; the kernel keeps shared-state loads and runs slower.
        use nzomp::pipeline::compile_with;
        use nzomp::opt::{Ablation, PassOptions};
        use nzomp_vgpu::Device;
        let p = MiniFmm::small();
        let cfg = BuildConfig::NewRtNoAssumptions;
        let run = |opts| {
            let app = crate::build_for_config(&p, cfg);
            let out = compile_with(app, cfg, cfg.rt_config(), opts).unwrap();
            let mut dev = Device::load(out.module, quick_device());
            let prep = p.prepare(&mut dev);
            let metrics = dev.launch(p.kernel_name(), prep.launch, &prep.args).unwrap();
            crate::verify_output(&dev, &prep).unwrap();
            metrics
        };
        let full = run(PassOptions::full());
        let no_rd = run(PassOptions::full_without(Ablation::ReachDom));
        assert!(
            no_rd.cycles > full.cycles,
            "reach-dom ablation {} !> full {}",
            no_rd.cycles,
            full.cycles
        );
    }
}
