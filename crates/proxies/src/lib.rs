//! `nzomp-proxies` — the five HPC proxy applications of the paper's
//! evaluation (§V-A), each in an OpenMP variant (lowered through
//! `nzomp-front` against either runtime) and a native CUDA-style variant.
//!
//! | proxy | paper's characterization | our kernel |
//! |---|---|---|
//! | [`xsbench`] | memory-bound macroscopic cross-section lookup (OpenMC) | binary search + gather/interpolate over nuclide grids |
//! | [`rsbench`] | compute-bound multipole alternative | pole-window evaluation with heavy f64/transcendental arithmetic |
//! | [`gridmini`] | lattice QCD (SU(3)) — GFlops metric | complex 3×3 matrix multiply per site |
//! | [`testsnap`] | SNAP force kernel (LAMMPS) — grind time | neighbor-loop bispectrum-style polynomial accumulation |
//! | [`minifmm`] | fast multipole method, irregular dual-tree | per-cell P2P interactions with variable lists and a non-inlined interaction routine |
//!
//! Workloads are synthetic (seeded `rand`) but preserve the operative
//! traits: arithmetic intensity, memory behavior, irregularity, and — for
//! the legacy runtime — whether the kernel needs variable globalization.

pub mod gridmini;
pub mod minifmm;
pub mod rsbench;
pub mod testsnap;
pub mod xsbench;

use nzomp::{BuildConfig, CompileError, CompileOutput};
use nzomp_front::RuntimeFlavor;
use nzomp_host::{Host, HostError, RegionArg, SchedPolicy, StreamId};
use nzomp_ir::Module;
use nzomp_vgpu::device::Launch;
use nzomp_vgpu::memory::DevPtr;
use nzomp_vgpu::{Device, DeviceConfig, ExecError, KernelMetrics, RtVal};

/// Which kernel variant to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelKind {
    Omp(RuntimeFlavor),
    Cuda,
}

/// Device-side data plus launch/verification info for one run.
pub struct Prepared {
    pub launch: Launch,
    pub args: Vec<RtVal>,
    /// Output buffer to compare against `expected`.
    pub out_ptr: DevPtr,
    pub expected: Vec<f64>,
    /// Relative tolerance for verification.
    pub tol: f64,
}

/// Declarative description of a proxy's target region — the map clauses
/// in kernel-parameter order plus the host reference. Both execution
/// paths (the direct `Device` one and the `nzomp-host` offload one)
/// derive from this, which is what makes them allocate device memory in
/// identical order and therefore produce bit-identical device images.
pub struct HostPrepared {
    pub launch: Launch,
    /// One entry per kernel parameter.
    pub args: Vec<RegionArg>,
    /// Index (into `args`) of the output buffer to verify.
    pub out_arg: usize,
    pub expected: Vec<f64>,
    /// Relative tolerance for verification.
    pub tol: f64,
}

/// A proxy application.
pub trait Proxy {
    fn name(&self) -> &'static str;

    fn kernel_name(&self) -> &'static str {
        "kernel"
    }

    /// Build the application module for one kernel variant.
    fn build(&self, kind: KernelKind) -> Module;

    /// Generate inputs, compute the host reference, and describe the
    /// target region's map clauses.
    fn host_prepare(&self) -> HostPrepared;

    /// Upload inputs directly to a device (the baseline path benches and
    /// differential tests compare the host runtime against). Derived
    /// from [`Proxy::host_prepare`] so both paths allocate identically.
    fn prepare(&self, dev: &mut Device) -> Prepared {
        direct_prepare(dev, self.host_prepare())
    }

    /// Whether the launch covers the iteration space so the
    /// oversubscription assumptions (§III-F) are valid. Proxies returning
    /// `false` show "n/a" in the `New RT` column, as in the paper's tables.
    fn supports_oversubscription(&self) -> bool {
        true
    }
}

/// Materialize a [`HostPrepared`] region directly on a device: allocate
/// every buffer in argument order (`map(to:)` data uploaded, outputs and
/// scratch zero-filled by construction) — exactly what the per-proxy
/// `prepare` implementations did before the host runtime existed.
pub fn direct_prepare(dev: &mut Device, hp: HostPrepared) -> Prepared {
    let mut args = Vec::with_capacity(hp.args.len());
    let mut out_ptr = DevPtr::NULL;
    for (i, arg) in hp.args.iter().enumerate() {
        let val = match arg {
            RegionArg::To(bytes) => {
                let p = dev.alloc(bytes.len() as u64);
                if dev.write_bytes(p, bytes).is_err() {
                    unreachable!("freshly allocated region is in bounds");
                }
                RtVal::P(p)
            }
            RegionArg::From(n) | RegionArg::Alloc(n) => RtVal::P(dev.alloc(*n)),
            RegionArg::Scalar(v) => *v,
        };
        if i == hp.out_arg {
            if let RtVal::P(p) = val {
                out_ptr = p;
            }
        }
        args.push(val);
    }
    Prepared {
        launch: hp.launch,
        args,
        out_ptr,
        expected: hp.expected,
        tol: hp.tol,
    }
}

/// Result of one configured run.
pub struct RunResult {
    pub metrics: KernelMetrics,
    pub remarks: nzomp::opt::Remarks,
}

/// Build the proxy's module for an evaluation configuration.
pub fn build_for_config(proxy: &dyn Proxy, cfg: BuildConfig) -> Module {
    match cfg.runtime() {
        Some(flavor) => proxy.build(KernelKind::Omp(flavor)),
        None => proxy.build(KernelKind::Cuda),
    }
}

/// Compile the proxy under `cfg` (release).
pub fn compile_for_config(
    proxy: &dyn Proxy,
    cfg: BuildConfig,
) -> Result<CompileOutput, CompileError> {
    nzomp::compile(build_for_config(proxy, cfg), cfg)
}

/// Compile + run + verify the proxy under `cfg`. Returns
/// `Err(NotApplicable)` for config/proxy combinations the paper marks
/// "n/a" (assumptions that do not hold for the kernel).
pub fn run_config(
    proxy: &dyn Proxy,
    cfg: BuildConfig,
    dev_cfg: &DeviceConfig,
) -> Result<RunResult, RunError> {
    if cfg == BuildConfig::NewRt && !proxy.supports_oversubscription() {
        return Err(RunError::NotApplicable);
    }
    let out = compile_for_config(proxy, cfg).map_err(RunError::Compile)?;
    let mut dev = Device::load(out.module, dev_cfg.clone());
    let prep = proxy.prepare(&mut dev);
    let metrics = dev
        .launch(proxy.kernel_name(), prep.launch, &prep.args)
        .map_err(RunError::Exec)?;
    verify_output(&dev, &prep).map_err(RunError::Verify)?;
    Ok(RunResult {
        metrics,
        remarks: out.remarks,
    })
}

/// How to shape the host-runtime run of [`run_config_host`]: how many
/// async streams carry the transfers, how many devices the scheduler may
/// place on, the placement policy, and the drain seed. The defaults are
/// the minimal shape (1 stream, 1 device) — every other shape must be
/// observationally identical, which the differential suite checks.
#[derive(Clone, Copy, Debug)]
pub struct HostShape {
    pub streams: usize,
    pub devices: usize,
    pub policy: SchedPolicy,
    pub drain_seed: u64,
}

impl Default for HostShape {
    fn default() -> HostShape {
        HostShape {
            streams: 1,
            devices: 1,
            policy: SchedPolicy::RoundRobin,
            drain_seed: 0,
        }
    }
}

fn host_run_err(e: HostError) -> RunError {
    match e {
        HostError::Compile(c) => RunError::Compile(c),
        HostError::Exec(x) => RunError::Exec(x),
        other => RunError::Host(other),
    }
}

/// Compile + run + verify the proxy under `cfg` through the `nzomp-host`
/// offload runtime (present table, streams, scheduler) instead of driving
/// the device directly. Same contract as [`run_config`], same results —
/// bit-identical, as the differential suite proves.
pub fn run_config_host(
    proxy: &dyn Proxy,
    cfg: BuildConfig,
    dev_cfg: &DeviceConfig,
    shape: &HostShape,
) -> Result<RunResult, RunError> {
    if cfg == BuildConfig::NewRt && !proxy.supports_oversubscription() {
        return Err(RunError::NotApplicable);
    }
    let mut host = Host::new(dev_cfg.clone(), shape.devices);
    host.set_policy(shape.policy);
    host.set_drain_seed(shape.drain_seed);
    let img = host
        .load_image(build_for_config(proxy, cfg), cfg)
        .map_err(host_run_err)?;
    let hp = proxy.host_prepare();
    let streams: Vec<StreamId> = (0..shape.streams.max(1)).map(|_| host.stream()).collect();
    let region = host
        .enqueue_region(&streams, img, proxy.kernel_name(), hp.launch, hp.args)
        .map_err(host_run_err)?;
    host.sync().map_err(host_run_err)?;
    let metrics = host.take_metrics(region.ticket).map_err(host_run_err)?;
    let out_buf = region
        .bufs
        .get(hp.out_arg)
        .copied()
        .flatten()
        .ok_or_else(|| RunError::Verify("output argument is not a buffer".into()))?;
    let got = host.buf_f64(out_buf).map_err(host_run_err)?;
    verify_values(&got, &hp.expected, hp.tol).map_err(RunError::Verify)?;
    let remarks = match host.image(img) {
        Some(o) => o.remarks.clone(),
        None => return Err(RunError::Host(HostError::UnknownImage(img.0))),
    };
    Ok(RunResult { metrics, remarks })
}

/// Compare an output vector with the host reference.
pub fn verify_values(got: &[f64], expected: &[f64], tol: f64) -> Result<(), String> {
    for (i, (g, e)) in got.iter().zip(expected.iter()).enumerate() {
        let denom = e.abs().max(1.0);
        if ((g - e).abs() / denom) > tol {
            return Err(format!("output[{i}]: got {g}, expected {e}"));
        }
    }
    Ok(())
}

/// Compare the device output buffer with the host reference.
pub fn verify_output(dev: &Device, prep: &Prepared) -> Result<(), String> {
    let got = dev
        .read_f64(prep.out_ptr, prep.expected.len())
        .map_err(|e| format!("host readback failed: {e}"))?;
    verify_values(&got, &prep.expected, prep.tol)
}

#[derive(Debug)]
pub enum RunError {
    /// Configuration not valid for this proxy (paper's "n/a" cells).
    NotApplicable,
    Compile(CompileError),
    Exec(ExecError),
    Verify(String),
    /// A host-runtime failure outside the compile/trap classes (mapping,
    /// stream, registry misuse).
    Host(HostError),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::NotApplicable => write!(f, "n/a"),
            RunError::Compile(e) => write!(f, "compile failed: {e}"),
            RunError::Exec(e) => write!(f, "device trap: {e}"),
            RunError::Verify(m) => write!(f, "verification failed: {m}"),
            RunError::Host(e) => write!(f, "host runtime failed: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

/// A device sized for quick interpreter runs (tests); benches use
/// `DeviceConfig::default()`.
pub fn quick_device() -> DeviceConfig {
    DeviceConfig {
        check_assumes: false,
        ..DeviceConfig::default()
    }
}

/// All five proxies, boxed, in the paper's presentation order.
pub fn all_proxies() -> Vec<Box<dyn Proxy>> {
    vec![
        Box::new(xsbench::XSBench::small()),
        Box::new(rsbench::RSBench::small()),
        Box::new(testsnap::TestSnap::small()),
        Box::new(minifmm::MiniFmm::small()),
        Box::new(gridmini::GridMini::small()),
    ]
}
