//! `nzomp-proxies` — the five HPC proxy applications of the paper's
//! evaluation (§V-A), each in an OpenMP variant (lowered through
//! `nzomp-front` against either runtime) and a native CUDA-style variant.
//!
//! | proxy | paper's characterization | our kernel |
//! |---|---|---|
//! | [`xsbench`] | memory-bound macroscopic cross-section lookup (OpenMC) | binary search + gather/interpolate over nuclide grids |
//! | [`rsbench`] | compute-bound multipole alternative | pole-window evaluation with heavy f64/transcendental arithmetic |
//! | [`gridmini`] | lattice QCD (SU(3)) — GFlops metric | complex 3×3 matrix multiply per site |
//! | [`testsnap`] | SNAP force kernel (LAMMPS) — grind time | neighbor-loop bispectrum-style polynomial accumulation |
//! | [`minifmm`] | fast multipole method, irregular dual-tree | per-cell P2P interactions with variable lists and a non-inlined interaction routine |
//!
//! Workloads are synthetic (seeded `rand`) but preserve the operative
//! traits: arithmetic intensity, memory behavior, irregularity, and — for
//! the legacy runtime — whether the kernel needs variable globalization.

pub mod gridmini;
pub mod minifmm;
pub mod rsbench;
pub mod testsnap;
pub mod xsbench;

use nzomp::{BuildConfig, CompileError, CompileOutput};
use nzomp_front::RuntimeFlavor;
use nzomp_ir::Module;
use nzomp_vgpu::device::Launch;
use nzomp_vgpu::memory::DevPtr;
use nzomp_vgpu::{Device, DeviceConfig, ExecError, KernelMetrics, RtVal};

/// Which kernel variant to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelKind {
    Omp(RuntimeFlavor),
    Cuda,
}

/// Device-side data plus launch/verification info for one run.
pub struct Prepared {
    pub launch: Launch,
    pub args: Vec<RtVal>,
    /// Output buffer to compare against `expected`.
    pub out_ptr: DevPtr,
    pub expected: Vec<f64>,
    /// Relative tolerance for verification.
    pub tol: f64,
}

/// A proxy application.
pub trait Proxy {
    fn name(&self) -> &'static str;

    fn kernel_name(&self) -> &'static str {
        "kernel"
    }

    /// Build the application module for one kernel variant.
    fn build(&self, kind: KernelKind) -> Module;

    /// Upload inputs and compute the host reference.
    fn prepare(&self, dev: &mut Device) -> Prepared;

    /// Whether the launch covers the iteration space so the
    /// oversubscription assumptions (§III-F) are valid. Proxies returning
    /// `false` show "n/a" in the `New RT` column, as in the paper's tables.
    fn supports_oversubscription(&self) -> bool {
        true
    }
}

/// Result of one configured run.
pub struct RunResult {
    pub metrics: KernelMetrics,
    pub remarks: nzomp::opt::Remarks,
}

/// Build the proxy's module for an evaluation configuration.
pub fn build_for_config(proxy: &dyn Proxy, cfg: BuildConfig) -> Module {
    match cfg.runtime() {
        Some(flavor) => proxy.build(KernelKind::Omp(flavor)),
        None => proxy.build(KernelKind::Cuda),
    }
}

/// Compile the proxy under `cfg` (release).
pub fn compile_for_config(
    proxy: &dyn Proxy,
    cfg: BuildConfig,
) -> Result<CompileOutput, CompileError> {
    nzomp::compile(build_for_config(proxy, cfg), cfg)
}

/// Compile + run + verify the proxy under `cfg`. Returns
/// `Err(NotApplicable)` for config/proxy combinations the paper marks
/// "n/a" (assumptions that do not hold for the kernel).
pub fn run_config(
    proxy: &dyn Proxy,
    cfg: BuildConfig,
    dev_cfg: &DeviceConfig,
) -> Result<RunResult, RunError> {
    if cfg == BuildConfig::NewRt && !proxy.supports_oversubscription() {
        return Err(RunError::NotApplicable);
    }
    let out = compile_for_config(proxy, cfg).map_err(RunError::Compile)?;
    let mut dev = Device::load(out.module, dev_cfg.clone());
    let prep = proxy.prepare(&mut dev);
    let metrics = dev
        .launch(proxy.kernel_name(), prep.launch, &prep.args)
        .map_err(RunError::Exec)?;
    verify_output(&dev, &prep).map_err(RunError::Verify)?;
    Ok(RunResult {
        metrics,
        remarks: out.remarks,
    })
}

/// Compare the device output buffer with the host reference.
pub fn verify_output(dev: &Device, prep: &Prepared) -> Result<(), String> {
    let got = dev
        .read_f64(prep.out_ptr, prep.expected.len())
        .map_err(|e| format!("host readback failed: {e}"))?;
    for (i, (g, e)) in got.iter().zip(prep.expected.iter()).enumerate() {
        let denom = e.abs().max(1.0);
        if ((g - e).abs() / denom) > prep.tol {
            return Err(format!("output[{i}]: got {g}, expected {e}"));
        }
    }
    Ok(())
}

#[derive(Debug)]
pub enum RunError {
    /// Configuration not valid for this proxy (paper's "n/a" cells).
    NotApplicable,
    Compile(CompileError),
    Exec(ExecError),
    Verify(String),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::NotApplicable => write!(f, "n/a"),
            RunError::Compile(e) => write!(f, "compile failed: {e}"),
            RunError::Exec(e) => write!(f, "device trap: {e}"),
            RunError::Verify(m) => write!(f, "verification failed: {m}"),
        }
    }
}

impl std::error::Error for RunError {}

/// A device sized for quick interpreter runs (tests); benches use
/// `DeviceConfig::default()`.
pub fn quick_device() -> DeviceConfig {
    DeviceConfig {
        check_assumes: false,
        ..DeviceConfig::default()
    }
}

/// All five proxies, boxed, in the paper's presentation order.
pub fn all_proxies() -> Vec<Box<dyn Proxy>> {
    vec![
        Box::new(xsbench::XSBench::small()),
        Box::new(rsbench::RSBench::small()),
        Box::new(testsnap::TestSnap::small()),
        Box::new(minifmm::MiniFmm::small()),
        Box::new(gridmini::GridMini::small()),
    ]
}
