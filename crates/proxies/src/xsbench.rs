//! XSBench — proxy for OpenMC's continuous-energy macroscopic neutron
//! cross-section lookup (paper §V-A). Memory-bound: each lookup binary
//! searches the unionized energy grid, then gathers and interpolates five
//! cross-sections from every nuclide's grid.
//!
//! The per-lookup macro-XS accumulator is a local array the OpenMP
//! frontend conservatively globalizes — under the legacy runtime this is
//! what pulls in the data-sharing stack (Old-RT SMem 8,288 B in Fig. 11).

use nzomp_front::{cuda, globalized_local, free_globalized, spmd_kernel_for, RuntimeFlavor};
use nzomp_ir::builder::build_counted_loop;
use nzomp_ir::{FuncBuilder, Module, Operand, Pred, Ty};
use nzomp_host::{f64_bytes, i64_bytes, RegionArg};
use nzomp_vgpu::device::Launch;
use nzomp_vgpu::RtVal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{HostPrepared, KernelKind, Proxy};

/// Problem sizes.
#[derive(Clone, Debug)]
pub struct XSBench {
    pub n_isotopes: usize,
    pub n_gridpoints: usize,
    pub n_unionized: usize,
    pub n_lookups: usize,
    pub threads_per_team: u32,
    pub seed: u64,
}

impl XSBench {
    /// Quick-test size (fits interpreter budgets comfortably).
    pub fn small() -> XSBench {
        XSBench {
            n_isotopes: 12,
            n_gridpoints: 48,
            n_unionized: 128,
            n_lookups: 256,
            threads_per_team: 64,
            seed: 0x5eed_0001,
        }
    }

    /// Benchmark size.
    pub fn large() -> XSBench {
        XSBench {
            n_isotopes: 24,
            n_gridpoints: 96,
            n_unionized: 512,
            n_lookups: 2048,
            threads_per_team: 128,
            seed: 0x5eed_0001,
        }
    }

    fn teams(&self) -> u32 {
        (self.n_lookups as u32).div_ceil(self.threads_per_team)
    }

    /// Synthesize the input tables.
    fn generate(&self) -> Inputs {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let g = self.n_unionized;
        let ni = self.n_isotopes;
        let ng = self.n_gridpoints;
        let mut egrid: Vec<f64> = (0..g).map(|_| rng.gen_range(0.0..1.0)).collect();
        egrid.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let index_grid: Vec<i64> = (0..g * ni)
            .map(|_| rng.gen_range(0..(ng as i64 - 1)))
            .collect();
        // Per-isotope grids: 6 doubles per point (energy + 5 XS values).
        let nuc: Vec<f64> = (0..ni * ng * 6).map(|_| rng.gen_range(0.1..2.0)).collect();
        let energies: Vec<f64> = (0..self.n_lookups)
            .map(|_| rng.gen_range(egrid[0]..egrid[g - 1]))
            .collect();
        let densities: Vec<f64> = (0..ni).map(|_| rng.gen_range(0.01..1.0)).collect();
        Inputs {
            egrid,
            index_grid,
            nuc,
            energies,
            densities,
        }
    }

    /// Host reference (mirrors the device kernel bit for bit, modulo FP
    /// association — we keep the same association, so results are exact).
    fn reference(&self, inp: &Inputs) -> Vec<f64> {
        let g = self.n_unionized;
        let ni = self.n_isotopes;
        let ng = self.n_gridpoints;
        let mut out = vec![0.0; self.n_lookups * 5];
        for (li, &e) in inp.energies.iter().enumerate() {
            // Binary search: greatest idx with egrid[idx] <= e (idx < g-1).
            let (mut lo, mut hi) = (0usize, g - 1);
            while hi - lo > 1 {
                let mid = (lo + hi) / 2;
                if inp.egrid[mid] <= e {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            let idx = lo;
            let mut macro_xs = [0.0f64; 5];
            for iso in 0..ni {
                let j = inp.index_grid[idx * ni + iso] as usize;
                let base = (iso * ng + j) * 6;
                let e0 = inp.nuc[base];
                let e1 = inp.nuc[base + 6];
                let f = (e - e0) / (e1 - e0);
                for k in 0..5 {
                    let xs = inp.nuc[base + 1 + k] * (1.0 - f) + inp.nuc[base + 7 + k] * f;
                    macro_xs[k] += inp.densities[iso] * xs;
                }
            }
            out[li * 5..li * 5 + 5].copy_from_slice(&macro_xs);
        }
        out
    }
}

struct Inputs {
    egrid: Vec<f64>,
    index_grid: Vec<i64>,
    nuc: Vec<f64>,
    energies: Vec<f64>,
    densities: Vec<f64>,
}

/// Kernel parameters, in order.
const PARAMS: [Ty; 10] = [
    Ty::Ptr, // egrid
    Ty::Ptr, // index_grid
    Ty::Ptr, // nuc grids
    Ty::Ptr, // lookup energies
    Ty::Ptr, // densities
    Ty::Ptr, // out (n_lookups x 5)
    Ty::I64, // n_lookups
    Ty::I64, // n_unionized
    Ty::I64, // n_isotopes
    Ty::I64, // n_gridpoints
];

/// Emit one lookup (`iv` = lookup index). Shared between the OpenMP and
/// CUDA variants; `flavor` decides how the macro-XS scratch is allocated.
fn emit_lookup(
    m: &mut Module,
    b: &mut FuncBuilder,
    iv: Operand,
    p: &[Operand],
    flavor: Option<RuntimeFlavor>,
) {
    let (egrid, index_grid, nuc, energies, densities, out) =
        (p[0], p[1], p[2], p[3], p[4], p[5]);
    let (g, ni, ng) = (p[7], p[8], p[9]);

    let pe = b.gep(energies, iv, 8);
    let e = b.load(Ty::F64, pe);

    // ---- binary search over the unionized grid -------------------------
    let g_m1 = b.sub(g, Operand::i64(1));
    let entry = b.current_block();
    let header = b.new_block();
    let body = b.new_block();
    let found = b.new_block();
    b.br(header);
    b.switch_to(header);
    let lo = b.phi(Ty::I64, vec![(entry, Operand::i64(0))]);
    let hi = b.phi(Ty::I64, vec![(entry, g_m1)]);
    let span = b.sub(hi, lo);
    let more = b.cmp(Pred::Sgt, Ty::I64, span, Operand::i64(1));
    b.cond_br(more, body, found);
    b.switch_to(body);
    let sum = b.add(lo, hi);
    let mid = b.sdiv(sum, Operand::i64(2));
    let pm = b.gep(egrid, mid, 8);
    let vm = b.load(Ty::F64, pm);
    let le = b.cmp(Pred::Sle, Ty::F64, vm, e);
    let lo2 = b.select(Ty::I64, le, mid, lo);
    let hi2 = b.select(Ty::I64, le, hi, mid);
    let latch = b.current_block();
    b.br(header);
    b.phi_add_incoming(lo, latch, lo2);
    b.phi_add_incoming(hi, latch, hi2);
    b.switch_to(found);
    let idx = lo;

    // ---- macro-XS accumulator (globalized local, §IV-A2) ----------------
    let macro_xs = globalized_local(m, b, flavor, 5 * 8);
    for k in 0..5 {
        let pk = b.ptr_add(macro_xs, Operand::i64(k * 8));
        b.store(Ty::F64, pk, Operand::f64(0.0));
    }

    // ---- gather + interpolate over all isotopes -------------------------
    let row = b.mul(idx, ni);
    build_counted_loop(b, Operand::i64(0), ni, Operand::i64(1), |b, iso| {
        let slot = b.add(row, iso);
        let pj = b.gep(index_grid, slot, 8);
        let j = b.load(Ty::I64, pj);
        let iso_row = b.mul(iso, ng);
        let point = b.add(iso_row, j);
        let base = b.mul(point, Operand::i64(6));
        let pbase = b.gep(nuc, base, 8);
        let e0 = b.load(Ty::F64, pbase);
        let pnext = b.ptr_add(pbase, Operand::i64(6 * 8));
        let e1 = b.load(Ty::F64, pnext);
        let de = b.fsub(e1, e0);
        let num = b.fsub(e, e0);
        let f = b.fdiv(num, de);
        let one_m_f = b.fsub(Operand::f64(1.0), f);
        let pd = b.gep(densities, iso, 8);
        let dens = b.load(Ty::F64, pd);
        for k in 0..5i64 {
            let plo = b.ptr_add(pbase, Operand::i64((1 + k) * 8));
            let xs_lo = b.load(Ty::F64, plo);
            let phi_ = b.ptr_add(pbase, Operand::i64((7 + k) * 8));
            let xs_hi = b.load(Ty::F64, phi_);
            let a = b.fmul(xs_lo, one_m_f);
            let c = b.fmul(xs_hi, f);
            let xs = b.fadd(a, c);
            let contrib = b.fmul(dens, xs);
            let pk = b.ptr_add(macro_xs, Operand::i64(k * 8));
            let cur = b.load(Ty::F64, pk);
            let nv = b.fadd(cur, contrib);
            b.store(Ty::F64, pk, nv);
        }
    });

    // ---- write out --------------------------------------------------------
    let out_base = b.mul(iv, Operand::i64(5));
    let pout = b.gep(out, out_base, 8);
    for k in 0..5 {
        let pk = b.ptr_add(macro_xs, Operand::i64(k * 8));
        let v = b.load(Ty::F64, pk);
        let po = b.ptr_add(pout, Operand::i64(k * 8));
        b.store(Ty::F64, po, v);
    }
    free_globalized(m, b, flavor, macro_xs, 5 * 8);
}

impl Proxy for XSBench {
    fn name(&self) -> &'static str {
        "XSBench"
    }

    fn kernel_name(&self) -> &'static str {
        "xs_lookup_kernel"
    }

    fn build(&self, kind: KernelKind) -> Module {
        let mut m = Module::new("xsbench");
        match kind {
            KernelKind::Omp(flavor) => {
                spmd_kernel_for(
                    &mut m,
                    flavor,
                    self.kernel_name(),
                    &PARAMS,
                    |_b, p| p[6],
                    |m, b, iv, p| emit_lookup(m, b, iv, p, Some(flavor)),
                );
            }
            KernelKind::Cuda => {
                cuda::grid_stride_kernel(
                    &mut m,
                    self.kernel_name(),
                    &PARAMS,
                    |_b, p| p[6],
                    |m, b, iv, p| emit_lookup(m, b, iv, p, None),
                );
            }
        }
        nzomp_ir::verify_module(&m).expect("xsbench module verifies");
        m
    }

    fn host_prepare(&self) -> HostPrepared {
        let inp = self.generate();
        let expected = self.reference(&inp);
        HostPrepared {
            launch: Launch::new(self.teams(), self.threads_per_team),
            args: vec![
                RegionArg::To(f64_bytes(&inp.egrid)),
                RegionArg::To(i64_bytes(&inp.index_grid)),
                RegionArg::To(f64_bytes(&inp.nuc)),
                RegionArg::To(f64_bytes(&inp.energies)),
                RegionArg::To(f64_bytes(&inp.densities)),
                RegionArg::From((self.n_lookups * 5 * 8) as u64),
                RegionArg::Scalar(RtVal::I(self.n_lookups as i64)),
                RegionArg::Scalar(RtVal::I(self.n_unionized as i64)),
                RegionArg::Scalar(RtVal::I(self.n_isotopes as i64)),
                RegionArg::Scalar(RtVal::I(self.n_gridpoints as i64)),
            ],
            out_arg: 5,
            expected,
            tol: 1e-12,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_config, quick_device};
    use nzomp::BuildConfig;

    #[test]
    fn xsbench_correct_under_all_configs() {
        let p = XSBench::small();
        for cfg in BuildConfig::ALL {
            let r = run_config(&p, cfg, &quick_device());
            assert!(r.is_ok(), "{cfg:?}: {:?}", r.err().map(|e| e.to_string()));
        }
    }

    #[test]
    fn xsbench_legacy_uses_data_sharing_stack() {
        let p = XSBench::small();
        let r = run_config(&p, BuildConfig::OldRtNightly, &quick_device()).unwrap();
        assert_eq!(r.metrics.smem_bytes, 8288, "old RT with data sharing");
    }

    #[test]
    fn xsbench_new_rt_eliminates_state() {
        let p = XSBench::small();
        let r = run_config(&p, BuildConfig::NewRt, &quick_device()).unwrap();
        assert_eq!(r.metrics.smem_bytes, 0);
        assert_eq!(r.metrics.runtime_calls, 0);
    }
}
