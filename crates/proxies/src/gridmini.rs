//! GridMini — proxy for the Grid lattice-QCD library (paper §V-A): SU(3)
//! complex 3×3 matrix multiplication over every lattice site. The paper
//! reports this one in GFlops (Fig. 12) and used it for the per-pass
//! ablation (Fig. 13).
//!
//! As in the paper (§VII), the loop bound is passed to the target region
//! *by value*, matching the CUDA version.

use nzomp_front::{cuda, spmd_kernel_for};
use nzomp_ir::{FuncBuilder, Module, Operand, Ty};
use nzomp_host::{f64_bytes, RegionArg};
use nzomp_vgpu::device::Launch;
use nzomp_vgpu::RtVal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{HostPrepared, KernelKind, Proxy};

/// 3x3 complex matrices: 9 entries x (re, im) = 18 doubles per site.
const SITE_DOUBLES: usize = 18;

/// Floating point operations per site: 27 complex multiplies (6 flops each)
/// and 18 complex accumulate steps (2 flops each).
pub const FLOPS_PER_SITE: u64 = 27 * 6 + 18 * 2;

#[derive(Clone, Debug)]
pub struct GridMini {
    pub n_sites: usize,
    pub threads_per_team: u32,
    pub seed: u64,
}

impl GridMini {
    pub fn small() -> GridMini {
        GridMini {
            n_sites: 256,
            threads_per_team: 64,
            seed: 0x5eed_0003,
        }
    }

    pub fn large() -> GridMini {
        GridMini {
            n_sites: 4096,
            threads_per_team: 128,
            seed: 0x5eed_0003,
        }
    }

    fn teams(&self) -> u32 {
        (self.n_sites as u32).div_ceil(self.threads_per_team)
    }

    fn generate(&self) -> (Vec<f64>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = self.n_sites * SITE_DOUBLES;
        let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        (a, b)
    }

    fn reference(&self, a: &[f64], b: &[f64]) -> Vec<f64> {
        let mut c = vec![0.0; self.n_sites * SITE_DOUBLES];
        for s in 0..self.n_sites {
            let base = s * SITE_DOUBLES;
            for i in 0..3 {
                for j in 0..3 {
                    let mut re = 0.0f64;
                    let mut im = 0.0f64;
                    for k in 0..3 {
                        let ar = a[base + (i * 3 + k) * 2];
                        let ai = a[base + (i * 3 + k) * 2 + 1];
                        let br = b[base + (k * 3 + j) * 2];
                        let bi = b[base + (k * 3 + j) * 2 + 1];
                        re += ar * br - ai * bi;
                        im += ar * bi + ai * br;
                    }
                    c[base + (i * 3 + j) * 2] = re;
                    c[base + (i * 3 + j) * 2 + 1] = im;
                }
            }
        }
        c
    }
}

const PARAMS: [Ty; 4] = [Ty::Ptr, Ty::Ptr, Ty::Ptr, Ty::I64];

/// One site: fully unrolled complex 3x3 multiply. All 36 input values are
/// loaded up front (they stay live through the computation — this is what
/// gives the kernel its register pressure, as in the real SU(3) kernels).
fn emit_site(_m: &mut Module, b: &mut FuncBuilder, iv: Operand, p: &[Operand]) {
    let (pa, pb, pc) = (p[0], p[1], p[2]);
    let base = b.mul(iv, Operand::i64(SITE_DOUBLES as i64 * 8));
    let sa = b.ptr_add(pa, base);
    let sb = b.ptr_add(pb, base);
    let sc = b.ptr_add(pc, base);

    let mut av = Vec::with_capacity(SITE_DOUBLES);
    let mut bv = Vec::with_capacity(SITE_DOUBLES);
    for t in 0..SITE_DOUBLES as i64 {
        let pa_t = b.ptr_add(sa, Operand::i64(t * 8));
        av.push(b.load(Ty::F64, pa_t));
        let pb_t = b.ptr_add(sb, Operand::i64(t * 8));
        bv.push(b.load(Ty::F64, pb_t));
    }
    for i in 0..3usize {
        for j in 0..3usize {
            let mut re: Option<Operand> = None;
            let mut im: Option<Operand> = None;
            for k in 0..3usize {
                let ar = av[(i * 3 + k) * 2];
                let ai = av[(i * 3 + k) * 2 + 1];
                let br = bv[(k * 3 + j) * 2];
                let bi = bv[(k * 3 + j) * 2 + 1];
                let rr = b.fmul(ar, br);
                let ii = b.fmul(ai, bi);
                let re_t = b.fsub(rr, ii);
                let ri = b.fmul(ar, bi);
                let ir = b.fmul(ai, br);
                let im_t = b.fadd(ri, ir);
                re = Some(match re {
                    None => re_t,
                    Some(acc) => b.fadd(acc, re_t),
                });
                im = Some(match im {
                    None => im_t,
                    Some(acc) => b.fadd(acc, im_t),
                });
            }
            let po_re = b.ptr_add(sc, Operand::i64(((i * 3 + j) * 2) as i64 * 8));
            b.store(Ty::F64, po_re, re.unwrap());
            let po_im = b.ptr_add(sc, Operand::i64(((i * 3 + j) * 2 + 1) as i64 * 8));
            b.store(Ty::F64, po_im, im.unwrap());
        }
    }
}

impl Proxy for GridMini {
    fn name(&self) -> &'static str {
        "GridMini"
    }

    fn kernel_name(&self) -> &'static str {
        "su3_mult_kernel"
    }

    fn build(&self, kind: KernelKind) -> Module {
        let mut m = Module::new("gridmini");
        match kind {
            KernelKind::Omp(flavor) => {
                spmd_kernel_for(
                    &mut m,
                    flavor,
                    self.kernel_name(),
                    &PARAMS,
                    // Loop bound by value (the §VII GridMini fix).
                    |_b, p| p[3],
                    |m, b, iv, p| emit_site(m, b, iv, p),
                );
            }
            KernelKind::Cuda => {
                cuda::grid_stride_kernel(
                    &mut m,
                    self.kernel_name(),
                    &PARAMS,
                    |_b, p| p[3],
                    |m, b, iv, p| emit_site(m, b, iv, p),
                );
            }
        }
        nzomp_ir::verify_module(&m).expect("gridmini module verifies");
        m
    }

    fn host_prepare(&self) -> HostPrepared {
        let (a, bb) = self.generate();
        let expected = self.reference(&a, &bb);
        HostPrepared {
            launch: Launch::new(self.teams(), self.threads_per_team),
            args: vec![
                RegionArg::To(f64_bytes(&a)),
                RegionArg::To(f64_bytes(&bb)),
                RegionArg::From((self.n_sites * SITE_DOUBLES * 8) as u64),
                RegionArg::Scalar(RtVal::I(self.n_sites as i64)),
            ],
            out_arg: 2,
            expected,
            tol: 1e-12,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{quick_device, run_config};
    use nzomp::BuildConfig;

    #[test]
    fn gridmini_correct_under_all_configs() {
        let p = GridMini::small();
        for cfg in BuildConfig::ALL {
            let r = run_config(&p, cfg, &quick_device());
            assert!(r.is_ok(), "{cfg:?}: {:?}", r.err().map(|e| e.to_string()));
        }
    }

    #[test]
    fn gridmini_flop_count_matches_model() {
        let p = GridMini::small();
        let r = run_config(&p, BuildConfig::Cuda, &quick_device()).unwrap();
        assert_eq!(r.metrics.flops, FLOPS_PER_SITE * p.n_sites as u64);
    }

    #[test]
    fn gridmini_new_rt_matches_cuda_gflops_closely() {
        let p = GridMini::small();
        let new_rt = run_config(&p, BuildConfig::NewRtNoAssumptions, &quick_device()).unwrap();
        let cuda = run_config(&p, BuildConfig::Cuda, &quick_device()).unwrap();
        let ratio = new_rt.metrics.gflops() / cuda.metrics.gflops();
        assert!(ratio > 0.9, "GFlops ratio {ratio:.3}");
    }
}
