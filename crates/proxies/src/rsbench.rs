//! RSBench — the compute-bound multipole alternative to XSBench (paper
//! §V-A): cross-sections are reconstructed from resonance poles with heavy
//! floating-point arithmetic (sqrt/sin/cos per pole) and little memory
//! traffic.

use nzomp_front::{cuda, spmd_kernel_for};
use nzomp_ir::builder::build_counted_loop;
use nzomp_ir::{FuncBuilder, Module, Operand, Ty, UnOp};
use nzomp_host::{f64_bytes, RegionArg};
use nzomp_vgpu::device::Launch;
use nzomp_vgpu::RtVal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{HostPrepared, KernelKind, Proxy};

#[derive(Clone, Debug)]
pub struct RSBench {
    pub n_nuclides: usize,
    pub n_windows: usize,
    pub poles_per_window: usize,
    pub n_lookups: usize,
    pub threads_per_team: u32,
    pub seed: u64,
}

impl RSBench {
    pub fn small() -> RSBench {
        RSBench {
            n_nuclides: 8,
            n_windows: 16,
            poles_per_window: 4,
            n_lookups: 256,
            threads_per_team: 64,
            seed: 0x5eed_0002,
        }
    }

    pub fn large() -> RSBench {
        RSBench {
            n_nuclides: 16,
            n_windows: 32,
            poles_per_window: 6,
            n_lookups: 2048,
            threads_per_team: 128,
            seed: 0x5eed_0002,
        }
    }

    fn teams(&self) -> u32 {
        (self.n_lookups as u32).div_ceil(self.threads_per_team)
    }

    fn generate(&self) -> Inputs {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let np = self.n_nuclides * self.n_windows * self.poles_per_window;
        // Pole: (ea, er, ei, k) per entry.
        let poles: Vec<f64> = (0..np * 4).map(|_| rng.gen_range(0.1..1.0)).collect();
        let energies: Vec<f64> = (0..self.n_lookups).map(|_| rng.gen_range(0.05..0.95)).collect();
        Inputs { poles, energies }
    }

    fn reference(&self, inp: &Inputs) -> Vec<f64> {
        let mut out = vec![0.0; self.n_lookups];
        for (li, &e) in inp.energies.iter().enumerate() {
            let mut total = 0.0f64;
            let w = ((e * self.n_windows as f64) as i64).rem_euclid(self.n_windows as i64) as usize;
            let sqrt_e = e.sqrt();
            for n in 0..self.n_nuclides {
                let base = ((n * self.n_windows + w) * self.poles_per_window) * 4;
                for p in 0..self.poles_per_window {
                    let ea = inp.poles[base + p * 4];
                    let er = inp.poles[base + p * 4 + 1];
                    let ei = inp.poles[base + p * 4 + 2];
                    let k = inp.poles[base + p * 4 + 3];
                    let psi = sqrt_e - ea;
                    let denom = psi * psi + ei * ei;
                    let re = (er * psi + ei * k) / denom;
                    let phase = psi.sin() * k.cos();
                    total += re + re * phase;
                }
            }
            out[li] = total;
        }
        out
    }
}

struct Inputs {
    poles: Vec<f64>,
    energies: Vec<f64>,
}

const PARAMS: [Ty; 7] = [
    Ty::Ptr, // poles
    Ty::Ptr, // energies
    Ty::Ptr, // out
    Ty::I64, // n_lookups
    Ty::I64, // n_nuclides
    Ty::I64, // n_windows
    Ty::I64, // poles_per_window
];

fn emit_lookup(_m: &mut Module, b: &mut FuncBuilder, iv: Operand, p: &[Operand]) {
    let (poles, energies, out) = (p[0], p[1], p[2]);
    let (n_nuc, n_win, ppw) = (p[4], p[5], p[6]);

    let pe = b.gep(energies, iv, 8);
    let e = b.load(Ty::F64, pe);
    let nwf = b.si_to_fp(n_win);
    let scaled = b.fmul(e, nwf);
    let wi = b.fp_to_si(scaled);
    let w = b.srem(wi, n_win);
    let sqrt_e = b.sqrt(e);

    // Accumulate across nuclides and poles. The accumulator lives in a
    // thread-private slot so the loop nest mirrors the proxy's structure.
    let acc = b.alloca(8);
    b.store(Ty::F64, acc, Operand::f64(0.0));

    let ppw4 = b.mul(ppw, Operand::i64(4));
    build_counted_loop(b, Operand::i64(0), n_nuc, Operand::i64(1), |b, n| {
        let row = b.mul(n, n_win);
        let cell = b.add(row, w);
        let base_idx = b.mul(cell, ppw4);
        let pbase = b.gep(poles, base_idx, 8);
        build_counted_loop(b, Operand::i64(0), ppw, Operand::i64(1), |b, pp| {
            let off = b.mul(pp, Operand::i64(32));
            let pp0 = b.ptr_add(pbase, off);
            let ea = b.load(Ty::F64, pp0);
            let pp1 = b.ptr_add(pp0, Operand::i64(8));
            let er = b.load(Ty::F64, pp1);
            let pp2 = b.ptr_add(pp0, Operand::i64(16));
            let ei = b.load(Ty::F64, pp2);
            let pp3 = b.ptr_add(pp0, Operand::i64(24));
            let k = b.load(Ty::F64, pp3);
            let psi = b.fsub(sqrt_e, ea);
            let psi2 = b.fmul(psi, psi);
            let ei2 = b.fmul(ei, ei);
            let denom = b.fadd(psi2, ei2);
            let t1 = b.fmul(er, psi);
            let t2 = b.fmul(ei, k);
            let num = b.fadd(t1, t2);
            let re = b.fdiv(num, denom);
            let s = b.un(UnOp::Sin, Ty::F64, psi);
            let c = b.un(UnOp::Cos, Ty::F64, k);
            let phase = b.fmul(s, c);
            let rp = b.fmul(re, phase);
            let contrib = b.fadd(re, rp);
            let cur = b.load(Ty::F64, acc);
            let nv = b.fadd(cur, contrib);
            b.store(Ty::F64, acc, nv);
        });
    });

    let total = b.load(Ty::F64, acc);
    let po = b.gep(out, iv, 8);
    b.store(Ty::F64, po, total);
}

impl Proxy for RSBench {
    fn name(&self) -> &'static str {
        "RSBench"
    }

    fn kernel_name(&self) -> &'static str {
        "rs_lookup_kernel"
    }

    fn build(&self, kind: KernelKind) -> Module {
        let mut m = Module::new("rsbench");
        match kind {
            KernelKind::Omp(flavor) => {
                spmd_kernel_for(
                    &mut m,
                    flavor,
                    self.kernel_name(),
                    &PARAMS,
                    |_b, p| p[3],
                    |m, b, iv, p| emit_lookup(m, b, iv, p),
                );
            }
            KernelKind::Cuda => {
                cuda::grid_stride_kernel(
                    &mut m,
                    self.kernel_name(),
                    &PARAMS,
                    |_b, p| p[3],
                    |m, b, iv, p| emit_lookup(m, b, iv, p),
                );
            }
        }
        nzomp_ir::verify_module(&m).expect("rsbench module verifies");
        m
    }

    fn host_prepare(&self) -> HostPrepared {
        let inp = self.generate();
        let expected = self.reference(&inp);
        HostPrepared {
            launch: Launch::new(self.teams(), self.threads_per_team),
            args: vec![
                RegionArg::To(f64_bytes(&inp.poles)),
                RegionArg::To(f64_bytes(&inp.energies)),
                RegionArg::From((self.n_lookups * 8) as u64),
                RegionArg::Scalar(RtVal::I(self.n_lookups as i64)),
                RegionArg::Scalar(RtVal::I(self.n_nuclides as i64)),
                RegionArg::Scalar(RtVal::I(self.n_windows as i64)),
                RegionArg::Scalar(RtVal::I(self.poles_per_window as i64)),
            ],
            out_arg: 2,
            expected,
            tol: 1e-12,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{quick_device, run_config};
    use nzomp::BuildConfig;

    #[test]
    fn rsbench_correct_under_all_configs() {
        let p = RSBench::small();
        for cfg in BuildConfig::ALL {
            let r = run_config(&p, cfg, &quick_device());
            assert!(r.is_ok(), "{cfg:?}: {:?}", r.err().map(|e| e.to_string()));
        }
    }

    #[test]
    fn rsbench_is_compute_bound() {
        // Flops should dominate global memory accesses.
        let p = RSBench::small();
        let r = run_config(&p, BuildConfig::Cuda, &quick_device()).unwrap();
        assert!(
            r.metrics.flops > 2 * r.metrics.global_accesses,
            "flops {} vs accesses {}",
            r.metrics.flops,
            r.metrics.global_accesses
        );
    }

    /// RSBench needs no globalization: legacy SMem is the bare 2,336 bytes
    /// (Fig. 11's Old-RT RSBench row).
    #[test]
    fn rsbench_legacy_smem_is_bare_state() {
        let p = RSBench::small();
        let r = run_config(&p, BuildConfig::OldRtNightly, &quick_device()).unwrap();
        assert_eq!(r.metrics.smem_bytes, 2336);
    }
}
