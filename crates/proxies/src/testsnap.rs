//! TestSNAP — proxy for the SNAP force kernel in LAMMPS (paper §V-A): for
//! every atom, iterate its neighbor list, evaluate a switching function and
//! a bispectrum-style polynomial in the squared distance, and accumulate
//! the three force components. Reports the *grind time* (ms per
//! atom-step), the metric TestSNAP itself prints.

use nzomp_front::{cuda, spmd_kernel_for};
use nzomp_ir::builder::build_counted_loop;
use nzomp_ir::{FuncBuilder, Module, Operand, Ty};
use nzomp_host::{f64_bytes, RegionArg};
use nzomp_vgpu::device::Launch;
use nzomp_vgpu::RtVal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{HostPrepared, KernelKind, Proxy};

#[derive(Clone, Debug)]
pub struct TestSnap {
    pub n_atoms: usize,
    pub n_neighbors: usize,
    pub n_coeffs: usize,
    pub threads_per_team: u32,
    pub seed: u64,
}

impl TestSnap {
    pub fn small() -> TestSnap {
        TestSnap {
            n_atoms: 128,
            n_neighbors: 12,
            n_coeffs: 6,
            threads_per_team: 32,
            seed: 0x5eed_0004,
        }
    }

    pub fn large() -> TestSnap {
        TestSnap {
            n_atoms: 1024,
            n_neighbors: 20,
            n_coeffs: 8,
            threads_per_team: 128,
            seed: 0x5eed_0004,
        }
    }

    fn teams(&self) -> u32 {
        (self.n_atoms as u32).div_ceil(self.threads_per_team)
    }

    fn generate(&self) -> (Vec<f64>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Relative neighbor positions (dx, dy, dz) per (atom, neighbor).
        let pos: Vec<f64> = (0..self.n_atoms * self.n_neighbors * 3)
            .map(|_| rng.gen_range(-0.8..0.8))
            .collect();
        let coeffs: Vec<f64> = (0..self.n_coeffs).map(|_| rng.gen_range(-0.5..0.5)).collect();
        (pos, coeffs)
    }

    fn reference(&self, pos: &[f64], coeffs: &[f64]) -> Vec<f64> {
        let rcut2 = 4.0f64;
        let mut force = vec![0.0; self.n_atoms * 3];
        for a in 0..self.n_atoms {
            let mut f = [0.0f64; 3];
            for nb in 0..self.n_neighbors {
                let base = (a * self.n_neighbors + nb) * 3;
                let dx = pos[base];
                let dy = pos[base + 1];
                let dz = pos[base + 2];
                let r2 = dx * dx + dy * dy + dz * dz;
                let x = 1.0 - r2 / rcut2;
                let sw = x * x;
                // Horner evaluation of the "bispectrum" polynomial in r2.
                let mut poly = 0.0f64;
                for c in (0..self.n_coeffs).rev() {
                    poly = poly * r2 + coeffs[c];
                }
                let s = sw * poly;
                f[0] += dx * s;
                f[1] += dy * s;
                f[2] += dz * s;
            }
            force[a * 3] = f[0];
            force[a * 3 + 1] = f[1];
            force[a * 3 + 2] = f[2];
        }
        force
    }
}

const PARAMS: [Ty; 6] = [
    Ty::Ptr, // neighbor positions
    Ty::Ptr, // polynomial coefficients
    Ty::Ptr, // force out (n_atoms x 3)
    Ty::I64, // n_atoms
    Ty::I64, // n_neighbors
    Ty::I64, // n_coeffs
];

fn emit_atom(_m: &mut Module, b: &mut FuncBuilder, iv: Operand, p: &[Operand]) {
    let (pos, coeffs, force) = (p[0], p[1], p[2]);
    let (n_nb, n_c) = (p[4], p[5]);
    let rcut2 = Operand::f64(4.0);

    // Force accumulators in thread-private memory.
    let facc = b.alloca(3 * 8);
    for k in 0..3 {
        let pk = b.ptr_add(facc, Operand::i64(k * 8));
        b.store(Ty::F64, pk, Operand::f64(0.0));
    }

    let row = b.mul(iv, n_nb);
    build_counted_loop(b, Operand::i64(0), n_nb, Operand::i64(1), |b, nb| {
        let item = b.add(row, nb);
        let base = b.mul(item, Operand::i64(3));
        let pb = b.gep(pos, base, 8);
        let dx = b.load(Ty::F64, pb);
        let pb1 = b.ptr_add(pb, Operand::i64(8));
        let dy = b.load(Ty::F64, pb1);
        let pb2 = b.ptr_add(pb, Operand::i64(16));
        let dz = b.load(Ty::F64, pb2);
        let xx = b.fmul(dx, dx);
        let yy = b.fmul(dy, dy);
        let zz = b.fmul(dz, dz);
        let t = b.fadd(xx, yy);
        let r2 = b.fadd(t, zz);
        let frac = b.fdiv(r2, rcut2);
        let x = b.fsub(Operand::f64(1.0), frac);
        let sw = b.fmul(x, x);

        // Horner loop over coefficients, highest degree first.
        let poly_slot = b.alloca(8);
        b.store(Ty::F64, poly_slot, Operand::f64(0.0));
        build_counted_loop(b, Operand::i64(0), n_c, Operand::i64(1), |b, c| {
            // index = n_c - 1 - c
            let ncm1 = b.sub(n_c, Operand::i64(1));
            let idx = b.sub(ncm1, c);
            let pc = b.gep(coeffs, idx, 8);
            let coef = b.load(Ty::F64, pc);
            let cur = b.load(Ty::F64, poly_slot);
            let m = b.fmul(cur, r2);
            let nv = b.fadd(m, coef);
            b.store(Ty::F64, poly_slot, nv);
        });
        let poly = b.load(Ty::F64, poly_slot);
        let s = b.fmul(sw, poly);
        for (k, d) in [dx, dy, dz].into_iter().enumerate() {
            let contrib = b.fmul(d, s);
            let pk = b.ptr_add(facc, Operand::i64(k as i64 * 8));
            let cur = b.load(Ty::F64, pk);
            let nv = b.fadd(cur, contrib);
            b.store(Ty::F64, pk, nv);
        }
    });

    let out_base = b.mul(iv, Operand::i64(3));
    let pout = b.gep(force, out_base, 8);
    for k in 0..3 {
        let pk = b.ptr_add(facc, Operand::i64(k * 8));
        let v = b.load(Ty::F64, pk);
        let po = b.ptr_add(pout, Operand::i64(k * 8));
        b.store(Ty::F64, po, v);
    }
}

impl TestSnap {
    /// Grind time in ms/atom-step (TestSNAP's reported metric).
    pub fn grind_time_ms(&self, kernel_time_ms: f64) -> f64 {
        kernel_time_ms / self.n_atoms as f64
    }
}

impl Proxy for TestSnap {
    fn name(&self) -> &'static str {
        "TestSNAP"
    }

    fn kernel_name(&self) -> &'static str {
        "snap_force_kernel"
    }

    fn build(&self, kind: KernelKind) -> Module {
        let mut m = Module::new("testsnap");
        match kind {
            KernelKind::Omp(flavor) => {
                spmd_kernel_for(
                    &mut m,
                    flavor,
                    self.kernel_name(),
                    &PARAMS,
                    |_b, p| p[3],
                    |m, b, iv, p| emit_atom(m, b, iv, p),
                );
            }
            KernelKind::Cuda => {
                cuda::grid_stride_kernel(
                    &mut m,
                    self.kernel_name(),
                    &PARAMS,
                    |_b, p| p[3],
                    |m, b, iv, p| emit_atom(m, b, iv, p),
                );
            }
        }
        nzomp_ir::verify_module(&m).expect("testsnap module verifies");
        m
    }

    fn host_prepare(&self) -> HostPrepared {
        let (pos, coeffs) = self.generate();
        let expected = self.reference(&pos, &coeffs);
        HostPrepared {
            launch: Launch::new(self.teams(), self.threads_per_team),
            args: vec![
                RegionArg::To(f64_bytes(&pos)),
                RegionArg::To(f64_bytes(&coeffs)),
                RegionArg::From((self.n_atoms * 3 * 8) as u64),
                RegionArg::Scalar(RtVal::I(self.n_atoms as i64)),
                RegionArg::Scalar(RtVal::I(self.n_neighbors as i64)),
                RegionArg::Scalar(RtVal::I(self.n_coeffs as i64)),
            ],
            out_arg: 2,
            expected,
            tol: 1e-12,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{quick_device, run_config};
    use nzomp::BuildConfig;

    #[test]
    fn testsnap_correct_under_all_configs() {
        let p = TestSnap::small();
        for cfg in BuildConfig::ALL {
            let r = run_config(&p, cfg, &quick_device());
            assert!(r.is_ok(), "{cfg:?}: {:?}", r.err().map(|e| e.to_string()));
        }
    }

    #[test]
    fn testsnap_grind_time_improves_with_new_rt() {
        let p = TestSnap::small();
        let old = run_config(&p, BuildConfig::OldRtNightly, &quick_device()).unwrap();
        let new = run_config(&p, BuildConfig::NewRtNoAssumptions, &quick_device()).unwrap();
        assert!(
            p.grind_time_ms(new.metrics.time_ms) < p.grind_time_ms(old.metrics.time_ms),
            "new {} vs old {}",
            new.metrics.time_ms,
            old.metrics.time_ms
        );
    }
}
