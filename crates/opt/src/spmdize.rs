//! SPMDization (paper §IV-A3): convert eligible generic-mode kernels to
//! SPMD mode, removing the state machine entirely.
//!
//! Eligibility: every instruction of the kernel body is recomputable by all
//! threads (pure, loads, stores to thread-private memory) or is one of the
//! whitelisted runtime interactions (init/deinit, globalization of the
//! parallel arguments, the parallel fork itself). The transform then:
//!
//! * flips the init/deinit mode argument to SPMD (the worker branch folds
//!   away once the constant propagates through the inlined init);
//! * demotes the parallel-argument globalization to thread-private stack
//!   (every thread recomputes its own copy — the "recompute" strategy the
//!   paper describes; guarded execution is the alternative);
//! * retargets `__kmpc_parallel_51` to the SPMD fork `__kmpc_parallel_spmd`.
//!
//! Ineligible kernels get a missed-optimization remark
//! (`-Rpass-missed=openmp-opt`, §VII).

use std::collections::HashSet;

use nzomp_ir::inst::{Inst, InstId, Intrinsic};
use nzomp_ir::{ExecMode, Module, Operand};
use nzomp_rt::abi;

use crate::remarks::Remarks;
use crate::PassOptions;

pub fn run(module: &mut Module, _opts: &PassOptions, remarks: &mut Remarks) -> bool {
    let mut changed = false;
    let kernels: Vec<(u32, ExecMode)> = module
        .kernels
        .iter()
        .map(|k| (k.func.0, k.exec_mode))
        .collect();
    for (fidx, mode) in kernels {
        if mode != ExecMode::Generic {
            continue;
        }
        match check_eligibility(module, fidx) {
            Ok(plan) => {
                if !apply(module, fidx, &plan) {
                    continue;
                }
                changed = true;
                let name = module.funcs[fidx as usize].name.clone();
                module.set_exec_mode(nzomp_ir::module::FuncRef(fidx), ExecMode::Spmd);
                remarks.passed(
                    "openmp-opt",
                    &name,
                    "transformed generic-mode kernel to SPMD mode",
                );
            }
            Err(reason) => {
                let name = module.funcs[fidx as usize].name.clone();
                remarks.missed(
                    "openmp-opt",
                    &name,
                    format!("kernel cannot be moved to SPMD mode: {reason}"),
                );
            }
        }
    }
    changed
}

/// What to rewrite if the kernel is eligible.
struct Plan {
    init_calls: Vec<InstId>,
    deinit_calls: Vec<InstId>,
    parallel_calls: Vec<InstId>,
    alloc_shared_calls: Vec<(InstId, u64)>,
    free_shared_calls: Vec<InstId>,
}

fn check_eligibility(module: &Module, fidx: u32) -> Result<Plan, String> {
    let f = &module.funcs[fidx as usize];
    let mut plan = Plan {
        init_calls: vec![],
        deinit_calls: vec![],
        parallel_calls: vec![],
        alloc_shared_calls: vec![],
        free_shared_calls: vec![],
    };
    // Results of allocas / demoted alloc_shared: legal store targets.
    let mut private_ptrs: HashSet<InstId> = HashSet::new();

    for block in &f.blocks {
        for &iid in &block.insts {
            match f.inst(iid) {
                Inst::Alloca { .. } => {
                    private_ptrs.insert(iid);
                }
                Inst::PtrAdd { base, .. } => {
                    if let Operand::Inst(b) = base {
                        if private_ptrs.contains(b) {
                            private_ptrs.insert(iid);
                        }
                    }
                }
                Inst::Store { ptr, .. } => {
                    let ok = match ptr {
                        Operand::Inst(p) => private_ptrs.contains(p),
                        _ => false,
                    };
                    if !ok {
                        return Err("sequential store to possibly-shared memory".into());
                    }
                }
                Inst::Atomic { .. } | Inst::Cas { .. } => {
                    return Err("sequential atomic operation".into());
                }
                Inst::Intr { intr, .. } => match intr {
                    Intrinsic::AlignedBarrier | Intrinsic::Barrier => {
                        return Err("explicit barrier in sequential region".into());
                    }
                    Intrinsic::Malloc | Intrinsic::Free | Intrinsic::AssertFail => {
                        return Err("side-effecting intrinsic in sequential region".into());
                    }
                    _ => {}
                },
                Inst::Call { callee, args, .. } => {
                    let Operand::Func(t) = callee else {
                        return Err("indirect call in sequential region".into());
                    };
                    let callee_name = module.funcs[t.index()].name.as_str();
                    match callee_name {
                        n if n == abi::TARGET_INIT => {
                            if args[0].as_const_int() != Some(abi::MODE_GENERIC) {
                                return Err("unexpected init mode".into());
                            }
                            plan.init_calls.push(iid);
                        }
                        n if n == abi::TARGET_DEINIT => plan.deinit_calls.push(iid),
                        n if n == abi::PARALLEL_51 => {
                            plan.parallel_calls.push(iid);
                        }
                        n if n == abi::ALLOC_SHARED => {
                            let Some(size) = args[0].as_const_int() else {
                                return Err("globalization with dynamic size".into());
                            };
                            plan.alloc_shared_calls.push((iid, size as u64));
                            private_ptrs.insert(iid);
                        }
                        n if n == abi::FREE_SHARED => plan.free_shared_calls.push(iid),
                        n if n == abi::NZOMP_TRACE => {}
                        // Team-uniform queries are safely recomputable.
                        n if n == abi::OMP_GET_TEAM_NUM || n == abi::OMP_GET_NUM_TEAMS => {}
                        other => {
                            return Err(format!(
                                "call to @{other} with unknown side effects in sequential region"
                            ));
                        }
                    }
                }
                _ => {}
            }
        }
    }
    if plan.parallel_calls.is_empty() {
        return Err("no parallel region to promote".into());
    }
    if plan.init_calls.is_empty() {
        return Err("kernel has no target_init call".into());
    }
    Ok(plan)
}

/// Returns false (module untouched) when the modern runtime is not linked —
/// a generic-mode kernel without `__kmpc_parallel_spmd` cannot be promoted.
fn apply(module: &mut Module, fidx: u32, plan: &Plan) -> bool {
    let Some(spmd_fork) = module.find_func("__kmpc_parallel_spmd") else {
        return false;
    };
    let f = &mut module.funcs[fidx as usize];
    for &iid in &plan.init_calls {
        if let Inst::Call { args, .. } = f.inst_mut(iid) {
            args[0] = Operand::i64(abi::MODE_SPMD);
        }
    }
    for &iid in &plan.deinit_calls {
        if let Inst::Call { args, .. } = f.inst_mut(iid) {
            args[0] = Operand::i64(abi::MODE_SPMD);
        }
    }
    for &iid in &plan.parallel_calls {
        if let Inst::Call { callee, .. } = f.inst_mut(iid) {
            *callee = Operand::Func(spmd_fork);
        }
    }
    for &(iid, size) in &plan.alloc_shared_calls {
        // Demote globalization to thread-private memory: each thread
        // recomputes the captured values into its own copy.
        f.insts[iid.index()] = Inst::Alloca { size };
    }
    // free_shared of a demoted pointer is a no-op; drop the calls.
    let drop: HashSet<InstId> = plan.free_shared_calls.iter().copied().collect();
    for block in &mut f.blocks {
        block.insts.retain(|i| !drop.contains(i));
    }
    true
}
