//! `nzomp-opt` — the OpenMP-aware optimization pipeline (paper §IV).
//!
//! The pipeline mirrors LLVM's `openmp-opt` plus the passes this paper
//! added. Each §IV feature has its own switch in [`PassOptions`] so the
//! Fig. 13 ablation ("one optimization disabled at a time") is a first-class
//! operation:
//!
//! | switch | paper | effect |
//! |---|---|---|
//! | `fsaa` | §IV-B1 | field-sensitive access analysis: offset/size-binned accesses, zero-init folding, dead-store elimination, state pruning |
//! | `reach_dom` | §IV-B2 | lifetime-aware interprocedural reachability & dominance (folds across non-inlined calls) |
//! | `assumed_content` | §IV-B3 | `assume(load(x) == k)` after broadcast barriers becomes a pseudo-write for the analysis |
//! | `invariant_prop` | §IV-B4 | grid-dimension intrinsics and other invariant values propagate through memory |
//! | `aligned_exec` | §IV-C | exclusive/aligned execution contexts: lets dominance reasoning cross barriers and recognizes attribute-aligned barriers |
//! | `barrier_elim` | §IV-D | removes redundant aligned barriers (incl. implicit kernel entry/exit) |
//!
//! The pre-existing LLVM capabilities (§IV-A: internalization,
//! globalization elimination, SPMDization) plus standard folding and
//! inlining form the *baseline* pipeline — the "Nightly" columns of the
//! evaluation run with exactly that.
//!
//! A pass must degrade to "no change", never abort: `unwrap`/`expect` are
//! denied crate-wide (tests are exempt).

#![deny(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod barrier;
pub mod fold;
pub mod fsaa;
pub mod globalize;
pub mod inline;
pub mod pass;
pub mod pipeline;
pub mod prune;
pub mod remarks;
pub mod simplify;
pub mod spmdize;

use nzomp_ir::Module;
pub use pass::{ModulePass, PassEffect};
pub use pipeline::{IrStats, PassManager, PassStat, PassTimings, Pipeline, Stage, VerifyFailure};
pub use remarks::{Remark, RemarkKind, Remarks};

/// Feature switches for the pipeline. See the crate docs for the mapping to
/// the paper's sections.
#[derive(Clone, Debug)]
pub struct PassOptions {
    // -- baseline (pre-paper LLVM) --
    pub internalize: bool,
    pub inline: bool,
    pub fold_constants: bool,
    pub simplify_cfg: bool,
    pub globalization_elim: bool,
    pub spmdization: bool,
    // -- this paper (§IV-B..D) --
    pub fsaa: bool,
    pub reach_dom: bool,
    pub assumed_content: bool,
    pub invariant_prop: bool,
    pub aligned_exec: bool,
    pub barrier_elim: bool,
    /// Remove shared-state globals once all their accesses folded away
    /// (rides on `fsaa`).
    pub state_prune: bool,
    /// Drop `assume`s after the fixpoint (release builds) so the stores
    /// feeding them can die. Debug builds keep them (they are checked).
    pub drop_assumes: bool,
    // -- tuning --
    pub inline_budget: usize,
    pub max_iterations: usize,
}

impl PassOptions {
    /// No optimization at all (`-O0`).
    ///
    /// The **only** exhaustive struct literal among the constructors: a new
    /// switch added to [`PassOptions`] fails to compile right here, and the
    /// derived constructors below ([`baseline`](PassOptions::baseline) →
    /// [`full`](PassOptions::full) → [`full_without`](PassOptions::full_without))
    /// inherit it via struct update, so it cannot be forgotten in one of
    /// them.
    pub fn none() -> PassOptions {
        PassOptions {
            internalize: false,
            inline: false,
            fold_constants: false,
            simplify_cfg: false,
            globalization_elim: false,
            spmdization: false,
            fsaa: false,
            reach_dom: false,
            assumed_content: false,
            invariant_prop: false,
            aligned_exec: false,
            barrier_elim: false,
            state_prune: false,
            drop_assumes: false,
            inline_budget: 0,
            max_iterations: 0,
        }
    }

    /// The pre-paper pipeline: what LLVM nightly did *before* this work's
    /// passes landed. Used for the "Old RT (Nightly)" and "New RT (Nightly)"
    /// configurations. Derived from [`none`](PassOptions::none) by enabling
    /// exactly the §IV-A/baseline switches.
    pub fn baseline() -> PassOptions {
        PassOptions {
            internalize: true,
            inline: true,
            fold_constants: true,
            simplify_cfg: true,
            globalization_elim: true,
            spmdization: true,
            inline_budget: 256,
            max_iterations: 8,
            ..PassOptions::none()
        }
    }

    /// The full co-designed pipeline (§IV): baseline plus every paper pass.
    pub fn full() -> PassOptions {
        PassOptions {
            fsaa: true,
            reach_dom: true,
            assumed_content: true,
            invariant_prop: true,
            aligned_exec: true,
            barrier_elim: true,
            state_prune: true,
            drop_assumes: true,
            ..PassOptions::baseline()
        }
    }

    /// Full pipeline with one §IV feature disabled — the Fig. 13 ablation.
    pub fn full_without(feature: Ablation) -> PassOptions {
        let mut o = PassOptions::full();
        o.disable(feature);
        o
    }

    /// Turn one §IV feature off, respecting the dependency structure of the
    /// paper's analyses (usable on any options value, e.g. by the bench
    /// harness to stack ablations).
    pub fn disable(&mut self, feature: Ablation) {
        match feature {
            // §IV-B1 is the base of every §IV-B analysis: removing it
            // removes them all (paper §V-C).
            Ablation::Fsaa => {
                self.fsaa = false;
                self.reach_dom = false;
                self.assumed_content = false;
                self.invariant_prop = false;
                self.state_prune = false;
            }
            Ablation::ReachDom => self.reach_dom = false,
            Ablation::AssumedContent => self.assumed_content = false,
            Ablation::InvariantProp => self.invariant_prop = false,
            Ablation::AlignedExec => self.aligned_exec = false,
            Ablation::BarrierElim => self.barrier_elim = false,
        }
    }
}

/// The §IV features that can be individually ablated (Fig. 13).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ablation {
    Fsaa,
    ReachDom,
    AssumedContent,
    InvariantProp,
    AlignedExec,
    BarrierElim,
}

impl Ablation {
    pub const ALL: [Ablation; 6] = [
        Ablation::Fsaa,
        Ablation::ReachDom,
        Ablation::AssumedContent,
        Ablation::InvariantProp,
        Ablation::AlignedExec,
        Ablation::BarrierElim,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Ablation::Fsaa => "w/o field-sensitive access analysis (IV-B1)",
            Ablation::ReachDom => "w/o reachability & dominance (IV-B2)",
            Ablation::AssumedContent => "w/o assumed memory content (IV-B3)",
            Ablation::InvariantProp => "w/o invariant value propagation (IV-B4)",
            Ablation::AlignedExec => "w/o exclusive & aligned execution (IV-C)",
            Ablation::BarrierElim => "w/o aligned barrier elimination (IV-D)",
        }
    }
}

/// Run the configured pipeline over `module` in place. Returns remarks
/// (the `-Rpass=openmp-opt` analogue, §VII).
pub fn optimize_module(module: &mut Module, opts: &PassOptions) -> Remarks {
    optimize_module_timed(module, opts).0
}

/// Like [`optimize_module`], also returning the per-pass profile and
/// analysis-cache counters (the `-ftime-report` analogue; see
/// [`PassTimings`]).
pub fn optimize_module_timed(module: &mut Module, opts: &PassOptions) -> (Remarks, PassTimings) {
    optimize_module_with_caching(module, opts, true)
}

/// [`optimize_module_timed`] with the analysis cache optionally disabled —
/// every query recomputes, isolating what caching buys (the
/// `compile_profile` harness's control arm). Results are identical either
/// way; only the profile differs.
pub fn optimize_module_with_caching(
    module: &mut Module,
    opts: &PassOptions,
    caching: bool,
) -> (Remarks, PassTimings) {
    let mut remarks = Remarks::default();
    let mut pm = pipeline::PassManager::new();
    pm.am.set_caching(caching);
    let timings = pm.run(Pipeline::for_options(opts), module, opts, &mut remarks);
    remarks.normalize();
    if timings.verify_failure.is_none() {
        debug_assert_eq!(nzomp_ir::verify_module(module), Ok(()));
    }
    (remarks, timings)
}
