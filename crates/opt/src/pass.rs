//! The `ModulePass` abstraction: every transformation in the pipeline —
//! `inline`, `simplify`, `fold`, `prune`, `globalize`, `spmdize`,
//! `barrier` (with the aligned-exec/reach-dom reasoning of `fsaa` riding
//! inside `fold`/`barrier` via their [`PassOptions`] switches) — runs
//! behind one trait so the pass manager can schedule, time, and
//! cache-invalidate uniformly (the mini analogue of LLVM's new-pass-manager
//! `PassInfoMixin`).
//!
//! A pass returns a [`PassEffect`]: whether it changed the module, which
//! functions it touched, and which analyses survived — the
//! [`PreservedAnalyses`] contract that keeps e.g. dominator trees cached
//! across a barrier-only deletion.

use nzomp_ir::analysis::{AnalysisKind, AnalysisManager, PreservedAnalyses, Touched};
use nzomp_ir::Module;

use crate::remarks::Remarks;
use crate::{barrier, fold, globalize, inline, prune, simplify, spmdize, PassOptions};

/// What a pass did to the module, for invalidation and instrumentation.
pub struct PassEffect {
    /// Did the IR change at all? Drives fixpoint convergence.
    pub changed: bool,
    /// Analyses that remain valid *for the touched functions*.
    pub preserved: PreservedAnalyses,
    /// Functions the pass mutated.
    pub touched: Touched,
}

impl PassEffect {
    /// Nothing changed; every cache survives.
    pub fn unchanged() -> PassEffect {
        PassEffect {
            changed: false,
            preserved: PreservedAnalyses::all(),
            touched: Touched::None,
        }
    }

    /// Build an effect from a collected touched-function list, preserving
    /// `preserved` on those functions. An empty list with `changed` still
    /// invalidates conservatively (the pass mutated something it did not
    /// attribute to a function).
    pub fn from_touched(changed: bool, touched: Vec<u32>, preserved: PreservedAnalyses) -> PassEffect {
        if !changed {
            return PassEffect::unchanged();
        }
        let touched = if touched.is_empty() {
            Touched::All
        } else {
            Touched::Funcs(touched)
        };
        PassEffect {
            changed,
            preserved,
            touched,
        }
    }
}

/// One module-level transformation in the pipeline.
pub trait ModulePass {
    /// Stable short name (timings key, `NZOMP_VERIFY_EACH_PASS` stage name).
    fn name(&self) -> &'static str;

    fn run(
        &mut self,
        m: &mut Module,
        am: &mut AnalysisManager,
        opts: &PassOptions,
        remarks: &mut Remarks,
    ) -> PassEffect;
}

// ---------------------------------------------------------------------------
// concrete passes
// ---------------------------------------------------------------------------

/// §IV-A1 aggressive internalization. Only flips linkage — no cached
/// analysis reads linkage, so everything is preserved.
pub struct Internalize;

impl ModulePass for Internalize {
    fn name(&self) -> &'static str {
        "internalize"
    }

    fn run(
        &mut self,
        m: &mut Module,
        _am: &mut AnalysisManager,
        _opts: &PassOptions,
        _remarks: &mut Remarks,
    ) -> PassEffect {
        let changed = m.internalize();
        PassEffect {
            changed,
            preserved: PreservedAnalyses::all(),
            touched: Touched::None,
        }
    }
}

/// §IV-A3 SPMDization (rewrites kernel execution modes and runtime calls).
pub struct Spmdize;

impl ModulePass for Spmdize {
    fn name(&self) -> &'static str {
        "spmdize"
    }

    fn run(
        &mut self,
        m: &mut Module,
        _am: &mut AnalysisManager,
        opts: &PassOptions,
        remarks: &mut Remarks,
    ) -> PassEffect {
        let changed = spmdize::run(m, opts, remarks);
        PassEffect {
            changed,
            preserved: PreservedAnalyses::none(),
            touched: if changed { Touched::All } else { Touched::None },
        }
    }
}

/// Strip bodies of functions unreachable from any kernel. Consumes the
/// cached call graph instead of rebuilding it.
pub struct GlobalDce;

impl ModulePass for GlobalDce {
    fn name(&self) -> &'static str {
        "global-dce"
    }

    fn run(
        &mut self,
        m: &mut Module,
        am: &mut AnalysisManager,
        _opts: &PassOptions,
        _remarks: &mut Remarks,
    ) -> PassEffect {
        let cg = am.callgraph(m);
        let mut touched = Vec::new();
        let changed = prune::global_dce_with(m, &cg, &mut touched);
        PassEffect::from_touched(changed, touched, PreservedAnalyses::none())
    }
}

/// Function inlining (builds its own per-round call graph: it mutates the
/// module between rounds, so the cached one would go stale mid-pass).
pub struct Inline;

impl ModulePass for Inline {
    fn name(&self) -> &'static str {
        "inline"
    }

    fn run(
        &mut self,
        m: &mut Module,
        _am: &mut AnalysisManager,
        opts: &PassOptions,
        _remarks: &mut Remarks,
    ) -> PassEffect {
        let mut touched = Vec::new();
        let changed = inline::run_collect(m, opts.inline_budget, &mut touched);
        PassEffect::from_touched(changed, touched, PreservedAnalyses::none())
    }
}

/// Local folding / CFG simplification / DCE.
pub struct Simplify;

impl ModulePass for Simplify {
    fn name(&self) -> &'static str {
        "simplify"
    }

    fn run(
        &mut self,
        m: &mut Module,
        _am: &mut AnalysisManager,
        opts: &PassOptions,
        _remarks: &mut Remarks,
    ) -> PassEffect {
        let mut touched = Vec::new();
        let changed = simplify::run_collect(m, opts, &mut touched);
        PassEffect::from_touched(changed, touched, PreservedAnalyses::none())
    }
}

/// §IV-A2 globalization elimination.
pub struct Globalize;

impl ModulePass for Globalize {
    fn name(&self) -> &'static str {
        "globalize-elim"
    }

    fn run(
        &mut self,
        m: &mut Module,
        _am: &mut AnalysisManager,
        opts: &PassOptions,
        remarks: &mut Remarks,
    ) -> PassEffect {
        let changed = globalize::run(m, opts, remarks);
        PassEffect {
            changed,
            preserved: PreservedAnalyses::none(),
            touched: if changed { Touched::All } else { Touched::None },
        }
    }
}

/// §IV-B interprocedural state folding + dead-store elimination (the FSAA
/// family: field-sensitive access analysis, reach/dom, assumed content,
/// invariant propagation — gated by their `PassOptions` switches).
///
/// Folding replaces operands and rewrites instructions in place; DSE drops
/// instructions from blocks. Neither changes any terminator, so the CFG
/// and dominator trees survive. Liveness does not (uses change), and the
/// call graph does not either: folding a function-pointer load can turn an
/// indirect call site into a direct one.
pub struct Fold;

impl ModulePass for Fold {
    fn name(&self) -> &'static str {
        "fold"
    }

    fn run(
        &mut self,
        m: &mut Module,
        am: &mut AnalysisManager,
        opts: &PassOptions,
        remarks: &mut Remarks,
    ) -> PassEffect {
        let mut touched = Vec::new();
        let changed = fold::run_with(m, am, opts, remarks, &mut touched);
        PassEffect::from_touched(
            changed,
            touched,
            PreservedAnalyses::none()
                .preserve(AnalysisKind::Cfg)
                .preserve(AnalysisKind::Dominators),
        )
    }
}

/// §IV-D aligned barrier elimination. Only deletes barrier intrinsics and
/// barrier-like calls — block structure and terminators are untouched, so
/// the CFG and dominators stay cached (the motivating example for the
/// preserved-analyses API).
pub struct BarrierElim;

impl ModulePass for BarrierElim {
    fn name(&self) -> &'static str {
        "barrier-elim"
    }

    fn run(
        &mut self,
        m: &mut Module,
        _am: &mut AnalysisManager,
        opts: &PassOptions,
        remarks: &mut Remarks,
    ) -> PassEffect {
        let mut touched = Vec::new();
        let changed = barrier::run_collect(m, opts, remarks, &mut touched);
        PassEffect::from_touched(
            changed,
            touched,
            PreservedAnalyses::none()
                .preserve(AnalysisKind::Cfg)
                .preserve(AnalysisKind::Dominators),
        )
    }
}

/// Post-fixpoint assumption removal (release builds, §III-G). Deletes
/// `assume` intrinsics only — CFG and dominators survive.
pub struct DropAssumes;

impl ModulePass for DropAssumes {
    fn name(&self) -> &'static str {
        "drop-assumes"
    }

    fn run(
        &mut self,
        m: &mut Module,
        _am: &mut AnalysisManager,
        _opts: &PassOptions,
        _remarks: &mut Remarks,
    ) -> PassEffect {
        let mut touched = Vec::new();
        let changed = prune::drop_assumes_collect(m, &mut touched);
        PassEffect::from_touched(
            changed,
            touched,
            PreservedAnalyses::none()
                .preserve(AnalysisKind::Cfg)
                .preserve(AnalysisKind::Dominators),
        )
    }
}

/// Dead-global pruning (the SMem-to-0B step). Only remaps `Operand::Global`
/// indices; no cached analysis reads globals, so everything is preserved —
/// the epochs still advance (the bodies did change) and the caches are
/// re-stamped rather than dropped.
pub struct PruneDeadGlobals;

impl ModulePass for PruneDeadGlobals {
    fn name(&self) -> &'static str {
        "prune-globals"
    }

    fn run(
        &mut self,
        m: &mut Module,
        _am: &mut AnalysisManager,
        _opts: &PassOptions,
        remarks: &mut Remarks,
    ) -> PassEffect {
        let changed = prune::prune_dead_globals(m, remarks);
        PassEffect {
            changed,
            preserved: PreservedAnalyses::all(),
            touched: if changed { Touched::All } else { Touched::None },
        }
    }
}
