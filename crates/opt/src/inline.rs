//! Function inlining. Exposing the runtime's internals to the folding
//! passes is what makes "you only pay for what you use" work: once
//! `__kmpc_target_init` and the worksharing loops are inlined into the
//! kernel, their state accesses become analyzable and their mode parameters
//! become constants.

use std::collections::HashMap;

use nzomp_ir::analysis::callgraph::CallGraph;
use nzomp_ir::inst::{Inst, InstId, Term};
use nzomp_ir::{BlockId, Function, Module, Operand, Ty};

/// Inline eligible call sites across the module. Returns true if anything
/// was inlined.
pub fn run(module: &mut Module, budget: usize) -> bool {
    run_collect(module, budget, &mut Vec::new())
}

/// Like [`run`], also recording the indices of caller functions that were
/// mutated (the pass manager's targeted analysis invalidation).
pub fn run_collect(module: &mut Module, budget: usize, touched: &mut Vec<u32>) -> bool {
    let mut changed = false;
    // Bound total growth to keep the fixpoint loop tame.
    let start_size = module.live_inst_count();
    let max_size = start_size * 16 + 50_000;

    for round in 0..8 {
        let _ = round;
        let cg = CallGraph::build(module);
        let mut did = false;
        for caller_idx in 0..module.funcs.len() {
            if module.funcs[caller_idx].is_declaration() {
                continue;
            }
            loop {
                if module.live_inst_count() > max_size {
                    return changed;
                }
                let Some((block, pos, callee_idx)) =
                    find_inlinable_call(module, caller_idx, budget, &cg)
                else {
                    break;
                };
                inline_call(module, caller_idx, block, pos, callee_idx);
                if !touched.contains(&(caller_idx as u32)) {
                    touched.push(caller_idx as u32);
                }
                did = true;
                changed = true;
            }
        }
        if !did {
            break;
        }
    }
    changed
}

/// Find the first call site in `caller` that should be inlined.
fn find_inlinable_call(
    module: &Module,
    caller_idx: usize,
    budget: usize,
    cg: &CallGraph,
) -> Option<(BlockId, usize, usize)> {
    let caller = &module.funcs[caller_idx];
    for (bid, block) in caller.iter_blocks() {
        for (pos, &iid) in block.insts.iter().enumerate() {
            if let Inst::Call {
                callee: Operand::Func(target),
                ..
            } = caller.inst(iid)
            {
                let callee = module.func(*target);
                if callee.is_declaration()
                    || callee.attrs.no_inline
                    || target.index() == caller_idx
                    || cg.maybe_recursive(*target)
                {
                    continue;
                }
                let size = callee.live_inst_count();
                if callee.attrs.always_inline || size <= budget {
                    return Some((bid, pos, target.index()));
                }
            }
        }
    }
    None
}

/// Inline the call at `caller.blocks[block].insts[pos]`.
fn inline_call(
    module: &mut Module,
    caller_idx: usize,
    block: BlockId,
    pos: usize,
    callee_idx: usize,
) {
    let callee = module.funcs[callee_idx].clone();
    let caller = &mut module.funcs[caller_idx];

    let call_id = caller.block(block).insts[pos];
    let (call_args, _call_ret) = match caller.inst(call_id) {
        Inst::Call { args, ret, .. } => (args.clone(), *ret),
        _ => unreachable!("inline target is a call"),
    };

    let inst_off = caller.insts.len() as u32;
    let block_off = caller.blocks.len() as u32;

    // Copy callee instructions, remapping operands:
    //   params -> call arguments, inst ids -> shifted, blocks -> shifted.
    let remap_op = |op: Operand| -> Operand {
        match op {
            Operand::Param(p) => call_args[p as usize],
            Operand::Inst(i) => Operand::Inst(InstId(i.0 + inst_off)),
            other => other,
        }
    };
    for inst in &callee.insts {
        let mut ni = inst.clone();
        ni.map_operands(remap_op);
        if let Inst::Phi { incomings, .. } = &mut ni {
            for inc in incomings {
                inc.pred = BlockId(inc.pred.0 + block_off);
            }
        }
        caller.insts.push(ni);
    }

    // Split the call block: tail (everything after the call) moves to a new
    // continuation block which inherits the original terminator.
    let tail: Vec<InstId> = caller.blocks[block.index()].insts[pos + 1..].to_vec();
    caller.blocks[block.index()].insts.truncate(pos); // drops the call inst

    // Append callee blocks; collect return values.
    let mut ret_values: Vec<(BlockId, Option<Operand>)> = Vec::new();
    for (cbid, cblock) in callee.iter_blocks() {
        let nbid = BlockId(cbid.0 + block_off);
        let insts: Vec<InstId> = cblock
            .insts
            .iter()
            .map(|i| InstId(i.0 + inst_off))
            .collect();
        let term = match &cblock.term {
            Term::Br(t) => Term::Br(BlockId(t.0 + block_off)),
            Term::CondBr {
                cond,
                if_true,
                if_false,
            } => Term::CondBr {
                cond: remap_op(*cond),
                if_true: BlockId(if_true.0 + block_off),
                if_false: BlockId(if_false.0 + block_off),
            },
            Term::Ret(v) => {
                ret_values.push((nbid, v.map(remap_op)));
                Term::Unreachable // patched below to branch to the continuation
            }
            Term::Unreachable => Term::Unreachable,
        };
        debug_assert_eq!(nbid.index(), caller.blocks.len());
        caller.blocks.push(nzomp_ir::Block { insts, term });
    }

    // Continuation block.
    let cont = caller.add_block();
    let orig_term = std::mem::replace(&mut caller.blocks[block.index()].term, Term::Br(BlockId(block_off)));
    caller.blocks[cont.index()].insts = tail;
    caller.blocks[cont.index()].term = orig_term;
    // Successor phis that referenced `block` now come from `cont`.
    for s in caller.blocks[cont.index()].term.succs() {
        let insts: Vec<InstId> = caller.block(s).insts.clone();
        for iid in insts {
            if let Inst::Phi { incomings, .. } = caller.inst_mut(iid) {
                for inc in incomings.iter_mut() {
                    if inc.pred == block {
                        inc.pred = cont;
                    }
                }
            } else {
                break;
            }
        }
    }

    // Patch return blocks to branch to the continuation; materialize the
    // return value (phi if several returns).
    let ret_op: Option<Operand> = match ret_values.len() {
        0 => None,
        1 => {
            let (rb, v) = ret_values[0];
            caller.blocks[rb.index()].term = Term::Br(cont);
            v
        }
        _ => {
            let ty = callee.ret.unwrap_or(Ty::I64);
            let incomings: Vec<nzomp_ir::value::PhiIncoming> = ret_values
                .iter()
                .filter_map(|(rb, v)| {
                    v.map(|value| nzomp_ir::value::PhiIncoming { pred: *rb, value })
                })
                .collect();
            for (rb, _) in &ret_values {
                caller.blocks[rb.index()].term = Term::Br(cont);
            }
            if callee.ret.is_some() {
                let phi = caller.add_inst(Inst::Phi { ty, incomings });
                caller.blocks[cont.index()].insts.insert(0, phi);
                Some(Operand::Inst(phi))
            } else {
                None
            }
        }
    };

    // Replace uses of the call result.
    if let Some(rv) = ret_op {
        let mut map = HashMap::new();
        map.insert(call_id, rv);
        crate::simplify::apply_replacements(caller, &map);
    }

    // Hoist inlined allocas into the caller entry so they execute once
    // (LLVM's static-alloca semantics) even if the call site is in a loop.
    hoist_allocas(caller, BlockId(block_off), block_off);
}

fn hoist_allocas(caller: &mut Function, _inlined_entry: BlockId, _block_off: u32) {
    let mut hoist: Vec<InstId> = Vec::new();
    for bi in 1..caller.blocks.len() {
        let ids: Vec<InstId> = caller.blocks[bi].insts.clone();
        let mut any = false;
        for iid in &ids {
            if matches!(caller.insts[iid.index()], Inst::Alloca { .. }) {
                hoist.push(*iid);
                any = true;
            }
        }
        if any {
            let keep: Vec<InstId> = ids
                .into_iter()
                .filter(|i| !matches!(caller.insts[i.index()], Inst::Alloca { .. }))
                .collect();
            caller.blocks[bi].insts = keep;
        }
    }
    if !hoist.is_empty() {
        let at = caller.blocks[0]
            .insts
            .iter()
            .position(|i| !matches!(caller.insts[i.index()], Inst::Alloca { .. }))
            .unwrap_or(caller.blocks[0].insts.len());
        for (k, iid) in hoist.into_iter().enumerate() {
            caller.blocks[0].insts.insert(at + k, iid);
        }
    }
}
