//! The declarative pass pipeline and its instrumented executor — the mini
//! analogue of LLVM's new pass manager driving `openmp-opt`.
//!
//! [`Pipeline::for_options`] turns a [`PassOptions`] into an ordered list
//! of [`Stage`]s (single passes and fixpoint groups), so the Fig. 13
//! ablations are literally "this pass is absent from the list". The
//! executor threads one [`AnalysisManager`] through every pass, applies
//! each pass's [`PassEffect`] to the caches, and records per-pass wall
//! time, run counts, changed verdicts, and IR deltas into [`PassTimings`]
//! (the `-ftime-report` analogue).
//!
//! Setting `NZOMP_VERIFY_EACH_PASS=1` runs the module verifier after every
//! single pass execution and names the offending pass on failure — the
//! first tool to reach for when a pipeline change breaks a golden.

use std::time::{Duration, Instant};

use nzomp_ir::analysis::{AnalysisManager, CacheStats};
use nzomp_ir::verify::VerifyError;
use nzomp_ir::Module;

use crate::pass::{
    BarrierElim, DropAssumes, Fold, GlobalDce, Globalize, Inline, Internalize, ModulePass,
    PruneDeadGlobals, Simplify, Spmdize,
};
use crate::remarks::Remarks;
use crate::PassOptions;

/// One pass inside a fixpoint group.
pub struct PassEntry {
    pub pass: Box<dyn ModulePass>,
    /// Whether this pass's changed-verdict counts toward convergence.
    /// Cleanup passes (`global-dce`) run every iteration but must not keep
    /// the loop alive on their own.
    pub drives_fixpoint: bool,
}

/// A pipeline element.
pub enum Stage {
    /// Run one pass once.
    Pass(Box<dyn ModulePass>),
    /// Iterate a pass group until no driving pass reports a change, at
    /// most `max_iters` times.
    Fixpoint {
        passes: Vec<PassEntry>,
        max_iters: usize,
        /// Run the group only if the immediately preceding stage changed
        /// the module (the post-`drop-assumes` cleanup round).
        gated_on_prev: bool,
    },
}

/// An ordered list of stages — what `optimize_module` executes.
pub struct Pipeline {
    pub stages: Vec<Stage>,
}

impl Pipeline {
    /// Build the pipeline a [`PassOptions`] describes. Disabled switches
    /// simply do not contribute their passes, which is exactly how the
    /// Fig. 13 ablations drop one optimization at a time.
    pub fn for_options(opts: &PassOptions) -> Pipeline {
        let mut stages: Vec<Stage> = Vec::new();
        if opts.max_iterations == 0 {
            return Pipeline { stages };
        }

        if opts.internalize {
            stages.push(Stage::Pass(Box::new(Internalize)));
        }
        if opts.spmdization {
            stages.push(Stage::Pass(Box::new(Spmdize)));
        }
        stages.push(Stage::Pass(Box::new(GlobalDce)));

        // Inline + local folding to expose the runtime internals to
        // analysis (bounded warm-up round).
        let mut warmup: Vec<PassEntry> = Vec::new();
        if opts.inline {
            warmup.push(driver(Inline));
        }
        if opts.fold_constants || opts.simplify_cfg {
            warmup.push(driver(Simplify));
        }
        warmup.push(cleanup(GlobalDce));
        stages.push(Stage::Fixpoint {
            passes: warmup,
            max_iters: 3,
            gated_on_prev: false,
        });

        if opts.globalization_elim {
            stages.push(Stage::Pass(Box::new(Globalize)));
        }

        // Interprocedural fixpoint: fold runtime state, kill dead stores,
        // remove redundant barriers, repeat.
        let mut main: Vec<PassEntry> = Vec::new();
        if opts.fsaa {
            main.push(driver(Fold));
        }
        if opts.fold_constants || opts.simplify_cfg {
            main.push(driver(Simplify));
        }
        if opts.inline {
            main.push(driver(Inline));
        }
        if opts.barrier_elim {
            main.push(driver(BarrierElim));
        }
        main.push(cleanup(GlobalDce));
        stages.push(Stage::Fixpoint {
            passes: main,
            max_iters: opts.max_iterations,
            gated_on_prev: false,
        });

        if opts.drop_assumes {
            stages.push(Stage::Pass(Box::new(DropAssumes)));
            // One more round so stores feeding the assumes can die — only
            // when assumes were actually dropped (no inlining here: the
            // module is already flat).
            let mut post: Vec<PassEntry> = Vec::new();
            if opts.fsaa {
                post.push(driver(Fold));
            }
            if opts.fold_constants || opts.simplify_cfg {
                post.push(driver(Simplify));
            }
            if opts.barrier_elim {
                post.push(driver(BarrierElim));
            }
            post.push(cleanup(GlobalDce));
            stages.push(Stage::Fixpoint {
                passes: post,
                max_iters: opts.max_iterations,
                gated_on_prev: true,
            });
        }

        if opts.state_prune {
            stages.push(Stage::Pass(Box::new(PruneDeadGlobals)));
        }
        stages.push(Stage::Pass(Box::new(GlobalDce)));

        Pipeline { stages }
    }
}

fn driver(p: impl ModulePass + 'static) -> PassEntry {
    PassEntry {
        pass: Box::new(p),
        drives_fixpoint: true,
    }
}

fn cleanup(p: impl ModulePass + 'static) -> PassEntry {
    PassEntry {
        pass: Box::new(p),
        drives_fixpoint: false,
    }
}

// ---------------------------------------------------------------------------
// instrumentation
// ---------------------------------------------------------------------------

/// IR size snapshot, taken before and after each pass run for the deltas.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IrStats {
    pub insts: usize,
    pub blocks: usize,
    pub globals: usize,
    pub barriers: usize,
}

impl IrStats {
    pub fn of(m: &Module) -> IrStats {
        IrStats {
            insts: m.live_inst_count(),
            blocks: m.funcs.iter().map(|f| f.blocks.len()).sum(),
            globals: m.globals.len(),
            barriers: m
                .funcs
                .iter()
                .filter(|f| !f.is_declaration())
                .map(crate::barrier::count_aligned_barriers)
                .sum(),
        }
    }
}

/// Aggregated per-pass instrumentation, keyed by pass name.
#[derive(Clone, Debug, Default)]
pub struct PassStat {
    pub name: &'static str,
    /// Number of executions (fixpoint passes run many times).
    pub runs: u64,
    /// Executions that reported a change.
    pub changed_runs: u64,
    /// Total wall time across all executions.
    pub wall: Duration,
    /// Cumulative IR deltas (after − before, summed over executions).
    pub insts_delta: i64,
    pub blocks_delta: i64,
    pub globals_delta: i64,
    pub barriers_delta: i64,
}

/// A pass broke the module (caught by `NZOMP_VERIFY_EACH_PASS=1`).
#[derive(Clone, Debug, PartialEq)]
pub struct VerifyFailure {
    /// Name of the offending pass.
    pub pass: &'static str,
    pub err: VerifyError,
}

/// The compile-time observability record of one `optimize_module` run —
/// per-pass profile plus analysis-cache counters (`-ftime-report` +
/// cache diagnostics).
#[derive(Clone, Debug, Default)]
pub struct PassTimings {
    /// Per-pass stats in first-execution order.
    pub passes: Vec<PassStat>,
    /// Analysis-cache hit/miss counters.
    pub cache: CacheStats,
    /// Total optimizer wall time.
    pub total: Duration,
    /// Set when per-pass verification caught a broken pass; the pipeline
    /// stops at that point.
    pub verify_failure: Option<VerifyFailure>,
}

impl PassTimings {
    fn stat_mut(&mut self, name: &'static str) -> &mut PassStat {
        if let Some(i) = self.passes.iter().position(|p| p.name == name) {
            return &mut self.passes[i];
        }
        self.passes.push(PassStat {
            name,
            ..PassStat::default()
        });
        let last = self.passes.len() - 1;
        &mut self.passes[last]
    }
}

// ---------------------------------------------------------------------------
// executor
// ---------------------------------------------------------------------------

/// Executor state for one pipeline run.
pub struct PassManager {
    pub am: AnalysisManager,
    timings: PassTimings,
    verify_each: bool,
    /// Did the most recently executed stage change the module?
    prev_changed: bool,
}

impl PassManager {
    pub fn new() -> PassManager {
        PassManager {
            am: AnalysisManager::new(),
            timings: PassTimings::default(),
            verify_each: std::env::var("NZOMP_VERIFY_EACH_PASS").is_ok_and(|v| v == "1"),
            prev_changed: false,
        }
    }

    /// Run the whole pipeline; returns the instrumentation record.
    pub fn run(
        mut self,
        pipeline: Pipeline,
        module: &mut Module,
        opts: &PassOptions,
        remarks: &mut Remarks,
    ) -> PassTimings {
        let start = Instant::now();
        'stages: for stage in pipeline.stages {
            match stage {
                Stage::Pass(mut pass) => {
                    let changed = self.run_one(pass.as_mut(), module, opts, remarks);
                    self.prev_changed = changed;
                    if self.timings.verify_failure.is_some() {
                        break 'stages;
                    }
                }
                Stage::Fixpoint {
                    mut passes,
                    max_iters,
                    gated_on_prev,
                } => {
                    if gated_on_prev && !self.prev_changed {
                        continue;
                    }
                    let mut any = false;
                    for _ in 0..max_iters {
                        let mut changed = false;
                        for entry in &mut passes {
                            let c = self.run_one(entry.pass.as_mut(), module, opts, remarks);
                            if self.timings.verify_failure.is_some() {
                                break 'stages;
                            }
                            if entry.drives_fixpoint {
                                changed |= c;
                            }
                        }
                        any |= changed;
                        if !changed {
                            break;
                        }
                    }
                    self.prev_changed = any;
                }
            }
        }
        self.timings.cache = self.am.stats();
        self.timings.total = start.elapsed();
        self.timings
    }

    /// Run one pass once: time it, apply its invalidation, record deltas,
    /// and (optionally) verify the module it left behind.
    fn run_one(
        &mut self,
        pass: &mut dyn ModulePass,
        module: &mut Module,
        opts: &PassOptions,
        remarks: &mut Remarks,
    ) -> bool {
        let before = IrStats::of(module);
        let t0 = Instant::now();
        let effect = pass.run(module, &mut self.am, opts, remarks);
        let wall = t0.elapsed();
        self.am.invalidate(module, &effect.touched, &effect.preserved);
        let after = IrStats::of(module);

        let stat = self.timings.stat_mut(pass.name());
        stat.runs += 1;
        if effect.changed {
            stat.changed_runs += 1;
        }
        stat.wall += wall;
        stat.insts_delta += after.insts as i64 - before.insts as i64;
        stat.blocks_delta += after.blocks as i64 - before.blocks as i64;
        stat.globals_delta += after.globals as i64 - before.globals as i64;
        stat.barriers_delta += after.barriers as i64 - before.barriers as i64;

        if self.verify_each {
            if let Err(err) = nzomp_ir::verify_module(module) {
                self.timings.verify_failure = Some(VerifyFailure {
                    pass: pass.name(),
                    err,
                });
            }
        }
        effect.changed
    }
}

impl Default for PassManager {
    fn default() -> PassManager {
        PassManager::new()
    }
}
