//! Whole-module pruning: unreachable functions, post-fixpoint assumption
//! removal, and dead-global elimination (how the optimized SPMD kernels of
//! the paper reach **0 B** of shared memory in Fig. 11).

use std::collections::HashSet;

use nzomp_ir::analysis::callgraph::CallGraph;
use nzomp_ir::global::GlobalId;
use nzomp_ir::inst::{Inst, Intrinsic};
use nzomp_ir::module::FuncRef;
use nzomp_ir::{Module, Operand};

use crate::remarks::Remarks;

/// Strip bodies of functions unreachable from any kernel (indices stay
/// stable; the husks become declarations and cost nothing).
pub fn global_dce(module: &mut Module) -> bool {
    let cg = CallGraph::build(module);
    global_dce_with(module, &cg, &mut Vec::new())
}

/// Like [`global_dce`], but reusing a caller-provided call graph (the pass
/// manager's cached one) and recording which function indices were
/// stripped.
pub fn global_dce_with(module: &mut Module, cg: &CallGraph, touched: &mut Vec<u32>) -> bool {
    let roots: Vec<FuncRef> = module.kernels.iter().map(|k| k.func).collect();
    if roots.is_empty() {
        return false;
    }
    let live = cg.reachable_from(module, &roots);
    let mut changed = false;
    for fi in 0..module.funcs.len() {
        let fr = FuncRef(fi as u32);
        if live.contains(&fr) {
            continue;
        }
        let f = &mut module.funcs[fi];
        if !f.is_declaration() {
            f.blocks.clear();
            f.insts.clear();
            touched.push(fi as u32);
            changed = true;
        }
    }
    changed
}

/// Remove all `assume` intrinsics (release builds, after the folding
/// fixpoint): their information has been consumed; keeping them would keep
/// the loads that feed them alive and block state death.
pub fn drop_assumes(module: &mut Module) -> bool {
    drop_assumes_collect(module, &mut Vec::new())
}

/// Like [`drop_assumes`], recording which function indices changed.
pub fn drop_assumes_collect(module: &mut Module, touched: &mut Vec<u32>) -> bool {
    let mut changed = false;
    for (fi, f) in module.funcs.iter_mut().enumerate() {
        if f.is_declaration() {
            continue;
        }
        let mut func_changed = false;
        for bi in 0..f.blocks.len() {
            let before = f.blocks[bi].insts.len();
            let ids: Vec<_> = f.blocks[bi].insts.clone();
            let keep: Vec<_> = ids
                .into_iter()
                .filter(|&iid| {
                    !matches!(
                        f.insts[iid.index()],
                        Inst::Intr {
                            intr: Intrinsic::Assume(()),
                            ..
                        }
                    )
                })
                .collect();
            if keep.len() != before {
                f.blocks[bi].insts = keep;
                func_changed = true;
            }
        }
        if func_changed {
            touched.push(fi as u32);
            changed = true;
        }
    }
    changed
}

/// Delete globals with no remaining references in live code, remapping
/// `Operand::Global` indices. This is the step that drives the SMem column
/// to zero once the runtime state folded away.
pub fn prune_dead_globals(module: &mut Module, remarks: &mut Remarks) -> bool {
    let mut referenced: HashSet<u32> = HashSet::new();
    for f in &module.funcs {
        for block in &f.blocks {
            for &iid in &block.insts {
                for op in f.inst(iid).operands() {
                    if let Operand::Global(g) = op {
                        referenced.insert(g.0);
                    }
                }
            }
            for op in block.term.operands() {
                if let Operand::Global(g) = op {
                    referenced.insert(g.0);
                }
            }
        }
    }
    let n = module.globals.len();
    let dead: Vec<u32> = (0..n as u32).filter(|g| !referenced.contains(g)).collect();
    if dead.is_empty() {
        return false;
    }
    // Build the remap and shrink the table.
    let mut remap: Vec<Option<u32>> = vec![None; n];
    let mut new_globals = Vec::with_capacity(n - dead.len());
    for (gi, g) in module.globals.drain(..).enumerate() {
        if referenced.contains(&(gi as u32)) {
            remap[gi] = Some(new_globals.len() as u32);
            new_globals.push(g);
        }
    }
    let pruned = n - new_globals.len();
    module.globals = new_globals;
    for f in &mut module.funcs {
        let fix = |op: Operand| -> Operand {
            match op {
                // Instructions still sitting in the arena but no longer
                // listed in any block may reference pruned globals; they are
                // dead, so any placeholder works.
                Operand::Global(g) => match remap[g.index()] {
                    Some(ng) => Operand::Global(GlobalId(ng)),
                    None => Operand::NULL,
                },
                other => other,
            }
        };
        for inst in &mut f.insts {
            inst.map_operands(fix);
        }
        for block in &mut f.blocks {
            block.term.map_operands(fix);
        }
    }
    remarks.passed(
        "openmp-opt",
        "<module>",
        format!("pruned {pruned} dead global(s) (runtime state eliminated)"),
    );
    true
}
