//! Optimization remarks — the reproduction of
//! `-Rpass=openmp-opt` / `-Rpass-missed=openmp-opt` (paper §VII: "we provide
//! compiler diagnostics for missed optimizations").

use std::fmt;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RemarkKind {
    /// An optimization fired.
    Passed,
    /// An optimization was applicable but blocked; the message says why.
    Missed,
    /// Analysis note.
    Analysis,
}

#[derive(Clone, Debug)]
pub struct Remark {
    pub kind: RemarkKind,
    /// Pass name, e.g. `"spmdization"`.
    pub pass: &'static str,
    /// Function the remark refers to.
    pub func: String,
    pub message: String,
}

impl fmt::Display for Remark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = match self.kind {
            RemarkKind::Passed => "remark",
            RemarkKind::Missed => "missed",
            RemarkKind::Analysis => "analysis",
        };
        write!(f, "[{k}:{}] @{}: {}", self.pass, self.func, self.message)
    }
}

/// Collected remarks for one pipeline run.
#[derive(Clone, Debug, Default)]
pub struct Remarks {
    pub entries: Vec<Remark>,
}

impl Remarks {
    pub fn passed(&mut self, pass: &'static str, func: &str, message: impl Into<String>) {
        self.entries.push(Remark {
            kind: RemarkKind::Passed,
            pass,
            func: func.to_string(),
            message: message.into(),
        });
    }

    pub fn missed(&mut self, pass: &'static str, func: &str, message: impl Into<String>) {
        self.entries.push(Remark {
            kind: RemarkKind::Missed,
            pass,
            func: func.to_string(),
            message: message.into(),
        });
    }

    pub fn analysis(&mut self, pass: &'static str, func: &str, message: impl Into<String>) {
        self.entries.push(Remark {
            kind: RemarkKind::Analysis,
            pass,
            func: func.to_string(),
            message: message.into(),
        });
    }

    /// All remarks of a kind for a pass (test helper).
    pub fn of(&self, kind: RemarkKind, pass: &str) -> Vec<&Remark> {
        self.entries
            .iter()
            .filter(|r| r.kind == kind && r.pass == pass)
            .collect()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Deterministic emission order: stable sort by function, pass, kind,
    /// message, then drop exact duplicates. Pass-internal iteration order
    /// (e.g. hash-map walks over analysis objects) must never leak into
    /// remark-based tests or diagnostics output; the pass manager calls
    /// this once after the pipeline finishes.
    pub fn normalize(&mut self) {
        fn kind_rank(k: RemarkKind) -> u8 {
            match k {
                RemarkKind::Passed => 0,
                RemarkKind::Missed => 1,
                RemarkKind::Analysis => 2,
            }
        }
        self.entries.sort_by(|a, b| {
            (&a.func, a.pass, kind_rank(a.kind), &a.message).cmp(&(
                &b.func,
                b.pass,
                kind_rank(b.kind),
                &b.message,
            ))
        });
        self.entries
            .dedup_by(|a, b| a.kind == b.kind && a.pass == b.pass && a.func == b.func && a.message == b.message);
    }
}

impl fmt::Display for Remarks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.entries {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}
