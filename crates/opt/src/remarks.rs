//! Optimization remarks — the reproduction of
//! `-Rpass=openmp-opt` / `-Rpass-missed=openmp-opt` (paper §VII: "we provide
//! compiler diagnostics for missed optimizations").

use std::fmt;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RemarkKind {
    /// An optimization fired.
    Passed,
    /// An optimization was applicable but blocked; the message says why.
    Missed,
    /// Analysis note.
    Analysis,
}

#[derive(Clone, Debug)]
pub struct Remark {
    pub kind: RemarkKind,
    /// Pass name, e.g. `"spmdization"`.
    pub pass: &'static str,
    /// Function the remark refers to.
    pub func: String,
    pub message: String,
}

impl fmt::Display for Remark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = match self.kind {
            RemarkKind::Passed => "remark",
            RemarkKind::Missed => "missed",
            RemarkKind::Analysis => "analysis",
        };
        write!(f, "[{k}:{}] @{}: {}", self.pass, self.func, self.message)
    }
}

/// Collected remarks for one pipeline run.
#[derive(Clone, Debug, Default)]
pub struct Remarks {
    pub entries: Vec<Remark>,
}

impl Remarks {
    pub fn passed(&mut self, pass: &'static str, func: &str, message: impl Into<String>) {
        self.entries.push(Remark {
            kind: RemarkKind::Passed,
            pass,
            func: func.to_string(),
            message: message.into(),
        });
    }

    pub fn missed(&mut self, pass: &'static str, func: &str, message: impl Into<String>) {
        self.entries.push(Remark {
            kind: RemarkKind::Missed,
            pass,
            func: func.to_string(),
            message: message.into(),
        });
    }

    pub fn analysis(&mut self, pass: &'static str, func: &str, message: impl Into<String>) {
        self.entries.push(Remark {
            kind: RemarkKind::Analysis,
            pass,
            func: func.to_string(),
            message: message.into(),
        });
    }

    /// All remarks of a kind for a pass (test helper).
    pub fn of(&self, kind: RemarkKind, pass: &str) -> Vec<&Remark> {
        self.entries
            .iter()
            .filter(|r| r.kind == kind && r.pass == pass)
            .collect()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for Remarks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.entries {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}
