//! Aligned barrier elimination (paper §IV-D).
//!
//! "Our barrier elimination pass detects consecutive aligned barriers in
//! the same basic block that do not have non-thread-local side-effects in
//! between them. During this identification process we also consider the
//! kernel entry and exit as implicit aligned barriers."
//!
//! Loads do not block removal (they do not modify state another thread
//! could observe); stores, atomics and unresolved calls do. A call to a
//! function carrying the `ext_aligned_barrier` + `ext_no_call_asm`
//! assumptions (Fig. 6) itself counts as an aligned barrier when the
//! aligned-execution analysis (§IV-C) is enabled.
//!
//! # Preservation contract
//!
//! This pass may only remove a barrier that is *redundant*: between it and
//! the adjacent synchronization point (another aligned barrier, or the
//! implicit kernel entry/exit barrier) there is no non-thread-local side
//! effect, so removing it cannot change the happens-before relation of any
//! pair of memory accesses. Every barrier ordering a cross-thread
//! write→read must survive. The contract is machine-checked two ways:
//! the vGPU sanitizer (`nzomp-vgpu::sanitize`) verifies every proxy stays
//! race-free after the full pipeline and under each Fig.-13 ablation
//! (`tests/opt_preserves_sync.rs`), and a hand-built kernel whose single
//! barrier is load-bearing pins — via [`count_aligned_barriers`] — that
//! the pass keeps it.

use std::collections::HashSet;

use nzomp_ir::inst::{Inst, InstId, Intrinsic};
use nzomp_ir::{Function, Module, Operand, Term};

/// Does `ptr` provably point into this thread's private stack (an alloca,
/// possibly through constant-offset arithmetic)?
fn is_thread_local_ptr(f: &Function, ptr: Operand) -> bool {
    let mut cur = ptr;
    for _ in 0..16 {
        match cur {
            Operand::Inst(i) => match f.inst(i) {
                Inst::Alloca { .. } => return true,
                Inst::PtrAdd { base, .. } => cur = *base,
                _ => return false,
            },
            _ => return false,
        }
    }
    false
}

use crate::remarks::Remarks;
use crate::PassOptions;

/// Number of explicit aligned-barrier intrinsics in `f` — the observable
/// the preservation-contract tests pin before and after optimization.
pub fn count_aligned_barriers(f: &Function) -> usize {
    f.blocks
        .iter()
        .flat_map(|b| b.insts.iter())
        .filter(|&&iid| {
            matches!(
                f.inst(iid),
                Inst::Intr {
                    intr: Intrinsic::AlignedBarrier,
                    ..
                }
            )
        })
        .count()
}

pub fn run(module: &mut Module, opts: &PassOptions, remarks: &mut Remarks) -> bool {
    run_collect(module, opts, remarks, &mut Vec::new())
}

/// Like [`run`], recording which function indices changed (the pass
/// manager's targeted analysis invalidation).
pub fn run_collect(
    module: &mut Module,
    opts: &PassOptions,
    remarks: &mut Remarks,
    touched: &mut Vec<u32>,
) -> bool {
    let kernel_funcs: HashSet<u32> = module.kernels.iter().map(|k| k.func.0).collect();
    let mut changed = false;
    for fidx in 0..module.funcs.len() {
        let is_kernel = kernel_funcs.contains(&(fidx as u32));
        // Classify calls before borrowing mutably.
        let barrier_like: Vec<InstId> = {
            let f = &module.funcs[fidx];
            if f.is_declaration() {
                continue;
            }
            f.blocks
                .iter()
                .flat_map(|b| b.insts.iter().copied())
                .filter(|&iid| {
                    if !opts.aligned_exec {
                        return false;
                    }
                    if let Inst::Call {
                        callee: Operand::Func(t),
                        ..
                    } = f.inst(iid)
                    {
                        let callee = &module.funcs[t.index()];
                        callee.attrs.aligned_barrier && callee.attrs.no_call_asm
                    } else {
                        false
                    }
                })
                .collect()
        };
        let barrier_like: HashSet<InstId> = barrier_like.into_iter().collect();

        let f = &mut module.funcs[fidx];
        let mut removed = 0usize;
        for bi in 0..f.blocks.len() {
            let ids: Vec<InstId> = f.blocks[bi].insts.clone();
            let mut to_remove: HashSet<InstId> = HashSet::new();
            // `pending` means: execution state is already synchronized at
            // this point (either a previous aligned barrier with nothing
            // observable since, or the kernel entry).
            let mut pending: Option<Option<InstId>> = if is_kernel && bi == 0 {
                Some(None) // implicit entry barrier
            } else {
                None
            };
            for &iid in &ids {
                let inst = &f.insts[iid.index()];
                let is_aligned_barrier = matches!(
                    inst,
                    Inst::Intr {
                        intr: Intrinsic::AlignedBarrier,
                        ..
                    }
                ) || barrier_like.contains(&iid);
                if is_aligned_barrier {
                    if pending.is_some() {
                        to_remove.insert(iid);
                        // The earlier synchronization point stays pending.
                    } else {
                        pending = Some(Some(iid));
                    }
                    continue;
                }
                let blocking = match inst {
                    // Only *non-thread-local* side effects matter (§IV-D):
                    // stores to thread-private stack slots cannot be
                    // observed by any other thread.
                    Inst::Store { ptr, .. } => !is_thread_local_ptr(f, *ptr),
                    Inst::Atomic { .. } | Inst::Cas { .. } => true,
                    Inst::Call { .. } => true, // unresolved effects
                    Inst::Intr { intr, .. } => matches!(
                        intr,
                        Intrinsic::Barrier
                            | Intrinsic::Malloc
                            | Intrinsic::Free
                            | Intrinsic::AssertFail
                    ),
                    _ => false,
                };
                if blocking {
                    pending = None;
                }
            }
            // Kernel exit counts as an implicit aligned barrier: a trailing
            // aligned barrier with no effects after it is redundant.
            if is_kernel {
                if let (Term::Ret(_), Some(Some(b))) = (&f.blocks[bi].term, pending) {
                    to_remove.insert(b);
                }
            }
            if !to_remove.is_empty() {
                // Only remove actual barrier intrinsics / barrier-like calls.
                f.blocks[bi].insts.retain(|i| !to_remove.contains(i));
                removed += to_remove.len();
            }
        }
        if removed > 0 {
            changed = true;
            touched.push(fidx as u32);
            remarks.passed(
                "openmp-opt",
                &module.funcs[fidx].name.clone(),
                format!("eliminated {removed} redundant aligned barrier(s)"),
            );
        }
    }
    changed
}
