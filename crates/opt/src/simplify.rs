//! Local simplification: constant folding (including loads of constant
//! globals — how the §III-F/G configuration flags reach the optimizer),
//! branch folding, phi simplification, unreachable-block removal, block
//! merging, and dead-code elimination.

use std::collections::HashMap;

use nzomp_ir::analysis::cfg;
use nzomp_ir::inst::{BinOp, CastKind, Inst, InstId, Intrinsic, Pred, Term, UnOp};
use nzomp_ir::{BlockId, Function, Module, Operand, Ty};

use crate::PassOptions;

/// Run simplification over every defined function. Returns whether anything
/// changed.
pub fn run(module: &mut Module, opts: &PassOptions) -> bool {
    run_collect(module, opts, &mut Vec::new())
}

/// Like [`run`], also recording the indices of functions that changed (the
/// pass manager's targeted analysis invalidation).
pub fn run_collect(module: &mut Module, opts: &PassOptions, touched: &mut Vec<u32>) -> bool {
    let mut changed = false;
    // Constant-global values are read-only inputs to the folder.
    let const_globals: HashMap<u32, (nzomp_ir::Init, u64)> = module
        .globals
        .iter()
        .enumerate()
        .filter(|(_, g)| g.constant)
        .map(|(i, g)| (i as u32, (g.init.clone(), g.size)))
        .collect();
    for (fi, f) in module.funcs.iter_mut().enumerate() {
        if f.is_declaration() {
            continue;
        }
        if simplify_function(f, &const_globals, opts) {
            touched.push(fi as u32);
            changed = true;
        }
    }
    changed
}

/// Iterate local simplifications on one function to a (bounded) fixpoint.
pub fn simplify_function(
    f: &mut Function,
    const_globals: &HashMap<u32, (nzomp_ir::Init, u64)>,
    opts: &PassOptions,
) -> bool {
    let mut any = false;
    for _ in 0..16 {
        let mut changed = false;
        if opts.fold_constants {
            changed |= fold_insts(f, const_globals);
        }
        if opts.simplify_cfg {
            changed |= fold_branches(f);
            changed |= remove_unreachable(f);
            changed |= simplify_phis(f);
            changed |= merge_blocks(f);
        }
        changed |= dce(f);
        any |= changed;
        if !changed {
            break;
        }
    }
    any
}

// ---------------------------------------------------------------------------
// constant folding
// ---------------------------------------------------------------------------

fn as_const(f: &Function, op: Operand) -> Option<Operand> {
    match op {
        Operand::ConstI(..) | Operand::ConstF(..) => Some(op),
        _ => {
            let _ = f;
            None
        }
    }
}

fn const_i(op: Operand) -> Option<i64> {
    op.as_const_int()
}

fn fold_insts(f: &mut Function, const_globals: &HashMap<u32, (nzomp_ir::Init, u64)>) -> bool {
    let mut map: HashMap<InstId, Operand> = HashMap::new();
    for block in &f.blocks {
        for &iid in &block.insts {
            if let Some(rep) = fold_one(f, iid, const_globals) {
                map.insert(iid, rep);
            }
        }
    }
    if map.is_empty() {
        return false;
    }
    apply_replacements(f, &map);
    true
}

/// Try to fold instruction `iid` into an operand.
fn fold_one(
    f: &Function,
    iid: InstId,
    const_globals: &HashMap<u32, (nzomp_ir::Init, u64)>,
) -> Option<Operand> {
    let inst = f.inst(iid);
    match inst {
        Inst::Bin { op, ty, lhs, rhs } => fold_bin(f, *op, *ty, *lhs, *rhs),
        Inst::Un { op, ty, arg } => {
            let a = as_const(f, *arg)?;
            fold_un(*op, *ty, a)
        }
        Inst::Cast { kind, to, arg } => {
            let a = as_const(f, *arg)?;
            fold_cast(*kind, *to, a)
        }
        Inst::Cmp { pred, ty, lhs, rhs } => fold_cmp(f, *pred, *ty, *lhs, *rhs),
        Inst::Select {
            ty,
            cond,
            if_true,
            if_false,
        } => {
            if let Some(c) = const_i(*cond) {
                return Some(if c != 0 { *if_true } else { *if_false });
            }
            if if_true == if_false {
                return Some(*if_true);
            }
            let _ = ty;
            None
        }
        Inst::PtrAdd { base, offset } => {
            if const_i(*offset) == Some(0) {
                return Some(*base);
            }
            None
        }
        Inst::Load { ty, ptr } => {
            // Loads of constant globals fold at compile time — the
            // mechanism behind the oversubscription/debug flag globals
            // (§III-F: "emit constant globals that the runtime will 'read'
            // at compile time via constant propagation").
            let (g, off) = match ptr {
                Operand::Global(g) => (*g, 0u64),
                Operand::Inst(pid) => match f.inst(*pid) {
                    Inst::PtrAdd {
                        base: Operand::Global(g),
                        offset,
                    } => (*g, const_i(*offset)? as u64),
                    _ => return None,
                },
                _ => return None,
            };
            let (init, size) = const_globals.get(&g.0)?;
            if off + ty.size() > *size {
                return None;
            }
            let bits = init.read_int(off, ty.size());
            Some(match ty {
                Ty::F64 => Operand::ConstF(f64::from_bits(bits as u64)),
                _ => Operand::ConstI(bits, *ty),
            })
        }
        Inst::Phi { incomings, .. } => {
            // All incomings identical (possibly via self-reference).
            let mut val: Option<Operand> = None;
            for inc in incomings {
                if inc.value == Operand::Inst(iid) {
                    continue;
                }
                match val {
                    None => val = Some(inc.value),
                    Some(v) if v == inc.value => {}
                    _ => return None,
                }
            }
            val
        }
        _ => None,
    }
}

fn fold_bin(f: &Function, op: BinOp, ty: Ty, lhs: Operand, rhs: Operand) -> Option<Operand> {
    let cl = as_const(f, lhs);
    let cr = as_const(f, rhs);
    if op.is_float() {
        if let (Some(a), Some(b)) = (
            cl.and_then(|c| c.as_const_f64()),
            cr.and_then(|c| c.as_const_f64()),
        ) {
            let v = match op {
                BinOp::FAdd => a + b,
                BinOp::FSub => a - b,
                BinOp::FMul => a * b,
                BinOp::FDiv => a / b,
                BinOp::FMin => a.min(b),
                BinOp::FMax => a.max(b),
                _ => unreachable!(),
            };
            return Some(Operand::ConstF(v));
        }
        // Float identities are unsafe in general (signed zero, NaN); skip.
        return None;
    }
    let il = cl.and_then(|c| c.as_const_int());
    let ir = cr.and_then(|c| c.as_const_int());
    if let (Some(a), Some(b)) = (il, ir) {
        let v = match op {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::SDiv => {
                if b == 0 {
                    return None;
                }
                a.wrapping_div(b)
            }
            BinOp::SRem => {
                if b == 0 {
                    return None;
                }
                a.wrapping_rem(b)
            }
            BinOp::UDiv => {
                if b == 0 {
                    return None;
                }
                ((a as u64) / (b as u64)) as i64
            }
            BinOp::URem => {
                if b == 0 {
                    return None;
                }
                ((a as u64) % (b as u64)) as i64
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl(b as u32 & 63),
            BinOp::LShr => ((a as u64).wrapping_shr(b as u32 & 63)) as i64,
            BinOp::AShr => a.wrapping_shr(b as u32 & 63),
            BinOp::SMin => a.min(b),
            BinOp::SMax => a.max(b),
            _ => unreachable!(),
        };
        return Some(Operand::ConstI(v, ty));
    }
    // Identities (one constant side).
    match (op, il, ir) {
        (BinOp::Add, Some(0), _) => Some(rhs),
        (BinOp::Add, _, Some(0)) | (BinOp::Sub, _, Some(0)) => Some(lhs),
        (BinOp::Mul, Some(1), _) => Some(rhs),
        (BinOp::Mul, _, Some(1)) | (BinOp::SDiv, _, Some(1)) => Some(lhs),
        (BinOp::Mul, Some(0), _) | (BinOp::Mul, _, Some(0)) => Some(Operand::ConstI(0, ty)),
        (BinOp::And, Some(0), _) | (BinOp::And, _, Some(0)) => Some(Operand::ConstI(0, ty)),
        (BinOp::Or, Some(0), _) | (BinOp::Xor, Some(0), _) => Some(rhs),
        (BinOp::Or, _, Some(0)) | (BinOp::Xor, _, Some(0)) => Some(lhs),
        (BinOp::Shl, _, Some(0)) | (BinOp::LShr, _, Some(0)) | (BinOp::AShr, _, Some(0)) => {
            Some(lhs)
        }
        _ => None,
    }
}

fn fold_un(op: UnOp, ty: Ty, a: Operand) -> Option<Operand> {
    match op {
        UnOp::Neg => Some(Operand::ConstI(a.as_const_int()?.wrapping_neg(), ty)),
        UnOp::Not => Some(Operand::ConstI(!a.as_const_int()?, ty)),
        UnOp::FNeg => Some(Operand::ConstF(-a.as_const_f64()?)),
        UnOp::FAbs => Some(Operand::ConstF(a.as_const_f64()?.abs())),
        UnOp::Sqrt => Some(Operand::ConstF(a.as_const_f64()?.sqrt())),
        UnOp::Sin => Some(Operand::ConstF(a.as_const_f64()?.sin())),
        UnOp::Cos => Some(Operand::ConstF(a.as_const_f64()?.cos())),
        UnOp::Exp => Some(Operand::ConstF(a.as_const_f64()?.exp())),
        UnOp::Log => Some(Operand::ConstF(a.as_const_f64()?.ln())),
    }
}

fn fold_cast(kind: CastKind, to: Ty, a: Operand) -> Option<Operand> {
    match kind {
        CastKind::IntCast => {
            let v = a.as_const_int()?;
            let v = match to {
                Ty::I1 => v & 1,
                Ty::I8 => v as i8 as i64,
                Ty::I32 => v as i32 as i64,
                _ => v,
            };
            Some(Operand::ConstI(v, to))
        }
        CastKind::ZExtCast => {
            let v = a.as_const_int()?;
            let v = match to {
                Ty::I1 => v & 1,
                Ty::I8 => v & 0xff,
                Ty::I32 => v & 0xffff_ffff,
                _ => v,
            };
            Some(Operand::ConstI(v, to))
        }
        CastKind::SiToFp => Some(Operand::ConstF(a.as_const_int()? as f64)),
        CastKind::FpToSi => Some(Operand::ConstI(a.as_const_f64()? as i64, to)),
        CastKind::PtrCast => {
            let v = a.as_const_int()?;
            Some(Operand::ConstI(v, to))
        }
    }
}

fn fold_cmp(f: &Function, pred: Pred, ty: Ty, lhs: Operand, rhs: Operand) -> Option<Operand> {
    let cl = as_const(f, lhs);
    let cr = as_const(f, rhs);
    if ty.is_float() {
        let (a, b) = (
            cl.and_then(|c| c.as_const_f64())?,
            cr.and_then(|c| c.as_const_f64())?,
        );
        let v = match pred {
            Pred::Eq => a == b,
            Pred::Ne => a != b,
            Pred::Slt | Pred::Ult => a < b,
            Pred::Sle | Pred::Ule => a <= b,
            Pred::Sgt | Pred::Ugt => a > b,
            Pred::Sge | Pred::Uge => a >= b,
        };
        return Some(Operand::bool_(v));
    }
    let (a, b) = (
        cl.and_then(|c| c.as_const_int())?,
        cr.and_then(|c| c.as_const_int())?,
    );
    let v = match pred {
        Pred::Eq => a == b,
        Pred::Ne => a != b,
        Pred::Slt => a < b,
        Pred::Sle => a <= b,
        Pred::Sgt => a > b,
        Pred::Sge => a >= b,
        Pred::Ult => (a as u64) < (b as u64),
        Pred::Ule => (a as u64) <= (b as u64),
        Pred::Ugt => (a as u64) > (b as u64),
        Pred::Uge => (a as u64) >= (b as u64),
    };
    Some(Operand::bool_(v))
}

/// Apply a replacement map (with chain resolution) to all uses.
pub fn apply_replacements(f: &mut Function, map: &HashMap<InstId, Operand>) {
    let resolve = |mut op: Operand| -> Operand {
        let mut hops = 0;
        while let Operand::Inst(i) = op {
            match map.get(&i) {
                Some(&next) if next != op => {
                    op = next;
                    hops += 1;
                    if hops > 64 {
                        break;
                    }
                }
                _ => break,
            }
        }
        op
    };
    for inst in &mut f.insts {
        inst.map_operands(resolve);
    }
    for block in &mut f.blocks {
        block.term.map_operands(resolve);
    }
}

// ---------------------------------------------------------------------------
// CFG simplification
// ---------------------------------------------------------------------------

fn fold_branches(f: &mut Function) -> bool {
    let mut changed = false;
    for bi in 0..f.blocks.len() {
        let new_term = match &f.blocks[bi].term {
            Term::CondBr {
                cond,
                if_true,
                if_false,
            } => {
                if if_true == if_false {
                    Some(Term::Br(*if_true))
                } else if let Some(c) = cond.as_const_int() {
                    Some(Term::Br(if c != 0 { *if_true } else { *if_false }))
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some(t) = new_term {
            // Fix phis in the no-longer-successor block.
            let old_succs = f.blocks[bi].term.succs();
            f.blocks[bi].term = t;
            let new_succs = f.blocks[bi].term.succs();
            for s in old_succs {
                if !new_succs.contains(&s) {
                    remove_phi_incomings(f, s, BlockId(bi as u32));
                }
            }
            changed = true;
        }
    }
    changed
}

fn remove_phi_incomings(f: &mut Function, block: BlockId, pred: BlockId) {
    let insts: Vec<InstId> = f.block(block).insts.clone();
    for iid in insts {
        if let Inst::Phi { incomings, .. } = f.inst_mut(iid) {
            incomings.retain(|i| i.pred != pred);
        } else {
            break;
        }
    }
}

fn remove_unreachable(f: &mut Function) -> bool {
    let reach = cfg::reachable(f);
    let mut changed = false;
    for (bi, r) in reach.iter().enumerate() {
        if *r {
            continue;
        }
        if !f.blocks[bi].insts.is_empty() || f.blocks[bi].term != Term::Unreachable {
            // Remove this block's contribution to reachable phis.
            for (si, sr) in reach.iter().enumerate() {
                if *sr {
                    remove_phi_incomings(f, BlockId(si as u32), BlockId(bi as u32));
                }
            }
            f.blocks[bi].insts.clear();
            f.blocks[bi].term = Term::Unreachable;
            changed = true;
        }
    }
    changed
}

fn simplify_phis(f: &mut Function) -> bool {
    // Align phi incomings with actual predecessors, then fold trivial phis.
    let preds = cfg::predecessors(f);
    let mut map: HashMap<InstId, Operand> = HashMap::new();
    let mut changed = false;
    for bi in 0..f.blocks.len() {
        let insts: Vec<InstId> = f.blocks[bi].insts.clone();
        for iid in insts {
            let Inst::Phi { incomings, .. } = f.inst_mut(iid) else {
                break;
            };
            let before = incomings.len();
            incomings.retain(|i| preds[bi].contains(&i.pred));
            if incomings.len() != before {
                changed = true;
            }
            if incomings.len() == 1 {
                map.insert(iid, incomings[0].value);
            }
        }
    }
    if !map.is_empty() {
        // Chains among phis resolve transitively in apply_replacements.
        apply_replacements(f, &map);
        // Drop the trivial phis from their blocks.
        for block in &mut f.blocks {
            block.insts.retain(|i| !map.contains_key(i));
        }
        changed = true;
    }
    changed
}

fn merge_blocks(f: &mut Function) -> bool {
    let mut changed = false;
    loop {
        let preds = cfg::predecessors(f);
        let reach = cfg::reachable(f);
        let mut merged = false;
        for ai in 0..f.blocks.len() {
            if !reach[ai] {
                continue;
            }
            let Term::Br(b) = f.blocks[ai].term else {
                continue;
            };
            let bi = b.index();
            if bi == ai || preds[bi].len() != 1 {
                continue;
            }
            // No phis in the target (trivial ones were folded already).
            let has_phi = f.blocks[bi]
                .insts
                .first()
                .map(|&i| f.inst(i).is_phi())
                .unwrap_or(false);
            if has_phi {
                continue;
            }
            // Merge B into A.
            let b_insts = std::mem::take(&mut f.blocks[bi].insts);
            let b_term = std::mem::replace(&mut f.blocks[bi].term, Term::Unreachable);
            // Phis in B's successors must re-point their incoming edge.
            for s in b_term.succs() {
                let insts: Vec<InstId> = f.block(s).insts.clone();
                for iid in insts {
                    if let Inst::Phi { incomings, .. } = f.inst_mut(iid) {
                        for inc in incomings.iter_mut() {
                            if inc.pred == b {
                                inc.pred = BlockId(ai as u32);
                            }
                        }
                    } else {
                        break;
                    }
                }
            }
            f.blocks[ai].insts.extend(b_insts);
            f.blocks[ai].term = b_term;
            merged = true;
            changed = true;
            break; // recompute preds
        }
        if !merged {
            break;
        }
    }
    changed
}

// ---------------------------------------------------------------------------
// dead code elimination
// ---------------------------------------------------------------------------

/// Remove instructions whose results are unused and which have no side
/// effects. `assume(true)` and `assume(<constant>)` are also dropped.
pub fn dce(f: &mut Function) -> bool {
    let n = f.insts.len();
    let mut live = vec![false; n];
    let mut work: Vec<InstId> = Vec::new();

    let mark = |op: Operand, live: &mut Vec<bool>, work: &mut Vec<InstId>| {
        if let Operand::Inst(i) = op {
            if !live[i.index()] {
                live[i.index()] = true;
                work.push(i);
            }
        }
    };

    for block in &f.blocks {
        for &iid in &block.insts {
            let inst = f.inst(iid);
            let rooted = match inst {
                Inst::Intr {
                    intr: Intrinsic::Assume(()),
                    args,
                } => {
                    // Constant assumes are informationless.
                    !matches!(args[0], Operand::ConstI(..))
                }
                // An unused load is removable: it observes memory but
                // modifies nothing (dropping it only forgoes a potential
                // trap, which dead code is allowed to do).
                Inst::Load { .. } => false,
                _ => inst.has_side_effects(),
            };
            if rooted && !live[iid.index()] {
                live[iid.index()] = true;
                work.push(iid);
            }
        }
        for op in block.term.operands() {
            mark(op, &mut live, &mut work);
        }
    }
    while let Some(iid) = work.pop() {
        for op in f.inst(iid).operands() {
            mark(op, &mut live, &mut work);
        }
    }
    let mut changed = false;
    for block in &mut f.blocks {
        let before = block.insts.len();
        block.insts.retain(|i| live[i.index()]);
        changed |= block.insts.len() != before;
    }
    changed
}
