//! Field-sensitive access analysis (paper §IV-B1).
//!
//! For every *analyzable object* — an internal global or a stack allocation
//! — collect all memory accesses binned by byte offset and size, including:
//!
//! * **maybe-writes** through conditional pointers (the Fig. 7b broadcast
//!   idiom stores through `select(cond, &field, &dummy)`);
//! * **pseudo-writes** derived from `assume(load(p) == k)` patterns — the
//!   assumed-memory-content extension (§IV-B3);
//! * **unknown accesses** (dynamic offset), binned separately so the
//!   zero-initialization deduction can still fire ("even if we cannot
//!   predict the offset of each access precisely we still can deduce that a
//!   load ... is effectively resulting in a zero value", §IV-B1);
//! * escape facts: whether the object's address leaks into memory, calls or
//!   integer casts — escaped objects cannot be reasoned about.

use std::collections::HashMap;

use nzomp_ir::inst::{Inst, InstId, Intrinsic, Pred};
use nzomp_ir::{BlockId, Function, Module, Operand, Space, Ty};

/// An analyzable memory object.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ObjectId {
    Global(u32),
    Alloca { func: u32, inst: u32 },
}

/// Abstract value a write stores (the fold lattice).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FoldVal {
    Int(i64, Ty),
    Float(f64),
    Func(u32),
    /// Invariant hardware intrinsics (§IV-B4): rematerializable anywhere.
    BlockDim,
    GridDim,
    /// A function parameter (§IV-B4: "we further can propagate ...
    /// function arguments through memory"). Only valid when the reading
    /// load is in the same function as every such write.
    Param(u32),
    /// Unknown.
    Bottom,
}

impl FoldVal {
    pub fn is_zero(&self) -> bool {
        matches!(self, FoldVal::Int(0, _))
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    Read,
    Write,
    /// Atomic read-modify-write.
    Rmw,
    /// Pseudo-write from an `assume(load == k)` (§IV-B3).
    AssumeEq,
}

/// One access to one object.
#[derive(Clone, Debug)]
pub struct Access {
    pub func: u32,
    pub block: BlockId,
    /// Position within the block's instruction list.
    pub pos: usize,
    pub inst: InstId,
    pub kind: AccessKind,
    /// Byte offset within the object; `None` if dynamic.
    pub offset: Option<u64>,
    pub size: u64,
    /// Value written (writes/pseudo-writes only).
    pub value: Option<FoldVal>,
    /// The access may target a different object instead (conditional
    /// pointer): it cannot serve as a *dominating* definition but its value
    /// still participates in the merge.
    pub maybe: bool,
}

/// Per-object access summary.
#[derive(Clone, Debug, Default)]
pub struct ObjectInfo {
    pub accesses: Vec<Access>,
    /// Address escaped (stored, passed to a call, cast to int, returned).
    pub escaped: bool,
    pub space: Option<Space>,
    /// Object is all-zero before the kernel's first write (shared memory
    /// and zero-initialized globals).
    pub zero_init: bool,
}

/// Module-wide analysis result.
#[derive(Debug, Default)]
pub struct Fsaa {
    pub objects: HashMap<ObjectId, ObjectInfo>,
}

/// Result of resolving a pointer operand.
#[derive(Clone, Debug, Default)]
struct PtrTargets {
    targets: Vec<(ObjectId, Option<u64>)>,
    unknown: bool,
}

impl PtrTargets {
    fn unknown() -> PtrTargets {
        PtrTargets {
            targets: Vec::new(),
            unknown: true,
        }
    }
}

/// Resolve which objects `op` can point to (with constant offsets where
/// possible). `depth` guards against pathological chains.
fn resolve_ptr(f: &Function, fidx: u32, op: Operand, depth: usize) -> PtrTargets {
    if depth > 24 {
        return PtrTargets::unknown();
    }
    match op {
        Operand::Global(g) => PtrTargets {
            targets: vec![(ObjectId::Global(g.0), Some(0))],
            unknown: false,
        },
        Operand::ConstI(0, Ty::Ptr) => PtrTargets::default(), // null: no object
        Operand::Inst(i) => match f.inst(i) {
            Inst::Alloca { .. } => PtrTargets {
                targets: vec![(
                    ObjectId::Alloca {
                        func: fidx,
                        inst: i.0,
                    },
                    Some(0),
                )],
                unknown: false,
            },
            Inst::PtrAdd { base, offset } => {
                let mut t = resolve_ptr(f, fidx, *base, depth + 1);
                match offset.as_const_int() {
                    Some(off) if off >= 0 => {
                        for (_, o) in &mut t.targets {
                            *o = o.and_then(|v| v.checked_add(off as u64));
                        }
                    }
                    _ => {
                        for (_, o) in &mut t.targets {
                            *o = None;
                        }
                    }
                }
                t
            }
            Inst::Select {
                if_true, if_false, ..
            } => {
                let mut a = resolve_ptr(f, fidx, *if_true, depth + 1);
                let b = resolve_ptr(f, fidx, *if_false, depth + 1);
                a.unknown |= b.unknown;
                for t in b.targets {
                    if !a.targets.contains(&t) {
                        a.targets.push(t);
                    }
                }
                a
            }
            // Loads, calls, casts, phis: unknown provenance.
            _ => PtrTargets::unknown(),
        },
        _ => PtrTargets::unknown(),
    }
}

/// Abstract value of an operand (for write values), following one level of
/// defining instructions for the invariant intrinsics (§IV-B4).
pub fn fold_val(f: &Function, op: Operand, invariant_prop: bool) -> FoldVal {
    match op {
        Operand::ConstI(v, ty) => FoldVal::Int(v, ty),
        Operand::ConstF(v) => FoldVal::Float(v),
        Operand::Func(fr) => FoldVal::Func(fr.0),
        Operand::Param(p) if invariant_prop => FoldVal::Param(p),
        Operand::Inst(i) if invariant_prop => match f.inst(i) {
            Inst::Intr {
                intr: Intrinsic::BlockDim,
                ..
            } => FoldVal::BlockDim,
            Inst::Intr {
                intr: Intrinsic::GridDim,
                ..
            } => FoldVal::GridDim,
            _ => FoldVal::Bottom,
        },
        _ => FoldVal::Bottom,
    }
}

/// Does `op` (recursively) use a pointer into an analyzable object in a
/// non-dereferencing position? Used for escape marking.
fn mark_escapes(f: &Function, fidx: u32, op: Operand, fsaa: &mut Fsaa) {
    let t = resolve_ptr(f, fidx, op, 0);
    for (obj, _) in t.targets {
        fsaa.objects.entry(obj).or_default().escaped = true;
    }
}

/// Build the analysis over live (non-declaration) functions.
pub fn build(module: &Module, assumed_content: bool, invariant_prop: bool) -> Fsaa {
    let mut fsaa = Fsaa::default();

    // Seed object metadata for globals.
    for (gi, g) in module.globals.iter().enumerate() {
        let info = fsaa.objects.entry(ObjectId::Global(gi as u32)).or_default();
        info.space = Some(g.space);
        info.zero_init = match g.space {
            // Shared memory is zeroed at team start in the vGPU; the
            // runtime additionally writes its NULLs explicitly (§III-C).
            Space::Shared => matches!(g.init, nzomp_ir::Init::Zero),
            Space::Global | Space::Constant => matches!(g.init, nzomp_ir::Init::Zero),
            Space::Local => false,
        };
        // Constant-space objects are handled by plain constant folding.
    }

    for (fidx, f) in module.funcs.iter().enumerate() {
        if f.is_declaration() {
            continue;
        }
        let fidx = fidx as u32;
        for (bid, block) in f.iter_blocks() {
            for (pos, &iid) in block.insts.iter().enumerate() {
                let inst = f.inst(iid);
                match inst {
                    Inst::Load { ty, ptr } => {
                        let t = resolve_ptr(f, fidx, *ptr, 0);
                        record(&mut fsaa, f, fidx, bid, pos, iid, &t, AccessKind::Read, ty.size(), None);
                        if t.unknown {
                            // A load through an unknown pointer may read any
                            // escaped object; escape already covers that.
                        }
                    }
                    Inst::Store { ty, ptr, value } => {
                        let t = resolve_ptr(f, fidx, *ptr, 0);
                        let v = fold_val(f, *value, invariant_prop);
                        record(
                            &mut fsaa,
                            f,
                            fidx,
                            bid,
                            pos,
                            iid,
                            &t,
                            AccessKind::Write,
                            ty.size(),
                            Some(v),
                        );
                        // The stored *value* escapes if it is an object address.
                        mark_escapes(f, fidx, *value, &mut fsaa);
                    }
                    Inst::Atomic { ty, ptr, value, .. } => {
                        let t = resolve_ptr(f, fidx, *ptr, 0);
                        record(
                            &mut fsaa,
                            f,
                            fidx,
                            bid,
                            pos,
                            iid,
                            &t,
                            AccessKind::Rmw,
                            ty.size(),
                            Some(FoldVal::Bottom),
                        );
                        mark_escapes(f, fidx, *value, &mut fsaa);
                    }
                    Inst::Cas {
                        ty,
                        ptr,
                        expected,
                        new,
                    } => {
                        let t = resolve_ptr(f, fidx, *ptr, 0);
                        record(
                            &mut fsaa,
                            f,
                            fidx,
                            bid,
                            pos,
                            iid,
                            &t,
                            AccessKind::Rmw,
                            ty.size(),
                            Some(FoldVal::Bottom),
                        );
                        mark_escapes(f, fidx, *expected, &mut fsaa);
                        mark_escapes(f, fidx, *new, &mut fsaa);
                    }
                    Inst::Call { callee, args, .. } => {
                        // Object addresses passed to calls escape (we rely
                        // on inlining to expose the common paths; what stays
                        // outlined is treated conservatively).
                        for a in args {
                            mark_escapes(f, fidx, *a, &mut fsaa);
                        }
                        let _ = callee;
                    }
                    Inst::Intr { intr, args } => {
                        if *intr == Intrinsic::Assume(()) && assumed_content {
                            if let Some(acc) = assume_pseudo_write(f, fidx, bid, pos, iid, args, invariant_prop)
                            {
                                let obj = acc.0;
                                fsaa.objects.entry(obj).or_default().accesses.push(acc.1);
                                continue;
                            }
                        }
                        for a in args {
                            // free(ptr) etc.: conservatively escape.
                            if !matches!(intr, Intrinsic::Assume(())) {
                                mark_escapes(f, fidx, *a, &mut fsaa);
                            }
                        }
                    }
                    Inst::Cast {
                        kind: nzomp_ir::CastKind::PtrCast,
                        arg,
                        ..
                    } => {
                        // Address observed as an integer: escape.
                        mark_escapes(f, fidx, *arg, &mut fsaa);
                    }
                    Inst::Phi { incomings, .. } => {
                        // Pointer-typed phis: conservatively escape their
                        // object inputs (we do not track flow through phis).
                        for inc in incomings {
                            mark_escapes(f, fidx, inc.value, &mut fsaa);
                        }
                    }
                    _ => {}
                }
            }
            for op in block.term.operands() {
                mark_escapes(f, fidx, op, &mut fsaa);
            }
        }
    }
    fsaa
}

#[allow(clippy::too_many_arguments)]
fn record(
    fsaa: &mut Fsaa,
    _f: &Function,
    fidx: u32,
    block: BlockId,
    pos: usize,
    inst: InstId,
    targets: &PtrTargets,
    kind: AccessKind,
    size: u64,
    value: Option<FoldVal>,
) {
    let maybe = targets.targets.len() > 1 || targets.unknown;
    for (obj, off) in &targets.targets {
        let info = fsaa.objects.entry(*obj).or_default();
        info.accesses.push(Access {
            func: fidx,
            block,
            pos,
            inst,
            kind,
            offset: *off,
            size,
            value,
            maybe,
        });
    }
    if targets.unknown {
        // Accesses through unknown pointers affect escaped objects only;
        // escape marking happens where the pointer leaked.
    }
}

/// Recognize `%v = load ty, p ; %c = cmp eq %v, X ; assume(%c)` and turn it
/// into a pseudo-write of `X` at the assume's location (§IV-B3, Fig. 8b).
fn assume_pseudo_write(
    f: &Function,
    fidx: u32,
    block: BlockId,
    pos: usize,
    iid: InstId,
    args: &[Operand],
    invariant_prop: bool,
) -> Option<(ObjectId, Access)> {
    let Operand::Inst(cmp_id) = args[0] else {
        return None;
    };
    let Inst::Cmp {
        pred: Pred::Eq,
        lhs,
        rhs,
        ..
    } = f.inst(cmp_id)
    else {
        return None;
    };
    // Either side may be the load.
    let (load_side, val_side) = match (lhs, rhs) {
        (Operand::Inst(l), v) if matches!(f.inst(*l), Inst::Load { .. }) => (*l, *v),
        (v, Operand::Inst(l)) if matches!(f.inst(*l), Inst::Load { .. }) => (*l, *v),
        _ => return None,
    };
    let Inst::Load { ty, ptr } = f.inst(load_side) else {
        return None;
    };
    let t = resolve_ptr(f, fidx, *ptr, 0);
    if t.unknown || t.targets.len() != 1 {
        return None;
    }
    let (obj, off) = t.targets[0];
    let off = off?;
    let value = fold_val(f, val_side, invariant_prop);
    if value == FoldVal::Bottom {
        return None;
    }
    Some((
        obj,
        Access {
            func: fidx,
            block,
            pos,
            inst: iid,
            kind: AccessKind::AssumeEq,
            offset: Some(off),
            size: ty.size(),
            value: Some(value),
            maybe: false,
        },
    ))
}

impl Fsaa {
    /// Writes (incl. RMW and pseudo-writes) recorded for `obj`.
    pub fn writes(&self, obj: ObjectId) -> impl Iterator<Item = &Access> {
        self.objects
            .get(&obj)
            .into_iter()
            .flat_map(|i| i.accesses.iter())
            .filter(|a| a.kind != AccessKind::Read)
    }

    /// Reads recorded for `obj`.
    pub fn reads(&self, obj: ObjectId) -> impl Iterator<Item = &Access> {
        self.objects
            .get(&obj)
            .into_iter()
            .flat_map(|i| i.accesses.iter())
            .filter(|a| a.kind == AccessKind::Read)
    }
}
