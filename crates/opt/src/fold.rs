//! Interprocedural conditional value propagation (paper §IV-B): fold loads
//! of runtime state using the field-sensitive access analysis, then kill
//! the stores that no longer have readers.
//!
//! The folding rule implements the paper's machinery with one deliberate
//! simplification: a load folds when **all potentially-interfering writes
//! store the same abstract value** and either (a) the object is
//! zero-initialized and every write stores zero (the thread-states-array
//! rule of §IV-B1), or (b) some non-conditional write *dominates* the load
//! — intra-procedurally through the dominator tree, inter-procedurally
//! through the lifetime-aware scheme of §IV-B2 (every call path into the
//! load's function passes a dominated call site). Because all writes agree
//! on the value, intervening writes never change the answer, which is why
//! kill-analysis is unnecessary.

use std::collections::{HashMap, HashSet};

use nzomp_ir::analysis::callgraph::CallGraph;
use nzomp_ir::analysis::manager::AnalysisManager;
use nzomp_ir::inst::{Inst, InstId, Intrinsic};
use nzomp_ir::{Module, Operand, Space, Ty};

use crate::fsaa::{self, AccessKind, FoldVal, Fsaa, ObjectId};
use crate::remarks::Remarks;
use crate::PassOptions;

/// Run one folding + DSE round. Returns true if anything changed.
pub fn run(module: &mut Module, opts: &PassOptions, remarks: &mut Remarks) -> bool {
    // Standalone entry: a throwaway manager (the pass-manager pipeline
    // threads a shared, cached one through `run_with` instead).
    let mut am = AnalysisManager::new();
    run_with(module, &mut am, opts, remarks, &mut Vec::new())
}

/// Call sites per callee: `(caller, block, pos, is_direct)`; indirect calls
/// recorded under every address-taken function. Built once per folding
/// round (the module is immutable during the decision phase) instead of
/// once per dominance query.
type CallSites = HashMap<u32, Vec<(u32, nzomp_ir::BlockId, usize, bool)>>;

fn build_call_sites(module: &Module, cg: &CallGraph) -> CallSites {
    let mut call_sites: CallSites = HashMap::new();
    let address_taken: HashSet<u32> = cg.address_taken.iter().map(|f| f.0).collect();
    for (fi, f) in module.funcs.iter().enumerate() {
        if f.is_declaration() {
            continue;
        }
        for (bid, block) in f.iter_blocks() {
            for (pos, &iid) in block.insts.iter().enumerate() {
                if let Inst::Call { callee, .. } = f.inst(iid) {
                    match callee {
                        Operand::Func(t) => call_sites.entry(t.0).or_default().push((
                            fi as u32, bid, pos, true,
                        )),
                        _ => {
                            for at in &address_taken {
                                call_sites.entry(*at).or_default().push((
                                    fi as u32, bid, pos, false,
                                ));
                            }
                        }
                    }
                }
            }
        }
    }
    call_sites
}

/// Like [`run`], querying dominators and the call graph lazily through the
/// analysis manager (only functions with fold candidates pay for them) and
/// recording which function indices were mutated.
pub fn run_with(
    module: &mut Module,
    am: &mut AnalysisManager,
    opts: &PassOptions,
    remarks: &mut Remarks,
    touched: &mut Vec<u32>,
) -> bool {
    let analysis = fsaa::build(module, opts.assumed_content, opts.invariant_prop);

    let mut changed = fold_loads(module, opts, &analysis, am, remarks, touched);
    changed |= dead_store_elim(module, opts, remarks, touched);
    changed
}

// ---------------------------------------------------------------------------
// load folding
// ---------------------------------------------------------------------------

struct LoadSite {
    func: u32,
    block: nzomp_ir::BlockId,
    pos: usize,
    inst: InstId,
    ty: Ty,
    obj: ObjectId,
    offset: Option<u64>,
}

fn fold_loads(
    module: &mut Module,
    opts: &PassOptions,
    analysis: &Fsaa,
    am: &mut AnalysisManager,
    remarks: &mut Remarks,
    touched: &mut Vec<u32>,
) -> bool {
    let cg = am.callgraph(module);
    // Built lazily by the first inter-procedural dominance query, then
    // shared by every site in this round.
    let mut call_sites: Option<CallSites> = None;
    // Collect fold candidates: loads recorded as single-object reads.
    let mut sites: Vec<LoadSite> = Vec::new();
    for (obj, info) in &analysis.objects {
        for a in &info.accesses {
            if a.kind == AccessKind::Read && !a.maybe {
                let f = &module.funcs[a.func as usize];
                if let Inst::Load { ty, .. } = f.inst(a.inst) {
                    sites.push(LoadSite {
                        func: a.func,
                        block: a.block,
                        pos: a.pos,
                        inst: a.inst,
                        ty: *ty,
                        obj: *obj,
                        offset: a.offset,
                    });
                }
            }
        }
    }

    // Per-function replacement maps (constants) and in-place rewrites
    // (rematerialized intrinsics).
    let mut const_repl: HashMap<u32, HashMap<InstId, Operand>> = HashMap::new();
    let mut remat: Vec<(u32, InstId, Intrinsic)> = Vec::new();

    for site in &sites {
        let Some(val) = fold_load(site, opts, analysis, am, &cg, &mut call_sites, module)
        else {
            continue;
        };
        let fname = module.funcs[site.func as usize].name.clone();
        match val {
            FoldVal::Int(v, _) => {
                let op = if site.ty == Ty::Ptr {
                    Operand::ConstI(v, Ty::Ptr)
                } else {
                    Operand::ConstI(v, site.ty)
                };
                const_repl.entry(site.func).or_default().insert(site.inst, op);
                remarks.passed(
                    "openmp-opt",
                    &fname,
                    format!("folded load of {:?} to constant {v}", site.obj),
                );
            }
            FoldVal::Float(v) => {
                const_repl
                    .entry(site.func)
                    .or_default()
                    .insert(site.inst, Operand::ConstF(v));
            }
            FoldVal::Func(fr) => {
                const_repl.entry(site.func).or_default().insert(
                    site.inst,
                    Operand::Func(nzomp_ir::module::FuncRef(fr)),
                );
                remarks.passed(
                    "openmp-opt",
                    &fname,
                    format!("folded load of {:?} to function pointer", site.obj),
                );
            }
            FoldVal::BlockDim => remat.push((site.func, site.inst, Intrinsic::BlockDim)),
            FoldVal::GridDim => remat.push((site.func, site.inst, Intrinsic::GridDim)),
            FoldVal::Param(p) => {
                const_repl
                    .entry(site.func)
                    .or_default()
                    .insert(site.inst, Operand::Param(p));
            }
            FoldVal::Bottom => {}
        }
    }

    let mut changed = false;
    for (fidx, map) in &const_repl {
        if map.is_empty() {
            continue;
        }
        crate::simplify::apply_replacements(&mut module.funcs[*fidx as usize], map);
        // The folded loads become dead; DCE in simplify removes them.
        if !touched.contains(fidx) {
            touched.push(*fidx);
        }
        changed = true;
    }
    for (fidx, iid, intr) in remat {
        // Replace the load in place: the result id keeps its uses.
        module.funcs[fidx as usize].insts[iid.index()] = Inst::Intr {
            intr,
            args: vec![],
        };
        if !touched.contains(&fidx) {
            touched.push(fidx);
        }
        changed = true;
    }
    changed
}

/// Decide what `site` folds to, if anything.
fn fold_load(
    site: &LoadSite,
    opts: &PassOptions,
    analysis: &Fsaa,
    am: &mut AnalysisManager,
    cg: &CallGraph,
    call_sites: &mut Option<CallSites>,
    module: &Module,
) -> Option<FoldVal> {
    let info = analysis.objects.get(&site.obj)?;
    if info.escaped {
        return None;
    }
    // Host-visible global-space objects can be written by the host between
    // launches; only their zero-init + never-written case is foldable, and
    // that is risky — skip them entirely.
    if info.space == Some(Space::Global) {
        return None;
    }
    // Constant-space objects fold in plain constant folding.
    if info.space == Some(Space::Constant) {
        return None;
    }

    let writes: Vec<_> = info
        .accesses
        .iter()
        .filter(|a| a.kind != AccessKind::Read)
        .collect();

    // Rule (a): zero-initialized object, all writes store zero.
    let zero_ok = info.zero_init
        && matches!(site.obj, ObjectId::Global(_))
        && !writes.is_empty()
        && writes
            .iter()
            .all(|w| w.kind != AccessKind::Rmw && w.value.map(|v| v.is_zero()).unwrap_or(false));
    let zero_ok = zero_ok || (info.zero_init && matches!(site.obj, ObjectId::Global(_)) && writes.is_empty());
    if zero_ok {
        return Some(FoldVal::Int(0, site.ty));
    }

    // Rule (b): all interfering writes agree on one value and one of them
    // dominates the load.
    let off = site.offset?;
    if writes.iter().any(|w| w.kind == AccessKind::Rmw) {
        return None;
    }
    let mut val: Option<FoldVal> = None;
    let mut interfering: Vec<&fsaa::Access> = Vec::new();
    for w in &writes {
        match w.offset {
            Some(woff) => {
                let disjoint = woff + w.size <= off || off + site.ty.size() <= woff;
                if disjoint {
                    continue; // filtered: cannot affect this load (§IV-B1)
                }
                let exact = woff == off && w.size == site.ty.size();
                if !exact {
                    return None; // partial overlap: give up
                }
            }
            None => return None, // unknown offset, non-zero value
        }
        interfering.push(w);
        let v = w.value.unwrap_or(FoldVal::Bottom);
        if v == FoldVal::Bottom {
            return None;
        }
        // Param values only make sense within one function.
        if matches!(v, FoldVal::Param(_)) && w.func != site.func {
            return None;
        }
        match val {
            None => val = Some(v),
            Some(cur) if cur == v => {}
            _ => return None,
        }
    }
    let val = val?;

    // Zero-initialized memory means a load can observe the initial zeros
    // unless a write dominates it (or the agreed value IS zero).
    let needs_dom = !(val.is_zero() && info.zero_init);
    if needs_dom {
        let dominated = interfering.iter().any(|w| {
            if w.maybe && w.kind != AccessKind::AssumeEq {
                return false; // conditional-pointer write: not a definition
            }
            // §IV-C gating: using a *real* store as a dominating definition
            // of shared state requires the aligned-execution reasoning
            // (other threads could interleave otherwise). Assume-derived
            // pseudo-writes hold by fiat of the `assume`.
            if w.kind == AccessKind::Write
                && info.space == Some(Space::Shared)
                && !opts.aligned_exec
            {
                return false;
            }
            dominates(w, site, am, cg, call_sites, module, opts)
        });
        if !dominated {
            return None;
        }
    }
    Some(val)
}

/// Does write `w` dominate the load `site`? Intra-procedural via the
/// dominator tree; inter-procedural via the lifetime-aware scheme (§IV-B2).
fn dominates(
    w: &fsaa::Access,
    site: &LoadSite,
    am: &mut AnalysisManager,
    cg: &CallGraph,
    call_sites: &mut Option<CallSites>,
    module: &Module,
    opts: &PassOptions,
) -> bool {
    if w.func == site.func {
        if w.block == site.block {
            return w.pos < site.pos;
        }
        return am.dominators(module, w.func).dominates(w.block, site.block);
    }
    if !opts.reach_dom {
        return false;
    }
    // Inter-procedural: every call path into site.func must pass through a
    // call site dominated by the write. Fixpoint over "fully dominated"
    // functions.
    let wf = w.func;
    let dt = am.dominators(module, wf);
    // Program points in w.func dominated by w.
    let point_dominated = |func: u32, block: nzomp_ir::BlockId, pos: usize| -> bool {
        if func == wf {
            if block == w.block {
                return w.pos < pos;
            }
            return dt.dominates(w.block, block);
        }
        false
    };

    let call_sites = call_sites.get_or_insert_with(|| build_call_sites(module, cg));

    // Iterate: F is fully dominated if every call site of F is at a
    // dominated point (in w.func past w, or inside a fully dominated fn).
    let mut fully: HashSet<u32> = HashSet::new();
    // Kernels other than w.func can never be dominated (they are entries).
    let kernel_funcs: HashSet<u32> = module.kernels.iter().map(|k| k.func.0).collect();
    loop {
        let mut grew = false;
        for fi in 0..module.funcs.len() as u32 {
            if fully.contains(&fi) || fi == wf {
                continue;
            }
            if kernel_funcs.contains(&fi) {
                continue;
            }
            let Some(sites) = call_sites.get(&fi) else {
                continue; // never called: irrelevant
            };
            if sites.is_empty() {
                continue;
            }
            let all_dom = sites.iter().all(|(caller, block, pos, _direct)| {
                fully.contains(caller) || point_dominated(*caller, *block, *pos)
            });
            if all_dom {
                fully.insert(fi);
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    fully.contains(&site.func)
}

// ---------------------------------------------------------------------------
// dead store elimination / state death
// ---------------------------------------------------------------------------

/// Remove stores and RMWs into objects that no longer have any readers —
/// after the ICV loads fold away, the runtime's initialization stores are
/// dead and, once they are gone, the state itself can be pruned.
fn dead_store_elim(
    module: &mut Module,
    opts: &PassOptions,
    remarks: &mut Remarks,
    touched: &mut Vec<u32>,
) -> bool {
    // Re-run the analysis: folding above changed the function bodies.
    let analysis = fsaa::build(module, opts.assumed_content, opts.invariant_prop);

    // Candidate dead objects: analyzable, not escaped, no reads, no
    // assume-pseudo-writes left (assumes still *read* the value in debug),
    // and not host-visible (shared memory and allocas die with the kernel).
    let mut dead: HashSet<ObjectId> = HashSet::new();
    for (obj, info) in &analysis.objects {
        let host_visible = matches!(info.space, Some(Space::Global) | Some(Space::Constant));
        if info.escaped || host_visible {
            continue;
        }
        if let ObjectId::Global(g) = obj {
            if module.globals[*g as usize].space != Space::Shared {
                continue;
            }
        }
        let has_reader = info.accesses.iter().any(|a| {
            a.kind == AccessKind::Read
                || a.kind == AccessKind::AssumeEq
                || (a.kind == AccessKind::Rmw && rmw_result_used(module, a))
        });
        if !has_reader {
            dead.insert(*obj);
        }
    }
    if dead.is_empty() {
        return false;
    }

    // A write is removable only if *every* object it may touch is dead and
    // it has no unknown targets (maybe-writes to dead+live mixes stay).
    let mut removable: HashMap<u32, HashSet<InstId>> = HashMap::new();
    let mut blocked: HashSet<(u32, u32)> = HashSet::new(); // (func, inst) touching live objects
    for (obj, info) in &analysis.objects {
        let obj_dead = dead.contains(obj);
        for a in &info.accesses {
            if a.kind == AccessKind::Read || a.kind == AccessKind::AssumeEq {
                continue;
            }
            if obj_dead {
                removable.entry(a.func).or_default().insert(a.inst);
            } else {
                blocked.insert((a.func, a.inst.0));
            }
        }
    }

    let mut changed = false;
    for (fidx, insts) in removable {
        let f = &mut module.funcs[fidx as usize];
        let before: usize = f.blocks.iter().map(|b| b.insts.len()).sum();
        for block in &mut f.blocks {
            block.insts.retain(|i| {
                let is_removable_store =
                    insts.contains(i) && !blocked.contains(&(fidx, i.0));
                // RMWs whose result is used must stay even if the object is
                // dead (shouldn't happen given the reader check, but be safe).
                !is_removable_store
            });
        }
        let after: usize = f.blocks.iter().map(|b| b.insts.len()).sum();
        if after != before {
            changed = true;
            if !touched.contains(&fidx) {
                touched.push(fidx);
            }
            remarks.passed(
                "openmp-opt",
                &module.funcs[fidx as usize].name.clone(),
                format!("removed {} dead runtime-state write(s)", before - after),
            );
        }
    }
    changed
}

fn rmw_result_used(module: &Module, a: &fsaa::Access) -> bool {
    let f = &module.funcs[a.func as usize];
    let target = Operand::Inst(a.inst);
    for block in &f.blocks {
        for &iid in &block.insts {
            if f.inst(iid).operands().contains(&target) {
                return true;
            }
        }
        if block.term.operands().contains(&target) {
            return true;
        }
    }
    false
}
