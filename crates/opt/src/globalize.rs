//! Globalization elimination (paper §IV-A2): demote `__kmpc_alloc_shared`
//! allocations back to thread-private stack when the memory provably never
//! leaves the allocating thread — the frontend globalizes conservatively,
//! the optimizer un-does it where analysis allows.

use std::collections::HashSet;

use nzomp_ir::inst::{Inst, InstId};
use nzomp_ir::{Module, Operand};
use nzomp_rt::abi;

use crate::remarks::Remarks;
use crate::PassOptions;

pub fn run(module: &mut Module, _opts: &PassOptions, remarks: &mut Remarks) -> bool {
    let Some(alloc_fn) = module.find_func(abi::ALLOC_SHARED) else {
        return false;
    };
    let free_fn = module.find_func(abi::FREE_SHARED);
    let mut changed = false;

    for fidx in 0..module.funcs.len() {
        if module.funcs[fidx].is_declaration() {
            continue;
        }
        let candidates: Vec<(InstId, u64)> = {
            let f = &module.funcs[fidx];
            f.blocks
                .iter()
                .flat_map(|b| b.insts.iter().copied())
                .filter_map(|iid| match f.inst(iid) {
                    Inst::Call {
                        callee: Operand::Func(t),
                        args,
                        ..
                    } if *t == alloc_fn => args[0].as_const_int().map(|s| (iid, s as u64)),
                    _ => None,
                })
                .collect()
        };
        for (alloc_id, size) in candidates {
            let f = &module.funcs[fidx];
            // Derived pointer set.
            let mut derived: HashSet<InstId> = HashSet::new();
            derived.insert(alloc_id);
            let mut grew = true;
            while grew {
                grew = false;
                for block in &f.blocks {
                    for &iid in &block.insts {
                        if derived.contains(&iid) {
                            continue;
                        }
                        if let Inst::PtrAdd {
                            base: Operand::Inst(b),
                            ..
                        } = f.inst(iid)
                        {
                            if derived.contains(b) {
                                derived.insert(iid);
                                grew = true;
                            }
                        }
                    }
                }
            }
            // Every use of a derived pointer must keep it thread-private.
            let mut frees: Vec<InstId> = Vec::new();
            let mut ok = true;
            'scan: for block in &f.blocks {
                for &iid in &block.insts {
                    let inst = f.inst(iid);
                    let uses_derived = |op: &Operand| {
                        matches!(op, Operand::Inst(i) if derived.contains(i))
                    };
                    match inst {
                        Inst::Load { ptr, .. } => {
                            let _ = ptr; // loading through it is fine
                        }
                        Inst::Store { ptr, value, .. } => {
                            if uses_derived(value) {
                                ok = false; // address escapes into memory
                                break 'scan;
                            }
                            let _ = ptr;
                        }
                        Inst::Call {
                            callee: Operand::Func(t),
                            args,
                            ..
                        } if Some(*t) == free_fn => {
                            if uses_derived(&args[0]) {
                                frees.push(iid);
                            }
                        }
                        Inst::Call { args, .. } => {
                            if args.iter().any(|a| uses_derived(a)) {
                                ok = false; // passed to another function
                                break 'scan;
                            }
                        }
                        Inst::Atomic { value, .. } => {
                            if uses_derived(value) {
                                ok = false;
                                break 'scan;
                            }
                        }
                        Inst::Cas { expected, new, .. } => {
                            if uses_derived(expected) || uses_derived(new) {
                                ok = false;
                                break 'scan;
                            }
                        }
                        Inst::Select {
                            if_true, if_false, ..
                        } => {
                            if uses_derived(if_true) || uses_derived(if_false) {
                                ok = false; // flows where we do not track
                                break 'scan;
                            }
                        }
                        Inst::Phi { incomings, .. } => {
                            if incomings.iter().any(|i| uses_derived(&i.value)) {
                                ok = false;
                                break 'scan;
                            }
                        }
                        Inst::Cast { arg, .. } => {
                            if uses_derived(arg) {
                                ok = false; // observed as integer
                                break 'scan;
                            }
                        }
                        _ => {}
                    }
                }
                for op in block.term.operands() {
                    if matches!(op, Operand::Inst(i) if derived.contains(&i)) {
                        ok = false;
                        break 'scan;
                    }
                }
            }
            if !ok {
                remarks.missed(
                    "openmp-opt",
                    &module.funcs[fidx].name.clone(),
                    "globalized allocation escapes the allocating thread",
                );
                continue;
            }
            let f = &mut module.funcs[fidx];
            f.insts[alloc_id.index()] = Inst::Alloca { size };
            let drop: HashSet<InstId> = frees.into_iter().collect();
            for block in &mut f.blocks {
                block.insts.retain(|i| !drop.contains(i));
            }
            changed = true;
            remarks.passed(
                "openmp-opt",
                &module.funcs[fidx].name.clone(),
                "moved globalized allocation back to thread-private memory",
            );
        }
    }
    changed
}
