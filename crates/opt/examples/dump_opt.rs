//! Debug helper: print the optimized module for the saxpy SPMD kernel.

use nzomp_front::{spmd_kernel_for, RuntimeFlavor};
use nzomp_ir::{Module, Operand, Ty};
use nzomp_opt::{optimize_module, PassOptions};
use nzomp_rt::{build_runtime, RtConfig};

fn main() {
    let mut app = Module::new("app");
    spmd_kernel_for(
        &mut app,
        RuntimeFlavor::Modern,
        "saxpy",
        &[Ty::Ptr, Ty::Ptr, Ty::I64],
        |_b, p| p[2],
        |_m, b, iv, p| {
            let pa = b.gep(p[0], iv, 8);
            let va = b.load(Ty::F64, pa);
            let v = b.fmul(va, Operand::f64(2.5));
            let po = b.gep(p[1], iv, 8);
            b.store(Ty::F64, po, v);
        },
    );
    let rt = build_runtime(RuntimeFlavor::Modern, &RtConfig::default(), true);
    nzomp_ir::link::link(&mut app, rt).unwrap();
    let remarks = optimize_module(&mut app, &PassOptions::full());
    println!("{}", nzomp_ir::printer::print_module(&app));
    println!("--- remarks ---\n{remarks}");
}
