//! End-to-end optimizer tests: the paper's headline claims, in miniature.
//!
//! * Full pipeline + modern runtime on an SPMD kernel ⇒ zero runtime
//!   calls, zero shared memory, no barriers — near-zero overhead (§V).
//! * Baseline ("nightly") pipeline ⇒ the state stays (the 11,304 B SMem of
//!   Fig. 11).
//! * SPMDization removes the generic-mode state machine (§IV-A3).
//! * Ablations degrade in the expected directions (Fig. 13).

use nzomp_front::{cuda, generic_kernel, spmd_kernel_for, RuntimeFlavor};
use nzomp_ir::{Module, Operand, Ty};
use nzomp_opt::{optimize_module, Ablation, PassOptions};
use nzomp_rt::{build_runtime, RtConfig};
use nzomp_vgpu::device::Launch;
use nzomp_vgpu::{Device, DeviceConfig, KernelMetrics, RtVal};

fn saxpy_app(flavor: RuntimeFlavor) -> Module {
    let mut app = Module::new("app");
    spmd_kernel_for(
        &mut app,
        flavor,
        "saxpy",
        &[Ty::Ptr, Ty::Ptr, Ty::I64],
        |_b, p| p[2],
        |_m, b, iv, p| {
            let pa = b.gep(p[0], iv, 8);
            let va = b.load(Ty::F64, pa);
            let v = b.fmul(va, Operand::f64(2.5));
            let po = b.gep(p[1], iv, 8);
            b.store(Ty::F64, po, v);
        },
    );
    app
}

fn compile(mut app: Module, flavor: RuntimeFlavor, rt_cfg: &RtConfig, opts: &PassOptions) -> Module {
    let rt = build_runtime(flavor, rt_cfg, true);
    nzomp_ir::link::link(&mut app, rt).unwrap();
    optimize_module(&mut app, opts);
    nzomp_ir::verify_module(&app).unwrap();
    app
}

fn run_saxpy(m: Module, check_assumes: bool) -> KernelMetrics {
    let cfg = DeviceConfig {
        check_assumes,
        ..DeviceConfig::default()
    };
    let mut dev = Device::load(m, cfg);
    let n = 2048i64;
    let a: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let pa = dev.alloc_f64(&a);
    let po = dev.alloc(8 * n as u64);
    let metrics = dev
        .launch(
            "saxpy",
            Launch::new(8, 64),
            &[RtVal::P(pa), RtVal::P(po), RtVal::I(n)],
        )
        .unwrap();
    let out = dev.read_f64(po, n as usize).unwrap();
    for i in 0..n as usize {
        assert_eq!(out[i], i as f64 * 2.5, "index {i}");
    }
    metrics
}

/// The headline: full pipeline drives the SPMD kernel to zero runtime
/// overhead — no runtime calls, no shared memory, no barriers.
#[test]
fn full_pipeline_reaches_near_zero_overhead() {
    let m = compile(
        saxpy_app(RuntimeFlavor::Modern),
        RuntimeFlavor::Modern,
        &RtConfig::default(),
        &PassOptions::full(),
    );
    let metrics = run_saxpy(m, false);
    assert_eq!(metrics.runtime_calls, 0, "runtime calls remain");
    assert_eq!(metrics.smem_bytes, 0, "shared state remains");
    assert_eq!(metrics.barriers, 0, "barriers remain");
    assert_eq!(metrics.device_mallocs, 0);
}

/// Optimized OpenMP is within a whisker of hand-written CUDA.
#[test]
fn optimized_openmp_approaches_cuda() {
    let omp = compile(
        saxpy_app(RuntimeFlavor::Modern),
        RuntimeFlavor::Modern,
        &RtConfig::default(),
        &PassOptions::full(),
    );
    let m_omp = run_saxpy(omp, false);

    let mut cu = Module::new("cu");
    cuda::grid_stride_kernel(
        &mut cu,
        "saxpy",
        &[Ty::Ptr, Ty::Ptr, Ty::I64],
        |_b, p| p[2],
        |_m, b, iv, p| {
            let pa = b.gep(p[0], iv, 8);
            let va = b.load(Ty::F64, pa);
            let v = b.fmul(va, Operand::f64(2.5));
            let po = b.gep(p[1], iv, 8);
            b.store(Ty::F64, po, v);
        },
    );
    let m_cu = run_saxpy(cu, false);

    let ratio = m_omp.cycles as f64 / m_cu.cycles as f64;
    assert!(
        ratio < 1.10,
        "optimized OpenMP {} vs CUDA {} cycles (ratio {ratio:.3})",
        m_omp.cycles,
        m_cu.cycles
    );
}

/// Baseline ("nightly") pipeline cannot remove the modern runtime's state:
/// SMem stays at the full 11,304 bytes and runtime work remains.
#[test]
fn baseline_pipeline_keeps_state() {
    let m = compile(
        saxpy_app(RuntimeFlavor::Modern),
        RuntimeFlavor::Modern,
        &RtConfig::default(),
        &PassOptions::baseline(),
    );
    let metrics = run_saxpy(m, true);
    assert_eq!(metrics.smem_bytes, 11304);
    assert!(metrics.barriers > 0);
}

/// Full vs baseline vs unoptimized: strictly decreasing cost.
#[test]
fn pipelines_order_costs() {
    let unopt = compile(
        saxpy_app(RuntimeFlavor::Modern),
        RuntimeFlavor::Modern,
        &RtConfig::default(),
        &PassOptions::none(),
    );
    let base = compile(
        saxpy_app(RuntimeFlavor::Modern),
        RuntimeFlavor::Modern,
        &RtConfig::default(),
        &PassOptions::baseline(),
    );
    let full = compile(
        saxpy_app(RuntimeFlavor::Modern),
        RuntimeFlavor::Modern,
        &RtConfig::default(),
        &PassOptions::full(),
    );
    let c_unopt = run_saxpy(unopt, true).cycles;
    let c_base = run_saxpy(base, true).cycles;
    let c_full = run_saxpy(full, false).cycles;
    assert!(c_base <= c_unopt, "baseline {c_base} vs unopt {c_unopt}");
    assert!(c_full < c_base, "full {c_full} vs baseline {c_base}");
}

/// Ablating FSAA (which implies all of §IV-B) keeps the shared state alive.
#[test]
fn ablation_fsaa_keeps_state() {
    let m = compile(
        saxpy_app(RuntimeFlavor::Modern),
        RuntimeFlavor::Modern,
        &RtConfig::default(),
        &PassOptions::full_without(Ablation::Fsaa),
    );
    let metrics = run_saxpy(m, false);
    assert!(metrics.smem_bytes > 0, "state should survive without FSAA");
}

/// Ablating barrier elimination keeps at least the init barrier.
#[test]
fn ablation_barrier_elim_keeps_barriers() {
    let m = compile(
        saxpy_app(RuntimeFlavor::Modern),
        RuntimeFlavor::Modern,
        &RtConfig::default(),
        &PassOptions::full_without(Ablation::BarrierElim),
    );
    let metrics = run_saxpy(m, false);
    assert!(metrics.barriers > 0);
}

/// Every ablation still computes correct results and costs at least as much
/// as the full pipeline.
#[test]
fn ablations_are_correct_and_never_faster() {
    let full = run_saxpy(
        compile(
            saxpy_app(RuntimeFlavor::Modern),
            RuntimeFlavor::Modern,
            &RtConfig::default(),
            &PassOptions::full(),
        ),
        false,
    )
    .cycles;
    for ab in Ablation::ALL {
        let m = compile(
            saxpy_app(RuntimeFlavor::Modern),
            RuntimeFlavor::Modern,
            &RtConfig::default(),
            &PassOptions::full_without(ab),
        );
        let metrics = run_saxpy(m, false);
        assert!(
            metrics.cycles >= full,
            "{ab:?}: {} < full {}",
            metrics.cycles,
            full
        );
    }
}

/// SPMDization converts a generic-mode kernel (sequential prologue plus one
/// `parallel for`) to SPMD and the state machine disappears.
#[test]
fn spmdization_removes_state_machine() {
    let build = || {
        let mut app = Module::new("app");
        generic_kernel(
            &mut app,
            RuntimeFlavor::Modern,
            "genk",
            &[Ty::Ptr, Ty::I64],
            |ctx, params| {
                let out = params[0];
                let n = params[1];
                ctx.parallel_for(&[(out, Ty::Ptr)], n, |_m, b, iv, caps| {
                    let slot = b.gep(caps[0], iv, 8);
                    let v = b.mul(iv, Operand::i64(7));
                    b.store(Ty::I64, slot, v);
                });
            },
        );
        app
    };
    let run = |m: Module| {
        let mut dev = Device::load(
            m,
            DeviceConfig {
                check_assumes: false,
                ..DeviceConfig::default()
            },
        );
        let n = 333i64;
        let po = dev.alloc(8 * n as u64);
        let metrics = dev
            .launch("genk", Launch::new(2, 16), &[RtVal::P(po), RtVal::I(n)])
            .unwrap();
        let got = dev.read_i64(po, n as usize).unwrap();
        for i in 0..n as usize {
            assert_eq!(got[i], 7 * i as i64);
        }
        metrics
    };

    let unopt = run(compile(
        build(),
        RuntimeFlavor::Modern,
        &RtConfig::default(),
        &PassOptions::none(),
    ));
    let full = run(compile(
        build(),
        RuntimeFlavor::Modern,
        &RtConfig::default(),
        &PassOptions::full(),
    ));
    assert!(
        full.cycles < unopt.cycles / 2,
        "SPMDization should cut the state machine: {} vs {}",
        full.cycles,
        unopt.cycles
    );
}

/// Nested parallelism defeats state elimination (the paper "strongly
/// discourages" it): shared state must survive the full pipeline.
#[test]
fn nested_parallel_defeats_state_elimination() {
    let mut app = Module::new("app");
    generic_kernel(
        &mut app,
        RuntimeFlavor::Modern,
        "nested",
        &[Ty::Ptr, Ty::I64],
        |ctx, params| {
            let out = params[0];
            let n = params[1];
            ctx.parallel_for(&[(out, Ty::Ptr)], n, |m, b, iv, caps| {
                // Inner (nested) parallel region: serialized at runtime.
                let out = caps[0];
                let par = nzomp_rt::declare_api(m, nzomp_rt::abi::PARALLEL_51);
                let inner_name = format!("inner.{}", iv == Operand::i64(0));
                let mut ib = nzomp_ir::FuncBuilder::new(
                    format!("{inner_name}.{}", m.funcs.len()),
                    vec![Ty::Ptr],
                    None,
                );
                let args = ib.param(0);
                let slot_iv = ib.load(Ty::I64, args);
                let o = ib.ptr_add(args, Operand::i64(8));
                let p = ib.load(Ty::Ptr, o);
                let slot = ib.gep(p, slot_iv, 8);
                let v = ib.mul(slot_iv, Operand::i64(3));
                ib.store(Ty::I64, slot, v);
                ib.ret(None);
                let inner = m.add_function(ib.finish());
                let a = b.alloca(16);
                b.store(Ty::I64, a, iv);
                let a2 = b.ptr_add(a, Operand::i64(8));
                b.store(Ty::Ptr, a2, out);
                b.call(Operand::Func(par), vec![Operand::Func(inner), a], None);
            });
        },
    );
    let m = compile(
        app,
        RuntimeFlavor::Modern,
        &RtConfig::default(),
        &PassOptions::full(),
    );
    let mut dev = Device::load(
        m,
        DeviceConfig {
            check_assumes: false,
            ..DeviceConfig::default()
        },
    );
    let n = 16i64;
    let po = dev.alloc(8 * n as u64);
    let metrics = dev
        .launch("nested", Launch::new(1, 4), &[RtVal::P(po), RtVal::I(n)])
        .unwrap();
    let got = dev.read_i64(po, n as usize).unwrap();
    for i in 0..n as usize {
        assert_eq!(got[i], 3 * i as i64);
    }
    assert!(
        metrics.smem_bytes > 0,
        "nested parallel must keep runtime state alive"
    );
}

/// Oversubscription assumptions reduce register pressure (§V-B: "they
/// reduce the live register count as there is no loop carried state").
#[test]
fn oversubscription_reduces_registers() {
    let plain = compile(
        saxpy_app(RuntimeFlavor::Modern),
        RuntimeFlavor::Modern,
        &RtConfig::default(),
        &PassOptions::full(),
    );
    let assumed = compile(
        saxpy_app(RuntimeFlavor::Modern),
        RuntimeFlavor::Modern,
        &RtConfig {
            assume_threads_oversubscription: true,
            ..RtConfig::default()
        },
        &PassOptions::full(),
    );
    let run = |m: Module| {
        let mut dev = Device::load(
            m,
            DeviceConfig {
                check_assumes: false,
                ..DeviceConfig::default()
            },
        );
        let n = 512i64; // 8 teams x 64 threads = 512: assumption holds
        let a = vec![1.0f64; n as usize];
        let pa = dev.alloc_f64(&a);
        let po = dev.alloc(8 * n as u64);
        dev.launch(
            "saxpy",
            Launch::new(8, 64),
            &[RtVal::P(pa), RtVal::P(po), RtVal::I(n)],
        )
        .unwrap()
    };
    let m_plain = run(plain);
    let m_assumed = run(assumed);
    assert!(
        m_assumed.regs_per_thread < m_plain.regs_per_thread,
        "assumed {} !< plain {}",
        m_assumed.regs_per_thread,
        m_plain.regs_per_thread
    );
    assert!(m_assumed.cycles <= m_plain.cycles);
}
