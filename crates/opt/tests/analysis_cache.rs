//! Property test for the analysis cache's invalidation contract: after any
//! random interleaving of mutating passes, every cached analysis must equal
//! a fresh recomputation.
//!
//! Querying the manager after each pass primes the caches, so the *next*
//! pass's [`PassEffect`] preservation claim is what is under test: a pass
//! that mutates the CFG while claiming to preserve dominators leaves a
//! stale (epoch-restamped) tree behind, and the comparison against
//! `DomTree::compute` catches it.

use nzomp_ir::analysis::{cfg, dom::DomTree, liveness, AnalysisManager};
use nzomp_ir::module::FuncRef;
use nzomp_ir::{ExecMode, FuncBuilder, Function, Module, Operand, Ty};
use nzomp_opt::pass::{
    BarrierElim, DropAssumes, Fold, GlobalDce, Globalize, Inline, Internalize, ModulePass,
    PruneDeadGlobals, Simplify, Spmdize,
};
use nzomp_opt::{PassOptions, Remarks};
use proptest::prelude::*;

/// Build one function of the given shape. Shapes: 0 = straight-line,
/// 1 = one diamond, 2 = two chained diamonds.
fn build_func(
    name: &str,
    shape: u8,
    seed: i64,
    callee: Option<FuncRef>,
    with_barrier: bool,
    with_assume: bool,
) -> Function {
    let mut b = FuncBuilder::new(name, vec![Ty::Ptr, Ty::I64], None);
    let p0 = b.param(0);
    let p1 = b.param(1);
    if with_barrier {
        b.aligned_barrier();
    }
    if with_assume {
        let c = b.icmp_sge(p1, Operand::i64(0));
        b.assume(c);
    }
    if let Some(fr) = callee {
        b.call(Operand::Func(fr), vec![p0, p1], None);
    }
    let diamonds = match shape {
        0 => 0,
        1 => 1,
        _ => 2,
    };
    let x = b.add(p1, Operand::i64(seed));
    let y = b.mul(x, Operand::i64(3));
    b.store(Ty::I64, p0, y);
    for d in 0..diamonds {
        let t = b.new_block();
        let e = b.new_block();
        let done = b.new_block();
        let c = b.icmp_slt(p1, Operand::i64(seed + d));
        b.cond_br(c, t, e);
        b.switch_to(t);
        b.store(Ty::I64, p0, Operand::i64(d));
        b.br(done);
        b.switch_to(e);
        b.store(Ty::I64, p0, Operand::i64(d + 10));
        b.br(done);
        b.switch_to(done);
    }
    b.ret(None);
    b.finish()
}

/// Assemble a module: a kernel calling a chain of helpers (last shape is
/// the deepest callee), so inlining and global DCE have real work.
fn build_module(shapes: &[u8], seeds: &[i64], with_barrier: bool, with_assume: bool) -> Module {
    let mut m = Module::new("prop");
    let mut next: Option<FuncRef> = None;
    for i in (0..shapes.len()).rev() {
        let is_kernel = i == 0;
        let f = build_func(
            &format!("f{i}"),
            shapes[i],
            seeds[i % seeds.len()],
            next,
            with_barrier && is_kernel,
            with_assume && is_kernel,
        );
        next = Some(m.add_function(f));
    }
    m.add_kernel(next.expect("at least one function"), ExecMode::Spmd);
    m
}

fn make_pass(i: u8) -> Box<dyn ModulePass> {
    match i % 10 {
        0 => Box::new(Internalize),
        1 => Box::new(Spmdize),
        2 => Box::new(GlobalDce),
        3 => Box::new(Inline),
        4 => Box::new(Simplify),
        5 => Box::new(Globalize),
        6 => Box::new(Fold),
        7 => Box::new(BarrierElim),
        8 => Box::new(DropAssumes),
        _ => Box::new(PruneDeadGlobals),
    }
}

proptest! {
    #[test]
    fn cached_analyses_match_fresh_recomputation(
        shapes in prop::collection::vec(0..3u8, 1..4),
        seeds in prop::collection::vec(0i64..100, 1..4),
        with_barrier: bool,
        with_assume: bool,
        passes in prop::collection::vec(0..10u8, 1..12),
    ) {
        let mut m = build_module(&shapes, &seeds, with_barrier, with_assume);
        prop_assert_eq!(nzomp_ir::verify_module(&m), Ok(()));

        let opts = PassOptions::full();
        let mut am = AnalysisManager::new();
        let mut remarks = Remarks::default();
        for &pi in &passes {
            let mut pass = make_pass(pi);
            let effect = pass.run(&mut m, &mut am, &opts, &mut remarks);
            am.invalidate(&m, &effect.touched, &effect.preserved);
            prop_assert_eq!(nzomp_ir::verify_module(&m), Ok(()));

            // Every cached analysis must agree with a from-scratch run,
            // for every function still carrying a body.
            for fi in 0..m.funcs.len() as u32 {
                let f = &m.funcs[fi as usize];
                if f.is_declaration() {
                    continue;
                }
                let cached_preds = am.predecessors(&m, fi);
                prop_assert_eq!(
                    &*cached_preds,
                    &cfg::predecessors(&m.funcs[fi as usize]),
                    "stale predecessors for f{} after pass {}", fi, pass.name()
                );
                let cached_dom = am.dominators(&m, fi);
                prop_assert_eq!(
                    &*cached_dom,
                    &DomTree::compute(&m.funcs[fi as usize]),
                    "stale dominators for f{} after pass {}", fi, pass.name()
                );
                let cached_live = am.liveness(&m, fi);
                prop_assert_eq!(
                    &*cached_live,
                    &liveness::compute(&m.funcs[fi as usize]),
                    "stale liveness for f{} after pass {}", fi, pass.name()
                );
            }
        }
    }
}
