//! `NZOMP_VERIFY_EACH_PASS=1` pins a pipeline break to the pass that
//! caused it: the executor verifies the module after every single pass
//! execution, stops the pipeline on the first failure, and records the
//! offending pass's name in `PassTimings::verify_failure` (which the
//! compile pipeline surfaces as `CompileError::Verify { stage: <pass> }`).
//!
//! This file is its own test binary, so setting the env var cannot race
//! with other tests.

use nzomp_ir::analysis::{AnalysisManager, PreservedAnalyses, Touched};
use nzomp_ir::inst::Term;
use nzomp_ir::{BlockId, ExecMode, FuncBuilder, Module, Operand, Ty};
use nzomp_opt::pass::{GlobalDce, Simplify};
use nzomp_opt::pipeline::{PassManager, Pipeline, Stage};
use nzomp_opt::{ModulePass, PassEffect, PassOptions, Remarks};

fn tiny_module() -> Module {
    let mut b = FuncBuilder::new("k", vec![Ty::Ptr, Ty::I64], None);
    let p0 = b.param(0);
    let p1 = b.param(1);
    let v = b.add(p1, Operand::i64(1));
    b.store(Ty::I64, p0, v);
    b.ret(None);
    let mut m = Module::new("t");
    let f = m.add_function(b.finish());
    m.add_kernel(f, ExecMode::Spmd);
    m
}

/// A deliberately broken pass: points the entry terminator at a block
/// that does not exist.
struct Saboteur;

impl ModulePass for Saboteur {
    fn name(&self) -> &'static str {
        "saboteur"
    }

    fn run(
        &mut self,
        m: &mut Module,
        _am: &mut AnalysisManager,
        _opts: &PassOptions,
        _remarks: &mut Remarks,
    ) -> PassEffect {
        m.funcs[0].blocks[0].term = Term::Br(BlockId(999));
        PassEffect {
            changed: true,
            preserved: PreservedAnalyses::none(),
            touched: Touched::All,
        }
    }
}

// One #[test] fn: both scenarios mutate the process env, so they must run
// sequentially.
#[test]
fn verify_each_pass_names_the_offending_pass_and_stops() {
    // -- armed: the saboteur is caught, named, and the pipeline stops --
    std::env::set_var("NZOMP_VERIFY_EACH_PASS", "1");

    let mut m = tiny_module();
    let pipeline = Pipeline {
        stages: vec![
            Stage::Pass(Box::new(Simplify)),
            Stage::Pass(Box::new(Saboteur)),
            // Must never run: the pipeline stops at the failure.
            Stage::Pass(Box::new(GlobalDce)),
        ],
    };
    let mut remarks = Remarks::default();
    let timings = PassManager::new().run(pipeline, &mut m, &PassOptions::full(), &mut remarks);

    let vf = timings
        .verify_failure
        .as_ref()
        .expect("the broken module must be caught between passes");
    assert_eq!(vf.pass, "saboteur", "failure must name the offending pass, got {vf:?}");
    assert!(
        timings.passes.iter().all(|p| p.name != "global-dce"),
        "pipeline must stop at the failing pass: {:?}",
        timings.passes
    );
    // The healthy pass before the saboteur ran and verified clean.
    assert!(timings.passes.iter().any(|p| p.name == "simplify" && p.runs == 1));

    // -- disarmed: no per-pass attribution; only the caller's final
    // post-pipeline verify would catch the break --
    std::env::set_var("NZOMP_VERIFY_EACH_PASS", "0");

    let mut m = tiny_module();
    let pipeline = Pipeline {
        stages: vec![Stage::Pass(Box::new(Saboteur))],
    };
    let mut remarks = Remarks::default();
    let timings = PassManager::new().run(pipeline, &mut m, &PassOptions::full(), &mut remarks);
    assert!(timings.verify_failure.is_none());
    assert!(nzomp_ir::verify_module(&m).is_err());
}
