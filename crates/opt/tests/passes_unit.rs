//! Unit tests for individual optimization passes on hand-crafted IR.

use nzomp_ir::inst::{Inst, Intrinsic};
use nzomp_ir::{
    BinOp, ExecMode, FuncBuilder, Function, Global, Init, Module, Operand, Pred, Space, Ty,
};
use nzomp_opt::{barrier, fold, globalize, inline, prune, simplify, Remarks};
use nzomp_opt::{optimize_module, PassOptions};

fn count_insts(f: &Function, pred: impl Fn(&Inst) -> bool) -> usize {
    f.blocks
        .iter()
        .flat_map(|b| b.insts.iter())
        .filter(|&&i| pred(f.inst(i)))
        .count()
}

fn count_in_module(m: &Module, pred: impl Fn(&Inst) -> bool + Copy) -> usize {
    m.funcs
        .iter()
        .filter(|f| !f.is_declaration())
        .map(|f| count_insts(f, pred))
        .sum()
}

fn kernel_module(b: FuncBuilder) -> Module {
    let mut m = Module::new("t");
    let f = m.add_function(b.finish());
    m.add_kernel(f, ExecMode::Spmd);
    m
}

// ---------------------------------------------------------------------------
// simplify
// ---------------------------------------------------------------------------

#[test]
fn simplify_folds_constants_and_identities() {
    let mut b = FuncBuilder::new("k", vec![Ty::Ptr, Ty::I64], None);
    let x = b.add(Operand::i64(2), Operand::i64(3)); // 5 (const)
    let y = b.mul(x, Operand::i64(4)); // 20 (const)
    let id = b.add(b.param(1), Operand::i64(0)); // identity -> param
    let z = b.add(y, id);
    b.store(Ty::I64, b.param(0), z);
    b.ret(None);
    let mut m = kernel_module(b);
    simplify::run(&mut m, &PassOptions::full());
    let f = &m.funcs[0];
    // Only the final add and the store remain.
    assert_eq!(count_insts(f, |i| matches!(i, Inst::Bin { .. })), 1);
    nzomp_ir::verify_module(&m).unwrap();
}

#[test]
fn simplify_folds_constant_branches_and_merges_blocks() {
    let mut b = FuncBuilder::new("k", vec![Ty::Ptr], None);
    let t = b.new_block();
    let e = b.new_block();
    let done = b.new_block();
    b.cond_br(Operand::TRUE, t, e);
    b.switch_to(t);
    b.store(Ty::I64, b.param(0), Operand::i64(1));
    b.br(done);
    b.switch_to(e);
    b.store(Ty::I64, b.param(0), Operand::i64(2));
    b.br(done);
    b.switch_to(done);
    b.ret(None);
    let mut m = kernel_module(b);
    simplify::run(&mut m, &PassOptions::full());
    let f = &m.funcs[0];
    // Everything merged into the entry block; dead branch gone.
    let reach = nzomp_ir::analysis::cfg::reachable(f);
    assert_eq!(reach.iter().filter(|&&r| r).count(), 1);
    assert_eq!(count_insts(f, |i| matches!(i, Inst::Store { .. })), 1);
}

#[test]
fn simplify_reads_constant_globals() {
    let mut m = Module::new("t");
    let g = m.add_global(Global::constant("flag", Space::Constant, 8, Init::I64(42)));
    let mut b = FuncBuilder::new("k", vec![Ty::Ptr], None);
    let v = b.load(Ty::I64, Operand::Global(g));
    let w = b.add(v, Operand::i64(1));
    b.store(Ty::I64, b.param(0), w);
    b.ret(None);
    let f = m.add_function(b.finish());
    m.add_kernel(f, ExecMode::Spmd);
    simplify::run(&mut m, &PassOptions::full());
    let f = &m.funcs[0];
    assert_eq!(count_insts(f, |i| matches!(i, Inst::Load { .. })), 0);
    // 43 stored directly.
    let has43 = f.blocks.iter().flat_map(|b| &b.insts).any(|&i| {
        matches!(f.inst(i), Inst::Store { value: Operand::ConstI(43, _), .. })
    });
    assert!(has43);
}

#[test]
fn dce_removes_unused_loads_but_keeps_stores() {
    let mut b = FuncBuilder::new("k", vec![Ty::Ptr], None);
    let _dead = b.load(Ty::I64, b.param(0));
    b.store(Ty::I64, b.param(0), Operand::i64(1));
    b.ret(None);
    let mut m = kernel_module(b);
    simplify::run(&mut m, &PassOptions::full());
    let f = &m.funcs[0];
    assert_eq!(count_insts(f, |i| matches!(i, Inst::Load { .. })), 0);
    assert_eq!(count_insts(f, |i| matches!(i, Inst::Store { .. })), 1);
}

// ---------------------------------------------------------------------------
// inline
// ---------------------------------------------------------------------------

#[test]
fn inliner_respects_attributes() {
    let mut m = Module::new("t");
    let mut cb = FuncBuilder::new("always", vec![Ty::I64], Some(Ty::I64));
    cb.attrs_mut().always_inline = true;
    let v = cb.mul(cb.param(0), Operand::i64(3));
    cb.ret(Some(v));
    let always = m.add_function(cb.finish());

    let mut cb = FuncBuilder::new("never", vec![Ty::I64], Some(Ty::I64));
    cb.attrs_mut().no_inline = true;
    let v = cb.mul(cb.param(0), Operand::i64(5));
    cb.ret(Some(v));
    let never = m.add_function(cb.finish());

    let mut b = FuncBuilder::new("k", vec![Ty::Ptr], None);
    let a = b.call(Operand::Func(always), vec![Operand::i64(2)], Some(Ty::I64)).unwrap();
    let c = b.call(Operand::Func(never), vec![a], Some(Ty::I64)).unwrap();
    b.store(Ty::I64, b.param(0), c);
    b.ret(None);
    let k = m.add_function(b.finish());
    m.add_kernel(k, ExecMode::Spmd);

    inline::run(&mut m, 100);
    nzomp_ir::verify_module(&m).unwrap();
    let kf = &m.funcs[k.index()];
    let calls: Vec<&Inst> = kf
        .blocks
        .iter()
        .flat_map(|b| b.insts.iter())
        .map(|&i| kf.inst(i))
        .filter(|i| matches!(i, Inst::Call { .. }))
        .collect();
    assert_eq!(calls.len(), 1, "only the no_inline call remains");
}

#[test]
fn inliner_skips_recursion() {
    let mut m = Module::new("t");
    let rec_ref = nzomp_ir::module::FuncRef(0);
    let mut cb = FuncBuilder::new("rec", vec![Ty::I64], Some(Ty::I64));
    let n = cb.param(0);
    let stop = cb.icmp_slt(n, Operand::i64(1));
    let base = cb.new_block();
    let again = cb.new_block();
    cb.cond_br(stop, base, again);
    cb.switch_to(base);
    cb.ret(Some(Operand::i64(0)));
    cb.switch_to(again);
    let n1 = cb.sub(n, Operand::i64(1));
    let r = cb.call(Operand::Func(rec_ref), vec![n1], Some(Ty::I64)).unwrap();
    let s = cb.add(r, Operand::i64(1));
    cb.ret(Some(s));
    let rec = m.add_function(cb.finish());
    assert_eq!(rec, rec_ref);
    let mut b = FuncBuilder::new("k", vec![Ty::Ptr], None);
    let v = b.call(Operand::Func(rec), vec![Operand::i64(5)], Some(Ty::I64)).unwrap();
    b.store(Ty::I64, b.param(0), v);
    b.ret(None);
    let k = m.add_function(b.finish());
    m.add_kernel(k, ExecMode::Spmd);
    inline::run(&mut m, 1000);
    nzomp_ir::verify_module(&m).unwrap();
    // The recursive function still exists and is still recursive.
    assert!(count_insts(&m.funcs[rec.index()], |i| matches!(i, Inst::Call { .. })) >= 1);
}

#[test]
fn inlined_results_and_correctness() {
    // Build, inline, and execute to prove semantic preservation.
    let mut m = Module::new("t");
    let mut cb = FuncBuilder::new("clamp", vec![Ty::I64], Some(Ty::I64));
    let n = cb.param(0);
    let neg = cb.icmp_slt(n, Operand::i64(0));
    let a = cb.new_block();
    let bblk = cb.new_block();
    cb.cond_br(neg, a, bblk);
    cb.switch_to(a);
    cb.ret(Some(Operand::i64(0)));
    cb.switch_to(bblk);
    cb.ret(Some(n));
    let clamp = m.add_function(cb.finish());
    let mut b = FuncBuilder::new("k", vec![Ty::Ptr, Ty::I64], None);
    let v = b.call(Operand::Func(clamp), vec![b.param(1)], Some(Ty::I64)).unwrap();
    b.store(Ty::I64, b.param(0), v);
    b.ret(None);
    let k = m.add_function(b.finish());
    m.add_kernel(k, ExecMode::Spmd);
    inline::run(&mut m, 100);
    simplify::run(&mut m, &PassOptions::full());
    nzomp_ir::verify_module(&m).unwrap();
    assert_eq!(count_in_module(&m, |i| matches!(i, Inst::Call { .. })), 0);

    use nzomp_vgpu::{device::Launch, Device, DeviceConfig, RtVal};
    for (input, expect) in [(-5i64, 0i64), (7, 7)] {
        let mut dev = Device::load(m.clone(), DeviceConfig::default());
        let out = dev.alloc(8);
        dev.launch("k", Launch::new(1, 1), &[RtVal::P(out), RtVal::I(input)])
            .unwrap();
        assert_eq!(dev.read_i64(out, 1).unwrap()[0], expect);
    }
}

// ---------------------------------------------------------------------------
// barrier elimination
// ---------------------------------------------------------------------------

fn barrier_count(m: &Module) -> usize {
    count_in_module(m, |i| {
        matches!(
            i,
            Inst::Intr {
                intr: Intrinsic::AlignedBarrier,
                ..
            }
        )
    })
}

#[test]
fn barrier_elim_removes_consecutive_aligned() {
    let mut b = FuncBuilder::new("k", vec![Ty::Ptr], None);
    b.store(Ty::I64, b.param(0), Operand::i64(1)); // blocks the entry barrier
    b.aligned_barrier();
    let _v = b.load(Ty::I64, b.param(0)); // loads do not block
    b.aligned_barrier();
    b.store(Ty::I64, b.param(0), Operand::i64(2));
    b.ret(None);
    let mut m = kernel_module(b);
    let mut r = Remarks::default();
    barrier::run(&mut m, &PassOptions::full(), &mut r);
    assert_eq!(barrier_count(&m), 1);
}

#[test]
fn barrier_elim_uses_kernel_entry_and_exit() {
    let mut b = FuncBuilder::new("k", vec![Ty::Ptr], None);
    b.aligned_barrier(); // redundant with kernel entry
    b.store(Ty::I64, b.param(0), Operand::i64(1));
    b.aligned_barrier(); // redundant with kernel exit
    b.ret(None);
    let mut m = kernel_module(b);
    let mut r = Remarks::default();
    barrier::run(&mut m, &PassOptions::full(), &mut r);
    assert_eq!(barrier_count(&m), 0);
}

#[test]
fn barrier_elim_keeps_barriers_separating_shared_stores() {
    let mut m = Module::new("t");
    let g = m.add_global(Global::new("s", Space::Shared, 8, Init::Zero));
    let mut b = FuncBuilder::new("k", vec![], None);
    b.store(Ty::I64, Operand::Global(g), Operand::i64(1));
    b.aligned_barrier();
    b.store(Ty::I64, Operand::Global(g), Operand::i64(2));
    b.aligned_barrier();
    b.store(Ty::I64, Operand::Global(g), Operand::i64(3));
    b.ret(None);
    let f = m.add_function(b.finish());
    m.add_kernel(f, ExecMode::Spmd);
    let mut r = Remarks::default();
    barrier::run(&mut m, &PassOptions::full(), &mut r);
    assert_eq!(barrier_count(&m), 2, "shared stores pin both barriers");
}

#[test]
fn barrier_elim_ignores_thread_local_stores() {
    let mut b = FuncBuilder::new("k", vec![], None);
    let slot = b.alloca(8);
    b.aligned_barrier();
    b.store(Ty::I64, slot, Operand::i64(1)); // private: not observable
    b.aligned_barrier();
    b.ret(None);
    let mut m = kernel_module(b);
    let mut r = Remarks::default();
    barrier::run(&mut m, &PassOptions::full(), &mut r);
    assert_eq!(barrier_count(&m), 0);
}

#[test]
fn barrier_elim_never_touches_unaligned() {
    let mut b = FuncBuilder::new("k", vec![], None);
    b.barrier();
    b.barrier();
    b.ret(None);
    let mut m = kernel_module(b);
    let mut r = Remarks::default();
    barrier::run(&mut m, &PassOptions::full(), &mut r);
    let unaligned = count_in_module(&m, |i| {
        matches!(i, Inst::Intr { intr: Intrinsic::Barrier, .. })
    });
    assert_eq!(unaligned, 2);
}

// ---------------------------------------------------------------------------
// fold (FSAA-driven)
// ---------------------------------------------------------------------------

#[test]
fn fold_zero_initialized_shared_array() {
    // The §IV-B1 thread-states deduction: all writes zero at dynamic
    // offsets -> loads fold to zero.
    let mut m = Module::new("t");
    let g = m.add_global(Global::new("arr", Space::Shared, 64, Init::Zero));
    let mut b = FuncBuilder::new("k", vec![Ty::Ptr], None);
    let tid = b.thread_id();
    let slot = b.gep(Operand::Global(g), tid, 8);
    b.store(Ty::Ptr, slot, Operand::NULL);
    b.aligned_barrier();
    let v = b.load(Ty::Ptr, slot);
    let isnull = b.cmp(Pred::Eq, Ty::Ptr, v, Operand::NULL);
    let r = b.select(Ty::I64, isnull, Operand::i64(1), Operand::i64(0));
    b.store(Ty::I64, b.param(0), r);
    b.ret(None);
    let f = m.add_function(b.finish());
    m.add_kernel(f, ExecMode::Spmd);
    optimize_module(&mut m, &PassOptions::full());
    // The load folded, the select folded to 1, the shared array died.
    assert_eq!(m.shared_memory_bytes(), 0);
    let kf = m.funcs.iter().find(|f| f.name == "k").unwrap();
    let stores_one = kf.blocks.iter().flat_map(|b| &b.insts).any(|&i| {
        matches!(kf.inst(i), Inst::Store { value: Operand::ConstI(1, _), .. })
    });
    assert!(stores_one);
}

#[test]
fn fold_requires_agreeing_values() {
    // Two different constants stored -> no fold, state survives.
    let mut m = Module::new("t");
    let g = m.add_global(Global::new("s", Space::Shared, 8, Init::Zero));
    let mut b = FuncBuilder::new("k", vec![Ty::Ptr], None);
    let tid = b.thread_id();
    let is0 = b.icmp_eq(tid, Operand::i64(0));
    let v = b.select(Ty::I64, is0, Operand::i64(7), Operand::i64(9));
    b.store(Ty::I64, Operand::Global(g), v);
    b.aligned_barrier();
    let l = b.load(Ty::I64, Operand::Global(g));
    b.store(Ty::I64, b.param(0), l);
    b.ret(None);
    let f = m.add_function(b.finish());
    m.add_kernel(f, ExecMode::Spmd);
    optimize_module(&mut m, &PassOptions::full());
    assert!(m.shared_memory_bytes() > 0, "non-foldable state must stay");
}

#[test]
fn fold_param_through_private_memory() {
    // §IV-B4: function arguments propagate through memory.
    let mut b = FuncBuilder::new("k", vec![Ty::Ptr, Ty::I64], None);
    let slot = b.alloca(8);
    b.store(Ty::I64, slot, b.param(1));
    let v = b.load(Ty::I64, slot);
    let w = b.add(v, Operand::i64(1));
    b.store(Ty::I64, b.param(0), w);
    b.ret(None);
    let mut m = kernel_module(b);
    optimize_module(&mut m, &PassOptions::full());
    let kf = &m.funcs[0];
    assert_eq!(
        count_insts(kf, |i| matches!(i, Inst::Load { .. } | Inst::Alloca { .. })),
        0,
        "the private round-trip should fold entirely:\n{}",
        nzomp_ir::printer::print_function(Some(&m), kf)
    );
}

#[test]
fn fold_respects_escaped_objects() {
    // Address stored to memory -> object escapes -> no folding.
    let mut m = Module::new("t");
    let g = m.add_global(Global::new("s", Space::Shared, 8, Init::Zero));
    let handle = m.add_global(Global::new("handle", Space::Shared, 8, Init::Zero));
    let mut b = FuncBuilder::new("k", vec![Ty::Ptr], None);
    b.store(Ty::I64, Operand::Global(g), Operand::i64(5));
    b.store(Ty::Ptr, Operand::Global(handle), Operand::Global(g)); // escape!
    b.aligned_barrier();
    let p = b.load(Ty::Ptr, Operand::Global(handle));
    let v = b.load(Ty::I64, p);
    b.store(Ty::I64, b.param(0), v);
    b.ret(None);
    let f = m.add_function(b.finish());
    m.add_kernel(f, ExecMode::Spmd);
    let mut r = Remarks::default();
    fold::run(&mut m, &PassOptions::full(), &mut r);
    // The escaped object's load must not fold to 5 through FSAA alone.
    let kf = m.funcs.iter().find(|f| f.name == "k").unwrap();
    assert!(count_insts(kf, |i| matches!(i, Inst::Load { .. })) >= 1);
}

// ---------------------------------------------------------------------------
// globalization elimination
// ---------------------------------------------------------------------------

#[test]
fn globalize_demotes_private_buffers_only() {
    use nzomp_rt::abi;
    let mut m = Module::new("t");
    let alloc = nzomp_rt::declare_api(&mut m, abi::ALLOC_SHARED);
    let free = nzomp_rt::declare_api(&mut m, abi::FREE_SHARED);
    let sink = m.add_function(Function::declaration("sink", vec![Ty::Ptr], None));

    // Private: loads/stores + free only -> demoted.
    let mut b = FuncBuilder::new("private", vec![Ty::Ptr], None);
    let p = b.call(Operand::Func(alloc), vec![Operand::i64(16)], Some(Ty::Ptr)).unwrap();
    b.store(Ty::I64, p, Operand::i64(1));
    let v = b.load(Ty::I64, p);
    b.store(Ty::I64, b.param(0), v);
    b.call(Operand::Func(free), vec![p, Operand::i64(16)], None);
    b.ret(None);
    let prv = m.add_function(b.finish());
    m.add_kernel(prv, ExecMode::Spmd);

    // Escaping: pointer passed to an unknown function -> kept.
    let mut b = FuncBuilder::new("escaping", vec![], None);
    let p = b.call(Operand::Func(alloc), vec![Operand::i64(16)], Some(Ty::Ptr)).unwrap();
    b.call(Operand::Func(sink), vec![p], None);
    b.ret(None);
    let esc = m.add_function(b.finish());
    m.add_kernel(esc, ExecMode::Spmd);

    let mut r = Remarks::default();
    globalize::run(&mut m, &PassOptions::full(), &mut r);
    assert!(count_insts(&m.funcs[prv.index()], |i| matches!(i, Inst::Alloca { .. })) == 1);
    assert!(count_insts(&m.funcs[esc.index()], |i| matches!(i, Inst::Call { .. })) >= 2);
    assert!(r
        .entries
        .iter()
        .any(|e| e.message.contains("escapes the allocating thread")));
}

// ---------------------------------------------------------------------------
// prune
// ---------------------------------------------------------------------------

#[test]
fn global_dce_strips_unreachable_functions() {
    let mut m = Module::new("t");
    let mut b = FuncBuilder::new("dead", vec![], None);
    b.ret(None);
    let dead = m.add_function(b.finish());
    let mut b = FuncBuilder::new("k", vec![], None);
    b.ret(None);
    let k = m.add_function(b.finish());
    m.add_kernel(k, ExecMode::Spmd);
    prune::global_dce(&mut m);
    assert!(m.funcs[dead.index()].is_declaration());
    assert!(!m.funcs[k.index()].is_declaration());
}

#[test]
fn prune_remaps_surviving_global_indices() {
    let mut m = Module::new("t");
    let _dead = m.add_global(Global::new("dead", Space::Shared, 128, Init::Zero));
    let live = m.add_global(Global::new("live", Space::Shared, 8, Init::Zero));
    let mut b = FuncBuilder::new("k", vec![Ty::Ptr], None);
    let v = b.load(Ty::I64, Operand::Global(live));
    b.store(Ty::I64, b.param(0), v);
    b.ret(None);
    let k = m.add_function(b.finish());
    m.add_kernel(k, ExecMode::Spmd);
    let mut r = Remarks::default();
    assert!(prune::prune_dead_globals(&mut m, &mut r));
    assert_eq!(m.globals.len(), 1);
    assert_eq!(m.globals[0].name, "live");
    nzomp_ir::verify_module(&m).unwrap();
    assert_eq!(m.shared_memory_bytes(), 8);
}

#[test]
fn drop_assumes_removes_all_assumes() {
    let mut b = FuncBuilder::new("k", vec![Ty::I64], None);
    let c = b.icmp_slt(b.param(0), Operand::i64(100));
    b.assume(c);
    b.ret(None);
    let mut m = kernel_module(b);
    assert!(prune::drop_assumes(&mut m));
    assert_eq!(
        count_in_module(&m, |i| matches!(
            i,
            Inst::Intr {
                intr: Intrinsic::Assume(()),
                ..
            }
        )),
        0
    );
}
