//! Frontend lowering tests: directives → IR → executed on the vGPU against
//! both runtimes, results checked against host references.

use nzomp_front::{cuda, generic_kernel, spmd_kernel_for, RuntimeFlavor};
use nzomp_ir::{Module, Operand, Ty};
use nzomp_rt::{build_runtime, RtConfig};
use nzomp_vgpu::device::Launch;
use nzomp_vgpu::{Device, DeviceConfig, RtVal};

fn compile(mut app: Module, flavor: RuntimeFlavor) -> Module {
    let rt = build_runtime(flavor, &RtConfig::default(), true);
    nzomp_ir::link::link(&mut app, rt).unwrap();
    nzomp_ir::verify_module(&app).unwrap();
    app
}

/// `out[i] = a[i] * 3 + 1` through the combined directive, both flavors.
#[test]
fn spmd_combined_directive_both_flavors() {
    for flavor in [RuntimeFlavor::Modern, RuntimeFlavor::Legacy] {
        let mut app = Module::new("app");
        spmd_kernel_for(
            &mut app,
            flavor,
            "saxpyish",
            &[Ty::Ptr, Ty::Ptr, Ty::I64],
            |_b, params| params[2],
            |_m, b, iv, params| {
                let pa = b.gep(params[0], iv, 8);
                let va = b.load(Ty::I64, pa);
                let t = b.mul(va, Operand::i64(3));
                let v = b.add(t, Operand::i64(1));
                let po = b.gep(params[1], iv, 8);
                b.store(Ty::I64, po, v);
            },
        );
        let m = compile(app, flavor);
        let mut dev = Device::load(m, DeviceConfig::default());
        let n = 257i64;
        let a: Vec<i64> = (0..n).map(|i| i * i % 91).collect();
        let pa = dev.alloc_i64(&a);
        let po = dev.alloc(8 * n as u64);
        dev.launch(
            "saxpyish",
            Launch::new(3, 17),
            &[RtVal::P(pa), RtVal::P(po), RtVal::I(n)],
        )
        .unwrap();
        let got = dev.read_i64(po, n as usize).unwrap();
        for i in 0..n as usize {
            assert_eq!(got[i], a[i] * 3 + 1, "{flavor:?} index {i}");
        }
    }
}

/// Generic kernel: sequential prologue + `parallel for`, both flavors.
#[test]
fn generic_parallel_for_both_flavors() {
    for flavor in [RuntimeFlavor::Modern, RuntimeFlavor::Legacy] {
        let mut app = Module::new("app");
        generic_kernel(
            &mut app,
            flavor,
            "genk",
            &[Ty::Ptr, Ty::I64],
            |ctx, params| {
                let out = params[0];
                let n = params[1];
                // Sequential: out[n] = 42 (main thread only).
                let slot = ctx.b().gep(out, n, 8);
                ctx.b().store(Ty::I64, slot, Operand::i64(42));
                // parallel for i in 0..n: out[i] = i + 5
                ctx.parallel_for(&[(out, Ty::Ptr)], n, |_m, b, iv, caps| {
                    let slot = b.gep(caps[0], iv, 8);
                    let v = b.add(iv, Operand::i64(5));
                    b.store(Ty::I64, slot, v);
                });
            },
        );
        let m = compile(app, flavor);
        let mut dev = Device::load(m, DeviceConfig::default());
        let n = 37i64;
        let po = dev.alloc(8 * (n as u64 + 1));
        dev.launch("genk", Launch::new(2, 8), &[RtVal::P(po), RtVal::I(n)])
            .unwrap();
        let got = dev.read_i64(po, n as usize + 1).unwrap();
        for i in 0..n as usize {
            assert_eq!(got[i], i as i64 + 5, "{flavor:?} index {i}");
        }
        assert_eq!(got[n as usize], 42, "{flavor:?} sequential store");
    }
}

/// Two parallel regions in one generic kernel share the state machine.
#[test]
fn generic_two_parallel_regions() {
    let mut app = Module::new("app");
    generic_kernel(
        &mut app,
        RuntimeFlavor::Modern,
        "two_regions",
        &[Ty::Ptr, Ty::I64],
        |ctx, params| {
            let out = params[0];
            let n = params[1];
            ctx.parallel_for(&[(out, Ty::Ptr)], n, |_m, b, iv, caps| {
                let slot = b.gep(caps[0], iv, 8);
                b.store(Ty::I64, slot, iv);
            });
            ctx.parallel_for(&[(out, Ty::Ptr)], n, |_m, b, iv, caps| {
                let slot = b.gep(caps[0], iv, 8);
                let v = b.load(Ty::I64, slot);
                let v2 = b.mul(v, Operand::i64(10));
                b.store(Ty::I64, slot, v2);
            });
        },
    );
    let m = compile(app, RuntimeFlavor::Modern);
    let mut dev = Device::load(m, DeviceConfig::default());
    let n = 23i64;
    let po = dev.alloc(8 * n as u64);
    dev.launch("two_regions", Launch::new(1, 6), &[RtVal::P(po), RtVal::I(n)])
        .unwrap();
    let got = dev.read_i64(po, n as usize).unwrap();
    for i in 0..n as usize {
        assert_eq!(got[i], 10 * i as i64);
    }
}

/// CUDA baseline kernels compute the same results with zero runtime calls
/// and zero shared memory.
#[test]
fn cuda_baseline_is_runtime_free() {
    let mut app = Module::new("app");
    cuda::grid_stride_kernel(
        &mut app,
        "cu",
        &[Ty::Ptr, Ty::Ptr, Ty::I64],
        |_b, p| p[2],
        |_m, b, iv, p| {
            let pa = b.gep(p[0], iv, 8);
            let va = b.load(Ty::I64, pa);
            let v = b.mul(va, Operand::i64(3));
            let v = b.add(v, Operand::i64(1));
            let po = b.gep(p[1], iv, 8);
            b.store(Ty::I64, po, v);
        },
    );
    nzomp_ir::verify_module(&app).unwrap();
    let mut dev = Device::load(app, DeviceConfig::default());
    let n = 257i64;
    let a: Vec<i64> = (0..n).map(|i| i * i % 91).collect();
    let pa = dev.alloc_i64(&a);
    let po = dev.alloc(8 * n as u64);
    let metrics = dev
        .launch("cu", Launch::new(3, 17), &[RtVal::P(pa), RtVal::P(po), RtVal::I(n)])
        .unwrap();
    let got = dev.read_i64(po, n as usize).unwrap();
    for i in 0..n as usize {
        assert_eq!(got[i], a[i] * 3 + 1);
    }
    assert_eq!(metrics.runtime_calls, 0);
    assert_eq!(metrics.smem_bytes, 0);
    assert_eq!(metrics.barriers, 0);
}

/// OpenMP (unoptimized) vs CUDA on identical work: OpenMP must be slower
/// and hungrier — the starting point of the paper.
#[test]
fn unoptimized_openmp_costs_more_than_cuda() {
    let body = |_m: &mut Module, b: &mut nzomp_ir::FuncBuilder, iv: Operand, p: &[Operand]| {
        let pa = b.gep(p[0], iv, 8);
        let va = b.load(Ty::F64, pa);
        let v = b.fmul(va, Operand::f64(1.5));
        let po = b.gep(p[1], iv, 8);
        b.store(Ty::F64, po, v);
    };

    let mut omp = Module::new("omp");
    spmd_kernel_for(
        &mut omp,
        RuntimeFlavor::Modern,
        "k",
        &[Ty::Ptr, Ty::Ptr, Ty::I64],
        |_b, p| p[2],
        body,
    );
    let omp = compile(omp, RuntimeFlavor::Modern);

    let mut cu = Module::new("cu");
    cuda::grid_stride_kernel(&mut cu, "k", &[Ty::Ptr, Ty::Ptr, Ty::I64], |_b, p| p[2], body);

    let run = |m: Module| {
        let mut dev = Device::load(m, DeviceConfig::default());
        let n = 4096i64;
        let a = vec![2.0f64; n as usize];
        let pa = dev.alloc_f64(&a);
        let po = dev.alloc(8 * n as u64);
        let metrics = dev
            .launch("k", Launch::new(8, 64), &[RtVal::P(pa), RtVal::P(po), RtVal::I(n)])
            .unwrap();
        assert_eq!(dev.read_f64(po, 1).unwrap()[0], 3.0);
        metrics
    };
    let m_omp = run(omp);
    let m_cu = run(cu);
    assert!(
        m_omp.cycles > m_cu.cycles,
        "OpenMP {} <= CUDA {} cycles",
        m_omp.cycles,
        m_cu.cycles
    );
    assert!(m_omp.smem_bytes > 0 && m_cu.smem_bytes == 0);
    assert!(m_omp.runtime_calls > 0 && m_cu.runtime_calls == 0);
}
