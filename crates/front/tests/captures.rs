//! Capture packing/unpacking and globalized-local lowering.

use nzomp_front::capture::{args_size, load_captures, store_captures};
use nzomp_front::{free_globalized, globalized_local, RuntimeFlavor};
use nzomp_ir::inst::Inst;
use nzomp_ir::{ExecMode, FuncBuilder, Module, Operand, Ty};
use nzomp_vgpu::device::Launch;
use nzomp_vgpu::{Device, DeviceConfig, RtVal};

/// Captured narrow ints survive the 8-byte slot round trip.
#[test]
fn capture_roundtrip_all_types() {
    let mut m = Module::new("cap");
    let mut b = FuncBuilder::new("k", vec![Ty::Ptr, Ty::I32, Ty::F64, Ty::I64], None);
    let caps = vec![
        (b.param(1), Ty::I32),
        (b.param(2), Ty::F64),
        (b.param(3), Ty::I64),
        (b.param(0), Ty::Ptr),
    ];
    let args = b.alloca(args_size(&caps));
    store_captures(&mut b, args, &caps);
    let vals = load_captures(&mut b, args, &[Ty::I32, Ty::F64, Ty::I64, Ty::Ptr]);
    // out[0] = i32 cap, out[1] = f64 bits, out[2] = i64 cap
    let out = vals[3];
    b.store(Ty::I64, out, vals[0]);
    let p1 = b.ptr_add(out, Operand::i64(8));
    b.store(Ty::F64, p1, vals[1]);
    let p2 = b.ptr_add(out, Operand::i64(16));
    b.store(Ty::I64, p2, vals[2]);
    b.ret(None);
    let k = m.add_function(b.finish());
    m.add_kernel(k, ExecMode::Spmd);
    nzomp_ir::verify_module(&m).unwrap();

    let mut dev = Device::load(m, DeviceConfig::default());
    let out = dev.alloc(24);
    dev.launch(
        "k",
        Launch::new(1, 1),
        &[
            RtVal::P(out),
            RtVal::I(-123),
            RtVal::F(2.75),
            RtVal::I(1 << 40),
        ],
    )
    .unwrap();
    assert_eq!(dev.read_i64(out, 1).unwrap()[0], -123);
    assert_eq!(dev.read_f64(out.add_bytes(8), 1).unwrap()[0], 2.75);
    assert_eq!(dev.read_i64(out.add_bytes(16), 1).unwrap()[0], 1 << 40);
}

/// `globalized_local` lowers to the right mechanism per flavor.
#[test]
fn globalized_local_lowering_per_flavor() {
    for (flavor, expect_call) in [
        (None, None),
        (Some(RuntimeFlavor::Modern), Some("__kmpc_alloc_shared")),
        (
            Some(RuntimeFlavor::Legacy),
            Some("__kmpc_data_sharing_push_stack_old"),
        ),
    ] {
        let mut m = Module::new("gl");
        let mut b = FuncBuilder::new("k", vec![], None);
        let p = globalized_local(&mut m, &mut b, flavor, 40);
        free_globalized(&mut m, &mut b, flavor, p, 40);
        b.ret(None);
        let k = m.add_function(b.finish());
        m.add_kernel(k, ExecMode::Spmd);
        let f = m.func(k);
        match expect_call {
            None => {
                assert!(f
                    .blocks
                    .iter()
                    .flat_map(|bb| &bb.insts)
                    .any(|&i| matches!(f.inst(i), Inst::Alloca { size: 40 })));
            }
            Some(name) => {
                let called = f.blocks.iter().flat_map(|bb| &bb.insts).any(|&i| {
                    matches!(f.inst(i), Inst::Call { callee: Operand::Func(t), .. }
                        if m.func(*t).name == name)
                });
                assert!(called, "{flavor:?} should call {name}");
            }
        }
    }
}

/// args_size never returns zero (empty capture lists still get a slot).
#[test]
fn args_size_minimum() {
    assert_eq!(args_size(&[]), 8);
    assert_eq!(args_size(&[(Operand::i64(1), Ty::I64)]), 8);
    assert_eq!(
        args_size(&[(Operand::i64(1), Ty::I64), (Operand::i64(2), Ty::I32)]),
        16
    );
}
