//! Lowering of the combined `#pragma omp target teams distribute parallel
//! for` directive — the common case the paper drives to near-zero overhead.

use nzomp_ir::module::FuncRef;
use nzomp_ir::{ExecMode, FuncBuilder, Module, Operand, Ty};
use nzomp_rt::{abi, RuntimeFlavor};

use crate::capture::{load_captures, store_captures};
use crate::{outlined_name, rt_fn, Capture};

/// Emit a combined-directive kernel named `name` with parameters `params`.
///
/// * `trip_count` computes the loop trip count from the kernel parameters
///   (it runs in the kernel entry, so passing a bound *by value* — the
///   GridMini fix of §VII — is just using the parameter directly).
/// * `body` receives `(module, builder, iv, params)` and emits one loop
///   iteration. `params` are the kernel parameters re-loaded from the
///   argument structure (by-reference aggregate semantics, §VII).
///
/// Modern flavor: `__kmpc_target_init(SPMD)` + one `noChunkImpl` runtime
/// call (Fig. 5). Legacy flavor: `distribute`/`for` bounds through memory
/// plus the trailing worksharing barrier.
pub fn spmd_kernel_for(
    m: &mut Module,
    flavor: RuntimeFlavor,
    name: &str,
    params: &[Ty],
    trip_count: impl FnOnce(&mut FuncBuilder, &[Operand]) -> Operand,
    body: impl FnOnce(&mut Module, &mut FuncBuilder, Operand, &[Operand]),
) -> FuncRef {
    // ---- outlined loop body ----------------------------------------------
    let body_name = outlined_name(m, name, "body");
    let mut bb = FuncBuilder::new(&body_name, vec![Ty::I64, Ty::Ptr], None);
    bb.set_linkage(nzomp_ir::Linkage::Internal);
    let iv = bb.param(0);
    let args = bb.param(1);
    let vals = load_captures(&mut bb, args, params);
    body(m, &mut bb, iv, &vals);
    bb.ret(None);
    let body_fn = m.add_function(bb.finish());

    // ---- kernel ------------------------------------------------------------
    let mut kb = FuncBuilder::new(name, params.to_vec(), None);
    let param_vals: Vec<Operand> = (0..params.len() as u32).map(Operand::Param).collect();
    let captures: Vec<Capture> = param_vals
        .iter()
        .copied()
        .zip(params.iter().copied())
        .collect();

    match flavor {
        RuntimeFlavor::Modern => {
            let init = rt_fn(m, abi::TARGET_INIT);
            let deinit = rt_fn(m, abi::TARGET_DEINIT);
            let loop_fn = rt_fn(m, abi::DIST_PAR_FOR_LOOP);
            kb.call(
                Operand::Func(init),
                vec![Operand::i64(abi::MODE_SPMD)],
                Some(Ty::I64),
            );
            let n = trip_count(&mut kb, &param_vals);
            // SPMD: the body runs on the capturing thread; locals suffice.
            let args = kb.alloca(crate::capture::args_size(&captures));
            store_captures(&mut kb, args, &captures);
            kb.call(
                Operand::Func(loop_fn),
                vec![Operand::Func(body_fn), args, n],
                None,
            );
            kb.call(
                Operand::Func(deinit),
                vec![Operand::i64(abi::MODE_SPMD)],
                None,
            );
            kb.ret(None);
        }
        RuntimeFlavor::Legacy => {
            let init = rt_fn(m, abi::OLD_TARGET_INIT);
            let deinit = rt_fn(m, abi::OLD_TARGET_DEINIT);
            let dist = rt_fn(m, abi::OLD_DISTRIBUTE_INIT);
            let fsi = rt_fn(m, abi::OLD_FOR_STATIC_INIT);
            let fini = rt_fn(m, abi::OLD_FOR_STATIC_FINI);
            kb.call(
                Operand::Func(init),
                vec![Operand::i64(abi::MODE_SPMD)],
                Some(Ty::I64),
            );
            let n = trip_count(&mut kb, &param_vals);
            // Memory-carried bounds (host-runtime-compatible API).
            let lb = kb.alloca(8);
            let ub = kb.alloca(8);
            let st = kb.alloca(8);
            kb.call(Operand::Func(dist), vec![lb, ub, st, n], None);
            let tlo = kb.load(Ty::I64, lb);
            let thi = kb.load(Ty::I64, ub);
            let span = kb.sub(thi, tlo);
            let lb2 = kb.alloca(8);
            let ub2 = kb.alloca(8);
            let st2 = kb.alloca(8);
            kb.call(Operand::Func(fsi), vec![lb2, ub2, st2, span], None);
            let lo_rel = kb.load(Ty::I64, lb2);
            let hi_rel = kb.load(Ty::I64, ub2);
            let lo = kb.add(tlo, lo_rel);
            let hi = kb.add(tlo, hi_rel);
            let args = kb.alloca(crate::capture::args_size(&captures));
            store_captures(&mut kb, args, &captures);
            nzomp_ir::builder::build_counted_loop(&mut kb, lo, hi, Operand::i64(1), |kb, i| {
                kb.call(Operand::Func(body_fn), vec![i, args], None);
            });
            kb.call(Operand::Func(fini), vec![], None);
            kb.call(
                Operand::Func(deinit),
                vec![Operand::i64(abi::MODE_SPMD)],
                None,
            );
            kb.ret(None);
        }
    }
    let k = m.add_function(kb.finish());
    m.add_kernel(k, ExecMode::Spmd);
    k
}
