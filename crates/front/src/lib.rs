//! `nzomp-front` — OpenMP directive lowering to nzomp IR.
//!
//! Plays the role LLVM/Clang plays in the paper (§II-B): it turns directive
//! structures into kernels that call the device runtime, outlines parallel
//! regions and loop bodies into functions, packs captured variables into
//! argument structures, and performs *globalization* of variables that must
//! be visible across threads (§IV-A2).
//!
//! Two lowering flavors exist, matching the two runtimes:
//!
//! * [`RuntimeFlavor::Modern`]: combined `distribute parallel for` loops
//!   lower to one callback-based runtime call (the Fig. 5 `noChunkImpl`
//!   scheme); parallel regions lower to `__kmpc_parallel_51`.
//! * [`RuntimeFlavor::Legacy`]: worksharing bounds travel through memory
//!   (`for_static_init`-style) and parallel regions drive the old state
//!   machine explicitly.
//!
//! The entry points mirror the directives the paper's proxy apps use:
//! [`spmd_kernel_for`] (`target teams distribute parallel for`),
//! [`generic_kernel`] (`target` with explicit `parallel` regions inside),
//! and [`cuda::grid_stride_kernel`] for the native-CUDA baselines.

#![deny(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod capture;
pub mod cuda;
pub mod generic;
pub mod spmd;

pub use generic::{generic_kernel, GenericCtx};
pub use nzomp_rt::RuntimeFlavor;
pub use spmd::spmd_kernel_for;

use nzomp_ir::module::FuncRef;
use nzomp_ir::{Module, Operand, Ty};

/// A captured variable: its value in the enclosing scope and its type.
pub type Capture = (Operand, Ty);

/// Monotonic counter for unique outlined-function names.
pub(crate) fn outlined_name(m: &Module, base: &str, kind: &str) -> String {
    let mut i = m.funcs.len();
    loop {
        let name = format!("{base}.omp_outlined.{kind}.{i}");
        if m.find_func(&name).is_none() {
            return name;
        }
        i += 1;
    }
}

/// Declare (or find) a runtime API function in the app module.
pub(crate) fn rt_fn(m: &mut Module, name: &str) -> FuncRef {
    nzomp_rt::declare_api(m, name)
}

/// Emit a call that carries a return type; the builder yields a value for
/// every such call, so the `Option` never comes back empty.
pub(crate) fn call_val(
    b: &mut nzomp_ir::FuncBuilder,
    f: Operand,
    args: Vec<Operand>,
    ty: Ty,
) -> Operand {
    b.call(f, args, Some(ty))
        .unwrap_or_else(|| unreachable!("call with a return type yields a value"))
}

/// Convenience: emit `omp_get_thread_num()` in user code.
pub fn omp_thread_num(m: &mut Module, b: &mut nzomp_ir::FuncBuilder) -> Operand {
    let f = rt_fn(m, nzomp_rt::abi::OMP_GET_THREAD_NUM);
    call_val(b, Operand::Func(f), vec![], Ty::I64)
}

/// Convenience: emit `omp_get_num_threads()` in user code.
pub fn omp_num_threads(m: &mut Module, b: &mut nzomp_ir::FuncBuilder) -> Operand {
    let f = rt_fn(m, nzomp_rt::abi::OMP_GET_NUM_THREADS);
    call_val(b, Operand::Func(f), vec![], Ty::I64)
}

/// Convenience: emit `omp_get_team_num()` in user code.
pub fn omp_team_num(m: &mut Module, b: &mut nzomp_ir::FuncBuilder) -> Operand {
    let f = rt_fn(m, nzomp_rt::abi::OMP_GET_TEAM_NUM);
    call_val(b, Operand::Func(f), vec![], Ty::I64)
}

/// A local buffer the OpenMP frontend must conservatively *globalize*
/// (§IV-A2): other threads may legally observe a thread's locals in OpenMP,
/// so the frontend allocates from shareable memory — the modern runtime's
/// shared stack, or the legacy data-sharing stack. CUDA code just uses the
/// thread-private stack. The globalization-elimination pass demotes the
/// modern form back to a stack slot when the buffer provably stays private;
/// the legacy form is opaque to it (part of why Old-RT kernels keep their
/// shared-memory footprint in Fig. 11).
pub fn globalized_local(
    m: &mut Module,
    b: &mut nzomp_ir::FuncBuilder,
    flavor: Option<RuntimeFlavor>,
    size: u64,
) -> Operand {
    match flavor {
        None => b.alloca(size),
        Some(RuntimeFlavor::Modern) => {
            let f = rt_fn(m, nzomp_rt::abi::ALLOC_SHARED);
            call_val(b, Operand::Func(f), vec![Operand::i64(size as i64)], Ty::Ptr)
        }
        Some(RuntimeFlavor::Legacy) => {
            let f = rt_fn(m, nzomp_rt::abi::OLD_DATA_SHARING_PUSH);
            call_val(b, Operand::Func(f), vec![Operand::i64(size as i64)], Ty::Ptr)
        }
    }
}

/// Release a [`globalized_local`] buffer.
pub fn free_globalized(
    m: &mut Module,
    b: &mut nzomp_ir::FuncBuilder,
    flavor: Option<RuntimeFlavor>,
    ptr: Operand,
    size: u64,
) {
    match flavor {
        None => {}
        Some(RuntimeFlavor::Modern) => {
            let f = rt_fn(m, nzomp_rt::abi::FREE_SHARED);
            b.call(Operand::Func(f), vec![ptr, Operand::i64(size as i64)], None);
        }
        Some(RuntimeFlavor::Legacy) => {
            let f = rt_fn(m, nzomp_rt::abi::OLD_DATA_SHARING_POP);
            b.call(Operand::Func(f), vec![ptr, Operand::i64(size as i64)], None);
        }
    }
}
