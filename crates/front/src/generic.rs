//! Lowering of generic-mode `target` regions: sequential main-thread code
//! with explicit `parallel` / `parallel for` regions inside, driven by the
//! worker state machine (paper §II-C).

use nzomp_ir::module::FuncRef;
use nzomp_ir::{ExecMode, FuncBuilder, Module, Operand, Ty};
use nzomp_rt::{abi, RuntimeFlavor};

use crate::capture::{args_size, load_captures, store_captures};
use crate::{outlined_name, rt_fn, Capture};

/// Context handed to the `main` closure of [`generic_kernel`]: sequential
/// main-thread code goes through [`GenericCtx::b`]; directives through the
/// `parallel*` methods.
pub struct GenericCtx<'m> {
    pub m: &'m mut Module,
    pub kb: FuncBuilder,
    flavor: RuntimeFlavor,
    kernel_name: String,
}

impl<'m> GenericCtx<'m> {
    /// The underlying builder (sequential main-thread code).
    pub fn b(&mut self) -> &mut FuncBuilder {
        &mut self.kb
    }

    /// `#pragma omp parallel` — outline `body`, globalize the captures
    /// (workers must see them — §IV-A2), fork through the runtime.
    ///
    /// Returns the outlined function for tests/inspection.
    pub fn parallel(
        &mut self,
        captures: &[Capture],
        body: impl FnOnce(&mut Module, &mut FuncBuilder, &[Operand]),
    ) -> FuncRef {
        let types: Vec<Ty> = captures.iter().map(|c| c.1).collect();
        let body_name = outlined_name(self.m, &self.kernel_name, "parallel");
        let mut bb = FuncBuilder::new(&body_name, vec![Ty::Ptr], None);
        bb.set_linkage(nzomp_ir::Linkage::Internal);
        let args = bb.param(0);
        let vals = load_captures(&mut bb, args, &types);
        body(self.m, &mut bb, &vals);
        bb.ret(None);
        let body_fn = self.m.add_function(bb.finish());

        let size = Operand::i64(args_size(captures) as i64);
        match self.flavor {
            RuntimeFlavor::Modern => {
                let alloc = rt_fn(self.m, abi::ALLOC_SHARED);
                let freesh = rt_fn(self.m, abi::FREE_SHARED);
                let par = rt_fn(self.m, abi::PARALLEL_51);
                let args = crate::call_val(&mut self.kb, Operand::Func(alloc), vec![size], Ty::Ptr);
                store_captures(&mut self.kb, args, captures);
                self.kb
                    .call(Operand::Func(par), vec![Operand::Func(body_fn), args], None);
                self.kb.call(Operand::Func(freesh), vec![args, size], None);
            }
            RuntimeFlavor::Legacy => {
                let push = rt_fn(self.m, abi::OLD_DATA_SHARING_PUSH);
                let pop = rt_fn(self.m, abi::OLD_DATA_SHARING_POP);
                let prep = rt_fn(self.m, abi::OLD_PARALLEL_PREPARE);
                let endp = rt_fn(self.m, abi::OLD_PARALLEL_END);
                let bar = rt_fn(self.m, abi::OLD_BARRIER);
                let args = crate::call_val(&mut self.kb, Operand::Func(push), vec![size], Ty::Ptr);
                store_captures(&mut self.kb, args, captures);
                self.kb
                    .call(Operand::Func(prep), vec![Operand::Func(body_fn), args], None);
                self.kb.call(Operand::Func(bar), vec![], None);
                self.kb
                    .call(Operand::Func(body_fn), vec![args], None);
                self.kb.call(Operand::Func(bar), vec![], None);
                self.kb.call(Operand::Func(endp), vec![], None);
                self.kb.call(Operand::Func(pop), vec![args, size], None);
            }
        }
        body_fn
    }

    /// `#pragma omp parallel for` — a parallel region whose body is a
    /// worksharing loop over `niters` iterations (an i64 value computed in
    /// the sequential part).
    pub fn parallel_for(
        &mut self,
        captures: &[Capture],
        niters: Operand,
        body: impl FnOnce(&mut Module, &mut FuncBuilder, Operand, &[Operand]),
    ) {
        let types: Vec<Ty> = captures.iter().map(|c| c.1).collect();
        // The loop body sees the original captures (niters travels as an
        // extra trailing capture to reach the region function).
        let loop_name = outlined_name(self.m, &self.kernel_name, "wsloop");
        let mut lb = FuncBuilder::new(&loop_name, vec![Ty::I64, Ty::Ptr], None);
        lb.set_linkage(nzomp_ir::Linkage::Internal);
        let iv = lb.param(0);
        let args = lb.param(1);
        let vals = load_captures(&mut lb, args, &types);
        body(self.m, &mut lb, iv, &vals);
        lb.ret(None);
        let loop_fn = self.m.add_function(lb.finish());

        let flavor = self.flavor;
        let mut region_caps: Vec<Capture> = captures.to_vec();
        region_caps.push((niters, Ty::I64));
        let n_idx = region_caps.len() - 1;
        self.parallel(&region_caps, |m, rb, vals| {
            let n = vals[n_idx];
            match flavor {
                RuntimeFlavor::Modern => {
                    let ws = rt_fn(m, abi::FOR_STATIC_LOOP);
                    // Rebuild the inner args struct from this region's view
                    // (same layout: the loop body reads the leading slots).
                    let inner: Vec<Capture> = vals[..n_idx]
                        .iter()
                        .copied()
                        .zip(types.iter().copied())
                        .collect();
                    let args = rb.alloca(args_size(&inner));
                    store_captures(rb, args, &inner);
                    rb.call(
                        Operand::Func(ws),
                        vec![Operand::Func(loop_fn), args, n, Operand::i64(0)],
                        None,
                    );
                }
                RuntimeFlavor::Legacy => {
                    let fsi = rt_fn(m, abi::OLD_FOR_STATIC_INIT);
                    let fini = rt_fn(m, abi::OLD_FOR_STATIC_FINI);
                    let inner: Vec<Capture> = vals[..n_idx]
                        .iter()
                        .copied()
                        .zip(types.iter().copied())
                        .collect();
                    let args = rb.alloca(args_size(&inner));
                    store_captures(rb, args, &inner);
                    let lo_p = rb.alloca(8);
                    let hi_p = rb.alloca(8);
                    let st_p = rb.alloca(8);
                    rb.call(Operand::Func(fsi), vec![lo_p, hi_p, st_p, n], None);
                    let lo = rb.load(Ty::I64, lo_p);
                    let hi = rb.load(Ty::I64, hi_p);
                    nzomp_ir::builder::build_counted_loop(rb, lo, hi, Operand::i64(1), |rb, i| {
                        rb.call(Operand::Func(loop_fn), vec![i, args], None);
                    });
                    rb.call(Operand::Func(fini), vec![], None);
                }
            }
        });
    }
}

/// Emit a generic-mode `target` kernel. The `main` closure builds the
/// sequential main-thread region through the [`GenericCtx`]; worker threads
/// run the state machine inside `__kmpc_target_init` and jump straight to
/// the exit when the kernel terminates.
pub fn generic_kernel(
    m: &mut Module,
    flavor: RuntimeFlavor,
    name: &str,
    params: &[Ty],
    main: impl FnOnce(&mut GenericCtx, &[Operand]),
) -> FuncRef {
    let init = rt_fn(
        m,
        match flavor {
            RuntimeFlavor::Modern => abi::TARGET_INIT,
            RuntimeFlavor::Legacy => abi::OLD_TARGET_INIT,
        },
    );
    let deinit = rt_fn(
        m,
        match flavor {
            RuntimeFlavor::Modern => abi::TARGET_DEINIT,
            RuntimeFlavor::Legacy => abi::OLD_TARGET_DEINIT,
        },
    );

    let mut kb = FuncBuilder::new(name, params.to_vec(), None);
    let ec = crate::call_val(
        &mut kb,
        Operand::Func(init),
        vec![Operand::i64(abi::MODE_GENERIC)],
        Ty::I64,
    );
    let is_worker = kb.icmp_ne(ec, Operand::i64(0));
    let main_bb = kb.new_block();
    let exit_bb = kb.new_block();
    kb.cond_br(is_worker, exit_bb, main_bb);
    kb.switch_to(main_bb);

    let param_vals: Vec<Operand> = (0..params.len() as u32).map(Operand::Param).collect();
    let mut ctx = GenericCtx {
        m,
        kb,
        flavor,
        kernel_name: name.to_string(),
    };
    main(&mut ctx, &param_vals);
    let GenericCtx { m, mut kb, .. } = ctx;

    kb.call(
        Operand::Func(deinit),
        vec![Operand::i64(abi::MODE_GENERIC)],
        None,
    );
    kb.br(exit_bb);
    kb.switch_to(exit_bb);
    kb.ret(None);
    let k = m.add_function(kb.finish());
    m.add_kernel(k, ExecMode::Generic);
    k
}
