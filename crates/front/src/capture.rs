//! Capture packing: outlined regions receive their captured variables
//! through an argument structure (one 8-byte slot per capture), exactly as
//! Clang lowers OpenMP outlining. Whether the structure lives in
//! thread-local or shareable memory is the globalization decision (§IV-A2):
//! regions executed by other threads (team-wide parallel) must globalize;
//! SPMD loop bodies run on the capturing thread and may use the local stack.

use nzomp_ir::{FuncBuilder, Operand, Ty};

use crate::Capture;

/// Store `captures` into the slots of `args` (8 bytes each).
pub fn store_captures(b: &mut FuncBuilder, args: Operand, captures: &[Capture]) {
    for (i, (val, ty)) in captures.iter().enumerate() {
        let slot = if i == 0 {
            args
        } else {
            b.ptr_add(args, Operand::i64((i * 8) as i64))
        };
        // All slots are 8 bytes; narrower ints are stored widened.
        let store_ty = widen(*ty);
        b.store(store_ty, slot, *val);
    }
}

/// Load captures back out of `args` inside the outlined function.
pub fn load_captures(b: &mut FuncBuilder, args: Operand, types: &[Ty]) -> Vec<Operand> {
    types
        .iter()
        .enumerate()
        .map(|(i, ty)| {
            let slot = if i == 0 {
                args
            } else {
                b.ptr_add(args, Operand::i64((i * 8) as i64))
            };
            b.load(widen(*ty), slot)
        })
        .collect()
}

/// Bytes needed for the args structure.
pub fn args_size(captures: &[Capture]) -> u64 {
    (captures.len().max(1) * 8) as u64
}

fn widen(ty: Ty) -> Ty {
    match ty {
        Ty::I1 | Ty::I8 | Ty::I32 | Ty::I64 => Ty::I64,
        other => other,
    }
}
