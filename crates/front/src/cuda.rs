//! Native CUDA-style baseline kernels: no OpenMP runtime, grid-stride loops
//! written directly against the hardware intrinsics. These are the "CUDA
//! (NVCC)" rows/bars of the paper's evaluation.

use nzomp_ir::module::FuncRef;
use nzomp_ir::{ExecMode, FuncBuilder, Module, Operand, Ty};

/// Emit a grid-stride kernel: parameters are passed by value (registers),
/// the idiomatic CUDA shape the paper contrasts with OpenMP's by-reference
/// aggregates (§VII).
pub fn grid_stride_kernel(
    m: &mut Module,
    name: &str,
    params: &[Ty],
    trip_count: impl FnOnce(&mut FuncBuilder, &[Operand]) -> Operand,
    body: impl FnOnce(&mut Module, &mut FuncBuilder, Operand, &[Operand]),
) -> FuncRef {
    let mut b = FuncBuilder::new(name, params.to_vec(), None);
    let param_vals: Vec<Operand> = (0..params.len() as u32).map(Operand::Param).collect();
    let n = trip_count(&mut b, &param_vals);
    let tid = b.thread_id();
    let bid = b.block_id();
    let bdim = b.block_dim();
    let gdim = b.grid_dim();
    let base = b.mul(bid, bdim);
    let start = b.add(base, tid);
    let stride = b.mul(bdim, gdim);

    let preheader = b.current_block();
    let header = b.new_block();
    let body_bb = b.new_block();
    let exit = b.new_block();
    b.br(header);
    b.switch_to(header);
    let iv = b.phi(Ty::I64, vec![(preheader, start)]);
    let cond = b.icmp_slt(iv, n);
    b.cond_br(cond, body_bb, exit);
    b.switch_to(body_bb);
    body(m, &mut b, iv, &param_vals);
    let next = b.add(iv, stride);
    let latch = b.current_block();
    b.br(header);
    b.phi_add_incoming(iv, latch, next);
    b.switch_to(exit);
    b.ret(None);

    let k = m.add_function(b.finish());
    m.add_kernel(k, ExecMode::Spmd);
    k
}

/// Emit a one-iteration-per-thread kernel (`i = bid*bdim+tid; if (i < n)`),
/// the shape CUDA codes use when the launch covers the iteration space —
/// the hand-written equivalent of the oversubscription assumptions (§III-F).
pub fn one_iter_kernel(
    m: &mut Module,
    name: &str,
    params: &[Ty],
    trip_count: impl FnOnce(&mut FuncBuilder, &[Operand]) -> Operand,
    body: impl FnOnce(&mut Module, &mut FuncBuilder, Operand, &[Operand]),
) -> FuncRef {
    let mut b = FuncBuilder::new(name, params.to_vec(), None);
    let param_vals: Vec<Operand> = (0..params.len() as u32).map(Operand::Param).collect();
    let n = trip_count(&mut b, &param_vals);
    let tid = b.thread_id();
    let bid = b.block_id();
    let bdim = b.block_dim();
    let base = b.mul(bid, bdim);
    let i = b.add(base, tid);
    let ok = b.icmp_slt(i, n);
    let body_bb = b.new_block();
    let exit = b.new_block();
    b.cond_br(ok, body_bb, exit);
    b.switch_to(body_bb);
    body(m, &mut b, i, &param_vals);
    b.br(exit);
    b.switch_to(exit);
    b.ret(None);
    let k = m.add_function(b.finish());
    m.add_kernel(k, ExecMode::Spmd);
    k
}
