//! Compiler-side benchmark: throughput of the link + openmp-opt pipeline
//! itself (not in the paper's evaluation, but the practical cost of the
//! co-designed optimizations — they run "multiple times at optimization
//! level O1 or higher", §IV).

use criterion::{criterion_group, criterion_main, Criterion};
use nzomp::BuildConfig;
use nzomp_proxies::{build_for_config, Proxy};

fn bench(c: &mut Criterion) {
    let proxies: [Box<dyn Proxy>; 2] = [
        Box::new(nzomp_proxies::xsbench::XSBench::small()),
        Box::new(nzomp_proxies::minifmm::MiniFmm::small()),
    ];
    let mut g = c.benchmark_group("compile_pipeline");
    g.sample_size(10);
    for p in &proxies {
        for cfg in [BuildConfig::NewRtNightly, BuildConfig::NewRtNoAssumptions] {
            let app = build_for_config(p.as_ref(), cfg);
            g.bench_function(format!("{} / {}", p.name(), cfg.label()), |b| {
                b.iter(|| {
                    let out = nzomp::compile(app.clone(), cfg).expect("pipeline compile");
                    criterion::black_box(out.module.live_inst_count())
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
