//! Fig. 13 — ablation benchmark: the full §IV pipeline vs. the pipeline
//! with one optimization disabled, on GridMini, XSBench and MiniFMM.

use criterion::{criterion_group, criterion_main, Criterion};
use nzomp::opt::{Ablation, PassOptions};
use nzomp::pipeline::compile_with;
use nzomp::BuildConfig;
use nzomp_bench::eval_device;
use nzomp_proxies::{build_for_config, Proxy};
use nzomp_vgpu::Device;

fn bench_variant(c: &mut Criterion, p: &dyn Proxy, label: &str, opts: PassOptions) {
    let cfg = BuildConfig::NewRtNoAssumptions;
    let out = compile_with(build_for_config(p, cfg), cfg, cfg.rt_config(), opts).expect("ablation compile");
    let mut dev = Device::load(out.module, eval_device());
    let prep = p.prepare(&mut dev);
    let mut g = c.benchmark_group(format!("fig13_{}", p.name()));
    g.sample_size(10);
    g.bench_function(label, |b| {
        b.iter(|| {
            let metrics = dev
                .launch(p.kernel_name(), prep.launch, &prep.args)
                .expect("launch");
            criterion::black_box(metrics.cycles)
        })
    });
    g.finish();
}

fn bench(c: &mut Criterion) {
    let proxies: [Box<dyn Proxy>; 3] = [
        Box::new(nzomp_proxies::gridmini::GridMini::small()),
        Box::new(nzomp_proxies::xsbench::XSBench::small()),
        Box::new(nzomp_proxies::minifmm::MiniFmm::small()),
    ];
    for p in &proxies {
        bench_variant(c, p.as_ref(), "full pipeline", PassOptions::full());
        for ab in Ablation::ALL {
            bench_variant(c, p.as_ref(), ab.label(), PassOptions::full_without(ab));
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
