//! Fig. 10a — XSBench kernel across build configurations.
//!
//! Criterion measures host wall time of the simulated kernel, which tracks
//! the dynamic instruction count; the simulated-cycle figures (the paper's
//! actual metric) come from `cargo run -p nzomp-bench --bin figures`.

use criterion::{criterion_group, criterion_main, Criterion};
use nzomp::BuildConfig;
use nzomp_bench::bench_proxy_config;
use nzomp_proxies::xsbench;

fn bench(c: &mut Criterion) {
    let proxy = xsbench::XSBench::small();
    for cfg in BuildConfig::ALL {
        bench_proxy_config(c, "fig10_xsbench", &proxy, cfg);
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
