//! Shared harness code for the figure regeneration binary and the
//! criterion benches.

use nzomp::report::{bar, fig11_header, relative_performance, ConfigRow};
use nzomp::BuildConfig;
use nzomp_proxies::{run_config, Proxy, RunError};
use nzomp_vgpu::DeviceConfig;

/// Device used for evaluation runs: release semantics (assumes unchecked —
/// they were either folded away or hold by contract).
pub fn eval_device() -> DeviceConfig {
    DeviceConfig {
        check_assumes: false,
        ..DeviceConfig::default()
    }
}

/// Criterion helper: benchmark `proxy` under `cfg` (compile once, then
/// measure launch+verify per iteration). The measured wall time tracks the
/// dynamic instruction count of the simulated kernel, so criterion deltas
/// between configurations mirror the simulated-cycle deltas the `figures`
/// binary reports.
pub fn bench_proxy_config(
    c: &mut criterion::Criterion,
    group: &str,
    proxy: &dyn Proxy,
    cfg: BuildConfig,
) {
    if cfg == BuildConfig::NewRt && !proxy.supports_oversubscription() {
        return; // the paper's "n/a" cell
    }
    let out = nzomp_proxies::compile_for_config(proxy, cfg).expect("bench compile");
    // Load + upload once; the kernels are idempotent, so re-launching on
    // the same device measures just the simulated execution.
    let mut dev = nzomp_vgpu::Device::load(out.module, eval_device());
    let prep = proxy.prepare(&mut dev);
    let mut g = c.benchmark_group(group.to_string());
    g.sample_size(10);
    g.bench_function(cfg.label(), |b| {
        b.iter(|| {
            let metrics = dev
                .launch(proxy.kernel_name(), prep.launch, &prep.args)
                .expect("bench launch");
            criterion::black_box(metrics.cycles)
        })
    });
    g.finish();
}

/// Run one proxy under every configuration; `None` entries are the paper's
/// "n/a" cells.
pub fn run_all_configs(proxy: &dyn Proxy) -> Vec<(BuildConfig, Option<ConfigRow>)> {
    BuildConfig::ALL
        .iter()
        .map(|&cfg| {
            let row = match run_config(proxy, cfg, &eval_device()) {
                Ok(r) => Some(ConfigRow {
                    config: cfg,
                    metrics: r.metrics,
                }),
                Err(RunError::NotApplicable) => None,
                Err(e) => panic!("{} under {cfg:?}: {e}", proxy.name()),
            };
            (cfg, row)
        })
        .collect()
}

/// Print a Fig. 10-style relative-performance block (bars are speedup over
/// Old RT (Nightly); higher is better).
pub fn print_fig10_block(proxy: &dyn Proxy, rows: &[(BuildConfig, Option<ConfigRow>)]) {
    println!("\n--- {} (relative performance vs Old RT (Nightly)) ---", proxy.name());
    let present: Vec<ConfigRow> = rows.iter().filter_map(|(_, r)| r.clone()).collect();
    let rel = relative_performance(&present, BuildConfig::OldRtNightly);
    for (cfg, row) in rows {
        let speedup = row
            .as_ref()
            .and_then(|_| rel.iter().find(|(c, _)| c == cfg))
            .and_then(|(_, v)| *v);
        match speedup {
            Some(v) => println!("  {:<26} {:>6.2}x  {}", cfg.label(), v, bar(v, 20.0)),
            None => println!("  {:<26}    n/a", cfg.label()),
        }
    }
}

/// Print a Fig. 11-style table block.
pub fn print_fig11_block(proxy: &dyn Proxy, rows: &[(BuildConfig, Option<ConfigRow>)]) {
    println!("\n--- {} ---", proxy.name());
    println!("  {}", fig11_header());
    for (cfg, row) in rows {
        match row {
            Some(r) => println!("  {}", r.fig11_row()),
            None => println!(
                "  {:<26} | {:>12} | {:>5} | {:>8}",
                cfg.label(),
                "n/a",
                "n/a",
                "n/a"
            ),
        }
    }
}
