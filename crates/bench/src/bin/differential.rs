//! Differential fault-injection campaign.
//!
//! Runs every proxy under a sweep of seeded [`FaultPlan`]s (≥ 50 plans in
//! total) and checks the robustness contract end to end:
//!
//! 1. **No process panics** — every faulted launch either completes or
//!    returns a typed `ExecError`; the interpreter never aborts.
//! 2. **Reproducibility** — re-running the same (proxy, seed) yields the
//!    exact same outcome: same output bits, or same trap with the same
//!    team/thread/function coordinates.
//! 3. **No residue** — after the campaign, a clean (plan-cleared) run of
//!    every proxy still verifies against its host reference.
//!
//! Exits nonzero on any violation; prints a trap census on success.
//!
//! ```text
//! cargo run --release -p nzomp-bench --bin differential [SEEDS]
//! ```

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;

use nzomp::BuildConfig;
use nzomp_proxies::{all_proxies, compile_for_config, quick_device, verify_output, Proxy};
use nzomp_vgpu::{Device, ExecError, FaultPlan};

/// Outcome of one faulted launch, in comparable form.
#[derive(Debug, Clone, PartialEq)]
enum Outcome {
    /// Launch and readback succeeded; output buffer as raw bits.
    Clean(Vec<u64>),
    /// A typed trap (from the launch or the host readback).
    Trap(ExecError),
}

fn run_one(proxy: &dyn Proxy, seed: u64) -> Outcome {
    let cfg = BuildConfig::NewRtNoAssumptions;
    let out = match compile_for_config(proxy, cfg) {
        Ok(out) => out,
        Err(e) => unreachable!("proxy {} failed to compile: {e}", proxy.name()),
    };
    let mut dev = Device::load(out.module, quick_device());
    let prep = proxy.prepare(&mut dev);
    dev.set_fault_plan(FaultPlan::from_seed(
        seed,
        prep.launch.teams,
        prep.launch.threads_per_team,
    ));
    match dev.launch(proxy.kernel_name(), prep.launch, &prep.args) {
        Err(e) => Outcome::Trap(e),
        Ok(_) => match dev.read_f64(prep.out_ptr, prep.expected.len()) {
            Err(e) => Outcome::Trap(e),
            Ok(v) => Outcome::Clean(v.iter().map(|x| x.to_bits()).collect()),
        },
    }
}

fn main() -> ExitCode {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(12);
    let proxies = all_proxies();
    let total = seeds as usize * proxies.len();
    println!(
        "differential campaign: {} proxies x {} seeds = {} faulted runs",
        proxies.len(),
        seeds,
        total
    );

    let mut panics = 0usize;
    let mut mismatches = 0usize;
    let mut clean = 0usize;
    let mut census: BTreeMap<String, usize> = BTreeMap::new();

    for seed in 1..=seeds {
        for proxy in &proxies {
            let name = proxy.name();
            let first = catch_unwind(AssertUnwindSafe(|| run_one(proxy.as_ref(), seed)));
            let second = catch_unwind(AssertUnwindSafe(|| run_one(proxy.as_ref(), seed)));
            match (first, second) {
                (Ok(a), Ok(b)) => {
                    if a != b {
                        mismatches += 1;
                        println!("FAIL {name} seed {seed}: not reproducible\n  first:  {a:?}\n  second: {b:?}");
                        continue;
                    }
                    match a {
                        Outcome::Clean(_) => clean += 1,
                        Outcome::Trap(e) => {
                            *census.entry(discriminant_name(&e).to_string()).or_default() += 1;
                        }
                    }
                }
                _ => {
                    panics += 1;
                    println!("FAIL {name} seed {seed}: process panic escaped the device");
                }
            }
        }
    }

    // No residue: a plan-free run of every proxy still verifies.
    let mut residue = 0usize;
    for proxy in &proxies {
        let out = match compile_for_config(proxy.as_ref(), BuildConfig::NewRtNoAssumptions) {
            Ok(out) => out,
            Err(e) => unreachable!("proxy {} failed to compile: {e}", proxy.name()),
        };
        let mut dev = Device::load(out.module, quick_device());
        let prep = proxy.prepare(&mut dev);
        let ok = dev
            .launch(proxy.kernel_name(), prep.launch, &prep.args)
            .is_ok()
            && verify_output(&dev, &prep).is_ok();
        if !ok {
            residue += 1;
            println!("FAIL {}: clean run no longer verifies", proxy.name());
        }
    }

    println!("\n{total} faulted runs: {clean} completed, {} trapped", total - clean);
    println!("trap census:");
    for (kind, n) in &census {
        println!("  {kind:<28} {n}");
    }
    println!(
        "panics: {panics}  reproducibility mismatches: {mismatches}  residue failures: {residue}"
    );

    if panics == 0 && mismatches == 0 && residue == 0 {
        println!("OK");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Census key: the trap kind without its payload (payloads vary per seed).
fn discriminant_name(e: &ExecError) -> &'static str {
    use nzomp_vgpu::TrapKind::*;
    match &e.kind {
        OutOfBounds => "OutOfBounds",
        NullDeref => "NullDeref",
        CrossThreadLocalAccess { .. } => "CrossThreadLocalAccess",
        BadIndirectCall => "BadIndirectCall",
        UnresolvedCall(_) => "UnresolvedCall",
        AssumeViolated => "AssumeViolated",
        AssertFail => "AssertFail",
        BarrierDeadlock => "BarrierDeadlock",
        FuelExhausted => "FuelExhausted",
        DivByZero => "DivByZero",
        OutOfMemory => "OutOfMemory",
        BadFree => "BadFree",
        BadLaunch(_) => "BadLaunch",
        MalformedIr(_) => "MalformedIr",
        DeviceLost => "DeviceLost",
        Stalled { .. } => "Stalled",
        MemcpyFault => "MemcpyFault",
        SanitizerViolation { .. } => "SanitizerViolation",
        // Internal signal of the parallel engine; intercepted inside
        // `Device::launch` and never observable here. Counted defensively.
        ParallelBailout => "ParallelBailout",
    }
}
