//! Worker-thread scaling of the parallel team engine.
//!
//! Runs a compute-bound RSBench instance with 64 teams at 1/2/4/8 host
//! worker threads and reports two tables:
//!
//! 1. **Measured wall clock** — real host time per launch. Only
//!    meaningful on a multi-core host; on a single-core container every
//!    worker count serializes onto the same CPU.
//! 2. **Modeled makespan** — the deterministic scalability model in the
//!    repo's native currency (simulated cycles): per-team cycle counts
//!    from [`KernelMetrics::team_cycles`] are greedily list-scheduled
//!    onto W workers within each occupancy wave, exactly mirroring the
//!    engine's next-free-worker team pickup. This is hardware-independent
//!    and identical on every machine.
//!
//! While sweeping, the harness also re-checks the determinism contract:
//! output bits, full metrics, and the global image must be identical at
//! every worker count. Exits nonzero on any divergence.
//!
//! ```text
//! cargo run --release -p nzomp-bench --bin parallel_scaling [REPS]
//! ```

use std::process::ExitCode;
use std::time::Instant;

use nzomp::report::{scaling_speedups, scaling_table, ScalingRow};
use nzomp::BuildConfig;
use nzomp_bench::eval_device;
use nzomp_proxies::rsbench::RSBench;
use nzomp_proxies::{compile_for_config, Proxy};
use nzomp_vgpu::{Device, KernelMetrics};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Compute-bound, 64 teams of 32 threads: enough independent work per
/// wave for every worker count in the sweep.
fn proxy() -> RSBench {
    RSBench {
        n_nuclides: 12,
        n_windows: 16,
        poles_per_window: 6,
        n_lookups: 64 * 32,
        threads_per_team: 32,
        seed: 0x5eed_0002,
    }
}

/// One sweep point: total wall for `reps` launches plus the artifacts the
/// determinism check compares.
struct Point {
    wall_ns: u128,
    out_bits: Vec<u64>,
    metrics: KernelMetrics,
    global: Vec<u8>,
}

fn run_point(module: &nzomp_ir::Module, p: &dyn Proxy, workers: usize, reps: u32) -> Point {
    let mut dev = Device::load(module.clone(), eval_device());
    dev.set_worker_threads(workers);
    let prep = p.prepare(&mut dev);
    // Warm-up launch: page in code paths and let lazy init settle.
    dev.launch(p.kernel_name(), prep.launch, &prep.args)
        .expect("warm-up launch");
    let start = Instant::now();
    let mut metrics = None;
    for _ in 0..reps {
        metrics = Some(
            dev.launch(p.kernel_name(), prep.launch, &prep.args)
                .expect("bench launch"),
        );
    }
    let wall_ns = start.elapsed().as_nanos();
    let out_bits = dev
        .read_f64(prep.out_ptr, prep.expected.len())
        .expect("readback")
        .iter()
        .map(|v| v.to_bits())
        .collect();
    Point {
        wall_ns,
        out_bits,
        metrics: metrics.expect("at least one rep"),
        global: dev.global_bytes().to_vec(),
    }
}

/// Greedy list schedule of per-team cycles onto `workers` within each
/// occupancy wave — the model of what the engine's next-free-worker
/// pickup achieves on an unloaded W-core host. Returns total cycles.
fn modeled_makespan(team_cycles: &[u64], wave_size: usize, workers: usize) -> u64 {
    let mut total = 0u64;
    for wave in team_cycles.chunks(wave_size.max(1)) {
        let mut load = vec![0u64; workers.max(1)];
        for &c in wave {
            // Next team goes to the worker that frees up first.
            let w = load
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| **l)
                .map(|(i, _)| i)
                .expect("workers >= 1");
            load[w] += c;
        }
        total += load.iter().copied().max().unwrap_or(0);
    }
    total
}

fn main() -> ExitCode {
    let reps: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5);
    let p = proxy();
    let cfg = BuildConfig::NewRtNoAssumptions;
    let module = compile_for_config(&p, cfg).expect("compile").module;

    println!(
        "parallel_scaling: rsbench x{} lookups, {} teams of {} threads, {reps} reps, {:?}",
        p.n_lookups,
        p.n_lookups as u32 / p.threads_per_team,
        p.threads_per_team,
        cfg,
    );

    let points: Vec<(usize, Point)> = WORKER_COUNTS
        .iter()
        .map(|&w| (w, run_point(&module, &p, w, reps)))
        .collect();

    // Determinism cross-check: every worker count must reproduce the
    // 1-worker run bit for bit.
    let (_, base) = &points[0];
    let mut ok = true;
    for (w, pt) in &points[1..] {
        if pt.out_bits != base.out_bits {
            eprintln!("FAIL: output bits diverge at {w} workers");
            ok = false;
        }
        if pt.metrics != base.metrics {
            eprintln!("FAIL: metrics diverge at {w} workers");
            ok = false;
        }
        if pt.global != base.global {
            eprintln!("FAIL: global memory diverges at {w} workers");
            ok = false;
        }
    }

    println!("\nmeasured wall clock ({} host cores):", std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
    let measured: Vec<ScalingRow> = points
        .iter()
        .map(|(w, pt)| ScalingRow { workers: *w, wall_ns: pt.wall_ns })
        .collect();
    print!("{}", scaling_table(&measured));

    let wave_size = eval_device().wave_size(base.metrics.teams_per_sm);
    println!(
        "\nmodeled makespan (simulated cycles, waves of {wave_size} teams):"
    );
    let modeled: Vec<ScalingRow> = WORKER_COUNTS
        .iter()
        .map(|&w| ScalingRow {
            workers: w,
            wall_ns: modeled_makespan(&base.metrics.team_cycles, wave_size, w) as u128,
        })
        .collect();
    print!("{}", scaling_table(&modeled));

    let modeled_at_8 = scaling_speedups(&modeled)
        .iter()
        .find(|(w, _)| *w == 8)
        .and_then(|(_, s)| *s)
        .unwrap_or(0.0);
    if modeled_at_8 < 2.0 {
        eprintln!("FAIL: modeled speedup at 8 workers is {modeled_at_8:.2}x (< 2x)");
        ok = false;
    }

    if ok {
        println!("\nOK: bit-identical at every worker count; modeled 8-worker speedup {modeled_at_8:.2}x");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
