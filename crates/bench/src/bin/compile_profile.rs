//! Compile-time profile: the per-pass `-ftime-report` analogue for the
//! pass-manager pipeline, plus the measured analysis-cache speedup.
//!
//! For every proxy × {baseline, full §IV} configuration the harness links
//! the proxy once, then optimizes fresh clones of the linked module with
//! the analysis cache enabled and disabled (`REPS` times each, best-of),
//! printing the per-pass profile (`nzomp::report::compile_stats_table`)
//! and the cached/uncached ratio. Exits nonzero if any variant fails to
//! compile or if optimized IR ever differs between the two cache modes —
//! caching must be invisible to the output.
//!
//! ```text
//! cargo run --release -p nzomp-bench --bin compile_profile [REPS]
//! ```

use std::process::ExitCode;
use std::time::{Duration, Instant};

use nzomp::pipeline::link_only;
use nzomp::report::{compile_stats_table, format_time};
use nzomp::BuildConfig;
use nzomp::opt::{optimize_module_with_caching, PassTimings};
use nzomp_proxies::{all_proxies, build_for_config};

/// Optimize a fresh clone `reps` times; return best wall time + a profile.
fn measure(
    linked: &nzomp_ir::Module,
    opts: &nzomp::opt::PassOptions,
    caching: bool,
    reps: u32,
) -> (Duration, PassTimings, nzomp_ir::Module) {
    let mut best = Duration::MAX;
    let mut best_timings = PassTimings::default();
    let mut out = linked.clone();
    for _ in 0..reps.max(1) {
        let mut m = linked.clone();
        let start = Instant::now();
        let (_remarks, timings) = optimize_module_with_caching(&mut m, opts, caching);
        let wall = start.elapsed();
        if wall < best {
            best = wall;
            best_timings = timings;
            out = m;
        }
    }
    (best, best_timings, out)
}

fn main() -> ExitCode {
    let reps: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5);
    let configs = [
        (BuildConfig::NewRtNightly, "baseline"),
        (BuildConfig::NewRtNoAssumptions, "full §IV"),
    ];
    let mut failed = false;
    let mut ratios: Vec<f64> = Vec::new();

    for p in all_proxies() {
        for (cfg, label) in configs {
            let app = build_for_config(p.as_ref(), cfg);
            let linked = match link_only(app, cfg, &cfg.rt_config()) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("{} [{label}]: link failed: {e}", p.name());
                    failed = true;
                    continue;
                }
            };
            let opts = cfg.pass_options();
            let (cached_wall, timings, cached_ir) = measure(&linked, &opts, true, reps);
            let (uncached_wall, _, uncached_ir) = measure(&linked, &opts, false, reps);
            if nzomp_ir::printer::print_module(&cached_ir)
                != nzomp_ir::printer::print_module(&uncached_ir)
            {
                eprintln!("{} [{label}]: cached and uncached IR differ!", p.name());
                failed = true;
            }
            println!("== {} [{label}] ==", p.name());
            print!("{}", compile_stats_table(&timings));
            let ratio = if cached_wall.as_nanos() > 0 {
                uncached_wall.as_nanos() as f64 / cached_wall.as_nanos() as f64
            } else {
                1.0
            };
            ratios.push(ratio);
            println!(
                "optimize wall: {} cached vs {} uncached -> {ratio:.2}x from analysis caching\n",
                format_time(cached_wall.as_secs_f64() * 1e3),
                format_time(uncached_wall.as_secs_f64() * 1e3),
            );
        }
    }

    if !ratios.is_empty() {
        let geo = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
        println!("geomean analysis-cache speedup over {} variants: {geo:.2}x", ratios.len());
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
