//! Structured differential fuzzing driver.
//!
//! Walks seeds from a fixed base, and for every seed pushes the generated
//! module through the whole contract:
//!
//! 1. **Round-trip** — the module verifies, and `parse(print(m)) == m`
//!    exactly in strict mode (every seed).
//! 2. **Coverage** — the module contains every instruction / terminator /
//!    operator / address-space / atomic variant (every seed).
//! 3. **Differential** — optimize under all nine pipeline variants (none,
//!    baseline, full, each Fig. 13 ablation) and execute at 1 and 8 worker
//!    threads with the sanitizer armed; outcomes must be bit-identical
//!    within a variant and output-identical across variants (every 4th
//!    seed — this is the expensive leg).
//!
//! Runs until the wall-clock budget expires, then reports. Any violation
//! prints the offending seed (re-run with that seed as BASE_SEED to
//! reproduce) and the process exits nonzero.
//!
//! ```text
//! cargo run --release -p nzomp-bench --bin ir_fuzz [SECONDS] [BASE_SEED]
//! ```
//!
//! Defaults: 30-second budget, base seed 0 — the CI smoke configuration.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use nzomp_integration::corpus::{all_variants, fuzz_one};
use nzomp_integration::gen::{all_labels, coverage_labels, generate};
use nzomp_ir::parser::parse_module_strict;
use nzomp_ir::printer::print_module;

fn main() -> ExitCode {
    let budget: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(30);
    let base: u64 = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0);
    let deadline = Instant::now() + Duration::from_secs(budget);
    let variants = all_variants();
    let want = all_labels();
    println!(
        "ir fuzz: budget {budget}s, base seed {base}, {} pipeline variants",
        variants.len()
    );

    let mut seed = base;
    let mut roundtrips = 0u64;
    let mut differentials = 0u64;
    let mut failures = 0u64;
    while Instant::now() < deadline {
        let g = generate(seed);
        if let Err(e) = nzomp_ir::verify_module(&g.module) {
            failures += 1;
            println!("FAIL seed {seed}: verify: {e}");
        } else {
            let text = print_module(&g.module);
            match parse_module_strict(&text) {
                Err(e) => {
                    failures += 1;
                    println!("FAIL seed {seed}: reparse: {e}");
                }
                Ok(back) if back != g.module => {
                    failures += 1;
                    println!("FAIL seed {seed}: parse(print(m)) != m");
                }
                Ok(_) => roundtrips += 1,
            }
            let got = coverage_labels(&g.module);
            let missing: Vec<_> = want.difference(&got).collect();
            if !missing.is_empty() {
                failures += 1;
                println!("FAIL seed {seed}: coverage gap: {missing:?}");
            }
            if seed % 4 == base % 4 {
                differentials += 1;
                if let Err(e) = fuzz_one(seed, &variants) {
                    failures += 1;
                    println!("FAIL seed {seed}: {e}");
                }
            }
        }
        seed += 1;
    }

    println!(
        "{} seeds fuzzed ({roundtrips} exact round-trips, {differentials} full \
         differential matrices), {failures} failures",
        seed - base
    );
    if failures == 0 {
        println!("OK");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
