//! Host-runtime offload overhead: the cost of going through `nzomp-host`
//! (present table, async streams, scheduler) instead of driving the
//! [`Device`] directly.
//!
//! For every proxy, one *rep* is a full target-region offload — upload
//! the `map(to:)` inputs, launch, read the output back:
//!
//! * **direct** — `Device::write_bytes` into pre-allocated buffers, then
//!   `Device::launch`, then `Device::read_f64`.
//! * **host** — `Host::enqueue_region` + `Host::sync` + `Host::buf_bits`:
//!   the same bytes and the same kernel, plus all the host-runtime
//!   bookkeeping (ref-counted mapping, stream ops, pool reuse with
//!   zero-fill, scheduler placement).
//!
//! The two paths execute the identical kernel on identically-laid-out
//! device memory (asserted: same output bits, same simulated cycles), so
//! the wall-clock delta *is* the host overhead. The paper's near-zero
//! overhead claim translates to: **host overhead <= 5% per proxy**. Each
//! round times a direct block and a host block back to back (`reps`
//! offloads each); the reported per-path cost is the **minimum across
//! rounds** — scheduler noise only ever adds time, so each path's
//! cleanest round is its best cost estimate, and taking the minimum per
//! path (not of the ratio) keeps the comparison unbiased. A proxy that
//! still lands over budget is re-measured from scratch (up to two
//! retries) and fails only if **every** attempt exceeds the budget: the
//! residual noise floor on a busy box is of the same order as the
//! budget, so a single reading over the line is far more likely to be a
//! noise spike than a regression — and a real regression fails all
//! three attempts.
//!
//! Two more contracts are checked while we are here:
//!
//! * **Compile-output caching** — re-registering the same module under the
//!   same build config is a cache hit, and repeated launches add no
//!   misses.
//! * **Multi-device scaling** — four identical regions round-robined over
//!   two vGPUs split the simulated cycles evenly: modeled speedup
//!   `sum(cycles) / max(per-device cycles) >= 1.9x`.
//!
//! ```text
//! cargo run --release -p nzomp-bench --bin offload_overhead [REPS]
//! ```

use std::process::ExitCode;
use std::time::Instant;

use nzomp::BuildConfig;
use nzomp_bench::eval_device;
use nzomp_host::{Host, RegionArg, SchedPolicy, StreamId};
use nzomp_proxies::{all_proxies, build_for_config, compile_for_config, Proxy};
use nzomp_vgpu::{Device, KernelMetrics};

const ROUNDS: usize = 7;

/// One measured path in one round: wall time plus the artifacts the
/// equivalence check compares.
struct Point {
    wall_ns: u128,
    out_bits: Vec<u64>,
    metrics: KernelMetrics,
}

/// Both paths measured for one proxy: each path's minimum per-rep wall
/// time across rounds, plus each path's artifacts.
struct Measured {
    direct_ns: f64,
    host_ns: f64,
    direct: Point,
    host: Point,
}

/// Long-lived state of the direct path: buffers allocated once, then
/// each rep re-uploads the inputs, launches, and reads the output back.
struct DirectRig {
    dev: Device,
    prep: nzomp_proxies::Prepared,
    uploads: Vec<(nzomp_vgpu::memory::DevPtr, Vec<u8>)>,
}

impl DirectRig {
    fn new(p: &dyn Proxy, cfg: BuildConfig) -> DirectRig {
        let out = compile_for_config(p, cfg).expect("compile");
        let mut dev = Device::load(out.module, eval_device());
        let hp = p.host_prepare();
        let prep = p.prepare(&mut dev);
        let uploads = hp
            .args
            .into_iter()
            .zip(prep.args.iter())
            .filter_map(|(arg, val)| match (arg, val) {
                (RegionArg::To(bytes), nzomp_vgpu::RtVal::P(ptr)) => Some((*ptr, bytes)),
                _ => None,
            })
            .collect();
        DirectRig { dev, prep, uploads }
    }

    fn round(&mut self, p: &dyn Proxy, reps: u32) -> Point {
        let start = Instant::now();
        let mut metrics = None;
        let mut out_bits = Vec::new();
        for _ in 0..reps {
            for (ptr, bytes) in &self.uploads {
                self.dev.write_bytes(*ptr, bytes).expect("upload");
            }
            metrics = Some(
                self.dev
                    .launch(p.kernel_name(), self.prep.launch, &self.prep.args)
                    .expect("direct launch"),
            );
            out_bits = self
                .dev
                .read_f64(self.prep.out_ptr, self.prep.expected.len())
                .expect("readback")
                .iter()
                .map(|v| v.to_bits())
                .collect();
        }
        Point {
            wall_ns: start.elapsed().as_nanos(),
            out_bits,
            metrics: metrics.expect("at least one rep"),
        }
    }
}

/// Long-lived state of the host path: one [`Host`], image registered
/// once, then each rep maps a full region through the present table,
/// drains the stream, and reads the host-side output buffer.
struct HostRig {
    host: Host,
    img: nzomp_host::ImageId,
    hp: nzomp_proxies::HostPrepared,
    streams: Vec<StreamId>,
}

impl HostRig {
    fn new(p: &dyn Proxy, cfg: BuildConfig) -> HostRig {
        let mut host = Host::new(eval_device(), 1);
        let img = host
            .load_image(build_for_config(p, cfg), cfg)
            .expect("load image");
        let hp = p.host_prepare();
        let streams = vec![host.stream()];
        HostRig { host, img, hp, streams }
    }

    fn round(&mut self, p: &dyn Proxy, reps: u32) -> Point {
        // Clone the per-rep argument lists outside the timed window; the
        // direct path reads its upload bytes from long-lived vectors too.
        let arg_sets: Vec<Vec<RegionArg>> = (0..reps).map(|_| self.hp.args.clone()).collect();
        let start = Instant::now();
        let mut metrics = None;
        let mut out_bits = Vec::new();
        for args in arg_sets {
            let region = self
                .host
                .enqueue_region(&self.streams, self.img, p.kernel_name(), self.hp.launch, args)
                .expect("enqueue region");
            self.host.sync().expect("sync");
            metrics = Some(self.host.take_metrics(region.ticket).expect("metrics"));
            let buf = region.bufs[self.hp.out_arg].expect("output buffer");
            out_bits = self.host.buf_bits(buf).expect("host readback");
        }
        Point {
            wall_ns: start.elapsed().as_nanos(),
            out_bits,
            metrics: metrics.expect("at least one rep"),
        }
    }
}

/// Measure both paths **interleaved**: each round times a direct block
/// and a host block back to back, and each path's reported cost is its
/// *minimum* per-rep wall time across rounds. Wall-clock noise on a
/// shared box (frequency scaling, a neighbor stealing the core) can
/// only inflate a block, never deflate it, so the cleanest round is
/// the best estimate of each path's true cost; taking the minimum per
/// path — not of the host/direct ratio — keeps the comparison
/// unbiased (min-of-ratio systematically flattered the host path, and
/// timing the paths in separate sweeps let minutes-scale drift swing
/// the estimate by double digits).
fn measure(p: &dyn Proxy, cfg: BuildConfig, reps: u32) -> Measured {
    let mut direct_rig = DirectRig::new(p, cfg);
    let mut host_rig = HostRig::new(p, cfg);
    // Warm-up round for both paths: page in code, settle lazy init.
    let _ = direct_rig.round(p, 1);
    let _ = host_rig.round(p, 1);
    let mut best: Option<Measured> = None;
    for _ in 0..ROUNDS {
        let d = direct_rig.round(p, reps);
        let h = host_rig.round(p, reps);
        let (d_ns, h_ns) = (d.wall_ns as f64 / reps as f64, h.wall_ns as f64 / reps as f64);
        match &mut best {
            None => {
                best = Some(Measured { direct_ns: d_ns, host_ns: h_ns, direct: d, host: h })
            }
            Some(m) => {
                if d_ns < m.direct_ns {
                    m.direct_ns = d_ns;
                    m.direct = d;
                }
                if h_ns < m.host_ns {
                    m.host_ns = h_ns;
                    m.host = h;
                }
            }
        }
    }
    best.unwrap_or_else(|| unreachable!("ROUNDS > 0"))
}

/// Compile-cache contract: same module + config is a hit, repeated
/// launches add no misses.
fn check_compile_cache(p: &dyn Proxy, cfg: BuildConfig) -> bool {
    let mut host = Host::new(eval_device(), 1);
    let a = host.load_image(build_for_config(p, cfg), cfg).expect("image");
    let b = host.load_image(build_for_config(p, cfg), cfg).expect("image");
    let mut ok = true;
    if a != b || host.compile_stats() != (1, 1) {
        eprintln!(
            "FAIL: compile cache missed on identical module (stats {:?})",
            host.compile_stats()
        );
        ok = false;
    }
    let hp = p.host_prepare();
    let streams = [host.stream()];
    for _ in 0..8 {
        let region = host
            .enqueue_region(&streams, a, p.kernel_name(), hp.launch, hp.args.clone())
            .expect("enqueue");
        host.sync().expect("sync");
        host.take_metrics(region.ticket).expect("metrics");
    }
    if host.compile_stats() != (1, 1) {
        eprintln!(
            "FAIL: repeated launches changed compile stats to {:?}",
            host.compile_stats()
        );
        ok = false;
    }
    ok
}

/// Multi-device contract: four identical regions over two vGPUs split the
/// simulated cycles ~evenly. Returns the modeled speedup.
fn modeled_two_device_speedup(p: &dyn Proxy, cfg: BuildConfig) -> f64 {
    let mut host = Host::new(eval_device(), 2);
    host.set_policy(SchedPolicy::RoundRobin);
    let img = host.load_image(build_for_config(p, cfg), cfg).expect("image");
    let hp = p.host_prepare();
    let streams = [host.stream()];
    for _ in 0..4 {
        let region = host
            .enqueue_region(&streams, img, p.kernel_name(), hp.launch, hp.args.clone())
            .expect("enqueue");
        host.sync().expect("sync");
        host.take_metrics(region.ticket).expect("metrics");
    }
    let per_dev = [host.device_cycles(0), host.device_cycles(1)];
    let total: u64 = per_dev.iter().sum();
    let makespan = per_dev.iter().copied().max().unwrap_or(1).max(1);
    total as f64 / makespan as f64
}

fn main() -> ExitCode {
    let reps: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(10);
    let cfg = BuildConfig::NewRtNoAssumptions;
    let proxies = all_proxies();

    println!(
        "offload_overhead: {} proxies, {reps} offload reps/round, per-path min over {ROUNDS} rounds, {:?}",
        proxies.len(),
        cfg
    );
    println!(
        "\n  {:<10} {:>14} {:>14} {:>10}",
        "proxy", "direct ns/rep", "host ns/rep", "overhead"
    );

    let mut ok = true;
    let mut worst = f64::MIN;
    for p in &proxies {
        // An over-budget reading is re-measured from scratch up to twice:
        // the noise floor is of the same order as the budget, so one spike
        // is almost certainly noise, while a real regression keeps failing.
        let mut m = measure(p.as_ref(), cfg, reps);
        let mut attempts = 1;
        while m.host_ns / m.direct_ns - 1.0 > 0.05 && attempts < 3 {
            attempts += 1;
            m = measure(p.as_ref(), cfg, reps);
        }
        if m.host.out_bits != m.direct.out_bits {
            eprintln!("FAIL: {} output bits diverge through the host path", p.name());
            ok = false;
        }
        if m.host.metrics != m.direct.metrics {
            eprintln!("FAIL: {} kernel metrics diverge through the host path", p.name());
            ok = false;
        }
        let (d, h) = (m.direct_ns, m.host_ns);
        let overhead = h / d - 1.0;
        worst = worst.max(overhead);
        println!(
            "  {:<10} {:>14.0} {:>14.0} {:>9.2}%{}",
            p.name(),
            d,
            h,
            overhead * 100.0,
            if attempts > 1 { format!("   (attempt {attempts})") } else { String::new() }
        );
        if overhead > 0.05 {
            eprintln!(
                "FAIL: {} host overhead {:.2}% exceeds the 5% budget on all {attempts} attempts",
                p.name(),
                overhead * 100.0
            );
            ok = false;
        }
    }

    let cache_proxy = &proxies[0];
    ok &= check_compile_cache(cache_proxy.as_ref(), cfg);

    let speedup = modeled_two_device_speedup(cache_proxy.as_ref(), cfg);
    println!("\nmodeled 2-device speedup (4 regions, round-robin): {speedup:.2}x");
    if speedup < 1.9 {
        eprintln!("FAIL: modeled 2-device speedup {speedup:.2}x (< 1.9x)");
        ok = false;
    }

    if ok {
        println!(
            "\nOK: bit-identical through the host path; worst overhead {:.2}%; \
             compile cache hit on re-registration; 2-device speedup {speedup:.2}x",
            worst * 100.0
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
