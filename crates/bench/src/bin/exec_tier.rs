//! Execution-tier throughput: interpreter vs. register-allocated bytecode.
//!
//! Three single-worker workloads, once per tier:
//!
//! * **rsbench** — the compute proxy (float math + table lookups); shared
//!   backend costs (memory path, IEEE arithmetic) bound the tier gap from
//!   below, so this is the *conservative* end of the speedup range;
//! * **alu-loop** — a dispatch-bound integer loop: four independent
//!   LCG+xorshift accumulators (an unrolled-reduction shape), five
//!   loop-carried phis per back edge, one store per thread at the end.
//!   Per-op dispatch plus the interpreter's per-jump phi work — a linear
//!   incoming scan and a fresh move-buffer allocation per taken branch —
//!   dominate, and both are exactly what the bytecode tier pre-resolves,
//!   so this is the *kernel throughput* end of the range and the number
//!   the two-tier engine is sized against (≥5×);
//! * **branchy** — one accumulator with a data-dependent branch each
//!   round (a divergent-kernel shape): the interpreter's branch-target
//!   resolution cost, with short phi-less blocks in between.
//!
//! Each workload reports an [`ExecTierRow`] table (wall clock, instruction
//! and dispatch counters, speedup over the interpreter). While sweeping,
//! the harness re-checks the tier bit-identity contract: output bits, the
//! full [`KernelMetrics`] (including the per-step `dispatched` counter,
//! i.e. fuel), and the entire global-memory image must be identical across
//! tiers. Exits nonzero on any divergence.
//!
//! ```text
//! cargo run --release -p nzomp-bench --bin exec_tier [REPS]
//! ```

use std::process::ExitCode;
use std::time::Instant;

use nzomp::report::{exec_tier_speedups, exec_tier_table, ExecTierRow};
use nzomp::BuildConfig;
use nzomp_bench::eval_device;
use nzomp_ir::inst::BinOp;
use nzomp_ir::{ExecMode, FuncBuilder, Module, Operand, Ty};
use nzomp_proxies::rsbench::RSBench;
use nzomp_proxies::{compile_for_config, Proxy};
use nzomp_vgpu::device::Launch;
use nzomp_vgpu::{Device, ExecTier, KernelMetrics, RtVal};

const TIERS: [(ExecTier, &str); 2] =
    [(ExecTier::Interp, "interp"), (ExecTier::Bytecode, "bytecode")];

const TEAMS: u32 = 64;
const THREADS: u32 = 32;
/// Iterations of the alu-loop body per thread (7 dispatched ops each).
const ALU_ITERS: i64 = 600;
/// Iterations of the branchy body per thread (~11 dispatched ops each).
const BRANCHY_ITERS: i64 = 400;

/// Compute-bound, 64 teams of 32 threads — the same instance the
/// parallel-scaling bench uses, so the two sweeps are comparable.
fn proxy() -> RSBench {
    RSBench {
        n_nuclides: 12,
        n_windows: 16,
        poles_per_window: 6,
        n_lookups: (TEAMS * THREADS) as usize,
        threads_per_team: THREADS,
        seed: 0x5eed_0002,
    }
}

/// The dispatch-bound workload: each thread mixes its global id through
/// `ALU_ITERS` rounds of an LCG + xorshift (integer ALU ops and a
/// conditional branch — no memory traffic inside the loop) and stores the
/// final value to its slot of the output buffer. Branch-dense on purpose
/// (one taken, phi-carrying branch per seven ops): the interpreter's
/// per-jump work — target lookup, a linear phi-incoming scan, and a fresh
/// move-buffer allocation — is its single largest per-step cost, and
/// precisely what bytecode's pre-resolved edges elide.
fn alu_module() -> Module {
    let mut m = Module::new("alu");
    let mut b = FuncBuilder::new("alu", vec![Ty::Ptr], None);
    let entry = b.current_block();
    let out = b.param(0);
    let tid = b.thread_id();
    let team = b.block_id();
    let bdim = b.block_dim();
    let scaled = b.mul(team, bdim);
    let gid = b.add(scaled, tid);
    let body = b.new_block();
    let exit = b.new_block();
    b.br(body);
    b.switch_to(body);
    let i = b.phi(Ty::I64, vec![(entry, Operand::i64(0))]);
    let acc = b.phi(Ty::I64, vec![(entry, gid)]);
    let mixed = b.mul(acc, Operand::i64(6364136223846793005));
    let mixed = b.add(mixed, Operand::i64(1442695040888963407));
    let shifted = b.bin(BinOp::LShr, Ty::I64, mixed, Operand::i64(17));
    let acc2 = b.bin(BinOp::Xor, Ty::I64, mixed, shifted);
    let i2 = b.add(i, Operand::i64(1));
    b.phi_add_incoming(i, body, i2);
    b.phi_add_incoming(acc, body, acc2);
    let more = b.icmp_slt(i2, Operand::i64(ALU_ITERS));
    b.cond_br(more, body, exit);
    b.switch_to(exit);
    let slot = b.gep(out, gid, 8);
    b.store(Ty::I64, slot, acc2);
    b.ret(None);
    let f = m.add_function(b.finish());
    m.add_kernel(f, ExecMode::Spmd);
    if let Err(e) = nzomp_ir::verify_module(&m) {
        unreachable!("alu workload must verify: {e}");
    }
    m
}

/// The control-flow workload: the same LCG mixer, but each round takes a
/// data-dependent branch on the mixed value's parity — the two sides
/// xorshift by different amounts and re-merge through a phi. Three taken
/// branches per round (two of them phi-carrying), the shape where the
/// interpreter's per-jump work (target lookup, phi scan, a fresh move
/// buffer) dominates and bytecode's pre-resolved edges shine.
fn branchy_module() -> Module {
    let mut m = Module::new("branchy");
    let mut b = FuncBuilder::new("branchy", vec![Ty::Ptr], None);
    let entry = b.current_block();
    let out = b.param(0);
    let tid = b.thread_id();
    let team = b.block_id();
    let bdim = b.block_dim();
    let scaled = b.mul(team, bdim);
    let gid = b.add(scaled, tid);
    let head = b.new_block();
    let even = b.new_block();
    let odd = b.new_block();
    let join = b.new_block();
    let exit = b.new_block();
    b.br(head);
    b.switch_to(head);
    let i = b.phi(Ty::I64, vec![(entry, Operand::i64(0))]);
    let acc = b.phi(Ty::I64, vec![(entry, gid)]);
    let mixed = b.mul(acc, Operand::i64(6364136223846793005));
    let mixed = b.add(mixed, Operand::i64(1442695040888963407));
    let parity = b.bin(BinOp::And, Ty::I64, mixed, Operand::i64(1));
    let is_even = b.icmp_eq(parity, Operand::i64(0));
    b.cond_br(is_even, even, odd);
    b.switch_to(even);
    let es = b.bin(BinOp::LShr, Ty::I64, mixed, Operand::i64(17));
    let ev = b.bin(BinOp::Xor, Ty::I64, mixed, es);
    b.br(join);
    b.switch_to(odd);
    let os = b.bin(BinOp::LShr, Ty::I64, mixed, Operand::i64(13));
    let ov = b.bin(BinOp::Xor, Ty::I64, mixed, os);
    b.br(join);
    b.switch_to(join);
    let acc2 = b.phi(Ty::I64, vec![(even, ev), (odd, ov)]);
    let i2 = b.add(i, Operand::i64(1));
    b.phi_add_incoming(i, join, i2);
    b.phi_add_incoming(acc, join, acc2);
    let more = b.icmp_slt(i2, Operand::i64(BRANCHY_ITERS));
    b.cond_br(more, head, exit);
    b.switch_to(exit);
    let slot = b.gep(out, gid, 8);
    b.store(Ty::I64, slot, acc2);
    b.ret(None);
    let f = m.add_function(b.finish());
    m.add_kernel(f, ExecMode::Spmd);
    if let Err(e) = nzomp_ir::verify_module(&m) {
        unreachable!("branchy workload must verify: {e}");
    }
    m
}

/// One sweep point: median launch wall time plus the artifacts the
/// bit-identity check compares.
struct Point {
    wall_ns: u128,
    out_bits: Vec<u64>,
    metrics: KernelMetrics,
    global: Vec<u8>,
}

/// A workload instance pinned to one tier, ready to launch repeatedly.
struct Prepared {
    dev: Device,
    kernel: String,
    launch: Launch,
    args: Vec<RtVal>,
    out: nzomp_vgpu::DevPtr,
    out_len: usize,
}

/// Warm up each tier once (pages in code paths; on the bytecode tier
/// performs the one-time lowering), then time launches individually and
/// keep each tier's median. Reps are *interleaved* across tiers — one
/// interp launch, one bytecode launch, repeat — so both tiers sample the
/// same background-load profile; back-to-back sweeps on a shared host let
/// load drift between them bias the ratio.
fn time_tiers(mut benches: Vec<(&'static str, Prepared)>, reps: u32) -> Vec<(&'static str, Point)> {
    for (_, b) in benches.iter_mut() {
        b.dev
            .launch(&b.kernel, b.launch, &b.args)
            .expect("warm-up launch");
    }
    let mut laps: Vec<Vec<u128>> = benches
        .iter()
        .map(|_| Vec::with_capacity(reps as usize))
        .collect();
    let mut metrics: Vec<Option<KernelMetrics>> = benches.iter().map(|_| None).collect();
    for _ in 0..reps {
        for (bi, (_, b)) in benches.iter_mut().enumerate() {
            let start = Instant::now();
            metrics[bi] = Some(b.dev.launch(&b.kernel, b.launch, &b.args).expect("bench launch"));
            laps[bi].push(start.elapsed().as_nanos());
        }
    }
    benches
        .into_iter()
        .enumerate()
        .map(|(bi, (name, b))| {
            laps[bi].sort_unstable();
            let out_bits = b
                .dev
                .read_f64(b.out, b.out_len)
                .expect("readback")
                .iter()
                .map(|v| v.to_bits())
                .collect();
            let point = Point {
                wall_ns: laps[bi][laps[bi].len() / 2],
                out_bits,
                metrics: metrics[bi].take().expect("at least one rep"),
                global: b.dev.global_bytes().to_vec(),
            };
            (name, point)
        })
        .collect()
}

fn prepare_rsbench(module: &nzomp_ir::Module, p: &dyn Proxy, tier: ExecTier) -> Prepared {
    let mut dev = Device::load(module.clone(), eval_device());
    dev.set_worker_threads(1);
    dev.set_exec_tier(tier);
    let prep = p.prepare(&mut dev);
    Prepared {
        dev,
        kernel: p.kernel_name().to_string(),
        launch: prep.launch,
        args: prep.args,
        out: prep.out_ptr,
        out_len: prep.expected.len(),
    }
}

fn prepare_kernel(module: &Module, kernel: &str, tier: ExecTier) -> Prepared {
    let mut dev = Device::load(module.clone(), eval_device());
    dev.set_worker_threads(1);
    dev.set_exec_tier(tier);
    let n = (TEAMS * THREADS) as usize;
    let buf = dev.alloc(n as u64 * 8);
    Prepared {
        dev,
        kernel: kernel.to_string(),
        launch: Launch::new(TEAMS, THREADS),
        args: vec![RtVal::P(buf)],
        out: buf,
        out_len: n,
    }
}

/// Bit-identity cross-check plus the printed table; returns
/// `(identical, bytecode speedup)`.
fn report(label: &str, points: &[(&str, Point)]) -> (bool, f64) {
    let (_, base) = &points[0];
    let mut ok = true;
    for (name, pt) in &points[1..] {
        if pt.out_bits != base.out_bits {
            eprintln!("FAIL[{label}]: output bits diverge on the {name} tier");
            ok = false;
        }
        if pt.metrics != base.metrics {
            eprintln!("FAIL[{label}]: metrics diverge on the {name} tier");
            ok = false;
        }
        if pt.global != base.global {
            eprintln!("FAIL[{label}]: global memory diverges on the {name} tier");
            ok = false;
        }
    }

    println!("\n{label}: single-thread throughput by tier");
    let rows: Vec<ExecTierRow> = points
        .iter()
        .map(|(name, pt)| ExecTierRow {
            tier: (*name).to_string(),
            wall_ns: pt.wall_ns,
            instructions: pt.metrics.instructions,
            dispatched: pt.metrics.dispatched,
        })
        .collect();
    print!("{}", exec_tier_table(&rows));

    let speedup = exec_tier_speedups(&rows)
        .iter()
        .find(|(t, _)| t == "bytecode")
        .and_then(|(_, s)| *s)
        .unwrap_or(0.0);
    (ok, speedup)
}

fn main() -> ExitCode {
    let reps: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5);
    let p = proxy();
    let cfg = BuildConfig::NewRtNoAssumptions;
    let module = compile_for_config(&p, cfg).expect("compile").module;
    let alu = alu_module();
    let branchy = branchy_module();

    println!(
        "exec_tier: {TEAMS} teams of {THREADS} threads, {reps} reps, 1 worker\n\
         workloads: rsbench x{} lookups ({cfg:?}), alu-loop x{ALU_ITERS} iters, \
         branchy x{BRANCHY_ITERS} iters",
        p.n_lookups,
    );

    let rs_points = time_tiers(
        TIERS
            .iter()
            .map(|&(tier, name)| (name, prepare_rsbench(&module, &p, tier)))
            .collect(),
        reps,
    );
    let alu_points = time_tiers(
        TIERS
            .iter()
            .map(|&(tier, name)| (name, prepare_kernel(&alu, "alu", tier)))
            .collect(),
        reps,
    );
    let br_points = time_tiers(
        TIERS
            .iter()
            .map(|&(tier, name)| (name, prepare_kernel(&branchy, "branchy", tier)))
            .collect(),
        reps,
    );

    let (rs_ok, rs_speedup) = report("rsbench", &rs_points);
    let (alu_ok, alu_speedup) = report("alu-loop", &alu_points);
    let (br_ok, br_speedup) = report("branchy", &br_points);

    if rs_ok && alu_ok && br_ok {
        println!(
            "\nOK: bit-identical across tiers; bytecode speedup {rs_speedup:.2}x (rsbench), \
             {alu_speedup:.2}x (alu-loop), {br_speedup:.2}x (branchy)"
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
