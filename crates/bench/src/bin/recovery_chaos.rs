//! Chaos-recovery harness: seeded device-fault campaigns against the
//! host runtime with recovery armed, plus the recovery-disabled
//! overhead check.
//!
//! Two claims are enforced:
//!
//! * **Bit-identical recovery** — for every proxy × fleet size ×
//!   scheduling policy × seed, a run whose devices are armed with a
//!   [`FaultPlan::device_campaign`] (lost devices, stalled launches,
//!   transient memcpy failures) must end with exactly the clean run's
//!   observables: output bits, kernel metrics, device global-memory
//!   image, sanitizer verdict. Recovery repairs; it never approximates.
//! * **Recovery-disabled overhead** — with no [`RecoveryPolicy`]
//!   installed, the host dispatch is the same single-attempt path the
//!   runtime had before recovery existed (one `recovery.is_some()`
//!   branch per device op); arming an *idle* policy adds only journal
//!   bookkeeping. Both are measured per the `offload_overhead`
//!   discipline — interleaved rounds, per-path minimum, up to two
//!   re-measures — and the idle-policy cost over the disabled path must
//!   stay under 5% (target ≤1%; the hard gate leaves noise headroom on
//!   shared boxes).
//!
//! ```text
//! cargo run --release -p nzomp-bench --bin recovery_chaos [SEEDS_PER_CELL]
//! ```
//!
//! `SEEDS_PER_CELL` defaults to 4 (120 campaigns); CI smoke passes 1.

use std::process::ExitCode;
use std::time::Instant;

use nzomp::report::recovery_table;
use nzomp::{BuildConfig, RecoveryRow};
use nzomp_bench::eval_device;
use nzomp_host::{Host, RecoveryMetrics, RecoveryPolicy, SchedPolicy, StreamId};
use nzomp_proxies::{all_proxies, build_for_config, compile_for_config, Proxy};
use nzomp_vgpu::{Device, FaultPlan, KernelMetrics};

const ROUNDS: usize = 5;

/// Everything a campaign must reproduce exactly.
#[derive(PartialEq)]
struct Observed {
    out_bits: Vec<u64>,
    metrics: KernelMetrics,
    global: Vec<u8>,
    san_counts: (u64, u64),
}

/// Mix a device index into a campaign seed so every fleet member runs a
/// distinct (but reproducible) fault schedule.
fn device_seed(seed: u64, dev: usize) -> u64 {
    seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(dev as u64 + 1))
}

/// The clean reference: the direct device path, no host, no faults.
fn run_clean(p: &dyn Proxy, cfg: BuildConfig) -> Observed {
    let out = compile_for_config(p, cfg).expect("compile");
    let mut dev = Device::load(out.module, eval_device());
    let prep = p.prepare(&mut dev);
    let metrics = dev
        .launch(p.kernel_name(), prep.launch, &prep.args)
        .expect("clean launch");
    let out_bits = dev
        .read_f64(prep.out_ptr, prep.expected.len())
        .expect("clean readback")
        .iter()
        .map(|v| v.to_bits())
        .collect();
    Observed {
        out_bits,
        metrics,
        global: dev.global_bytes().to_vec(),
        san_counts: dev.sanitizer_counts(),
    }
}

/// One recovered campaign: every fleet member armed with a seeded
/// device-fault plan, recovery on, a single region synced to completion.
fn run_recovered(
    p: &dyn Proxy,
    cfg: BuildConfig,
    devices: usize,
    policy: SchedPolicy,
    seed: u64,
) -> Result<(Observed, RecoveryMetrics), String> {
    let mut host = Host::new(eval_device(), devices);
    host.set_policy(policy);
    host.set_recovery(Some(RecoveryPolicy { max_failovers: 16, ..RecoveryPolicy::default() }));
    let img = host
        .load_image(build_for_config(p, cfg), cfg)
        .map_err(|e| format!("load image: {e}"))?;
    let hp = p.host_prepare();
    for dev in 0..devices {
        host.bind_image(dev, img).map_err(|e| format!("bind {dev}: {e}"))?;
        host.set_device_faults(dev, FaultPlan::device_campaign(device_seed(seed, dev)))
            .map_err(|e| format!("arm {dev}: {e}"))?;
    }
    let streams: Vec<StreamId> = vec![host.stream()];
    let region = host
        .enqueue_region(&streams, img, p.kernel_name(), hp.launch, hp.args)
        .map_err(|e| format!("enqueue: {e}"))?;
    host.sync().map_err(|e| format!("sync under campaign: {e}"))?;
    let metrics = host
        .take_metrics(region.ticket)
        .map_err(|e| format!("metrics: {e}"))?;
    let buf = region.bufs[hp.out_arg].ok_or("output argument is not a buffer")?;
    let out_bits = host.buf_bits(buf).map_err(|e| format!("readback: {e}"))?;
    let dev = host.device(region.device).ok_or("region device unloaded")?;
    let observed = Observed {
        out_bits,
        metrics,
        global: dev.global_bytes().to_vec(),
        san_counts: dev.sanitizer_counts(),
    };
    Ok((observed, host.recovery_metrics().clone()))
}

/// One host-path timing rig with a fixed recovery setting; `round` reps
/// whole offload regions, per `offload_overhead`.
struct Rig {
    host: Host,
    img: nzomp_host::ImageId,
    hp: nzomp_proxies::HostPrepared,
    streams: Vec<StreamId>,
}

impl Rig {
    fn new(p: &dyn Proxy, cfg: BuildConfig, policy: Option<RecoveryPolicy>) -> Rig {
        let mut host = Host::new(eval_device(), 1);
        host.set_recovery(policy);
        let img = host
            .load_image(build_for_config(p, cfg), cfg)
            .expect("load image");
        let hp = p.host_prepare();
        let streams = vec![host.stream()];
        Rig { host, img, hp, streams }
    }

    fn round(&mut self, p: &dyn Proxy, reps: u32) -> u128 {
        let arg_sets: Vec<_> = (0..reps).map(|_| self.hp.args.clone()).collect();
        let start = Instant::now();
        for args in arg_sets {
            let region = self
                .host
                .enqueue_region(&self.streams, self.img, p.kernel_name(), self.hp.launch, args)
                .expect("enqueue");
            self.host.sync().expect("sync");
            self.host.take_metrics(region.ticket).expect("metrics");
        }
        start.elapsed().as_nanos()
    }
}

/// Idle-policy cost over the disabled path: interleaved rounds, per-path
/// minimum across rounds (noise only ever adds time).
fn measure_idle_overhead(p: &dyn Proxy, cfg: BuildConfig, reps: u32) -> (f64, f64) {
    let mut disabled = Rig::new(p, cfg, None);
    let mut idle = Rig::new(p, cfg, Some(RecoveryPolicy::default()));
    let _ = disabled.round(p, 1);
    let _ = idle.round(p, 1);
    let (mut d_best, mut i_best) = (f64::MAX, f64::MAX);
    for _ in 0..ROUNDS {
        d_best = d_best.min(disabled.round(p, reps) as f64 / reps as f64);
        i_best = i_best.min(idle.round(p, reps) as f64 / reps as f64);
    }
    (d_best, i_best)
}

fn main() -> ExitCode {
    let seeds_per_cell: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4)
        .max(1);
    let cfg = BuildConfig::NewRtNoAssumptions;
    let proxies = all_proxies();
    let seeds: Vec<u64> = (0..seeds_per_cell).map(|i| 11 + 36 * i).collect();

    println!(
        "recovery_chaos: {} proxies × {{1, 2, 4}} devices × {{RoundRobin, LeastLoaded}} × {} seed(s), {cfg:?}",
        proxies.len(),
        seeds.len()
    );

    let mut ok = true;
    let mut rows = Vec::new();
    for p in &proxies {
        let clean = run_clean(p.as_ref(), cfg);
        let mut row = RecoveryRow { name: p.name().to_string(), ..RecoveryRow::default() };
        for devices in [1usize, 2, 4] {
            for policy in [SchedPolicy::RoundRobin, SchedPolicy::LeastLoaded] {
                for &seed in &seeds {
                    row.campaigns += 1;
                    match run_recovered(p.as_ref(), cfg, devices, policy, seed) {
                        Ok((got, m)) if got == clean => {
                            row.recovered += 1;
                            row.retries += m.retries;
                            row.watchdog_trips += m.watchdog_trips;
                            row.failovers += m.failovers;
                            row.replayed_ops += m.replayed_ops;
                            row.quarantines += m.quarantines;
                        }
                        Ok(_) => {
                            eprintln!(
                                "FAIL: {} devices={devices} policy={policy:?} seed={seed}: \
                                 recovered outcome diverged from clean",
                                p.name()
                            );
                            ok = false;
                        }
                        Err(e) => {
                            eprintln!(
                                "FAIL: {} devices={devices} policy={policy:?} seed={seed}: {e}",
                                p.name()
                            );
                            ok = false;
                        }
                    }
                }
            }
        }
        ok &= row.is_fully_recovered();
        rows.push(row);
    }
    println!("\n{}", recovery_table(&rows));

    let campaigns: u64 = rows.iter().map(|r| r.campaigns).sum();
    let exercised: u64 = rows
        .iter()
        .map(|r| r.retries + r.watchdog_trips + r.failovers)
        .sum();
    if exercised == 0 {
        eprintln!("FAIL: no campaign exercised recovery — the matrix is vacuous");
        ok = false;
    }

    // Recovery-disabled overhead: up to two re-measures, per the
    // offload_overhead noise discipline.
    println!(
        "  {:<10} {:>14} {:>14} {:>10}",
        "proxy", "disabled ns", "idle-policy ns", "overhead"
    );
    let mut worst = f64::MIN;
    for p in &proxies {
        let mut attempts = 1;
        let (mut d, mut i) = measure_idle_overhead(p.as_ref(), cfg, 10);
        while i / d - 1.0 > 0.05 && attempts < 3 {
            attempts += 1;
            let re = measure_idle_overhead(p.as_ref(), cfg, 10);
            (d, i) = re;
        }
        let overhead = i / d - 1.0;
        worst = worst.max(overhead);
        println!(
            "  {:<10} {:>14.0} {:>14.0} {:>9.2}%{}",
            p.name(),
            d,
            i,
            overhead * 100.0,
            if attempts > 1 { format!("   (attempt {attempts})") } else { String::new() }
        );
        if overhead > 0.05 {
            eprintln!(
                "FAIL: {} idle-recovery overhead {:.2}% exceeds the 5% gate on all {attempts} attempts",
                p.name(),
                overhead * 100.0
            );
            ok = false;
        }
    }

    if ok {
        println!(
            "\nOK: {campaigns} campaigns recovered bit-identically ({exercised} recovery \
             actions); worst idle-policy overhead {:.2}%",
            worst * 100.0
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
