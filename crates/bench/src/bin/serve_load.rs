//! Multi-tenant serving load bench: a seeded open-loop generator drives
//! `nzomp-serve` with a large mixed request stream — clean kernels,
//! deterministic div-by-zero faults, and a quota-starved tenant whose
//! bursts draw typed rejections — across a multi-device fleet, then
//! reports per-tenant and aggregate p50/p99 latency plus saturation
//! throughput, all in modeled cycles.
//!
//! Everything runs through the trace-replay path, which doubles as the
//! determinism gate: the recorded trace is replayed twice and the two
//! snapshots — every outcome, every tenant's session memory image, all
//! service metrics, the compile-cache counters — must be bit-identical,
//! or the bench fails. Because time is modeled, the percentiles are
//! replayable too: the same trace yields the same p50/p99 on any
//! machine, any worker count, and either execution tier.
//!
//! ```text
//! cargo run --release -p nzomp-bench --bin serve_load [REQUESTS] [DEVICES] [TENANTS]
//! ```
//!
//! Defaults: 100000 requests, 4 devices, 8 tenants (CI smokes a small
//! request count). Exits non-zero on any determinism or sanity failure.

use std::process::ExitCode;
use std::rc::Rc;
use std::time::Instant;

use nzomp::report::{percentile, serve_table};
use nzomp::BuildConfig;
use nzomp_front::{spmd_kernel_for, RuntimeFlavor};
use nzomp_ir::{Module, Operand, Ty};
use nzomp_serve::trace::{replay, Replayed, Trace, TraceOp};
use nzomp_serve::{Outcome, ReqArg, RequestSpec, ServeConfig, TenantConfig};
use nzomp_vgpu::device::Launch;
use nzomp_vgpu::{DeviceConfig, RtVal};

const N: usize = 16;
const SEED: u64 = 0x5e12_7e5d;

/// Deterministic xorshift64* — the bench's only entropy source, so the
/// generated trace is a pure function of the seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

fn scale_app() -> Rc<Module> {
    let mut m = Module::new("serve_load_scale");
    spmd_kernel_for(
        &mut m,
        RuntimeFlavor::Modern,
        "k",
        &[Ty::Ptr, Ty::Ptr, Ty::I64],
        |_b, p| p[2],
        |_m, b, iv, p| {
            let pa = b.gep(p[0], iv, 8);
            let x = b.load(Ty::F64, pa);
            let two = b.fmul(x, Operand::f64(2.0));
            let i_f = b.si_to_fp(iv);
            let v = b.fadd(two, i_f);
            let po = b.gep(p[1], iv, 8);
            b.store(Ty::F64, po, v);
        },
    );
    Rc::new(m)
}

fn div_app() -> Rc<Module> {
    let mut m = Module::new("serve_load_div");
    spmd_kernel_for(
        &mut m,
        RuntimeFlavor::Modern,
        "d",
        &[Ty::Ptr, Ty::I64, Ty::I64],
        |_b, p| p[2],
        |_m, b, iv, p| {
            let q = b.sdiv(iv, p[1]);
            let po = b.gep(p[0], iv, 8);
            b.store(Ty::I64, po, q);
        },
    );
    Rc::new(m)
}

fn launch() -> Launch {
    Launch { teams: 1, threads_per_team: 16, dyn_smem_bytes: 0 }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let requests: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(100_000);
    let devices: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let tenants: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    println!("serve_load: {requests} requests, {devices} devices, {tenants} tenants, seed {SEED:#x}");

    let scale = scale_app();
    let div = div_app();
    let inp = Rc::new(nzomp_host::f64_bytes(
        &(0..N).map(|i| i as f64 * 0.5 - 3.0).collect::<Vec<_>>(),
    ));
    let footprint = 8 * N as u64 * 2;

    // ---- seeded open-loop trace generation ------------------------------
    let mut rng = Rng(SEED);
    let mut trace = Trace::new();
    for i in 0..tenants {
        // The last tenant is quota-starved (one request footprint) so a
        // slice of the stream draws typed quota rejections under load.
        let cfg = if i == tenants - 1 {
            TenantConfig::new(footprint, usize::MAX)
        } else {
            TenantConfig::default()
        };
        trace.push(TraceOp::Tenant { name: format!("t{i}"), cfg });
    }
    let mut at = 0u64;
    let mut submit_times = Vec::with_capacity(requests);
    for _ in 0..requests {
        // Open loop: arrivals advance the modeled clock independently of
        // completions, so the fleet saturates under the configured rate.
        at += rng.next() % 40;
        let tenant = (rng.next() % tenants as u64) as u32;
        let spec = if rng.next() % 10 == 0 {
            // ~10% faulting: div-by-zero on every lane.
            RequestSpec {
                module: div.clone(),
                config: BuildConfig::NewRtNoAssumptions,
                kernel: "d".into(),
                launch: launch(),
                args: vec![
                    ReqArg::Out(8 * N as u64),
                    ReqArg::Scalar(RtVal::I(0)),
                    ReqArg::Scalar(RtVal::I(N as i64)),
                ],
            }
        } else {
            RequestSpec {
                module: scale.clone(),
                config: BuildConfig::NewRtNoAssumptions,
                kernel: "k".into(),
                launch: launch(),
                args: vec![
                    ReqArg::In(inp.clone()),
                    ReqArg::Out(8 * N as u64),
                    ReqArg::Scalar(RtVal::I(N as i64)),
                ],
            }
        };
        submit_times.push(at);
        trace.push(TraceOp::Submit { at, tenant, spec });
    }
    trace.push(TraceOp::Drain);

    let mut cfg = ServeConfig::new(devices);
    cfg.dev_cfg = DeviceConfig { check_assumes: false, ..DeviceConfig::default() };
    cfg.global_max_in_flight = devices * 8;
    cfg.seed = SEED;

    // ---- run + replay determinism gate ----------------------------------
    let t0 = Instant::now();
    let one = match replay(&trace, &cfg) {
        Ok(r) => r,
        Err(e) => {
            println!("FAIL: trace replay errored: {e}");
            return ExitCode::FAILURE;
        }
    };
    let run_wall = t0.elapsed();
    let t1 = Instant::now();
    let two = match replay(&trace, &cfg) {
        Ok(r) => r,
        Err(e) => {
            println!("FAIL: second replay errored: {e}");
            return ExitCode::FAILURE;
        }
    };
    let replay_wall = t1.elapsed();
    if one != two {
        println!("FAIL: trace replay is not bit-identical");
        report_divergence(&one, &two);
        return ExitCode::FAILURE;
    }
    println!(
        "replay gate: PASS ({} outcomes bit-identical; run {:.2?}, replay {:.2?})",
        one.outcomes.len(),
        run_wall,
        replay_wall
    );

    // ---- sanity: the stream exercised every outcome class ---------------
    let m = &one.metrics;
    if m.submitted != requests as u64 {
        println!("FAIL: submitted {} of {requests} requests", m.submitted);
        return ExitCode::FAILURE;
    }
    if m.completed == 0 || m.faulted == 0 {
        println!("FAIL: degenerate mix (completed {}, faulted {})", m.completed, m.faulted);
        return ExitCode::FAILURE;
    }
    if requests >= 1000 && m.rejected() == 0 {
        println!("FAIL: no typed rejections — the stream never hit a limit");
        return ExitCode::FAILURE;
    }
    // Single-flight: two distinct modules ever compiled, everything else
    // cache hits.
    let (hits, misses) = one.compile;
    if misses != 2 {
        println!("FAIL: expected 2 compile misses (2 modules), got {misses} ({hits} hits)");
        return ExitCode::FAILURE;
    }

    // ---- report ----------------------------------------------------------
    let mut latencies: Vec<u64> = one
        .outcomes
        .iter()
        .enumerate()
        .filter_map(|(i, o)| match o {
            Some(Outcome::Completed { finished, .. }) => {
                Some(finished.saturating_sub(*submit_times.get(i)?))
            }
            _ => None,
        })
        .collect();
    latencies.sort_unstable();
    println!("\n{}", serve_table(&one.rows));
    println!(
        "outcomes: {} completed, {} faulted, {} rejected ({} quota / {} backlog / {} saturated)",
        m.completed, m.faulted, m.rejected(), m.rejected_quota, m.rejected_backlog, m.rejected_saturated
    );
    println!("compile cache: {hits} hits, {misses} misses (single-flight across all tenants)");
    let p50 = percentile(&latencies, 50.0).unwrap_or(0);
    let p99 = percentile(&latencies, 99.0).unwrap_or(0);
    println!("latency (modeled cycles): p50 {p50}, p99 {p99}, max {}", latencies.last().copied().unwrap_or(0));
    println!(
        "saturation throughput: {:.1} completed requests / Mcycle over a {} cycle makespan",
        m.throughput_per_mcycle().unwrap_or(0.0),
        m.makespan_cycles
    );
    println!(
        "wall: {:.2?} total ({:.1} req/s)",
        run_wall + replay_wall,
        2.0 * requests as f64 / (run_wall + replay_wall).as_secs_f64()
    );
    ExitCode::SUCCESS
}

/// On a gate failure, point at the first diverging component.
fn report_divergence(a: &Replayed, b: &Replayed) {
    if a.metrics != b.metrics {
        println!("  metrics diverged:\n    {:?}\n    {:?}", a.metrics, b.metrics);
    }
    if a.compile != b.compile {
        println!("  compile counters diverged: {:?} vs {:?}", a.compile, b.compile);
    }
    if a.session_images != b.session_images {
        println!("  session images diverged");
    }
    for (i, (x, y)) in a.outcomes.iter().zip(&b.outcomes).enumerate() {
        if x != y {
            println!("  first outcome divergence at request {i}:\n    {x:?}\n    {y:?}");
            break;
        }
    }
}
