//! `figures` — regenerate every evaluation table and figure of the paper
//! on the virtual GPU.
//!
//! ```text
//! cargo run -p nzomp-bench --bin figures --release            # everything
//! cargo run -p nzomp-bench --bin figures --release -- fig10   # one figure
//! cargo run -p nzomp-bench --bin figures --release -- --large # bench sizes
//! ```
//!
//! Absolute numbers are simulated cycles, not A100 silicon; the claims to
//! compare against the paper are the *shapes*: which configuration wins,
//! by roughly what factor, and where state/barriers/registers disappear
//! (see EXPERIMENTS.md for the side-by-side record).

use nzomp::pipeline::compile_with;
use nzomp::report::ConfigRow;
use nzomp::BuildConfig;
use nzomp_bench::{eval_device, print_fig10_block, print_fig11_block, run_all_configs};
use nzomp::opt::{Ablation, PassOptions};
use nzomp_proxies::gridmini::GridMini;
use nzomp_proxies::minifmm::MiniFmm;
use nzomp_proxies::rsbench::RSBench;
use nzomp_proxies::testsnap::TestSnap;
use nzomp_proxies::xsbench::XSBench;
use nzomp_proxies::{build_for_config, verify_output, Proxy};
use nzomp_vgpu::Device;

struct Suite {
    xsbench: XSBench,
    rsbench: RSBench,
    gridmini: GridMini,
    testsnap: TestSnap,
    minifmm: MiniFmm,
}

impl Suite {
    fn new(large: bool) -> Suite {
        if large {
            Suite {
                xsbench: XSBench::large(),
                rsbench: RSBench::large(),
                gridmini: GridMini::large(),
                testsnap: TestSnap::large(),
                minifmm: MiniFmm::large(),
            }
        } else {
            Suite {
                xsbench: XSBench::small(),
                rsbench: RSBench::small(),
                gridmini: GridMini::small(),
                testsnap: TestSnap::small(),
                minifmm: MiniFmm::small(),
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let large = args.iter().any(|a| a == "--large");
    let which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let all = which.is_empty();
    let suite = Suite::new(large);

    if all || which.contains(&"fig10") {
        fig10(&suite);
    }
    if all || which.contains(&"fig11") {
        fig11(&suite);
    }
    if all || which.contains(&"fig12") {
        fig12(&suite);
    }
    if all || which.contains(&"fig13") {
        fig13(&suite);
    }
    if all || which.contains(&"oversub") {
        oversub(&suite);
    }
}

/// Fig. 10: relative performance of the four benchmark apps across builds.
fn fig10(s: &Suite) {
    println!("\n==============================================================");
    println!("Fig. 10 — relative performance across configurations");
    println!("==============================================================");
    let proxies: [&dyn Proxy; 4] = [&s.xsbench, &s.rsbench, &s.testsnap, &s.minifmm];
    for p in proxies {
        let rows = run_all_configs(p);
        print_fig10_block(p, &rows);
    }
}

/// Fig. 11: kernel time / register / shared-memory table for every app.
fn fig11(s: &Suite) {
    println!("\n==============================================================");
    println!("Fig. 11 — kernel time, registers and shared memory per build");
    println!("==============================================================");
    let proxies: [&dyn Proxy; 5] = [&s.xsbench, &s.rsbench, &s.gridmini, &s.testsnap, &s.minifmm];
    for p in proxies {
        let rows = run_all_configs(p);
        print_fig11_block(p, &rows);
    }
    println!("\n  (paper reference points: Old RT SMem 2,336 B — 8,288 B with");
    println!("   data sharing; New RT (Nightly) SMem 11,304 B; optimized New RT 0 B)");
}

/// Fig. 12: GridMini GFlops.
fn fig12(s: &Suite) {
    println!("\n==============================================================");
    println!("Fig. 12 — GridMini GFlops across configurations");
    println!("==============================================================");
    let rows = run_all_configs(&s.gridmini);
    for (cfg, row) in &rows {
        match row {
            Some(r) => println!(
                "  {:<26} {:>8.3} GFlops  {}",
                cfg.label(),
                r.metrics.gflops(),
                nzomp::report::bar(r.metrics.gflops(), 2.0)
            ),
            None => println!("  {:<26}      n/a", cfg.label()),
        }
    }
}

/// Fig. 13: one §IV optimization disabled at a time, relative to the full
/// pipeline (1.0 = no impact; smaller = the optimization mattered).
fn fig13(s: &Suite) {
    println!("\n==============================================================");
    println!("Fig. 13 — effect of disabling one optimization at a time");
    println!("         (relative performance vs the full pipeline)");
    println!("==============================================================");
    let proxies: [&dyn Proxy; 3] = [&s.gridmini, &s.xsbench, &s.minifmm];
    let cfg = BuildConfig::NewRtNoAssumptions;
    for p in proxies {
        println!("\n--- {} ---", p.name());
        let full_cycles = run_ablation(p, cfg, PassOptions::full());
        println!("  {:<44} {:>6.3}x", "full pipeline", 1.0);
        for ab in Ablation::ALL {
            let cycles = run_ablation(p, cfg, PassOptions::full_without(ab));
            let rel = full_cycles as f64 / cycles as f64;
            println!("  {:<44} {:>6.3}x  {}", ab.label(), rel, nzomp::report::bar(rel, 30.0));
        }
    }
}

fn run_ablation(p: &dyn Proxy, cfg: BuildConfig, opts: PassOptions) -> u64 {
    let app = build_for_config(p, cfg);
    let out = compile_with(app, cfg, cfg.rt_config(), opts).expect("ablation compile");
    let mut dev = Device::load(out.module, eval_device());
    let prep = p.prepare(&mut dev);
    let metrics = dev
        .launch(p.kernel_name(), prep.launch, &prep.args)
        .expect("ablation run");
    verify_output(&dev, &prep).expect("ablation verifies");
    metrics.cycles
}

/// §V-B oversubscription paragraph: register and time effect of the
/// assumption flags on XSBench.
fn oversub(s: &Suite) {
    println!("\n==============================================================");
    println!("§V-B — loop oversubscription assumptions (XSBench)");
    println!("==============================================================");
    let without = run_one(&s.xsbench, BuildConfig::NewRtNoAssumptions);
    let with = run_one(&s.xsbench, BuildConfig::NewRt);
    let dreg = without.metrics.regs_per_thread as i64 - with.metrics.regs_per_thread as i64;
    let dtime = (without.metrics.time_ms - with.metrics.time_ms) / without.metrics.time_ms * 100.0;
    println!(
        "  without assumptions: {:>3} regs, {:.3} ms",
        without.metrics.regs_per_thread, without.metrics.time_ms
    );
    println!(
        "  with assumptions:    {:>3} regs, {:.3} ms",
        with.metrics.regs_per_thread, with.metrics.time_ms
    );
    println!("  delta: -{dreg} registers, -{dtime:.1}% kernel time");
    println!("  (paper: -14 registers, -5.6% kernel time on the A100)");
}

fn run_one(p: &dyn Proxy, cfg: BuildConfig) -> ConfigRow {
    let r = nzomp_proxies::run_config(p, cfg, &eval_device()).expect("run");
    ConfigRow {
        config: cfg,
        metrics: r.metrics,
    }
}
