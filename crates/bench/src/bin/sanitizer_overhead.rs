//! Sanitizer overhead smoke: cost of shadow tracking, and proof that it
//! is *only* a cost — never a behavior change.
//!
//! For every proxy (full §IV pipeline, New RT without assumptions) the
//! harness launches the same binary twice on fresh devices — once plain,
//! once with the sanitizer on — and checks three contracts:
//!
//! 1. **Clean**: the sanitized launch reports zero races and zero
//!    divergences.
//! 2. **Invisible**: output bits, the full [`KernelMetrics`] (modeled
//!    cycles included), and the global-memory image are bit-identical
//!    with and without the sanitizer — shadow tracking must not perturb
//!    execution.
//! 3. **Bounded**: the wall-time overhead is reported per proxy in a
//!    Fig. 11-style table (`nzomp::report::sanitizer_table`).
//!
//! Exits nonzero if any proxy violates (1) or (2).
//!
//! ```text
//! cargo run --release -p nzomp-bench --bin sanitizer_overhead [REPS]
//! ```

use std::process::ExitCode;
use std::time::Instant;

use nzomp::report::{sanitizer_table, SanitizerRow};
use nzomp::BuildConfig;
use nzomp_proxies::{all_proxies, compile_for_config, quick_device, Proxy};
use nzomp_vgpu::{Device, KernelMetrics};

/// One measured side (plain or sanitized) of a proxy.
struct Side {
    wall_ns: u128,
    out_bits: Vec<u64>,
    metrics: KernelMetrics,
    global: Vec<u8>,
    races: u64,
    divergences: u64,
}

fn run_side(module: &nzomp_ir::Module, p: &dyn Proxy, sanitize: bool, reps: u32) -> Side {
    let mut dev = Device::load(module.clone(), quick_device());
    dev.set_sanitize_strict(false);
    dev.set_sanitize(sanitize);
    let prep = p.prepare(&mut dev);
    // Warm-up launch: page in code paths and let lazy init settle.
    dev.launch(p.kernel_name(), prep.launch, &prep.args)
        .expect("warm-up launch");
    let start = Instant::now();
    let mut metrics = None;
    for _ in 0..reps {
        metrics = Some(
            dev.launch(p.kernel_name(), prep.launch, &prep.args)
                .expect("bench launch"),
        );
    }
    let wall_ns = start.elapsed().as_nanos();
    let (races, divergences) = dev.sanitizer_counts();
    Side {
        wall_ns,
        out_bits: dev
            .read_f64(prep.out_ptr, prep.expected.len())
            .expect("readback")
            .iter()
            .map(|v| v.to_bits())
            .collect(),
        metrics: metrics.expect("at least one rep"),
        global: dev.global_bytes().to_vec(),
        races,
        divergences,
    }
}

fn main() -> ExitCode {
    let reps: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3);
    let cfg = BuildConfig::NewRtNoAssumptions;
    println!("sanitizer_overhead: all proxies, {reps} reps, {cfg:?}");

    let mut ok = true;
    let mut rows = Vec::new();
    for p in all_proxies() {
        let module = compile_for_config(p.as_ref(), cfg).expect("compile").module;
        let plain = run_side(&module, p.as_ref(), false, reps);
        let sanitized = run_side(&module, p.as_ref(), true, reps);

        if plain.races != 0 || plain.divergences != 0 {
            eprintln!("FAIL: {}: plain run produced sanitizer reports", p.name());
            ok = false;
        }
        if sanitized.races != 0 || sanitized.divergences != 0 {
            eprintln!(
                "FAIL: {}: not sanitizer-clean ({} races, {} divergences)",
                p.name(),
                sanitized.races,
                sanitized.divergences
            );
            ok = false;
        }
        if sanitized.out_bits != plain.out_bits {
            eprintln!("FAIL: {}: output bits change under the sanitizer", p.name());
            ok = false;
        }
        if sanitized.metrics != plain.metrics {
            eprintln!(
                "FAIL: {}: metrics (modeled cycles) change under the sanitizer",
                p.name()
            );
            ok = false;
        }
        if sanitized.global != plain.global {
            eprintln!("FAIL: {}: global memory changes under the sanitizer", p.name());
            ok = false;
        }

        rows.push(SanitizerRow {
            name: p.name().to_string(),
            races: sanitized.races,
            divergences: sanitized.divergences,
            plain_ns: plain.wall_ns,
            sanitized_ns: sanitized.wall_ns,
        });
    }

    println!();
    print!("{}", sanitizer_table(&rows));

    if ok {
        println!("\nOK: all proxies sanitizer-clean, execution bit-identical with tracking on");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
