//! Instruction-level semantics of the interpreter: each operator class,
//! trap conditions, counters and occupancy bookkeeping.

use nzomp_ir::{
    BinOp, CastKind, ExecMode, FuncBuilder, Module, Operand, Pred, Ty, UnOp,
};
use nzomp_vgpu::device::Launch;
use nzomp_vgpu::{Device, DeviceConfig, RtVal, TrapKind};

/// Run a single-thread kernel computing one i64 and storing it to out[0].
fn run_i64(build: impl FnOnce(&mut FuncBuilder) -> Operand) -> i64 {
    let mut m = Module::new("t");
    let mut b = FuncBuilder::new("k", vec![Ty::Ptr], None);
    let v = build(&mut b);
    b.store(Ty::I64, b.param(0), v);
    b.ret(None);
    let f = m.add_function(b.finish());
    m.add_kernel(f, ExecMode::Spmd);
    nzomp_ir::verify_module(&m).unwrap();
    let mut dev = Device::load(m, DeviceConfig::default());
    let out = dev.alloc(8);
    dev.launch("k", Launch::new(1, 1), &[RtVal::P(out)]).unwrap();
    dev.read_i64(out, 1).unwrap()[0]
}

fn run_f64(build: impl FnOnce(&mut FuncBuilder) -> Operand) -> f64 {
    let mut m = Module::new("t");
    let mut b = FuncBuilder::new("k", vec![Ty::Ptr], None);
    let v = build(&mut b);
    b.store(Ty::F64, b.param(0), v);
    b.ret(None);
    let f = m.add_function(b.finish());
    m.add_kernel(f, ExecMode::Spmd);
    let mut dev = Device::load(m, DeviceConfig::default());
    let out = dev.alloc(8);
    dev.launch("k", Launch::new(1, 1), &[RtVal::P(out)]).unwrap();
    dev.read_f64(out, 1).unwrap()[0]
}

fn run_trap(build: impl FnOnce(&mut FuncBuilder)) -> TrapKind {
    let mut m = Module::new("t");
    let mut b = FuncBuilder::new("k", vec![], None);
    build(&mut b);
    b.ret(None);
    let f = m.add_function(b.finish());
    m.add_kernel(f, ExecMode::Spmd);
    let mut dev = Device::load(m, DeviceConfig::default());
    dev.launch("k", Launch::new(1, 1), &[]).unwrap_err().kind
}

#[test]
fn integer_binops() {
    assert_eq!(run_i64(|b| b.add(Operand::i64(3), Operand::i64(4))), 7);
    assert_eq!(run_i64(|b| b.sub(Operand::i64(3), Operand::i64(4))), -1);
    assert_eq!(run_i64(|b| b.mul(Operand::i64(-3), Operand::i64(4))), -12);
    assert_eq!(run_i64(|b| b.sdiv(Operand::i64(-7), Operand::i64(2))), -3);
    assert_eq!(run_i64(|b| b.srem(Operand::i64(-7), Operand::i64(2))), -1);
    assert_eq!(
        run_i64(|b| b.bin(BinOp::UDiv, Ty::I64, Operand::i64(-1), Operand::i64(2))),
        (u64::MAX / 2) as i64
    );
    assert_eq!(run_i64(|b| b.and(Operand::i64(0b1100), Operand::i64(0b1010))), 0b1000);
    assert_eq!(run_i64(|b| b.or(Operand::i64(0b1100), Operand::i64(0b1010))), 0b1110);
    assert_eq!(
        run_i64(|b| b.bin(BinOp::Xor, Ty::I64, Operand::i64(0b1100), Operand::i64(0b1010))),
        0b0110
    );
    assert_eq!(run_i64(|b| b.shl(Operand::i64(1), Operand::i64(40))), 1 << 40);
    assert_eq!(
        run_i64(|b| b.bin(BinOp::AShr, Ty::I64, Operand::i64(-8), Operand::i64(1))),
        -4
    );
    assert_eq!(
        run_i64(|b| b.bin(BinOp::LShr, Ty::I64, Operand::i64(-1), Operand::i64(63))),
        1
    );
    assert_eq!(
        run_i64(|b| b.bin(BinOp::SMin, Ty::I64, Operand::i64(-5), Operand::i64(2))),
        -5
    );
    assert_eq!(
        run_i64(|b| b.bin(BinOp::SMax, Ty::I64, Operand::i64(-5), Operand::i64(2))),
        2
    );
    // Wrapping.
    assert_eq!(
        run_i64(|b| b.add(Operand::i64(i64::MAX), Operand::i64(1))),
        i64::MIN
    );
}

#[test]
fn float_ops() {
    assert_eq!(run_f64(|b| b.fadd(Operand::f64(1.5), Operand::f64(2.5))), 4.0);
    assert_eq!(run_f64(|b| b.fsub(Operand::f64(1.5), Operand::f64(2.5))), -1.0);
    assert_eq!(run_f64(|b| b.fmul(Operand::f64(1.5), Operand::f64(2.0))), 3.0);
    assert_eq!(run_f64(|b| b.fdiv(Operand::f64(3.0), Operand::f64(2.0))), 1.5);
    assert_eq!(run_f64(|b| b.sqrt(Operand::f64(16.0))), 4.0);
    assert_eq!(run_f64(|b| b.un(UnOp::FAbs, Ty::F64, Operand::f64(-2.0))), 2.0);
    assert_eq!(run_f64(|b| b.un(UnOp::FNeg, Ty::F64, Operand::f64(2.0))), -2.0);
    assert_eq!(run_f64(|b| b.un(UnOp::Sin, Ty::F64, Operand::f64(0.5))), 0.5f64.sin());
    assert_eq!(run_f64(|b| b.un(UnOp::Cos, Ty::F64, Operand::f64(0.5))), 0.5f64.cos());
    assert_eq!(run_f64(|b| b.un(UnOp::Exp, Ty::F64, Operand::f64(1.0))), 1.0f64.exp());
    assert_eq!(run_f64(|b| b.un(UnOp::Log, Ty::F64, Operand::f64(2.0))), 2.0f64.ln());
}

#[test]
fn casts() {
    assert_eq!(
        run_i64(|b| b.cast(CastKind::IntCast, Ty::I8, Operand::i64(0x1ff))),
        -1 // 0xff sign-extended
    );
    assert_eq!(
        run_i64(|b| b.cast(CastKind::ZExtCast, Ty::I8, Operand::i64(0x1ff))),
        0xff
    );
    assert_eq!(
        run_i64(|b| b.cast(CastKind::IntCast, Ty::I32, Operand::i64(0x1_0000_0001))),
        1
    );
    assert_eq!(run_i64(|b| b.fp_to_si(Operand::f64(-2.9))), -2);
    assert_eq!(run_f64(|b| b.si_to_fp(Operand::i64(7))), 7.0);
}

#[test]
fn comparisons() {
    assert_eq!(run_i64(|b| b.cmp(Pred::Slt, Ty::I64, Operand::i64(-1), Operand::i64(0))), 1);
    assert_eq!(run_i64(|b| b.cmp(Pred::Ult, Ty::I64, Operand::i64(-1), Operand::i64(0))), 0);
    assert_eq!(run_i64(|b| b.cmp(Pred::Eq, Ty::F64, Operand::f64(1.0), Operand::f64(1.0))), 1);
    assert_eq!(
        run_i64(|b| {
            let nan = b.fdiv(Operand::f64(0.0), Operand::f64(0.0));
            b.cmp(Pred::Eq, Ty::F64, nan, nan)
        }),
        0,
        "NaN != NaN"
    );
}

#[test]
fn select_and_narrow_memory() {
    assert_eq!(
        run_i64(|b| b.select(Ty::I64, Operand::TRUE, Operand::i64(1), Operand::i64(2))),
        1
    );
    // i32 store/load roundtrip: upper bits do not leak.
    assert_eq!(
        run_i64(|b| {
            let slot = b.alloca(8);
            b.store(Ty::I64, slot, Operand::i64(-1));
            b.store(Ty::I32, slot, Operand::i64(5));
            b.load(Ty::I64, slot)
        }),
        // Lower 4 bytes overwritten with 5; upper 4 remain 0xffffffff.
        (0xffff_ffffu64 as i64) << 32 | 5
    );
}

#[test]
fn division_by_zero_traps() {
    assert_eq!(
        run_trap(|b| {
            b.sdiv(Operand::i64(1), Operand::i64(0));
        }),
        TrapKind::DivByZero
    );
}

#[test]
fn null_deref_traps() {
    assert_eq!(
        run_trap(|b| {
            b.load(Ty::I64, Operand::NULL);
        }),
        TrapKind::NullDeref
    );
}

#[test]
fn fuel_exhaustion_traps() {
    let mut m = Module::new("spin");
    let mut b = FuncBuilder::new("k", vec![], None);
    let entry = b.current_block();
    let lp = b.new_block();
    b.br(lp);
    b.switch_to(lp);
    let p = b.phi(Ty::I64, vec![(entry, Operand::i64(0))]);
    let n = b.add(p, Operand::i64(1));
    b.phi_add_incoming(p, lp, n);
    b.br(lp);
    let f = m.add_function(b.finish());
    m.add_kernel(f, ExecMode::Spmd);
    let cfg = DeviceConfig {
        max_steps: 10_000,
        ..DeviceConfig::default()
    };
    let mut dev = Device::load(m, cfg);
    let err = dev.launch("k", Launch::new(1, 1), &[]).unwrap_err();
    assert_eq!(err.kind, TrapKind::FuelExhausted);
}

#[test]
fn atomics_are_correct_under_contention() {
    let mut m = Module::new("at");
    let mut b = FuncBuilder::new("k", vec![Ty::Ptr], None);
    let old = b.atomic_add(Ty::I64, b.param(0), Operand::i64(1));
    // Also CAS a flag from 0 to 1 exactly once across the team.
    let flag = b.ptr_add(b.param(0), Operand::i64(8));
    let prev = b.cas(Ty::I64, flag, Operand::i64(0), Operand::i64(1));
    let won = b.icmp_eq(prev, Operand::i64(0));
    let w = b.cast(CastKind::ZExtCast, Ty::I64, won);
    let winners = b.ptr_add(b.param(0), Operand::i64(16));
    b.atomic_add(Ty::I64, winners, w);
    let _ = old;
    b.ret(None);
    let f = m.add_function(b.finish());
    m.add_kernel(f, ExecMode::Spmd);
    let mut dev = Device::load(m, DeviceConfig::default());
    let buf = dev.alloc(24);
    dev.launch("k", Launch::new(2, 32), &[RtVal::P(buf)]).unwrap();
    let vals = dev.read_i64(buf, 3).unwrap();
    assert_eq!(vals[0], 64, "every thread incremented once");
    assert_eq!(vals[1], 1, "flag set");
    assert_eq!(vals[2], 1, "exactly one CAS winner");
}

#[test]
fn intrinsic_ids_are_consistent() {
    let mut m = Module::new("ids");
    let mut b = FuncBuilder::new("k", vec![Ty::Ptr], None);
    let tid = b.thread_id();
    let bid = b.block_id();
    let bdim = b.block_dim();
    let gdim = b.grid_dim();
    let gl = b.mul(bid, bdim);
    let g = b.add(gl, tid);
    let slot = b.gep(b.param(0), g, 8);
    // global id * 1000 + gdim
    let v = b.mul(g, Operand::i64(1000));
    let v = b.add(v, gdim);
    b.store(Ty::I64, slot, v);
    b.ret(None);
    let f = m.add_function(b.finish());
    m.add_kernel(f, ExecMode::Spmd);
    let mut dev = Device::load(m, DeviceConfig::default());
    let buf = dev.alloc(8 * 12);
    dev.launch("k", Launch::new(3, 4), &[RtVal::P(buf)]).unwrap();
    let got = dev.read_i64(buf, 12).unwrap();
    for (g, v) in got.iter().enumerate() {
        assert_eq!(*v, g as i64 * 1000 + 3);
    }
}

#[test]
fn function_calls_and_returns() {
    let mut m = Module::new("fns");
    let mut cb = FuncBuilder::new("twice", vec![Ty::I64], Some(Ty::I64));
    let v = cb.mul(cb.param(0), Operand::i64(2));
    cb.ret(Some(v));
    let twice = m.add_function(cb.finish());
    let mut b = FuncBuilder::new("k", vec![Ty::Ptr], None);
    let a = b.call(Operand::Func(twice), vec![Operand::i64(21)], Some(Ty::I64)).unwrap();
    let c = b.call(Operand::Func(twice), vec![a], Some(Ty::I64)).unwrap();
    b.store(Ty::I64, b.param(0), c);
    b.ret(None);
    let f = m.add_function(b.finish());
    m.add_kernel(f, ExecMode::Spmd);
    let mut dev = Device::load(m, DeviceConfig::default());
    let out = dev.alloc(8);
    dev.launch("k", Launch::new(1, 1), &[RtVal::P(out)]).unwrap();
    assert_eq!(dev.read_i64(out, 1).unwrap()[0], 84);
}

#[test]
fn recursion_uses_per_frame_registers() {
    // fib(10) through naive recursion exercises frame save/restore.
    let mut m = Module::new("fib");
    let fib_ref = nzomp_ir::module::FuncRef(0);
    let mut b = FuncBuilder::new("fib", vec![Ty::I64], Some(Ty::I64));
    let n = b.param(0);
    let base = b.icmp_slt(n, Operand::i64(2));
    let ret_base = b.new_block();
    let rec = b.new_block();
    b.cond_br(base, ret_base, rec);
    b.switch_to(ret_base);
    b.ret(Some(n));
    b.switch_to(rec);
    let n1 = b.sub(n, Operand::i64(1));
    let n2 = b.sub(n, Operand::i64(2));
    let f1 = b.call(Operand::Func(fib_ref), vec![n1], Some(Ty::I64)).unwrap();
    let f2 = b.call(Operand::Func(fib_ref), vec![n2], Some(Ty::I64)).unwrap();
    let s = b.add(f1, f2);
    b.ret(Some(s));
    let fib = m.add_function(b.finish());
    assert_eq!(fib, fib_ref);
    let mut kb = FuncBuilder::new("k", vec![Ty::Ptr], None);
    let v = kb.call(Operand::Func(fib), vec![Operand::i64(10)], Some(Ty::I64)).unwrap();
    kb.store(Ty::I64, kb.param(0), v);
    kb.ret(None);
    let k = m.add_function(kb.finish());
    m.add_kernel(k, ExecMode::Spmd);
    let mut dev = Device::load(m, DeviceConfig::default());
    let out = dev.alloc(8);
    dev.launch("k", Launch::new(1, 1), &[RtVal::P(out)]).unwrap();
    assert_eq!(dev.read_i64(out, 1).unwrap()[0], 55);
}

#[test]
fn metrics_counters_are_exact_for_straight_line() {
    let mut m = Module::new("cnt");
    let mut b = FuncBuilder::new("k", vec![Ty::Ptr], None);
    let v = b.load(Ty::F64, b.param(0));
    let w = b.fmul(v, v);
    b.store(Ty::F64, b.param(0), w);
    b.ret(None);
    let f = m.add_function(b.finish());
    m.add_kernel(f, ExecMode::Spmd);
    let mut dev = Device::load(m, DeviceConfig::default());
    let buf = dev.alloc(8);
    dev.write_f64(buf, &[3.0]).unwrap();
    let metrics = dev.launch("k", Launch::new(1, 1), &[RtVal::P(buf)]).unwrap();
    assert_eq!(metrics.instructions, 3);
    assert_eq!(metrics.flops, 1);
    assert_eq!(metrics.global_accesses, 2);
    assert_eq!(dev.read_f64(buf, 1).unwrap()[0], 9.0);
}

#[test]
fn dynamic_shared_memory_counts_against_occupancy() {
    let mut m = Module::new("dsm");
    let mut b = FuncBuilder::new("k", vec![], None);
    let x = b.add(Operand::i64(1), Operand::i64(1));
    let _ = b.mul(x, x);
    b.ret(None);
    let f = m.add_function(b.finish());
    m.add_kernel(f, ExecMode::Spmd);
    let mut dev = Device::load(m, DeviceConfig::default());
    let plain = dev
        .launch("k", Launch::new(4, 32), &[])
        .unwrap();
    let fat = dev
        .launch(
            "k",
            Launch {
                teams: 4,
                threads_per_team: 32,
                dyn_smem_bytes: 64 * 1024,
            },
            &[],
        )
        .unwrap();
    assert!(fat.teams_per_sm < plain.teams_per_sm);
    assert_eq!(fat.dyn_smem_bytes, 64 * 1024);
}
