//! Golden-report tests for the data-race & barrier-divergence sanitizer:
//! hand-built IR kernels with known conflicts, pinning the exact rendered
//! `RaceReport`/`DivergenceReport` text (both access sites, memory space,
//! epoch info) so the diagnostics stay stable.

use nzomp_ir::{ExecMode, FuncBuilder, Global, Init, Module, Operand, Space, Ty};
use nzomp_vgpu::device::Launch;
use nzomp_vgpu::{Device, DeviceConfig, RtVal, TrapKind};

fn finish_kernel(mut m: Module, b: FuncBuilder) -> Module {
    let f = m.add_function(b.finish());
    m.add_kernel(f, ExecMode::Spmd);
    nzomp_ir::verify_module(&m).unwrap();
    m
}

fn sanitized_device(m: Module) -> Device {
    let mut dev = Device::load(m, DeviceConfig::default());
    // Force report-only mode regardless of the NZOMP_SANITIZE env (these
    // kernels race on purpose; strict would turn the launches into traps).
    dev.set_sanitize_strict(false);
    dev.set_sanitize(true);
    dev
}

fn rendered(dev: &Device) -> Vec<String> {
    dev.sanitizer_reports()
        .iter()
        .map(|r| r.to_string())
        .collect()
}

/// Every thread plain-stores to the same shared cell.
fn write_write_module() -> Module {
    let mut m = Module::new("racy");
    m.add_global(Global::new("cell", Space::Shared, 8, Init::Zero));
    let g = m.find_global("cell").unwrap();
    let mut b = FuncBuilder::new("wr", vec![], None);
    let tid = b.thread_id();
    b.store(Ty::I64, Operand::Global(g), tid);
    b.ret(None);
    finish_kernel(m, b)
}

#[test]
fn shared_write_write_race_golden() {
    let mut dev = sanitized_device(write_write_module());
    let metrics = dev.launch("wr", Launch::new(1, 2), &[]).unwrap();
    assert_eq!(metrics.sanitizer_races, 1);
    assert_eq!(metrics.sanitizer_divergences, 0);
    assert_eq!(
        rendered(&dev),
        vec![
            "[race:sanitize] shared+0x0: write by team 0 thread 1 at @wr bb0 %1 \
             (epoch 0) conflicts with write by team 0 thread 0 at @wr bb0 %1 (epoch 0)"
                .to_string()
        ]
    );
}

#[test]
fn duplicate_races_fold_into_count() {
    // Threads 1..3 all conflict with thread 0 at the same site pair: one
    // report, count 3.
    let mut dev = sanitized_device(write_write_module());
    let metrics = dev.launch("wr", Launch::new(1, 4), &[]).unwrap();
    assert_eq!(metrics.sanitizer_races, 1);
    let r = rendered(&dev);
    assert_eq!(r.len(), 1);
    assert!(r[0].ends_with("[x3]"), "got: {}", r[0]);
}

/// `cell[tid] = tid; aligned_barrier; read cell[1 - tid]` — the canonical
/// barrier-published broadcast. With the barrier: clean. Without: the
/// epoch model reports thread 1's write against thread 0's read.
fn broadcast_module(with_barrier: bool) -> Module {
    let mut m = Module::new("bc");
    m.add_global(Global::new("cells", Space::Shared, 16, Init::Zero));
    let g = m.find_global("cells").unwrap();
    let mut b = FuncBuilder::new("bc", vec![], None);
    let tid = b.thread_id();
    let own = b.gep(Operand::Global(g), tid, 8);
    b.store(Ty::I64, own, tid);
    if with_barrier {
        b.aligned_barrier();
    }
    let rev = b.sub(Operand::i64(1), tid);
    let other = b.gep(Operand::Global(g), rev, 8);
    let _v = b.load(Ty::I64, other);
    b.ret(None);
    finish_kernel(m, b)
}

#[test]
fn barrier_orders_broadcast_clean() {
    let mut dev = sanitized_device(broadcast_module(true));
    let metrics = dev.launch("bc", Launch::new(1, 2), &[]).unwrap();
    assert_eq!(metrics.sanitizer_races, 0);
    assert_eq!(metrics.sanitizer_divergences, 0);
    assert!(dev.sanitizer_reports().is_empty());
}

#[test]
fn missing_barrier_reports_read_write_race_golden() {
    let mut dev = sanitized_device(broadcast_module(false));
    let metrics = dev.launch("bc", Launch::new(1, 2), &[]).unwrap();
    // Without the barrier both directions race: thread 0 (which ran to
    // completion first) read cell[1] that thread 1 then writes, and
    // thread 1 reads cell[0] that thread 0 wrote — same epoch.
    assert_eq!(metrics.sanitizer_races, 2);
    assert_eq!(
        rendered(&dev),
        vec![
            "[race:sanitize] shared+0x8: write by team 0 thread 1 at @bc bb0 %3 \
             (epoch 0) conflicts with read by team 0 thread 0 at @bc bb0 %7 (epoch 0)"
                .to_string(),
            "[race:sanitize] shared+0x0: read by team 0 thread 1 at @bc bb0 %7 \
             (epoch 0) conflicts with write by team 0 thread 0 at @bc bb0 %3 (epoch 0)"
                .to_string(),
        ]
    );
}

/// All-atomic contention is synchronized by definition.
#[test]
fn atomic_atomic_is_clean() {
    let mut m = Module::new("aa");
    m.add_global(Global::new("acc", Space::Shared, 8, Init::Zero));
    let g = m.find_global("acc").unwrap();
    let mut b = FuncBuilder::new("aa", vec![], None);
    let _old = b.atomic_add(Ty::I64, Operand::Global(g), Operand::i64(1));
    b.ret(None);
    let m = finish_kernel(m, b);
    let mut dev = sanitized_device(m);
    let metrics = dev.launch("aa", Launch::new(1, 8), &[]).unwrap();
    assert_eq!(metrics.sanitizer_races, 0);
}

/// A plain store racing an atomic RMW on the same cell is a race (the
/// "downgraded atomic" bug class).
#[test]
fn atomic_vs_plain_store_races_golden() {
    let mut m = Module::new("ap");
    m.add_global(Global::new("acc", Space::Shared, 8, Init::Zero));
    let g = m.find_global("acc").unwrap();
    let mut b = FuncBuilder::new("ap", vec![], None);
    let tid = b.thread_id();
    let is0 = b.icmp_eq(tid, Operand::i64(0));
    let plain = b.new_block();
    let atomic = b.new_block();
    let join = b.new_block();
    b.cond_br(is0, plain, atomic);
    b.switch_to(plain);
    b.store(Ty::I64, Operand::Global(g), Operand::i64(7));
    b.br(join);
    b.switch_to(atomic);
    let _old = b.atomic_add(Ty::I64, Operand::Global(g), Operand::i64(1));
    b.br(join);
    b.switch_to(join);
    b.ret(None);
    let m = finish_kernel(m, b);
    let mut dev = sanitized_device(m);
    let metrics = dev.launch("ap", Launch::new(1, 2), &[]).unwrap();
    assert_eq!(metrics.sanitizer_races, 1);
    let r = rendered(&dev);
    assert_eq!(r.len(), 1);
    assert!(
        r[0].contains("atomic by team 0 thread 1") && r[0].contains("conflicts with write"),
        "got: {}",
        r[0]
    );
}

/// Two teams plain-store to the same global word: no ordering exists
/// between teams of a launch — cross-team race.
fn cross_team_module() -> Module {
    let mut m = Module::new("xt");
    let mut b = FuncBuilder::new("xt", vec![Ty::Ptr], None);
    let out = b.param(0);
    let bid = b.block_id();
    b.store(Ty::I64, out, bid);
    b.ret(None);
    finish_kernel(m, b)
}

#[test]
fn cross_team_write_write_race_golden() {
    let mut dev = sanitized_device(cross_team_module());
    let out = dev.alloc(8);
    let metrics = dev
        .launch("xt", Launch::new(2, 1), &[RtVal::P(out)])
        .unwrap();
    assert_eq!(metrics.sanitizer_races, 1);
    assert_eq!(
        rendered(&dev),
        vec![format!(
            "[race:sanitize] global+0x{:x}: write by team 1 thread 0 at @xt bb0 %1 \
             conflicts with write by team 0 thread 0 at @xt bb0 %1 (cross-team)",
            out.offset()
        )]
    );
}

#[test]
fn cross_team_verdict_identical_across_worker_counts() {
    let mut baseline: Option<Vec<String>> = None;
    for workers in [1usize, 2, 4, 8] {
        let mut dev = sanitized_device(cross_team_module());
        dev.set_worker_threads(workers);
        let out = dev.alloc(8);
        let metrics = dev
            .launch("xt", Launch::new(4, 1), &[RtVal::P(out)])
            .unwrap();
        let got = rendered(&dev);
        // Teams 2 and 3 repeat team 1's site pair and dedup onto it.
        assert_eq!(metrics.sanitizer_races, 1, "workers={workers}");
        match &baseline {
            None => baseline = Some(got),
            Some(b) => assert_eq!(&got, b, "workers={workers}"),
        }
    }
}

/// Per-team atomics to one global accumulator synchronize across teams.
#[test]
fn cross_team_atomics_clean() {
    let mut m = Module::new("xa");
    let mut b = FuncBuilder::new("xa", vec![Ty::Ptr], None);
    let out = b.param(0);
    let _old = b.atomic_add(Ty::I64, out, Operand::i64(1));
    b.ret(None);
    let m = finish_kernel(m, b);
    let mut dev = sanitized_device(m);
    let out = dev.alloc(8);
    let metrics = dev
        .launch("xa", Launch::new(4, 2), &[RtVal::P(out)])
        .unwrap();
    assert_eq!(metrics.sanitizer_races, 0);
    assert_eq!(dev.read_i64(out, 1).unwrap()[0], 8);
}

/// Threads reach *different* aligned barriers (divergent control flow):
/// the release is flagged, execution is unchanged.
#[test]
fn divergent_aligned_barrier_sites_golden() {
    let mut m = Module::new("div");
    let mut b = FuncBuilder::new("div", vec![], None);
    let tid = b.thread_id();
    let is0 = b.icmp_eq(tid, Operand::i64(0));
    let a = b.new_block();
    let c = b.new_block();
    let join = b.new_block();
    b.cond_br(is0, a, c);
    b.switch_to(a);
    b.aligned_barrier();
    b.br(join);
    b.switch_to(c);
    b.aligned_barrier();
    b.br(join);
    b.switch_to(join);
    b.ret(None);
    let m = finish_kernel(m, b);
    let mut dev = sanitized_device(m);
    let metrics = dev.launch("div", Launch::new(1, 2), &[]).unwrap();
    assert_eq!(metrics.sanitizer_races, 0);
    assert_eq!(metrics.sanitizer_divergences, 1);
    assert_eq!(
        rendered(&dev),
        vec![
            "[divergence:sanitize] team 0 epoch 0: aligned barrier released with \
             divergent arrivals: thread 0 (aligned) at @div bb1 %2, \
             thread 1 (aligned) at @div bb2 %3"
                .to_string()
        ]
    );
}

/// An aligned barrier reached by a subset of threads (others already
/// exited) still traps `BarrierDeadlock` — and the divergence report
/// survives the trap.
#[test]
fn aligned_subset_reports_through_trap() {
    let mut m = Module::new("dead");
    let mut b = FuncBuilder::new("dead", vec![], None);
    let tid = b.thread_id();
    let is0 = b.icmp_eq(tid, Operand::i64(0));
    let wait = b.new_block();
    let done = b.new_block();
    b.cond_br(is0, wait, done);
    b.switch_to(wait);
    b.aligned_barrier();
    b.br(done);
    b.switch_to(done);
    b.ret(None);
    let m = finish_kernel(m, b);
    let mut dev = sanitized_device(m);
    let err = dev.launch("dead", Launch::new(1, 2), &[]).unwrap_err();
    assert_eq!(err.kind, TrapKind::BarrierDeadlock);
    assert_eq!(dev.sanitizer_counts(), (0, 1));
    let r = rendered(&dev);
    assert_eq!(r.len(), 1);
    assert!(
        r[0].contains("reached by only 1 of 2 threads (1 already exited)"),
        "got: {}",
        r[0]
    );
}

/// The modern runtime's cond-write sink (`__omp_rtl_dummy`) takes
/// concurrent plain stores *by design* (Fig. 7b); it is suppressed.
#[test]
fn cond_write_sink_is_suppressed() {
    let mut m = Module::new("sink");
    m.add_global(Global::new("__omp_rtl_dummy", Space::Shared, 8, Init::Zero));
    let g = m.find_global("__omp_rtl_dummy").unwrap();
    let mut b = FuncBuilder::new("sink", vec![], None);
    let tid = b.thread_id();
    b.store(Ty::I64, Operand::Global(g), tid);
    b.ret(None);
    let m = finish_kernel(m, b);
    let mut dev = sanitized_device(m);
    let metrics = dev.launch("sink", Launch::new(1, 8), &[]).unwrap();
    assert_eq!(metrics.sanitizer_races, 0);
    assert!(dev.sanitizer_reports().is_empty());
}

/// Sanitizing must not perturb execution: cycles, instructions, and the
/// result image are identical with the sanitizer on and off, even for a
/// racy kernel.
#[test]
fn sanitizer_does_not_change_execution() {
    let run = |sanitize: bool| {
        let mut dev = Device::load(write_write_module(), DeviceConfig::default());
        dev.set_sanitize_strict(false);
        dev.set_sanitize(sanitize);
        let m = dev.launch("wr", Launch::new(1, 4), &[]).unwrap();
        (m.cycles, m.instructions, m.barriers, dev.global_bytes().to_vec())
    };
    let off = run(false);
    let on = run(true);
    assert_eq!(off, on);

    let mut plain = Device::load(write_write_module(), DeviceConfig::default());
    plain.set_sanitize(false);
    plain.launch("wr", Launch::new(1, 4), &[]).unwrap();
    assert!(plain.sanitizer_reports().is_empty());
    assert_eq!(plain.sanitizer_counts(), (0, 0));
}

/// Strict mode turns findings of an otherwise clean launch into a typed
/// trap that names the counts.
#[test]
fn strict_mode_promotes_findings_to_trap() {
    let mut dev = Device::load(write_write_module(), DeviceConfig::default());
    dev.set_sanitize_strict(true);
    let err = dev.launch("wr", Launch::new(1, 2), &[]).unwrap_err();
    assert_eq!(
        err.kind,
        TrapKind::SanitizerViolation {
            races: 1,
            divergences: 0
        }
    );
    assert_eq!(err.team, 0);
    assert_eq!(err.thread, 1);
    // Reports remain inspectable after the strict trap.
    assert_eq!(dev.sanitizer_reports().len(), 1);
}
