//! End-to-end interpreter smoke tests: hand-built IR kernels executed on the
//! virtual device.

use nzomp_ir::builder::build_counted_loop;
use nzomp_ir::{ExecMode, FuncBuilder, Global, Init, Module, Operand, Space, Ty};
use nzomp_vgpu::device::Launch;
use nzomp_vgpu::{Device, DeviceConfig, RtVal, TrapKind};

/// CUDA-style grid-stride vector add: `out[i] = a[i] + b[i]`.
fn build_vecadd() -> Module {
    let mut m = Module::new("vecadd");
    let mut b = FuncBuilder::new(
        "vecadd",
        vec![Ty::Ptr, Ty::Ptr, Ty::Ptr, Ty::I64],
        None,
    );
    let (a, bb, out, n) = (b.param(0), b.param(1), b.param(2), b.param(3));
    let tid = b.thread_id();
    let bid = b.block_id();
    let bdim = b.block_dim();
    let gdim = b.grid_dim();
    let base = b.mul(bid, bdim);
    let start = b.add(base, tid);
    let stride = b.mul(bdim, gdim);
    build_counted_loop(&mut b, start, n, stride, |b, i| {
        let pa = b.gep(a, i, 8);
        let pb = b.gep(bb, i, 8);
        let po = b.gep(out, i, 8);
        let va = b.load(Ty::F64, pa);
        let vb = b.load(Ty::F64, pb);
        let sum = b.fadd(va, vb);
        b.store(Ty::F64, po, sum);
    });
    b.ret(None);
    let f = m.add_function(b.finish());
    m.add_kernel(f, ExecMode::Spmd);
    nzomp_ir::verify_module(&m).unwrap();
    m
}

#[test]
fn vecadd_runs_and_matches() {
    let m = build_vecadd();
    let mut dev = Device::load(m, DeviceConfig::default());
    let n = 1000usize;
    let a: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let b: Vec<f64> = (0..n).map(|i| (i * 2) as f64).collect();
    let pa = dev.alloc_f64(&a);
    let pb = dev.alloc_f64(&b);
    let po = dev.alloc((n * 8) as u64);
    let metrics = dev
        .launch(
            "vecadd",
            Launch::new(4, 64),
            &[RtVal::P(pa), RtVal::P(pb), RtVal::P(po), RtVal::I(n as i64)],
        )
        .unwrap();
    let out = dev.read_f64(po, n).unwrap();
    for i in 0..n {
        assert_eq!(out[i], (i + i * 2) as f64, "index {i}");
    }
    assert!(metrics.instructions > 0);
    assert!(metrics.cycles > 0);
    assert!(metrics.global_accesses >= 3 * n as u64);
    assert_eq!(metrics.smem_bytes, 0);
}

#[test]
fn vecadd_deterministic_cycles() {
    let run = || {
        let m = build_vecadd();
        let mut dev = Device::load(m, DeviceConfig::default());
        let a = vec![1.0; 256];
        let pa = dev.alloc_f64(&a);
        let pb = dev.alloc_f64(&a);
        let po = dev.alloc(256 * 8);
        dev.launch(
            "vecadd",
            Launch::new(2, 32),
            &[RtVal::P(pa), RtVal::P(pb), RtVal::P(po), RtVal::I(256)],
        )
        .unwrap()
        .cycles
    };
    assert_eq!(run(), run());
}

/// Barrier alignment: all threads reach the barrier; kernel completes.
#[test]
fn barrier_releases_all_threads() {
    let mut m = Module::new("bar");
    m.add_global(Global::new("buf", Space::Shared, 8 * 64, Init::Zero));
    let g = m.find_global("buf").unwrap();
    let mut b = FuncBuilder::new("bar", vec![Ty::Ptr], None);
    let out = b.param(0);
    let tid = b.thread_id();
    // buf[tid] = tid; barrier; out[tid] = buf[63 - tid]
    let slot = b.gep(Operand::Global(g), tid, 8);
    b.store(Ty::I64, slot, tid);
    b.aligned_barrier();
    let rev = b.sub(Operand::i64(63), tid);
    let other = b.gep(Operand::Global(g), rev, 8);
    let v = b.load(Ty::I64, other);
    let oslot = b.gep(out, tid, 8);
    b.store(Ty::I64, oslot, v);
    b.ret(None);
    let f = m.add_function(b.finish());
    m.add_kernel(f, ExecMode::Spmd);
    nzomp_ir::verify_module(&m).unwrap();

    let mut dev = Device::load(m, DeviceConfig::default());
    let po = dev.alloc(8 * 64);
    let metrics = dev
        .launch("bar", Launch::new(1, 64), &[RtVal::P(po)])
        .unwrap();
    let out = dev.read_i64(po, 64).unwrap();
    for t in 0..64 {
        assert_eq!(out[t], 63 - t as i64);
    }
    assert_eq!(metrics.barriers, 1);
    assert_eq!(metrics.smem_bytes, 8 * 64);
}

/// Cross-thread access to local memory must trap (the globalization hazard).
#[test]
fn cross_thread_local_access_traps() {
    let mut m = Module::new("xlocal");
    m.add_global(Global::new("slot", Space::Shared, 8, Init::Zero));
    let g = m.find_global("slot").unwrap();
    let mut b = FuncBuilder::new("xlocal", vec![], None);
    let tid = b.thread_id();
    let local = b.alloca(8);
    b.store(Ty::I64, local, tid);
    // Thread 0 publishes its *local* pointer; all threads then read through
    // it after a barrier — thread 1 must trap.
    let is0 = b.icmp_eq(tid, Operand::i64(0));
    let t_bb = b.new_block();
    let join = b.new_block();
    b.cond_br(is0, t_bb, join);
    b.switch_to(t_bb);
    b.store(Ty::Ptr, Operand::Global(g), local);
    b.br(join);
    b.switch_to(join);
    b.barrier();
    let p = b.load(Ty::Ptr, Operand::Global(g));
    let _v = b.load(Ty::I64, p);
    b.ret(None);
    let f = m.add_function(b.finish());
    m.add_kernel(f, ExecMode::Spmd);
    nzomp_ir::verify_module(&m).unwrap();

    let mut dev = Device::load(m, DeviceConfig::default());
    let err = dev.launch("xlocal", Launch::new(1, 2), &[]).unwrap_err();
    assert!(matches!(
        err.kind,
        TrapKind::CrossThreadLocalAccess { owner: 0, .. }
    ));
}

/// An aligned barrier not reached by all threads deadlocks deterministically.
#[test]
fn lone_barrier_deadlocks() {
    let mut m = Module::new("dead");
    let mut b = FuncBuilder::new("dead", vec![], None);
    let tid = b.thread_id();
    let is0 = b.icmp_eq(tid, Operand::i64(0));
    let wait = b.new_block();
    let done = b.new_block();
    b.cond_br(is0, wait, done);
    b.switch_to(wait);
    b.aligned_barrier();
    b.br(done);
    b.switch_to(done);
    b.ret(None);
    let f = m.add_function(b.finish());
    m.add_kernel(f, ExecMode::Spmd);

    let mut dev = Device::load(m, DeviceConfig::default());
    let err = dev.launch("dead", Launch::new(1, 2), &[]).unwrap_err();
    assert_eq!(err.kind, TrapKind::BarrierDeadlock);
}

/// Device malloc + free round trip, and OOM detection.
#[test]
fn device_malloc_roundtrip() {
    let mut m = Module::new("mall");
    let mut b = FuncBuilder::new("mall", vec![Ty::Ptr], None);
    let out = b.param(0);
    let p = b.malloc(Operand::i64(16));
    b.store(Ty::I64, p, Operand::i64(1234));
    let v = b.load(Ty::I64, p);
    b.store(Ty::I64, out, v);
    b.free(p);
    b.ret(None);
    let f = m.add_function(b.finish());
    m.add_kernel(f, ExecMode::Spmd);

    let mut dev = Device::load(m, DeviceConfig::default());
    let po = dev.alloc(8);
    let metrics = dev
        .launch("mall", Launch::new(1, 1), &[RtVal::P(po)])
        .unwrap();
    assert_eq!(dev.read_i64(po, 1).unwrap()[0], 1234);
    assert_eq!(metrics.device_mallocs, 1);
}

/// Assume checking traps in debug configs and is free in release configs.
#[test]
fn assume_checked_only_in_debug() {
    let build = || {
        let mut m = Module::new("asm");
        let mut b = FuncBuilder::new("asm", vec![Ty::I64], None);
        let x = b.param(0);
        let c = b.icmp_eq(x, Operand::i64(42));
        b.assume(c);
        b.ret(None);
        let f = m.add_function(b.finish());
        m.add_kernel(f, ExecMode::Spmd);
        m
    };
    let mut debug_dev = Device::load(build(), DeviceConfig::default());
    let err = debug_dev
        .launch("asm", Launch::new(1, 1), &[RtVal::I(7)])
        .unwrap_err();
    assert_eq!(err.kind, TrapKind::AssumeViolated);

    let release_cfg = DeviceConfig {
        check_assumes: false,
        ..DeviceConfig::default()
    };
    let mut rel_dev = Device::load(build(), release_cfg);
    rel_dev
        .launch("asm", Launch::new(1, 1), &[RtVal::I(7)])
        .unwrap();
}

/// Occupancy: shared-memory-hungry kernels take more waves and more time.
#[test]
fn occupancy_penalizes_shared_memory() {
    let build = |smem: u64| {
        let mut m = Module::new("occ");
        if smem > 0 {
            m.add_global(Global::new("pad", Space::Shared, smem, Init::Zero));
        }
        let mut b = FuncBuilder::new("occ", vec![], None);
        // A little work so team cycles are nonzero.
        let x = b.add(Operand::i64(1), Operand::i64(2));
        let _ = b.mul(x, x);
        b.ret(None);
        let f = m.add_function(b.finish());
        m.add_kernel(f, ExecMode::Spmd);
        m
    };
    let run = |smem: u64| {
        let mut dev = Device::load(build(smem), DeviceConfig::default());
        dev.launch("occ", Launch::new(256, 64), &[]).unwrap()
    };
    let lean = run(0);
    let fat = run(48 * 1024);
    assert!(fat.waves > lean.waves, "{} vs {}", fat.waves, lean.waves);
    assert!(fat.cycles > lean.cycles);
}
