//! Pin test: an armed [`FaultPlan`] is stateless across launches.
//!
//! The consumed-site cursor (which site a thread fires next) lives in the
//! per-thread context that is rebuilt every launch, so launching twice
//! under the same armed plan injects the identical campaign twice —
//! fault seeds are independent between launches. A regression here would
//! silently skew every multi-launch fault campaign (the second launch
//! would run cleaner than seeded), so each facet is pinned separately.

use nzomp_ir::{ExecMode, FuncBuilder, Module, Operand, Ty};
use nzomp_vgpu::device::Launch;
use nzomp_vgpu::{
    Device, DeviceConfig, FaultAction, FaultPlan, FaultSite, RtVal, TrapKind,
};

/// `out[tid] = a[tid] + 1`, padded with arithmetic so step-targeted sites
/// land inside the body.
fn module() -> Module {
    let mut m = Module::new("relaunch");
    let mut b = FuncBuilder::new("k", vec![Ty::Ptr, Ty::Ptr], None);
    let tid = b.thread_id();
    let off = b.mul(tid, Operand::i64(8));
    let pa = b.ptr_add(b.param(0), off);
    let x = b.load(Ty::F64, pa);
    let mut v = b.fadd(x, Operand::f64(1.0));
    for _ in 0..8 {
        v = b.fadd(v, Operand::f64(0.0));
    }
    let po = b.ptr_add(b.param(1), off);
    b.store(Ty::F64, po, v);
    b.ret(None);
    let f = m.add_function(b.finish());
    m.add_kernel(f, ExecMode::Spmd);
    m
}

fn device() -> (Device, nzomp_vgpu::DevPtr, nzomp_vgpu::DevPtr) {
    let mut dev = Device::load(module(), DeviceConfig::default());
    let pa = dev.alloc_f64(&[1.0, 2.0, 3.0, 4.0]);
    let po = dev.alloc(32);
    (dev, pa, po)
}

/// A trap site fires at the same coordinates on every launch — the
/// cursor is not consumed by the first launch.
#[test]
fn trap_site_fires_identically_on_relaunch() {
    let (mut dev, pa, po) = device();
    dev.set_fault_plan(FaultPlan {
        seed: 0,
        sites: vec![FaultSite {
            team: 0,
            thread: 2,
            after_steps: 5,
            action: FaultAction::Trap(TrapKind::AssertFail),
        }],
        fuel_limit: None,
        heap_limit: None,
        device_sites: vec![],
    });
    let launch = Launch::new(1, 4);
    let args = [RtVal::P(pa), RtVal::P(po)];
    let first = dev.launch("k", launch, &args).unwrap_err();
    let second = dev.launch("k", launch, &args).unwrap_err();
    assert_eq!(first, second, "second launch saw a different campaign");
    assert_eq!(first.kind, TrapKind::AssertFail);
    assert_eq!((first.team, first.thread), (0, 2));
}

/// A corrupt-load site (which does not abort the launch) also re-fires:
/// both launches produce the identically corrupted output.
#[test]
fn corrupt_load_refires_on_relaunch() {
    let (mut dev, pa, po) = device();
    dev.set_fault_plan(FaultPlan {
        seed: 0,
        sites: vec![FaultSite {
            team: 0,
            thread: 1,
            after_steps: 0,
            action: FaultAction::CorruptLoad { xor: 1 << 52 },
        }],
        fuel_limit: None,
        heap_limit: None,
        device_sites: vec![],
    });
    let launch = Launch::new(1, 4);
    let args = [RtVal::P(pa), RtVal::P(po)];

    dev.launch("k", launch, &args).unwrap();
    let first = dev.read_f64(po, 4).unwrap();
    // The corruption must actually have landed, or this test is vacuous.
    assert_ne!(first[1].to_bits(), 3.0f64.to_bits(), "fault was inert");

    dev.launch("k", launch, &args).unwrap();
    let second = dev.read_f64(po, 4).unwrap();
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(&first),
        bits(&second),
        "second launch was injected differently"
    );
}

/// Fuel-limit plans re-apply the full budget each launch (the remaining
/// fuel of launch 1 must not leak into launch 2).
#[test]
fn fuel_limit_resets_between_launches() {
    let (mut dev, pa, po) = device();
    // Enough fuel for one full launch of 4 threads, but not for two if
    // the budget leaked across launches.
    dev.set_fault_plan(FaultPlan {
        seed: 0,
        sites: vec![],
        fuel_limit: Some(80),
        heap_limit: None,
        device_sites: vec![],
    });
    let launch = Launch::new(1, 4);
    let args = [RtVal::P(pa), RtVal::P(po)];
    let first = dev.launch("k", launch, &args);
    let second = dev.launch("k", launch, &args);
    assert_eq!(
        first.is_ok(),
        second.is_ok(),
        "step budget leaked across launches: {first:?} vs {second:?}"
    );
    if let (Err(a), Err(b)) = (&first, &second) {
        assert_eq!(a, b);
    }
}

/// The whole relaunch story holds in parallel execution too.
#[test]
fn relaunch_identical_across_worker_counts() {
    let outcomes: Vec<_> = [1usize, 4]
        .iter()
        .map(|&workers| {
            let (mut dev, pa, po) = device();
            dev.set_worker_threads(workers);
            dev.set_fault_plan(FaultPlan::from_seed(7, 2, 4));
            let launch = Launch::new(2, 4);
            let args = [RtVal::P(pa), RtVal::P(po)];
            let r1 = dev.launch("k", launch, &args).map(|m| m.cycles);
            let r2 = dev.launch("k", launch, &args).map(|m| m.cycles);
            (r1, r2, dev.global_bytes().to_vec())
        })
        .collect();
    assert_eq!(outcomes[0], outcomes[1], "worker count changed the campaign");
}
