//! Property tests on the memory substrate: pointer encoding, region
//! round-trips, and store/load width interactions.

use nzomp_vgpu::memory::{DevPtr, Region, Segment};
use proptest::prelude::*;

fn arb_segment() -> impl Strategy<Value = Segment> {
    prop_oneof![
        Just(Segment::Global),
        Just(Segment::Shared),
        Just(Segment::Local),
        Just(Segment::Constant),
        Just(Segment::Func),
    ]
}

proptest! {
    /// Pointer encode/decode round-trips for every field combination.
    #[test]
    fn ptr_roundtrip(seg in arb_segment(), owner in 0u32..0xff_ffff, off in 0u32..u32::MAX) {
        let p = DevPtr::new(seg, owner, off);
        prop_assert_eq!(p.segment(), seg);
        prop_assert_eq!(p.owner(), owner);
        prop_assert_eq!(p.offset(), off as u64);
        prop_assert!(!p.is_null() || (off == 0 && matches!(seg, Segment::Null)));
    }

    /// Pointer arithmetic preserves segment and owner, and add/sub cancel.
    #[test]
    fn ptr_add_cancels(seg in arb_segment(), owner in 0u32..0xff_ffff,
                       off in 0u32..i32::MAX as u32, delta in -1_000_000i64..1_000_000) {
        let p = DevPtr::new(seg, owner, off);
        let q = p.add_bytes(delta).add_bytes(-delta);
        prop_assert_eq!(p, q);
        let r = p.add_bytes(delta);
        prop_assert_eq!(r.segment(), seg);
        prop_assert_eq!(r.owner(), owner);
    }

    /// Region write-then-read returns the written value for any aligned or
    /// unaligned in-bounds access of any width.
    #[test]
    fn region_roundtrip(size in 1usize..256, off in 0u64..256, width in prop::sample::select(vec![1u64,4,8]), value: i64) {
        let mut r = Region::with_size(size);
        if off + width <= size as u64 {
            r.write(off, width, value).unwrap();
            let got = r.read(off, width).unwrap();
            let mask = if width == 8 { -1i64 } else { (1i64 << (width*8)) - 1 };
            prop_assert_eq!(got, value & mask);
        } else {
            prop_assert!(r.write(off, width, value).is_err());
            prop_assert!(r.read(off, width).is_err());
        }
    }

    /// Disjoint writes never interfere.
    #[test]
    fn region_disjoint_writes(a: i64, b: i64) {
        let mut r = Region::with_size(32);
        r.write(0, 8, a).unwrap();
        r.write(16, 8, b).unwrap();
        prop_assert_eq!(r.read(0, 8).unwrap(), a);
        prop_assert_eq!(r.read(16, 8).unwrap(), b);
        prop_assert_eq!(r.read(8, 8).unwrap(), 0);
    }

    /// Overlapping narrow writes merge little-endian.
    #[test]
    fn region_narrow_overlays(full: i64, byte in 0u8..=255) {
        let mut r = Region::with_size(8);
        r.write(0, 8, full).unwrap();
        r.write(3, 1, byte as i64).unwrap();
        let got = r.read(0, 8).unwrap() as u64;
        let mut expect = (full as u64).to_le_bytes();
        expect[3] = byte;
        prop_assert_eq!(got, u64::from_le_bytes(expect));
    }
}
