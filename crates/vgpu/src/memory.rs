//! Pointer encoding and memory segments.
//!
//! Device pointers are 64-bit values with a segment tag in the top byte:
//!
//! ```text
//! [63..56] tag   [55..32] owner (local: thread index; else 0)   [31..0] offset
//! ```
//!
//! `Local` pointers carry their owning thread: dereferencing another
//! thread's local pointer traps — this is precisely the hazard the OpenMP
//! frontend's *globalization* (paper §IV-A2) exists to avoid, so the trap
//! gives us a hard correctness check that de-globalization is only applied
//! when legal.

use crate::error::TrapKind;

/// Memory segment of a device pointer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Segment {
    Null,
    Global,
    Shared,
    Local,
    Constant,
    /// Encoded function pointer (offset = function index).
    Func,
}

const TAG_NULL: u64 = 0;
const TAG_GLOBAL: u64 = 1;
const TAG_SHARED: u64 = 2;
const TAG_LOCAL: u64 = 3;
const TAG_CONST: u64 = 4;
const TAG_FUNC: u64 = 5;

/// An encoded device pointer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DevPtr(pub u64);

impl DevPtr {
    pub const NULL: DevPtr = DevPtr(0);

    pub fn new(seg: Segment, owner: u32, offset: u32) -> DevPtr {
        let tag = match seg {
            Segment::Null => TAG_NULL,
            Segment::Global => TAG_GLOBAL,
            Segment::Shared => TAG_SHARED,
            Segment::Local => TAG_LOCAL,
            Segment::Constant => TAG_CONST,
            Segment::Func => TAG_FUNC,
        };
        DevPtr((tag << 56) | ((owner as u64 & 0xff_ffff) << 32) | offset as u64)
    }

    pub fn global(offset: u32) -> DevPtr {
        DevPtr::new(Segment::Global, 0, offset)
    }

    pub fn shared(offset: u32) -> DevPtr {
        DevPtr::new(Segment::Shared, 0, offset)
    }

    pub fn local(owner_thread: u32, offset: u32) -> DevPtr {
        DevPtr::new(Segment::Local, owner_thread, offset)
    }

    pub fn constant(offset: u32) -> DevPtr {
        DevPtr::new(Segment::Constant, 0, offset)
    }

    pub fn func(index: u32) -> DevPtr {
        DevPtr::new(Segment::Func, 0, index)
    }

    #[inline]
    pub fn segment(self) -> Segment {
        match self.0 >> 56 {
            TAG_NULL => Segment::Null,
            TAG_GLOBAL => Segment::Global,
            TAG_SHARED => Segment::Shared,
            TAG_LOCAL => Segment::Local,
            TAG_CONST => Segment::Constant,
            TAG_FUNC => Segment::Func,
            _ => Segment::Null,
        }
    }

    #[inline]
    pub fn offset(self) -> u64 {
        self.0 & 0xffff_ffff
    }

    #[inline]
    pub fn owner(self) -> u32 {
        ((self.0 >> 32) & 0xff_ffff) as u32
    }

    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Pointer arithmetic preserves tag and owner. Negative offsets wrap
    /// within the 32-bit offset field (out-of-bounds is caught on access).
    #[inline]
    pub fn add_bytes(self, delta: i64) -> DevPtr {
        let off = (self.offset() as i64).wrapping_add(delta) as u64 & 0xffff_ffff;
        DevPtr((self.0 & !0xffff_ffffu64) | off)
    }
}

/// A flat byte-addressable memory region with bounds checking.
#[derive(Clone, Debug, Default)]
pub struct Region {
    pub bytes: Vec<u8>,
}

impl Region {
    pub fn with_size(size: usize) -> Region {
        Region {
            bytes: vec![0; size],
        }
    }

    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    pub fn grow_to(&mut self, size: usize) {
        if self.bytes.len() < size {
            self.bytes.resize(size, 0);
        }
    }

    pub fn read(&self, off: u64, size: u64) -> Result<i64, TrapKind> {
        let end = off.checked_add(size).ok_or(TrapKind::OutOfBounds)?;
        if end as usize > self.bytes.len() {
            return Err(TrapKind::OutOfBounds);
        }
        let mut buf = [0u8; 8];
        buf[..size as usize].copy_from_slice(&self.bytes[off as usize..end as usize]);
        Ok(i64::from_le_bytes(buf))
    }

    pub fn write(&mut self, off: u64, size: u64, value: i64) -> Result<(), TrapKind> {
        let end = off.checked_add(size).ok_or(TrapKind::OutOfBounds)?;
        if end as usize > self.bytes.len() {
            return Err(TrapKind::OutOfBounds);
        }
        let bytes = value.to_le_bytes();
        self.bytes[off as usize..end as usize].copy_from_slice(&bytes[..size as usize]);
        Ok(())
    }
}

/// Sign-extend an integer loaded with `size` bytes (loads are sign-free in
/// the IR; narrow values are kept zero-extended, casts handle signedness).
pub fn mask_to_width(value: i64, size: u64) -> i64 {
    match size {
        1 => value & 0xff,
        4 => value & 0xffff_ffff,
        _ => value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ptr_roundtrip() {
        let p = DevPtr::new(Segment::Local, 17, 4096);
        assert_eq!(p.segment(), Segment::Local);
        assert_eq!(p.owner(), 17);
        assert_eq!(p.offset(), 4096);
    }

    #[test]
    fn ptr_arithmetic_keeps_tag() {
        let p = DevPtr::shared(100);
        let q = p.add_bytes(-42);
        assert_eq!(q.segment(), Segment::Shared);
        assert_eq!(q.offset(), 58);
    }

    #[test]
    fn region_bounds() {
        let mut r = Region::with_size(8);
        assert!(r.write(0, 8, -1).is_ok());
        assert_eq!(r.read(0, 8).unwrap(), -1);
        assert_eq!(r.read(4, 4).unwrap(), 0xffff_ffff);
        assert!(r.read(5, 8).is_err());
        assert!(r.write(8, 1, 0).is_err());
    }

    #[test]
    fn null_is_null() {
        assert!(DevPtr::NULL.is_null());
        assert_eq!(DevPtr::NULL.segment(), Segment::Null);
    }
}
