//! The bytecode execution tier: a register-allocated, pre-resolved program
//! form and its linear dispatch loop.
//!
//! Lowering (`lower.rs`) runs once per module and moves every per-step
//! lookup the interpreter performs out of the hot loop:
//!
//! * **Register allocation** — SSA results with at least one use get a
//!   dense value slot; dead results share one scratch slot. Frames carry a
//!   flat `Vec<RtVal>` sized to the slot count instead of the instruction
//!   arena.
//! * **Pre-translated operands** ([`Src`]) — instruction results become
//!   slot reads, params become argument reads, constants (including
//!   resolved global addresses and function pointers) are immediate
//!   values. Operands the interpreter would reject at evaluation time
//!   become [`Src::Trap`] entries that reproduce the exact trap lazily.
//! * **Pre-resolved control flow** ([`Edge`]) — branch targets are op
//!   offsets and phi materialization is a pre-computed parallel move list;
//!   the superinstruction shape (operand fetch fused into each op,
//!   branch plus phi-moves fused into each edge) is what removes the
//!   per-step arena/block/operand chasing.
//!
//! The dispatch loop keeps the interpreter's observable behavior *bit for
//! bit*: one op is one fuel unit and one step, fault polls and watchdog
//! fuel checks fire at identical op counts, cycle/instruction accounting
//! uses the same [`CostModel`](crate::cost::CostModel) tables in the same
//! order, and malformed shapes trap with the interpreter's exact messages
//! at the exact op where the interpreter would meet them (lowering never
//! fails eagerly). See `docs/exec-tiers.md` for the full contract.

mod lower;

pub(crate) use lower::lower_module;

use nzomp_ir::inst::{AtomicOp, BinOp, CastKind, Pred, UnOp};
use nzomp_ir::Ty;

use crate::error::TrapKind;
use crate::exec::{malformed, ExecBackend, Status, TeamExec, ThreadCtx};
use crate::gmem::{combine_atomic, rtval_from_bits, GlobalMem};
use crate::memory::{DevPtr, Segment};
use crate::ops::{corrupt_value, exec_bin, exec_cast, exec_cmp, exec_un};
use crate::sanitize::{AccessKind, IrLoc};
use crate::value::RtVal;

/// A pre-translated operand. Resolution that the interpreter performs per
/// evaluation (arena lookup, constant tagging, global address lookup) has
/// already happened; what remains is a slot read, an argument read, or a
/// lazily-reproduced evaluation trap. Immediates (constants, resolved
/// globals, function pointers) have no variant of their own: lowering
/// interns each into a dedicated value slot that frame setup pre-fills
/// (see [`BcFunc::consts`]), so the overwhelmingly common operand kind is
/// `Reg` and the read compiles to a compare plus an unchecked load — a
/// third operand kind turns this match into an indirect jump per operand,
/// which measurably drags the dispatch loop.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Src {
    /// Value slot in the current frame.
    Reg(u32),
    /// Function argument `n` (bounds-checked at read, like the
    /// interpreter's param lookup — callees can be entered with any arity
    /// through indirect calls of hand-built modules).
    Arg(u32),
    /// Evaluating this operand traps (e.g. it references a missing arena
    /// instruction). Index into [`BcFunc::traps`]. Lazy: the trap fires
    /// only if and when the operand is actually evaluated.
    Trap(u32),
}

/// A resolved control-flow edge: where to go and which phi moves to
/// materialize (parallel-copy semantics, evaluated in phi listing order).
#[derive(Clone, Debug)]
pub(crate) enum Edge {
    Go {
        /// Target op offset (the target block's first post-phi op).
        pc: u32,
        /// `(dst_slot, src)` per leading phi of the target block. A
        /// malformed phi (missing incoming / missing arena entry) appears
        /// as a [`Src::Trap`] move at its listing position, so traps
        /// interleave with prior phi evaluations exactly as in the
        /// interpreter's jump scan.
        moves: Box<[(u32, Src)]>,
    },
    /// Taking this edge traps (branch to a missing block).
    Trap(u32),
}

/// One bytecode op. Each op corresponds to exactly one interpreter step —
/// one fuel unit, one fault-poll point — so cross-tier step counts align.
#[derive(Clone, Debug)]
pub(crate) enum Op {
    Bin { op: BinOp, a: Src, b: Src, dst: u32 },
    Un { op: UnOp, a: Src, dst: u32 },
    Cast { kind: CastKind, to: Ty, a: Src, dst: u32 },
    Cmp { pred: Pred, float: bool, a: Src, b: Src, dst: u32 },
    Select { c: Src, t: Src, f: Src, dst: u32 },
    Load { ty: Ty, p: Src, dst: u32 },
    Store { ty: Ty, p: Src, v: Src },
    PtrAdd { a: Src, b: Src, dst: u32 },
    /// `size` is pre-aligned to 8 bytes at lowering.
    Alloca { size: u64, dst: u32 },
    /// Direct call, statically resolved and checked at lowering.
    Call {
        target: u32,
        args: Box<[Src]>,
        ret_dst: Option<u32>,
        runtime: bool,
    },
    /// Indirect call; the callee is resolved and checked at dispatch.
    CallInd {
        callee: Src,
        args: Box<[Src]>,
        ret_dst: Option<u32>,
    },
    Atomic {
        op: AtomicOp,
        ty: Ty,
        p: Src,
        v: Src,
        dst: u32,
        /// Whether the result register is live (pre-computed from the
        /// used-results map; buffered global atomics validate their
        /// observed value at the wave merge exactly when it is).
        used: bool,
    },
    Cas { ty: Ty, p: Src, e: Src, n: Src, dst: u32 },
    ThreadId { dst: u32 },
    TeamId { dst: u32 },
    BlockDim { dst: u32 },
    GridDim { dst: u32 },
    Barrier { aligned: bool },
    /// `None` reproduces the interpreter's missing-operand trap — but only
    /// when assume checking is enabled, exactly like the interpreter.
    Assume { c: Option<Src> },
    Malloc { size: Src, dst: u32 },
    Free { p: Src },
    Br { edge: u32 },
    CondBr { c: Src, t: u32, f: u32 },
    Ret { v: Option<Src> },
    /// Trap without instruction accounting (terminator-position traps and
    /// pre-issue malformed shapes: missing blocks, missing arena entries).
    TrapBare { t: u32 },
    /// Trap *as* an instruction: charge issue + count the instruction,
    /// then trap (e.g. direct call of a declaration, phi executed
    /// directly, `assert.fail`).
    TrapInst { t: u32 },
}

/// One lowered function.
#[derive(Clone, Debug)]
pub(crate) struct BcFunc {
    pub ops: Vec<Op>,
    /// `(block, inst)` IR position per op — the sanitizer's [`IrLoc`]
    /// side table (consulted only when sanitizing is armed).
    pub locs: Vec<(u32, u32)>,
    pub edges: Vec<Edge>,
    /// Pre-built trap values (malformed-IR messages, static call errors).
    pub traps: Vec<TrapKind>,
    /// Interned immediate operands as `(slot, value)` pairs: frame setup
    /// writes each value into its dedicated slot (disjoint from every
    /// instruction-result slot), and operands reference them as plain
    /// [`Src::Reg`] reads.
    pub consts: Vec<(u32, RtVal)>,
    /// Frame value-slot count (slot 0 is the shared dead-result scratch).
    pub n_slots: u32,
    /// Entry op offset.
    pub entry: u32,
}

/// Per-function call metadata for indirect-call checks at dispatch.
#[derive(Clone, Debug)]
pub(crate) struct FuncMeta {
    pub name: String,
    pub params: u32,
    pub is_decl: bool,
    /// OpenMP runtime entry point (`__kmpc*` / `omp_*`) — counted as a
    /// runtime call.
    pub runtime: bool,
}

/// A whole module lowered to bytecode. Pure function of the IR module and
/// the device's global layout, so the device caches it across launches.
#[derive(Clone, Debug)]
pub(crate) struct BcModule {
    pub funcs: Vec<BcFunc>,
    pub meta: Vec<FuncMeta>,
}

/// One bytecode call frame.
#[derive(Debug)]
pub(crate) struct BcFrame {
    func: u32,
    pc: u32,
    regs: Vec<RtVal>,
    args: Vec<RtVal>,
    /// Caller value slot that receives the return value.
    ret_dst: Option<u32>,
    /// Thread-local stack watermark to restore on return.
    local_base: u64,
}

/// The bytecode backend: a shared reference to the lowered module.
pub(crate) struct BcBackend<'a> {
    pub bc: &'a BcModule,
}

/// Fast operand read. Returns `None` for [`Src::Trap`] and
/// out-of-range indexes; [`getv_err`] reconstructs the exact trap on
/// that cold path. Keeping the hot return at 16 bytes (vs. a
/// `Result<_, TrapKind>` at 40) matters: this runs 1–3× per op.
#[inline(always)]
fn getv(regs: &[RtVal], frame: &BcFrame, s: &Src) -> Option<RtVal> {
    match *s {
        // SAFETY: every `Reg` index a lowered function can name is
        // range-checked against the function's slot count by the
        // validation gate in `lower.rs` (`validated`), and frames always
        // carry exactly `n_slots` value slots. Verified once at lowering,
        // dispatched unchecked (the JVM/Wasm layout). `Arg` stays
        // checked: callee arity varies at runtime through indirect calls.
        Src::Reg(i) => Some(unsafe { *regs.get_unchecked(i as usize) }),
        Src::Arg(i) => frame.args.get(i as usize).copied(),
        Src::Trap(_) => None,
    }
}

/// The slow half of [`getv`]: rebuild the trap a failed read stands for.
#[cold]
fn getv_err(traps: &[TrapKind], s: &Src) -> TrapKind {
    match *s {
        Src::Reg(_) => malformed("bytecode register out of range"),
        Src::Arg(i) => malformed(format!("operand references missing param {i}")),
        Src::Trap(t) => trap_at(traps, t),
    }
}

/// A fresh frame register file: zeroed slots with the function's interned
/// immediates materialized into their dedicated slots.
fn fresh_regs(f: &BcFunc) -> Vec<RtVal> {
    let mut regs = vec![RtVal::I(0); f.n_slots as usize];
    for &(slot, v) in &f.consts {
        // Const slots are allocated from the same counter as value slots,
        // so they are always in range; the guard keeps this panic-free.
        if let Some(r) = regs.get_mut(slot as usize) {
            *r = v;
        }
    }
    regs
}

#[inline(always)]
fn setv(regs: &mut [RtVal], i: u32, v: RtVal) {
    // The dead-result scratch (slot 0) absorbs every dead write.
    // SAFETY: destination slots are range-checked against the slot count
    // by the validation gate in `lower.rs` (`validated`), and frames
    // always carry exactly `n_slots` value slots.
    unsafe { *regs.get_unchecked_mut(i as usize) = v }
}

#[cold]
fn trap_at(traps: &[TrapKind], t: u32) -> TrapKind {
    traps
        .get(t as usize)
        .cloned()
        .unwrap_or_else(|| malformed("bytecode trap index out of range"))
}

#[inline]
fn loc_of(cur: &BcFunc, func: u32, opi: usize) -> IrLoc {
    let (block, inst) = cur.locs.get(opi).copied().unwrap_or((0, 0));
    IrLoc { func, block, inst }
}

impl<'a> ExecBackend<'a> for BcBackend<'a> {
    type Frame = BcFrame;

    fn kernel_frame(
        exec: &TeamExec<'a, Self>,
        kernel: u32,
        args: &[RtVal],
    ) -> Result<BcFrame, TrapKind> {
        let Some(f) = exec.backend.bc.funcs.get(kernel as usize) else {
            return Err(malformed(format!("kernel index {kernel} out of range")));
        };
        Ok(BcFrame {
            func: kernel,
            pc: f.entry,
            regs: fresh_regs(f),
            args: args.to_vec(),
            ret_dst: None,
            local_base: 0,
        })
    }

    fn run_thread(
        exec: &mut TeamExec<'a, Self>,
        thread: &mut ThreadCtx<BcFrame>,
    ) -> Result<(), TrapKind> {
        let bc: &'a BcModule = exec.backend.bc;
        let cost = exec.cost;
        let Some(mut frame) = thread.frames.pop() else {
            return Err(malformed("live thread has no frame"));
        };
        let mut cur: &'a BcFunc = match bc.funcs.get(frame.func as usize) {
            Some(f) => f,
            None => {
                let e = malformed(format!("frame references missing function {}", frame.func));
                thread.frames.push(frame);
                return Err(e);
            }
        };
        // Hoisted views of the current function's tables: plain slice
        // locals (re-set on call/return) so the dispatch loop never
        // reloads the `BcFunc` fields per op.
        let mut ops: &'a [Op] = &cur.ops;
        let mut traps: &'a [TrapKind] = &cur.traps;
        let mut edges: &'a [Edge] = &cur.edges;

        // Reusable phi parallel-copy buffer (no per-branch allocation).
        let mut movebuf: Vec<RtVal> = Vec::new();

        // The live frame's value slots, held as a plain local for the
        // whole run (restored into the frame at every exit, call and
        // return) so slot reads/writes don't round-trip the frame struct.
        let mut regs: Vec<RtVal> = std::mem::take(&mut frame.regs);

        // Hot accounting state, cached in locals for the whole run: the
        // compiler cannot keep these in registers on its own because every
        // memory helper takes `&mut exec` / `&thread`. `sync!` writes the
        // exact values back at every exit (trap, barrier, return) and the
        // step counter is synced before the fault-poll slow path, so no
        // observable state ever lags. (`next_fault` is a read cache of
        // `thread.next_fault_step`, reloaded after each poll — the poll is
        // its only writer.)
        // The op cursor is a raw pointer rather than an index: `Op` is 40
        // bytes, so an indexed fetch pays a multiply on every dispatch,
        // while a pointer is a plain load + bump. It is rebased whenever
        // `ops` changes (call/return) and folded back to an index by
        // `cur_pc!` at every (cold) exit.
        // SAFETY: `frame.pc` is always in range for `ops` — it is either a
        // validated entry pc or a resume point stored by this loop, and the
        // validation gate in `lower.rs` guarantees neither a `Call` nor a
        // `Barrier` can be the last op (the last op is a terminator), so a
        // stored "next op" index never reaches `ops.len()`.
        let mut op_ptr: *const Op = unsafe { ops.as_ptr().add(frame.pc as usize) };
        macro_rules! cur_pc {
            () => {
                ((op_ptr as usize - ops.as_ptr() as usize) / std::mem::size_of::<Op>()) as u32
            };
        }
        let c_issue = cost.issue;
        let c_alu = cost.alu;
        let c_fp = cost.fp;
        // Fuel, the step counter and the dispatch counter all advance by
        // exactly one per dispatched op, so the loop carries a single
        // progress counter `n` (ops whose fuel is consumed this run) with
        // precomputed trip points instead of three live counters.
        let fuel0 = exec.fuel;
        let steps0 = thread.steps;
        let dispatched0 = exec.counters.dispatched;
        let mut n: u64 = 0;
        let mut fault_at = thread.next_fault_step.saturating_sub(steps0);
        let mut instructions = exec.counters.instructions;
        let mut flops = exec.counters.flops;
        // `busy_cycles` tracks `cycles` exactly except for plain-ALU unops
        // (charged to `cycles` only); carrying that difference in `quiet`
        // and deriving busy at exit drops an add from every issue/charge.
        let cycles0 = thread.cycles;
        let busy0 = thread.busy_cycles;
        let mut cycles = cycles0;
        let mut quiet: u64 = 0;
        let mut memc = thread.mem_cycles;

        macro_rules! sync {
            () => {{
                exec.fuel = fuel0 - n;
                thread.steps = steps0 + n;
                exec.counters.dispatched = dispatched0 + n;
                exec.counters.instructions = instructions;
                exec.counters.flops = flops;
                thread.cycles = cycles;
                thread.busy_cycles = busy0 + (cycles - cycles0 - quiet);
                thread.mem_cycles = memc;
            }};
        }
        // Exit with an error. A single epilogue below the dispatch loop
        // performs the frame restore and counter write-back — keeping ~30
        // trap sites down to one `break` each keeps the loop body small
        // (code bloat in the exits measurably degrades hot-path codegen).
        macro_rules! fail {
            ($e:expr) => {{
                break ($e, false);
            }};
        }
        macro_rules! try_v {
            ($e:expr) => {
                match $e {
                    Ok(v) => v,
                    Err(k) => fail!(k),
                }
            };
        }
        // Operand read with the trap rebuilt off the hot path.
        macro_rules! readv {
            ($s:expr) => {{
                let s = $s;
                match getv(&regs, &frame, s) {
                    Some(v) => v,
                    None => fail!(getv_err(traps, s)),
                }
            }};
        }
        // Instruction accounting (instruction-position ops only;
        // terminators charge nothing, exactly like the interpreter).
        macro_rules! issue {
            () => {{
                instructions += 1;
                cycles += c_issue;
            }};
        }
        macro_rules! charge {
            ($c:expr) => {{
                cycles += $c;
            }};
        }
        macro_rules! charge_mem {
            ($c:expr) => {{
                let c = $c;
                cycles += c;
                memc += c;
            }};
        }
        // Take a resolved edge: materialize phi moves (evaluate all, then
        // write all), count them, and jump.
        macro_rules! follow {
            ($ei:expr) => {{
                // SAFETY: edge indexes are range-checked by the
                // validation gate in `lower.rs`.
                match unsafe { edges.get_unchecked($ei as usize) } {
                    Edge::Go { pc: target, moves } => {
                        // Parallel copy: all reads precede all writes. One-
                        // and two-move edges (the overwhelming majority of
                        // phi rotations) stay out of the spill buffer.
                        match &moves[..] {
                            [] => {}
                            [(d, s)] => {
                                let v = readv!(s);
                                setv(&mut regs, *d, v);
                                instructions += 1;
                            }
                            [(d0, s0), (d1, s1)] => {
                                let v0 = readv!(s0);
                                let v1 = readv!(s1);
                                setv(&mut regs, *d0, v0);
                                setv(&mut regs, *d1, v1);
                                instructions += 2;
                            }
                            moves => {
                                // Unlabeled `fail!` can't cross an inner
                                // loop, so record the bad operand and trap
                                // after the `for` instead.
                                movebuf.clear();
                                let mut bad: Option<&Src> = None;
                                for (_, s) in moves.iter() {
                                    match getv(&regs, &frame, s) {
                                        Some(v) => movebuf.push(v),
                                        None => {
                                            bad = Some(s);
                                            break;
                                        }
                                    }
                                }
                                if let Some(s) = bad {
                                    fail!(getv_err(traps, s));
                                }
                                for ((d, _), v) in moves.iter().zip(movebuf.iter()) {
                                    setv(&mut regs, *d, *v);
                                }
                                instructions += moves.len() as u64;
                            }
                        }
                        // SAFETY: edge targets are range-checked by the
                        // validation gate in `lower.rs`.
                        op_ptr = unsafe { ops.as_ptr().add(*target as usize) };
                    }
                    Edge::Trap(t) => fail!(trap_at(traps, *t)),
                }
            }};
        }

        // Step prologue — identical, op for op, to the interpreter's
        // run_thread: fuel check, fault poll against the step counter,
        // then dispatch.
        macro_rules! prologue {
            () => {{
                if n == fuel0 {
                    fail!(TrapKind::FuelExhausted);
                }
                n += 1; // this op's fuel is spent even if the poll traps
                if n > fault_at {
                    // Poll runs between the fuel charge and the
                    // step/dispatch increments, so a trap here leaves
                    // `steps` and `dispatched` one short of `n` — the
                    // epilogue corrects by the `at_poll` flag.
                    match exec.poll_fault(thread, steps0, n) {
                        Ok(fa) => fault_at = fa,
                        Err(k) => break (k, true),
                    }
                }
            }};
        }

        let (err, at_poll): (TrapKind, bool) = loop {
            prologue!();
            // SAFETY: the validation gate in `lower.rs` guarantees the
            // cursor can never reach one past the end: the entry and every
            // branch target are in range and the last op never falls
            // through, so the post-increment cursor is at most one-past-end
            // (legal to form) and is only dereferenced while in range.
            let op = unsafe { &*op_ptr };
            op_ptr = unsafe { op_ptr.add(1) };

            match op {
                Op::Bin { op, a, b, dst } => {
                    issue!();
                    let av = readv!(a);
                    let bv = readv!(b);
                    let v = try_v!(exec_bin(*op, av, bv));
                    if op.is_float() {
                        flops += 1;
                        charge!(c_fp);
                    } else {
                        charge!(c_alu);
                    }
                    setv(&mut regs, *dst, v);
                }
                Op::Un { op, a, dst } => {
                    issue!();
                    let av = readv!(a);
                    let v = exec_un(*op, av);
                    match op {
                        UnOp::Sqrt | UnOp::Sin | UnOp::Cos | UnOp::Exp | UnOp::Log => {
                            flops += 1;
                            charge!(cost.transcendental);
                        }
                        UnOp::FNeg | UnOp::FAbs => {
                            flops += 1;
                            charge!(c_fp);
                        }
                        // The reference interpreter charges plain-ALU unops
                        // to `cycles` only (not `busy_cycles`); replicated
                        // for exact cycle parity (`quiet` keeps the charge
                        // out of the derived busy count).
                        _ => {
                            cycles += c_alu;
                            quiet += c_alu;
                        }
                    }
                    setv(&mut regs, *dst, v);
                }
                Op::Cast { kind, to, a, dst } => {
                    issue!();
                    let av = readv!(a);
                    let v = exec_cast(*kind, *to, av);
                    charge!(c_alu);
                    setv(&mut regs, *dst, v);
                }
                Op::Cmp {
                    pred,
                    float,
                    a,
                    b,
                    dst,
                } => {
                    issue!();
                    let av = readv!(a);
                    let bv = readv!(b);
                    let v = exec_cmp(*pred, *float, av, bv);
                    charge!(c_alu);
                    setv(&mut regs, *dst, RtVal::I(v as i64));
                }
                Op::Select { c, t, f, dst } => {
                    issue!();
                    let cv = readv!(c).as_bool();
                    let v = if cv {
                        readv!(t)
                    } else {
                        readv!(f)
                    };
                    charge!(c_alu);
                    setv(&mut regs, *dst, v);
                }
                Op::Load { ty, p, dst } => {
                    issue!();
                    let pv = readv!(p).as_ptr();
                    charge_mem!(cost.mem(pv.segment()));
                    let bits = try_v!(exec.mem_read(thread, pv, ty.size()));
                    let mut v = rtval_from_bits(bits, *ty);
                    if exec.san_armed() {
                        let loc = loc_of(cur, frame.func, cur_pc!() as usize - 1);
                        exec.san_record(thread.tid, loc, AccessKind::Read, pv, ty.size());
                    }
                    if let Some(xor) = thread.corrupt_next_load.take() {
                        v = corrupt_value(v, xor, *ty);
                    }
                    setv(&mut regs, *dst, v);
                }
                Op::Store { ty, p, v } => {
                    issue!();
                    let pv = readv!(p).as_ptr();
                    let vv = readv!(v);
                    charge_mem!(cost.mem(pv.segment()));
                    try_v!(exec.mem_write(thread, pv, ty.size(), vv.to_bits()));
                    if exec.san_armed() {
                        let loc = loc_of(cur, frame.func, cur_pc!() as usize - 1);
                        exec.san_record(thread.tid, loc, AccessKind::Write, pv, ty.size());
                    }
                }
                Op::PtrAdd { a, b, dst } => {
                    issue!();
                    let base = readv!(a).as_ptr();
                    let off = readv!(b).as_i();
                    charge!(c_alu);
                    setv(&mut regs, *dst, RtVal::P(base.add_bytes(off)));
                }
                Op::Alloca { size, dst } => {
                    issue!();
                    let off = thread.local_top;
                    thread.local_top += size;
                    thread.local.grow_to(thread.local_top as usize);
                    setv(&mut regs, *dst, RtVal::P(DevPtr::local(thread.tid, off as u32)));
                }
                Op::Call {
                    target,
                    args,
                    ret_dst,
                    runtime,
                } => {
                    issue!();
                    charge!(cost.call);
                    if *runtime {
                        exec.counters.runtime_calls += 1;
                    }
                    let Some(callee) = bc.funcs.get(*target as usize) else {
                        fail!(TrapKind::BadIndirectCall);
                    };
                    let mut argv = Vec::with_capacity(args.len());
                    let mut bad: Option<&Src> = None;
                    for s in args.iter() {
                        match getv(&regs, &frame, s) {
                            Some(v) => argv.push(v),
                            None => {
                                bad = Some(s);
                                break;
                            }
                        }
                    }
                    if let Some(s) = bad {
                        fail!(getv_err(traps, s));
                    }
                    exec.san_on_call(*target, &argv);
                    let new_frame = BcFrame {
                        func: *target,
                        pc: callee.entry,
                        regs: fresh_regs(callee),
                        args: argv,
                        ret_dst: *ret_dst,
                        local_base: thread.local_top,
                    };
                    frame.pc = cur_pc!();
                    frame.regs = regs;
                    thread.frames.push(std::mem::replace(&mut frame, new_frame));
                    regs = std::mem::take(&mut frame.regs);
                    cur = callee;
                    ops = &cur.ops;
                    traps = &cur.traps;
                    edges = &cur.edges;
                    // SAFETY: `frame.pc` is the callee's validated entry.
                    op_ptr = unsafe { ops.as_ptr().add(frame.pc as usize) };
                }
                Op::CallInd {
                    callee,
                    args,
                    ret_dst,
                } => {
                    issue!();
                    let cp = readv!(callee).as_ptr();
                    if cp.segment() != Segment::Func {
                        fail!(TrapKind::BadIndirectCall);
                    }
                    let target = cp.offset() as u32;
                    let Some(m) = bc.meta.get(target as usize) else {
                        fail!(TrapKind::BadIndirectCall);
                    };
                    if m.is_decl {
                        fail!(TrapKind::UnresolvedCall(m.name.clone()));
                    }
                    if m.params as usize != args.len() {
                        fail!(TrapKind::BadLaunch(format!(
                            "call of @{} with {} args (expects {})",
                            m.name,
                            args.len(),
                            m.params
                        )));
                    }
                    charge!(cost.call);
                    charge!(cost.indirect_call);
                    if m.runtime {
                        exec.counters.runtime_calls += 1;
                    }
                    let Some(callee_fn) = bc.funcs.get(target as usize) else {
                        fail!(TrapKind::BadIndirectCall);
                    };
                    let mut argv = Vec::with_capacity(args.len());
                    let mut bad: Option<&Src> = None;
                    for s in args.iter() {
                        match getv(&regs, &frame, s) {
                            Some(v) => argv.push(v),
                            None => {
                                bad = Some(s);
                                break;
                            }
                        }
                    }
                    if let Some(s) = bad {
                        fail!(getv_err(traps, s));
                    }
                    exec.san_on_call(target, &argv);
                    let new_frame = BcFrame {
                        func: target,
                        pc: callee_fn.entry,
                        regs: fresh_regs(callee_fn),
                        args: argv,
                        ret_dst: *ret_dst,
                        local_base: thread.local_top,
                    };
                    frame.pc = cur_pc!();
                    frame.regs = regs;
                    thread.frames.push(std::mem::replace(&mut frame, new_frame));
                    regs = std::mem::take(&mut frame.regs);
                    cur = callee_fn;
                    ops = &cur.ops;
                    traps = &cur.traps;
                    edges = &cur.edges;
                    // SAFETY: `frame.pc` is the callee's validated entry.
                    op_ptr = unsafe { ops.as_ptr().add(frame.pc as usize) };
                }
                Op::Atomic {
                    op,
                    ty,
                    p,
                    v,
                    dst,
                    used,
                } => {
                    issue!();
                    let pv = readv!(p).as_ptr();
                    let vv = readv!(v);
                    charge_mem!(cost.atomic);
                    if pv.segment() == Segment::Global {
                        exec.counters.global_accesses += 2;
                        let result_used = match &exec.global {
                            GlobalMem::Direct { .. } => true,
                            GlobalMem::Buffered(_) => *used,
                        };
                        let old =
                            try_v!(exec.global.atomic(*op, *ty, pv.offset(), vv, result_used));
                        setv(&mut regs, *dst, old);
                    } else {
                        let old = try_v!(exec.load_typed(thread, pv, *ty));
                        let new = combine_atomic(*op, *ty, old, vv);
                        try_v!(exec.mem_write(thread, pv, ty.size(), new.to_bits()));
                        setv(&mut regs, *dst, old);
                    }
                    if exec.san_armed() {
                        let loc = loc_of(cur, frame.func, cur_pc!() as usize - 1);
                        exec.san_record(thread.tid, loc, AccessKind::Atomic, pv, ty.size());
                    }
                }
                Op::Cas { ty, p, e, n, dst } => {
                    issue!();
                    let pv = readv!(p).as_ptr();
                    let ev = readv!(e);
                    let nv = readv!(n);
                    charge_mem!(cost.atomic);
                    if pv.segment() == Segment::Global {
                        exec.counters.global_accesses += 1;
                        let (old, stored) =
                            try_v!(exec.global.cas(*ty, pv.offset(), ev.to_bits(), nv.to_bits()));
                        if stored {
                            exec.counters.global_accesses += 1;
                        }
                        setv(&mut regs, *dst, old);
                    } else {
                        let old = try_v!(exec.load_typed(thread, pv, *ty));
                        if old.to_bits() == ev.to_bits() {
                            try_v!(exec.mem_write(thread, pv, ty.size(), nv.to_bits()));
                        }
                        setv(&mut regs, *dst, old);
                    }
                    if exec.san_armed() {
                        let loc = loc_of(cur, frame.func, cur_pc!() as usize - 1);
                        exec.san_record(thread.tid, loc, AccessKind::Atomic, pv, ty.size());
                    }
                }
                Op::ThreadId { dst } => {
                    issue!();
                    setv(&mut regs, *dst, RtVal::I(thread.tid as i64));
                }
                Op::TeamId { dst } => {
                    issue!();
                    setv(&mut regs, *dst, RtVal::I(exec.team_id as i64));
                }
                Op::BlockDim { dst } => {
                    issue!();
                    setv(&mut regs, *dst, RtVal::I(exec.nthreads as i64));
                }
                Op::GridDim { dst } => {
                    issue!();
                    setv(&mut regs, *dst, RtVal::I(exec.num_teams as i64));
                }
                Op::Barrier { aligned } => {
                    issue!();
                    if thread.drop_next_barrier {
                        // Injected fault: sail past the barrier; the team
                        // scheduler observes the broken promise downstream.
                        thread.drop_next_barrier = false;
                    } else {
                        if exec.san_armed() {
                            thread.barrier_site = Some(loc_of(cur, frame.func, cur_pc!() as usize - 1));
                        }
                        thread.status = Status::AtBarrier { aligned: *aligned };
                        frame.pc = cur_pc!();
                        frame.regs = regs;
                        sync!();
                        thread.frames.push(frame);
                        return Ok(());
                    }
                }
                Op::Assume { c } => {
                    issue!();
                    if exec.check_assumes {
                        let Some(s) = c else {
                            fail!(malformed("assume intrinsic with no operand"));
                        };
                        let cv = readv!(s).as_bool();
                        if !cv {
                            fail!(TrapKind::AssumeViolated);
                        }
                    }
                }
                Op::Malloc { size, dst } => {
                    issue!();
                    let sz = readv!(size).as_i().max(0) as u64;
                    charge_mem!(cost.malloc);
                    exec.counters.device_mallocs += 1;
                    let off = try_v!(exec.heap_alloc(sz));
                    setv(&mut regs, *dst, RtVal::P(DevPtr::global(off as u32)));
                }
                Op::Free { p } => {
                    issue!();
                    let pv = readv!(p).as_ptr();
                    if !pv.is_null() {
                        try_v!(exec.heap_free(pv));
                    }
                }
                Op::Br { edge } => {
                    follow!(*edge);
                }
                Op::CondBr { c, t, f } => {
                    let cv = readv!(c).as_bool();
                    charge!(c_alu);
                    follow!(if cv { *t } else { *f });
                }
                Op::Ret { v } => {
                    let val = match v {
                        Some(s) => Some(readv!(s)),
                        None => None,
                    };
                    thread.local_top = frame.local_base;
                    match thread.frames.pop() {
                        None => {
                            thread.status = Status::Done;
                            sync!();
                            return Ok(());
                        }
                        Some(parent) => {
                            let ret_dst = frame.ret_dst;
                            frame = parent;
                            regs = std::mem::take(&mut frame.regs);
                            cur = match bc.funcs.get(frame.func as usize) {
                                Some(f) => f,
                                None => {
                                    // Can't reach the shared epilogue: the
                                    // cursor is stale (it indexes the
                                    // callee's ops) and the parent's stored
                                    // resume pc must survive untouched, so
                                    // this cold path exits by hand.
                                    let e = malformed(format!(
                                        "frame references missing function {}",
                                        frame.func
                                    ));
                                    frame.regs = regs;
                                    sync!();
                                    thread.frames.push(frame);
                                    return Err(e);
                                }
                            };
                            ops = &cur.ops;
                            traps = &cur.traps;
                            edges = &cur.edges;
                            // SAFETY: the resume pc was stored by this loop
                            // from this function's own ops, and a `Call` is
                            // never the last op (the validation gate puts a
                            // terminator there), so it is in range.
                            op_ptr = unsafe { ops.as_ptr().add(frame.pc as usize) };
                            if let (Some(d), Some(v)) = (ret_dst, val) {
                                setv(&mut regs, d, v);
                            }
                        }
                    }
                }
                Op::TrapBare { t } => {
                    fail!(trap_at(traps, *t));
                }
                Op::TrapInst { t } => {
                    issue!();
                    fail!(trap_at(traps, *t));
                }
            }
        };
        // The one trap exit: restore the live frame and write the exact
        // counters back. A fault-poll trap spent this op's fuel but never
        // reached the step/dispatch increments.
        frame.pc = cur_pc!();
        frame.regs = regs;
        let done = if at_poll { n - 1 } else { n };
        exec.fuel = fuel0 - n;
        thread.steps = steps0 + done;
        exec.counters.dispatched = dispatched0 + done;
        exec.counters.instructions = instructions;
        exec.counters.flops = flops;
        thread.cycles = cycles;
        thread.busy_cycles = busy0 + (cycles - cycles0 - quiet);
        thread.mem_cycles = memc;
        thread.frames.push(frame);
        Err(err)
    }
}
