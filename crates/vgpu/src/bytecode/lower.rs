//! IR → bytecode lowering.
//!
//! Lowering never fails: malformed shapes (the ones the verifier rejects
//! but a hand-built module can still carry) are embedded as trap ops or
//! trap operands that reproduce the interpreter's exact `MalformedIr`
//! message at the exact execution point where the interpreter would meet
//! them. That keeps the malformed-IR trap-message pins — and every other
//! differential suite — valid across tiers.
//!
//! Static direct-call checks (missing target, declaration, arity) are the
//! one class the interpreter performs per execution that lowering resolves
//! eagerly; since the outcome cannot depend on runtime state, the lowered
//! [`Op::TrapInst`] fires identically.

use std::collections::HashMap;

use nzomp_ir::inst::{Inst, InstId, Intrinsic, Term};
use nzomp_ir::{BlockId, Function, Module, Operand, Ty};

use crate::error::TrapKind;
use crate::exec::{malformed, used_results, GlobalLayout};
use crate::memory::DevPtr;
use crate::value::RtVal;

use super::{BcFunc, BcModule, Edge, FuncMeta, Op, Src};

/// Lower every function of `module`. `layout` resolves global operands to
/// their device addresses (fixed at device load, like the layout itself).
pub(crate) fn lower_module(module: &Module, layout: &GlobalLayout) -> BcModule {
    let meta = module
        .funcs
        .iter()
        .map(|f| FuncMeta {
            name: f.name.clone(),
            params: f.params.len() as u32,
            is_decl: f.is_declaration(),
            runtime: f.name.starts_with("__kmpc") || f.name.starts_with("omp_"),
        })
        .collect();
    let funcs = module
        .funcs
        .iter()
        .map(|f| lower_func(module, layout, f))
        .collect();
    BcModule { funcs, meta }
}

struct FnLowerer<'m> {
    module: &'m Module,
    layout: &'m GlobalLayout,
    func: &'m Function,
    /// Value slot per arena instruction (0 = dead-result scratch).
    slot_of: Vec<u32>,
    used: Vec<bool>,
    ops: Vec<Op>,
    locs: Vec<(u32, u32)>,
    traps: Vec<TrapKind>,
    edges: Vec<Edge>,
    /// `(edge index, from block, target block)` fixups resolved once every
    /// block's op offset is known.
    pending: Vec<(usize, BlockId, BlockId)>,
    /// First post-phi op offset per block.
    block_start: Vec<u32>,
    /// Interned immediate operands as `(slot, value)`; each gets a
    /// dedicated value slot (pre-filled at frame setup) so operands stay
    /// plain `Src::Reg` reads. `const_of` dedups by (tag, bits).
    consts: Vec<(u32, RtVal)>,
    const_of: HashMap<(u8, i64), u32>,
    /// Next free value slot (instruction results first, then consts).
    n_slots: u32,
}

fn lower_func(module: &Module, layout: &GlobalLayout, func: &Function) -> BcFunc {
    if func.blocks.is_empty() {
        // Declaration (or stripped body): executing it meets the
        // interpreter's missing-entry-block trap on the first step.
        let t = malformed(format!("frame in @{} references missing bb0", func.name));
        return BcFunc {
            ops: vec![Op::TrapBare { t: 0 }],
            locs: vec![(0, 0)],
            edges: Vec::new(),
            traps: vec![t],
            consts: Vec::new(),
            n_slots: 1,
            entry: 0,
        };
    }

    let used = used_results(func);
    let mut slot_of = vec![0u32; func.insts.len()];
    let mut n_slots = 1u32; // slot 0: shared dead-result scratch
    for (i, &u) in used.iter().enumerate() {
        if u {
            slot_of[i] = n_slots;
            n_slots += 1;
        }
    }

    let mut lw = FnLowerer {
        module,
        layout,
        func,
        slot_of,
        used,
        ops: Vec::new(),
        locs: Vec::new(),
        traps: Vec::new(),
        edges: Vec::new(),
        pending: Vec::new(),
        block_start: Vec::new(),
        consts: Vec::new(),
        const_of: HashMap::new(),
        n_slots,
    };

    for (bi, block) in func.blocks.iter().enumerate() {
        let b = bi as u32;
        // Leading phis are materialized by incoming edges; the block body
        // starts at the first entry that is not a live leading phi.
        let mut body_start = 0usize;
        while body_start < block.insts.len() {
            let iid = block.insts[body_start];
            match func.insts.get(iid.index()) {
                Some(inst) if inst.is_phi() => body_start += 1,
                _ => break,
            }
        }
        lw.block_start.push(lw.ops.len() as u32);
        let mut terminated = false;
        for idx in body_start..block.insts.len() {
            let iid = block.insts[idx];
            match func.insts.get(iid.index()) {
                None => {
                    // Listed instruction missing from the arena: trap
                    // before any instruction accounting (the interpreter's
                    // step fails its arena lookup pre-charge).
                    let t = lw.add_trap(malformed(format!(
                        "bb{} in @{} lists missing inst %{}",
                        b, func.name, iid.0
                    )));
                    lw.emit(Op::TrapBare { t }, (b, iid.0));
                    terminated = true;
                    break;
                }
                Some(inst) if inst.is_phi() => {
                    let t = lw.add_trap(malformed("phi executed directly (phi after non-phi)"));
                    lw.emit(Op::TrapInst { t }, (b, iid.0));
                    terminated = true;
                    break;
                }
                Some(inst) => {
                    if lw.lower_inst(b, iid, inst) {
                        terminated = true;
                        break;
                    }
                }
            }
        }
        if !terminated {
            lw.lower_term(b, &block.term);
        }
    }

    // Function entry: direct entry starts at instruction index 0, *before*
    // any leading phi — stepping onto a live phi is the interpreter's
    // phi-executed-directly trap, charged as an instruction.
    let entry = match func.blocks[0].insts.first() {
        Some(&iid0) => match func.insts.get(iid0.index()) {
            Some(inst) if inst.is_phi() => {
                let pc = lw.ops.len() as u32;
                let t = lw.add_trap(malformed("phi executed directly (phi after non-phi)"));
                lw.emit(Op::TrapInst { t }, (0, iid0.0));
                pc
            }
            // Missing arena entries fall through to the body's listing
            // trap at block_start; plain instructions start the body.
            _ => lw.block_start[0],
        },
        None => lw.block_start[0],
    };

    // Resolve branch targets and phi moves now that every block's op
    // offset is known.
    let pending = std::mem::take(&mut lw.pending);
    for (ei, from, target) in pending {
        let edge = lw.resolve_edge(from, target);
        if let Some(slot) = lw.edges.get_mut(ei) {
            *slot = edge;
        }
    }

    validated(BcFunc {
        ops: lw.ops,
        locs: lw.locs,
        edges: lw.edges,
        traps: lw.traps,
        consts: lw.consts,
        n_slots: lw.n_slots,
        entry,
    })
}

/// Validation gate for the dispatch loop's unchecked register file: every
/// `Src::Reg` index, every destination slot, and every interned-constant
/// slot a function can name must be in range. `getv` / `setv` rely on
/// this to skip per-access bounds checks — verify once at lowering,
/// dispatch unchecked. The lowerer above never produces an out-of-range
/// index; the gate makes the dispatch loop's soundness independent of
/// that claim. A function that fails is replaced by a trap-only body
/// (never observed in practice).
fn validated(f: BcFunc) -> BcFunc {
    let n_slots = f.n_slots;
    let src_ok = |s: &Src| match *s {
        Src::Reg(i) => i < n_slots,
        // Bounds-checked at dispatch (arity varies; traps are lazy).
        Src::Arg(_) | Src::Trap(_) => true,
    };
    let dst_ok = |d: u32| d < n_slots;
    let op_ok = |op: &Op| match op {
        Op::Bin { a, b, dst, .. } | Op::Cmp { a, b, dst, .. } | Op::PtrAdd { a, b, dst } => {
            src_ok(a) && src_ok(b) && dst_ok(*dst)
        }
        Op::Un { a, dst, .. } | Op::Cast { a, dst, .. } | Op::Load { p: a, dst, .. } => {
            src_ok(a) && dst_ok(*dst)
        }
        Op::Select { c, t, f, dst } => src_ok(c) && src_ok(t) && src_ok(f) && dst_ok(*dst),
        Op::Store { p, v, .. } => src_ok(p) && src_ok(v),
        Op::Alloca { dst, .. } => dst_ok(*dst),
        Op::Call { args, ret_dst, .. } => {
            args.iter().all(src_ok) && ret_dst.is_none_or(dst_ok)
        }
        Op::CallInd {
            callee,
            args,
            ret_dst,
        } => src_ok(callee) && args.iter().all(src_ok) && ret_dst.is_none_or(dst_ok),
        Op::Atomic { p, v, dst, .. } => src_ok(p) && src_ok(v) && dst_ok(*dst),
        Op::Cas { p, e, n, dst, .. } => {
            src_ok(p) && src_ok(e) && src_ok(n) && dst_ok(*dst)
        }
        Op::ThreadId { dst } | Op::TeamId { dst } | Op::BlockDim { dst } | Op::GridDim { dst } => {
            dst_ok(*dst)
        }
        Op::Malloc { size, dst } => src_ok(size) && dst_ok(*dst),
        Op::Free { p } => src_ok(p),
        Op::CondBr { c, .. } => src_ok(c),
        Op::Assume { c } => c.as_ref().is_none_or(src_ok),
        Op::Ret { v } => v.as_ref().is_none_or(src_ok),
        Op::Barrier { .. } | Op::Br { .. } | Op::TrapBare { .. } | Op::TrapInst { .. } => true,
    };
    let n_ops = f.ops.len() as u32;
    let n_edges = f.edges.len() as u32;
    let edges_ok = f.edges.iter().all(|e| match e {
        Edge::Go { pc, moves } => {
            *pc < n_ops && moves.iter().all(|(d, s)| dst_ok(*d) && src_ok(s))
        }
        Edge::Trap(_) => true,
    });
    // The op fetch is unchecked too, so `pc` must never be able to reach
    // `ops.len()`: the entry and every branch target are in range, every
    // edge index resolves, and the final op never falls through (each
    // block ends with a terminator, so sequential execution always meets
    // a jump, return or trap before running off the end).
    let eix_ok = |e: u32| e < n_edges;
    let flow_ok = |op: &Op| match op {
        Op::Br { edge } => eix_ok(*edge),
        Op::CondBr { t, f, .. } => eix_ok(*t) && eix_ok(*f),
        _ => true,
    };
    let end_ok = matches!(
        f.ops.last(),
        Some(Op::Br { .. } | Op::CondBr { .. } | Op::Ret { .. })
            | Some(Op::TrapBare { .. } | Op::TrapInst { .. })
    );
    let consts_ok = f.consts.iter().all(|(slot, _)| *slot < n_slots);
    if n_slots > 0
        && f.entry < n_ops
        && end_ok
        && edges_ok
        && consts_ok
        && f.ops.iter().all(|o| op_ok(o) && flow_ok(o))
    {
        return f;
    }
    let t = malformed("bytecode validation failed: value index out of range");
    BcFunc {
        ops: vec![Op::TrapBare { t: 0 }],
        locs: vec![(0, 0)],
        edges: Vec::new(),
        traps: vec![t],
        consts: Vec::new(),
        n_slots: 1,
        entry: 0,
    }
}

impl<'m> FnLowerer<'m> {
    fn emit(&mut self, op: Op, loc: (u32, u32)) {
        self.ops.push(op);
        self.locs.push(loc);
    }

    fn add_trap(&mut self, k: TrapKind) -> u32 {
        self.traps.push(k);
        (self.traps.len() - 1) as u32
    }

    /// Allocate an edge slot for `from → target`, resolved after layout.
    fn new_edge(&mut self, from: BlockId, target: BlockId) -> u32 {
        let ei = self.edges.len();
        self.edges.push(Edge::Go {
            pc: 0,
            moves: Box::new([]),
        });
        self.pending.push((ei, from, target));
        ei as u32
    }

    /// Intern an immediate into a dedicated value slot (dedup by tag +
    /// bits); frame setup pre-fills it, so the operand is a plain `Reg`.
    fn cnum(&mut self, v: RtVal) -> Src {
        let key = (
            match v {
                RtVal::I(_) => 0u8,
                RtVal::F(_) => 1,
                RtVal::P(_) => 2,
            },
            v.to_bits(),
        );
        let next = self.n_slots;
        let slot = *self.const_of.entry(key).or_insert(next);
        if slot == next {
            self.consts.push((slot, v));
            self.n_slots += 1;
        }
        Src::Reg(slot)
    }

    /// Pre-translate one operand (the interpreter's `eval`, done once).
    fn src(&mut self, op: Operand) -> Src {
        match op {
            Operand::Inst(i) => {
                if i.index() < self.slot_of.len() {
                    Src::Reg(self.slot_of[i.index()])
                } else {
                    let t = self.add_trap(malformed(format!(
                        "operand references missing inst %{}",
                        i.0
                    )));
                    Src::Trap(t)
                }
            }
            Operand::Param(p) => Src::Arg(p),
            Operand::ConstI(v, ty) => self.cnum(if ty == Ty::Ptr {
                RtVal::P(DevPtr(v as u64))
            } else {
                RtVal::I(v)
            }),
            Operand::ConstF(v) => self.cnum(RtVal::F(v)),
            Operand::Global(g) => match self.layout.addr_of.get(g.index()) {
                Some(&p) => self.cnum(RtVal::P(p)),
                None => {
                    let t = self.add_trap(malformed(format!(
                        "operand references missing global {}",
                        g.0
                    )));
                    Src::Trap(t)
                }
            },
            Operand::Func(f) => self.cnum(RtVal::P(DevPtr::func(f.0))),
        }
    }

    fn srcs(&mut self, args: &[Operand]) -> Box<[Src]> {
        args.iter().map(|a| self.src(*a)).collect()
    }

    /// Lower one instruction. Returns `true` when the op unconditionally
    /// traps (the rest of the block is unreachable).
    fn lower_inst(&mut self, b: u32, iid: InstId, inst: &Inst) -> bool {
        let loc = (b, iid.0);
        let dst = self.slot_of.get(iid.index()).copied().unwrap_or(0);
        match inst {
            Inst::Bin { op, lhs, rhs, .. } => {
                let a = self.src(*lhs);
                let bb = self.src(*rhs);
                self.emit(Op::Bin { op: *op, a, b: bb, dst }, loc);
            }
            Inst::Un { op, arg, .. } => {
                let a = self.src(*arg);
                self.emit(Op::Un { op: *op, a, dst }, loc);
            }
            Inst::Cast { kind, to, arg } => {
                let a = self.src(*arg);
                self.emit(
                    Op::Cast {
                        kind: *kind,
                        to: *to,
                        a,
                        dst,
                    },
                    loc,
                );
            }
            Inst::Cmp { pred, ty, lhs, rhs } => {
                let a = self.src(*lhs);
                let bb = self.src(*rhs);
                self.emit(
                    Op::Cmp {
                        pred: *pred,
                        float: ty.is_float(),
                        a,
                        b: bb,
                        dst,
                    },
                    loc,
                );
            }
            Inst::Select {
                cond,
                if_true,
                if_false,
                ..
            } => {
                let c = self.src(*cond);
                let t = self.src(*if_true);
                let f = self.src(*if_false);
                self.emit(Op::Select { c, t, f, dst }, loc);
            }
            Inst::Load { ty, ptr } => {
                let p = self.src(*ptr);
                self.emit(Op::Load { ty: *ty, p, dst }, loc);
            }
            Inst::Store { ty, ptr, value } => {
                let p = self.src(*ptr);
                let v = self.src(*value);
                self.emit(Op::Store { ty: *ty, p, v }, loc);
            }
            Inst::PtrAdd { base, offset } => {
                let a = self.src(*base);
                let bb = self.src(*offset);
                self.emit(Op::PtrAdd { a, b: bb, dst }, loc);
            }
            Inst::Alloca { size } => {
                self.emit(
                    Op::Alloca {
                        size: (*size + 7) & !7,
                        dst,
                    },
                    loc,
                );
            }
            Inst::Call { callee, args, ret } => {
                let ret_dst = ret.is_some().then_some(dst);
                match callee {
                    Operand::Func(f) => {
                        // Static checks — the interpreter performs these
                        // before charging call cost or evaluating args, so
                        // an eager trap op is observationally identical.
                        let Some(g) = self.module.funcs.get(f.0 as usize) else {
                            let t = self.add_trap(TrapKind::BadIndirectCall);
                            self.emit(Op::TrapInst { t }, loc);
                            return true;
                        };
                        if g.is_declaration() {
                            let t = self.add_trap(TrapKind::UnresolvedCall(g.name.clone()));
                            self.emit(Op::TrapInst { t }, loc);
                            return true;
                        }
                        if g.params.len() != args.len() {
                            let t = self.add_trap(TrapKind::BadLaunch(format!(
                                "call of @{} with {} args (expects {})",
                                g.name,
                                args.len(),
                                g.params.len()
                            )));
                            self.emit(Op::TrapInst { t }, loc);
                            return true;
                        }
                        let runtime =
                            g.name.starts_with("__kmpc") || g.name.starts_with("omp_");
                        let args = self.srcs(args);
                        self.emit(
                            Op::Call {
                                target: f.0,
                                args,
                                ret_dst,
                                runtime,
                            },
                            loc,
                        );
                    }
                    other => {
                        let callee = self.src(*other);
                        let args = self.srcs(args);
                        self.emit(
                            Op::CallInd {
                                callee,
                                args,
                                ret_dst,
                            },
                            loc,
                        );
                    }
                }
            }
            Inst::Atomic { op, ty, ptr, value } => {
                let p = self.src(*ptr);
                let v = self.src(*value);
                let used = self.used.get(iid.index()).copied().unwrap_or(true);
                self.emit(
                    Op::Atomic {
                        op: *op,
                        ty: *ty,
                        p,
                        v,
                        dst,
                        used,
                    },
                    loc,
                );
            }
            Inst::Cas {
                ty,
                ptr,
                expected,
                new,
            } => {
                let p = self.src(*ptr);
                let e = self.src(*expected);
                let n = self.src(*new);
                self.emit(
                    Op::Cas {
                        ty: *ty,
                        p,
                        e,
                        n,
                        dst,
                    },
                    loc,
                );
            }
            Inst::Intr { intr, args } => match intr {
                Intrinsic::ThreadId => self.emit(Op::ThreadId { dst }, loc),
                Intrinsic::BlockId => self.emit(Op::TeamId { dst }, loc),
                Intrinsic::BlockDim => self.emit(Op::BlockDim { dst }, loc),
                Intrinsic::GridDim => self.emit(Op::GridDim { dst }, loc),
                Intrinsic::AlignedBarrier => self.emit(Op::Barrier { aligned: true }, loc),
                Intrinsic::Barrier => self.emit(Op::Barrier { aligned: false }, loc),
                Intrinsic::Assume(()) => {
                    // A missing operand traps only when assume checking is
                    // on — the dispatch loop decides, like the interpreter.
                    let c = args.first().map(|a| self.src(*a));
                    self.emit(Op::Assume { c }, loc);
                }
                Intrinsic::AssertFail => {
                    let t = self.add_trap(TrapKind::AssertFail);
                    self.emit(Op::TrapInst { t }, loc);
                    return true;
                }
                Intrinsic::Malloc => match args.first() {
                    None => {
                        let t =
                            self.add_trap(malformed("malloc intrinsic with no operand"));
                        self.emit(Op::TrapInst { t }, loc);
                        return true;
                    }
                    Some(a) => {
                        let size = self.src(*a);
                        self.emit(Op::Malloc { size, dst }, loc);
                    }
                },
                Intrinsic::Free => match args.first() {
                    None => {
                        let t = self.add_trap(malformed("free intrinsic with no operand"));
                        self.emit(Op::TrapInst { t }, loc);
                        return true;
                    }
                    Some(a) => {
                        let p = self.src(*a);
                        self.emit(Op::Free { p }, loc);
                    }
                },
            },
            Inst::Phi { .. } => {
                // Callers filter phis; defensive parity with the
                // interpreter's direct-phi trap.
                let t = self.add_trap(malformed("phi executed directly (phi after non-phi)"));
                self.emit(Op::TrapInst { t }, loc);
                return true;
            }
        }
        false
    }

    fn lower_term(&mut self, b: u32, term: &Term) {
        let from = BlockId(b);
        match term {
            Term::Br(t) => {
                let edge = self.new_edge(from, *t);
                self.emit(Op::Br { edge }, (b, 0));
            }
            Term::CondBr {
                cond,
                if_true,
                if_false,
            } => {
                let c = self.src(*cond);
                let t = self.new_edge(from, *if_true);
                let f = self.new_edge(from, *if_false);
                self.emit(Op::CondBr { c, t, f }, (b, 0));
            }
            Term::Ret(v) => {
                let v = v.as_ref().map(|op| self.src(*op));
                self.emit(Op::Ret { v }, (b, 0));
            }
            Term::Unreachable => {
                // Terminator-position trap: no instruction accounting.
                let t = self.add_trap(TrapKind::AssertFail);
                self.emit(Op::TrapBare { t }, (b, 0));
            }
        }
    }

    /// Resolve `from → target`: branch offset plus the phi parallel-move
    /// list, reproducing the interpreter's jump scan (including where in
    /// the scan each malformed shape traps).
    fn resolve_edge(&mut self, from: BlockId, target: BlockId) -> Edge {
        let Some(block) = self.func.blocks.get(target.index()) else {
            let t = self.add_trap(malformed(format!(
                "branch in @{} targets missing bb{}",
                self.func.name, target.0
            )));
            return Edge::Trap(t);
        };
        let mut moves: Vec<(u32, Src)> = Vec::new();
        for &iid in &block.insts {
            match self.func.insts.get(iid.index()) {
                None => {
                    let t = self.add_trap(malformed(format!(
                        "bb{} in @{} lists missing inst %{}",
                        target.0, self.func.name, iid.0
                    )));
                    moves.push((0, Src::Trap(t)));
                    break;
                }
                Some(Inst::Phi { incomings, .. }) => {
                    match incomings.iter().find(|i| i.pred == from) {
                        None => {
                            let t = self.add_trap(malformed(format!(
                                "phi %{} in @{} bb{} missing incoming for bb{}",
                                iid.0, self.func.name, target.0, from.0
                            )));
                            moves.push((0, Src::Trap(t)));
                            break;
                        }
                        Some(inc) => {
                            let s = self.src(inc.value);
                            let slot = self.slot_of.get(iid.index()).copied().unwrap_or(0);
                            moves.push((slot, s));
                        }
                    }
                }
                Some(_) => break,
            }
        }
        let pc = self
            .block_start
            .get(target.index())
            .copied()
            .unwrap_or_default();
        Edge::Go {
            pc,
            moves: moves.into_boxed_slice(),
        }
    }
}
