//! Cost model and device configuration (occupancy).
//!
//! The constants are not an A100 die model; they are chosen so that the
//! artifacts the paper's co-design eliminates — runtime calls, shared-state
//! traffic, barriers, device malloc, register pressure — have first-order
//! impact on the simulated kernel time, which is what makes the Fig. 10–13
//! shapes reproducible.

use crate::memory::Segment;

/// Per-operation cycle charges.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Base issue cost charged for every executed instruction.
    pub issue: u64,
    /// Integer / pointer ALU op (on top of issue).
    pub alu: u64,
    /// f64 arithmetic.
    pub fp: u64,
    /// Transcendentals (sin/cos/exp/log/sqrt).
    pub transcendental: u64,
    /// Global-memory access (per load/store).
    pub mem_global: u64,
    /// Shared-memory access.
    pub mem_shared: u64,
    /// Local (per-thread) memory access.
    pub mem_local: u64,
    /// Constant-memory access (cached, cheap).
    pub mem_constant: u64,
    /// Team barrier, aligned (all threads arrive together).
    pub barrier_aligned: u64,
    /// Team barrier from divergent control flow (state machine).
    pub barrier_unaligned: u64,
    /// Atomic RMW / CAS.
    pub atomic: u64,
    /// Direct call / return bookkeeping.
    pub call: u64,
    /// Indirect call penalty (on top of `call`).
    pub indirect_call: u64,
    /// Device-side malloc (global heap fallback of the shared stack).
    pub malloc: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            issue: 1,
            alu: 0,
            fp: 3,
            transcendental: 19,
            mem_global: 39,
            mem_shared: 7,
            mem_local: 3,
            mem_constant: 3,
            barrier_aligned: 29,
            barrier_unaligned: 44,
            atomic: 59,
            call: 14,
            indirect_call: 10,
            malloc: 799,
        }
    }
}

impl CostModel {
    pub fn mem(&self, seg: Segment) -> u64 {
        match seg {
            Segment::Global => self.mem_global,
            Segment::Shared => self.mem_shared,
            Segment::Local => self.mem_local,
            Segment::Constant => self.mem_constant,
            _ => self.mem_global,
        }
    }
}

/// Static device shape, used by the occupancy model.
#[derive(Clone, Debug)]
pub struct DeviceConfig {
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Register file size per SM (32-bit registers).
    pub regs_per_sm: u32,
    /// Shared memory per SM in bytes.
    pub smem_per_sm: u64,
    /// Max resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Max resident teams per SM.
    pub max_teams_per_sm: u32,
    /// Clock in GHz (cycles -> time conversion for reports).
    pub clock_ghz: f64,
    /// Device heap size in bytes.
    pub heap_bytes: u64,
    /// Interpreter step budget per launch (runaway guard).
    pub max_steps: u64,
    /// Verify `assume` operands and run debug-only runtime paths. Mirrors
    /// the paper's debug builds (§III-G): assumptions become assertions.
    pub check_assumes: bool,
    /// Latency-hiding model: the memory portion of a team's cycles is
    /// scaled by `1 + latency_penalty / resident_teams_per_sm`. High
    /// occupancy (many resident teams) hides memory latency; a kernel whose
    /// shared-memory or register footprint caps residency pays exposed
    /// latency — this is how the paper's SMem/register reductions turn into
    /// kernel-time reductions ("most performance benefits can be traced to
    /// reducing and/or eliminating the shared memory and register usage").
    pub latency_penalty: f64,
    /// Host worker threads used to execute teams of a wave concurrently.
    /// `0` defers to `NZOMP_VGPU_THREADS` (default 1); `1` runs the exact
    /// sequential interpreter code path. Results are bit-identical at any
    /// setting — see `docs/parallel-vgpu.md`.
    pub worker_threads: u32,
    /// Arm the data-race & barrier-divergence sanitizer. `false` (the
    /// default) additionally consults `NZOMP_SANITIZE` (`1`/`true` = on,
    /// `strict` = on + turn findings into a trap). Sanitizing never
    /// changes results, traps, cycles, or the pre-existing metrics — see
    /// `docs/sanitizer.md`.
    pub sanitize: bool,
}

impl Default for DeviceConfig {
    fn default() -> DeviceConfig {
        DeviceConfig {
            num_sms: 8,
            regs_per_sm: 65_536,
            smem_per_sm: 96 * 1024,
            max_threads_per_sm: 2048,
            max_teams_per_sm: 32,
            clock_ghz: 1.4,
            heap_bytes: 64 * 1024 * 1024,
            max_steps: 2_000_000_000,
            check_assumes: true,
            latency_penalty: 8.0,
            worker_threads: 0,
            sanitize: false,
        }
    }
}

impl DeviceConfig {
    /// Memory-latency exposure factor for a given residency.
    pub fn latency_exposure(&self, resident_teams_per_sm: u32) -> f64 {
        1.0 + self.latency_penalty / resident_teams_per_sm.max(1) as f64
    }

    /// Teams issued per wave at the given residency — the chunking used by
    /// *both* the cycle aggregation and the parallel team engine, so the
    /// two can never disagree about wave boundaries.
    pub fn wave_size(&self, resident_teams_per_sm: u32) -> usize {
        (self.num_sms * resident_teams_per_sm).max(1) as usize
    }
}

impl DeviceConfig {
    /// Resident teams per SM given per-thread register demand and per-team
    /// shared-memory demand — the occupancy calculation behind the paper's
    /// observation that "most performance benefits can be traced to reducing
    /// and/or eliminating the shared memory and register usage".
    pub fn teams_per_sm(&self, regs_per_thread: u32, threads_per_team: u32, smem_per_team: u64) -> u32 {
        let by_regs = if regs_per_thread == 0 {
            self.max_teams_per_sm
        } else {
            self.regs_per_sm / (regs_per_thread * threads_per_team.max(1)).max(1)
        };
        let by_smem = if smem_per_team == 0 {
            self.max_teams_per_sm
        } else {
            (self.smem_per_sm / smem_per_team) as u32
        };
        let by_threads = self.max_threads_per_sm / threads_per_team.max(1);
        self.max_teams_per_sm
            .min(by_regs)
            .min(by_smem)
            .min(by_threads)
            .max(1) // a kernel that fits nowhere still runs, one team at a time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_limits() {
        let cfg = DeviceConfig::default();
        // Unconstrained: thread-count limited (2048/128 = 16).
        assert_eq!(cfg.teams_per_sm(0, 128, 0), 16);
        // Register limited: 65536/(255*128) = 2.
        assert_eq!(cfg.teams_per_sm(255, 128, 0), 2);
        // Shared-memory limited: 96K/48K = 2.
        assert_eq!(cfg.teams_per_sm(32, 128, 48 * 1024), 2);
        // Never zero.
        assert_eq!(cfg.teams_per_sm(10_000, 1024, 1 << 20), 1);
    }
}
