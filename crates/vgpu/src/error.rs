//! Execution errors and traps.

use std::fmt;

/// Reasons a thread (and therefore the kernel) can trap.
#[derive(Clone, Debug, PartialEq)]
pub enum TrapKind {
    /// Memory access outside a live region.
    OutOfBounds,
    /// Dereference of the null pointer.
    NullDeref,
    /// A thread dereferenced another thread's `Local`-space pointer — the
    /// hazard globalization (paper §IV-A2) guards against.
    CrossThreadLocalAccess { owner: u32, accessor: u32 },
    /// Indirect call through a non-function pointer.
    BadIndirectCall,
    /// Call of an unresolved declaration.
    UnresolvedCall(String),
    /// `assume` operand evaluated to false (checked in debug executions,
    /// paper §III-G: assumptions "are implicitly checked in debug runs").
    AssumeViolated,
    /// Explicit `assert.fail` (runtime assertion, §III-G).
    AssertFail,
    /// Threads deadlocked: some waiting at a barrier that can never be
    /// satisfied (e.g. after other threads exited).
    BarrierDeadlock,
    /// Step budget exhausted (runaway kernel).
    FuelExhausted,
    /// Division by zero.
    DivByZero,
    /// Device heap exhausted.
    OutOfMemory,
    /// Free of a pointer that was not allocated by malloc.
    BadFree,
    /// Kernel argument count/type mismatch at launch.
    BadLaunch(String),
    /// The interpreter met IR the verifier would have rejected (e.g. a phi
    /// with no incoming for the taken edge). Well-linked modules never hit
    /// this — `nzomp::pipeline` verifies at link time — but a hand-built
    /// module loaded directly onto a device degrades to this typed error
    /// instead of aborting the process.
    MalformedIr(String),
    /// The device vanished mid-operation (injected by a
    /// [`crate::faults::DeviceFaultKind::Lost`] site, modeling a GPU
    /// falling off the bus / an Xid-style fatal fault). Once lost, every
    /// subsequent host-visible operation on the device returns this trap
    /// until a fresh device replaces it — recovery is the host runtime's
    /// job (`nzomp-host`), never the interpreter's.
    DeviceLost,
    /// The launch made no progress within its watchdog fuel budget — the
    /// device-level symptom a host launch watchdog converts into a typed
    /// `Watchdog` host error. Injected by
    /// [`crate::faults::DeviceFaultKind::StallLaunch`]; carries the fuel
    /// budget that was in effect so the reproducer is in the message.
    Stalled { fuel: u64 },
    /// A transient host<->device memcpy failure (injected by
    /// [`crate::faults::DeviceFaultKind::MemcpyFail`]): the transfer did
    /// not happen, device memory is unchanged, and — faults being
    /// one-shot — an immediate retry succeeds.
    MemcpyFault,
    /// The sanitizer found data races / divergent barriers and strict
    /// mode (`NZOMP_SANITIZE=strict`) promotes findings to a trap after
    /// the (otherwise clean) launch completes. The reports remain
    /// available through `Device::sanitizer_reports`.
    SanitizerViolation { races: u64, divergences: u64 },
    /// Internal control-flow signal of the parallel engine: the team
    /// executed an operation that cannot be buffered (device
    /// `malloc`/`free`) and must be re-run in direct/sequential mode.
    /// `Device::launch` always intercepts it; user code never observes it.
    #[doc(hidden)]
    ParallelBailout,
}

impl fmt::Display for TrapKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrapKind::OutOfBounds => write!(f, "out-of-bounds memory access"),
            TrapKind::NullDeref => write!(f, "null pointer dereference"),
            TrapKind::CrossThreadLocalAccess { owner, accessor } => write!(
                f,
                "thread {accessor} dereferenced local memory of thread {owner}"
            ),
            TrapKind::BadIndirectCall => write!(f, "indirect call through non-function pointer"),
            TrapKind::UnresolvedCall(n) => write!(f, "call of unresolved declaration @{n}"),
            TrapKind::AssumeViolated => write!(f, "assume() operand was false"),
            TrapKind::AssertFail => write!(f, "device assertion failed"),
            TrapKind::BarrierDeadlock => write!(f, "barrier deadlock"),
            TrapKind::FuelExhausted => write!(f, "step budget exhausted"),
            TrapKind::DivByZero => write!(f, "integer division by zero"),
            TrapKind::OutOfMemory => write!(f, "device heap exhausted"),
            TrapKind::BadFree => write!(f, "free() of unknown pointer"),
            TrapKind::BadLaunch(m) => write!(f, "bad launch: {m}"),
            TrapKind::MalformedIr(m) => write!(f, "malformed IR reached the interpreter: {m}"),
            TrapKind::DeviceLost => write!(f, "device lost"),
            TrapKind::Stalled { fuel } => write!(
                f,
                "kernel stalled: watchdog fired after {fuel} steps without completion"
            ),
            TrapKind::MemcpyFault => write!(f, "transient memcpy failure"),
            TrapKind::SanitizerViolation { races, divergences } => write!(
                f,
                "sanitizer reported {races} data race(s) and {divergences} barrier divergence(s)"
            ),
            TrapKind::ParallelBailout => {
                write!(f, "internal: team requires sequential re-execution")
            }
        }
    }
}

/// A trap with location context.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecError {
    pub kind: TrapKind,
    pub team: u32,
    pub thread: u32,
    pub func: String,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trap in team {} thread {} (@{}): {}",
            self.team, self.thread, self.func, self.kind
        )
    }
}

impl std::error::Error for ExecError {}
