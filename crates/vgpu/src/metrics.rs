//! Kernel execution metrics — the columns of the paper's Fig. 11 plus
//! counters used by tests and the ablation analysis.

/// Metrics of one kernel launch.
///
/// `PartialEq` is part of the parallel-execution contract: the
/// determinism tests assert metrics from an N-worker launch compare equal
/// to the sequential baseline, field for field.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct KernelMetrics {
    pub kernel_name: String,
    pub teams: u32,
    pub threads_per_team: u32,

    /// Register estimate per thread (max-live SSA values + ABI base).
    pub regs_per_thread: u32,
    /// Static shared memory per team in bytes (retained shared globals).
    pub smem_bytes: u64,
    /// Dynamic shared memory requested at launch.
    pub dyn_smem_bytes: u64,

    /// Resident teams per SM under the occupancy model.
    pub teams_per_sm: u32,
    /// Number of waves the grid was executed in.
    pub waves: u32,
    /// Total simulated kernel cycles (sum over waves of the slowest team).
    pub cycles: u64,
    /// `cycles` converted through the device clock.
    pub time_ms: f64,

    /// Dynamic instruction count over all threads.
    pub instructions: u64,
    /// Backend dispatch steps over all threads (one per fuel unit). Equal
    /// across execution tiers by contract: one bytecode op per interpreter
    /// step.
    pub dispatched: u64,
    /// Barriers executed (per-thread arrivals are counted once per release).
    pub barriers: u64,
    /// Loads+stores by space.
    pub global_accesses: u64,
    pub shared_accesses: u64,
    pub local_accesses: u64,
    /// Device-side malloc calls.
    pub device_mallocs: u64,
    /// Calls into runtime entry points (`__kmpc_*` / `omp_*`).
    pub runtime_calls: u64,
    /// Floating point operations executed (for GFlops reporting, Fig. 12).
    pub flops: u64,

    /// Data races found by the sanitizer (0 when sanitizing is off; the
    /// sanitizer never changes any other field).
    pub sanitizer_races: u64,
    /// Divergent aligned-barrier releases found by the sanitizer.
    pub sanitizer_divergences: u64,

    /// Per-team cycle counts (diagnostics).
    pub team_cycles: Vec<u64>,
}

impl KernelMetrics {
    /// GFlops/s under the simulated clock — the Fig. 12 metric.
    pub fn gflops(&self) -> f64 {
        if self.time_ms <= 0.0 {
            return 0.0;
        }
        (self.flops as f64) / (self.time_ms * 1e-3) / 1e9
    }

    /// One-line summary used by examples and the figure harness.
    pub fn summary(&self) -> String {
        format!(
            "{}: {:.3} ms | {} regs | {} B smem | {} insts | {} rt-calls | {} barriers",
            self.kernel_name,
            self.time_ms,
            self.regs_per_thread,
            self.smem_bytes + self.dyn_smem_bytes,
            self.instructions,
            self.runtime_calls,
            self.barriers
        )
    }
}
