//! Global-memory views: the seam between sequential and parallel team
//! execution.
//!
//! A [`TeamExec`](crate::interp::TeamExec) accesses device global memory
//! through a [`GlobalMem`]:
//!
//! * [`GlobalMem::Direct`] writes straight through to the device's master
//!   region (and owns the heap allocator) — this is the sequential
//!   interpreter's behavior, bit for bit.
//! * [`GlobalMem::Buffered`] gives the team a private copy-on-write *view*
//!   of the master region taken at wave start. Reads and writes hit the
//!   view (so a team observes its own stores), while every globally
//!   visible interaction — plain loads, plain stores, atomic RMWs,
//!   compare-and-swaps — is appended to an ordered [`GlobalEffect`] log.
//!   After the wave, the device replays each team's log onto the master
//!   region **in team-index order**, which makes the merged memory image
//!   identical to what the sequential interpreter produces — for *any*
//!   kernel (see `docs/parallel-vgpu.md` for the contract and how it is
//!   enforced).
//!
//! Atomics are logged as *operations*, not resulting values: replay
//! re-applies `add`/`min`/`max`/`cas` against the then-current master
//! state in team order. Floating-point atomic adds therefore combine in
//! exactly the sequential order — bit-identical results even though f64
//! addition is not associative.
//!
//! Every *observation* a team makes of global memory is validated by the
//! merge against the master state at the team's sequential position:
//!
//! * plain loads log the value read (deduplicated through a byte-granular
//!   sync mask, so re-reads of already-validated or self-written bytes
//!   cost no log entry);
//! * `cas` logs the old value it branched on;
//! * an atomic RMW logs its observed old value, and validates it whenever
//!   the result register is *live* (referenced by any operand in the
//!   function). The extremely common reduction idiom — `atomic.add` with
//!   a discarded result — skips validation and stays fully parallel,
//!   while the fetch-add index-allocation idiom
//!   (`idx = atomic_add(&counter, 1); buf[idx] = ...`) validates and
//!   serializes exactly as far as contention requires.
//!
//! On any validation mismatch (another team got there first, sequentially
//! speaking) the team's buffered effects are rolled back wholesale and the
//! team is re-run in direct mode, which reproduces the exact sequential
//! behavior. This is optimistic concurrency: contaminated teams serialize,
//! independent teams scale.
//!
//! Device `malloc`/`free` mutate the shared heap and hand out offsets that
//! depend on every prior allocation, so they cannot be buffered: in
//! buffered mode they raise the internal
//! [`TrapKind::ParallelBailout`](crate::error::TrapKind) signal and the
//! device re-runs that team sequentially (direct mode supports them
//! natively). The bailout never escapes [`crate::Device::launch`].
//!
//! The observation-validation contract is also what makes the
//! [sanitizer](crate::sanitize) worker-count independent: a team whose
//! buffered run *merges* observed exactly the values sequential execution
//! would have shown it, so its control flow — and therefore its recorded
//! access trace and race/divergence verdict — is identical to the
//! sequential run's; a team that fails validation is re-run in direct
//! mode and contributes the re-run's verdict. Either way the launch-level
//! fold (ascending team order) sees the same per-team states at any
//! worker count.

use std::collections::HashMap;

use nzomp_ir::inst::AtomicOp;
use nzomp_ir::Ty;

use crate::error::TrapKind;
use crate::interp::HeapState;
use crate::memory::Region;
use crate::value::RtVal;

/// Reinterpret raw load bits as a typed runtime value — the single
/// conversion rule shared by the interpreter's `load_typed`, buffered
/// atomics, and effect replay.
pub(crate) fn rtval_from_bits(bits: i64, ty: Ty) -> RtVal {
    match ty {
        Ty::F64 => RtVal::F(f64::from_bits(bits as u64)),
        Ty::Ptr => RtVal::P(crate::memory::DevPtr(bits as u64)),
        _ => RtVal::I(bits),
    }
}

/// Combine an atomic RMW operation (shared by direct execution, buffered
/// execution, and wave-ordered replay — one implementation so all three
/// agree bit for bit).
pub(crate) fn combine_atomic(op: AtomicOp, ty: Ty, old: RtVal, v: RtVal) -> RtVal {
    if ty.is_float() {
        return match op {
            AtomicOp::Add => RtVal::F(old.as_f() + v.as_f()),
            AtomicOp::Max => RtVal::F(old.as_f().max(v.as_f())),
            AtomicOp::Min => RtVal::F(old.as_f().min(v.as_f())),
            AtomicOp::Exchange => v,
        };
    }
    match op {
        AtomicOp::Add => RtVal::I(old.as_i().wrapping_add(v.as_i())),
        AtomicOp::Max => RtVal::I(old.as_i().max(v.as_i())),
        AtomicOp::Min => RtVal::I(old.as_i().min(v.as_i())),
        AtomicOp::Exchange => v,
    }
}

/// One buffered global-memory interaction. Replayed onto the master
/// region in team-index order ("wave-ordered merge").
#[derive(Clone, Debug)]
pub enum GlobalEffect {
    /// A plain load: `observed` is what the team's view held. Replay
    /// validates it against the master — a mismatch means the team read a
    /// location some lower-indexed team wrote this wave, so its execution
    /// diverged from the sequential order and it must be re-run.
    Load { off: u64, size: u64, observed: i64 },
    /// A plain store of `size` bytes.
    Store { off: u64, size: u64, value: i64 },
    /// An atomic read-modify-write. The operand is kept as a typed value:
    /// `combine_atomic` converts `I`/`F` operands differently, and replay
    /// must combine exactly as execution did. `observed` is the old value
    /// (bits) the team saw in its view; `validate` is set when the result
    /// register is live, i.e. the observed value could have steered the
    /// team's behavior.
    Atomic {
        op: AtomicOp,
        ty: Ty,
        off: u64,
        operand: RtVal,
        observed: i64,
        validate: bool,
    },
    /// A compare-and-swap. Always validated: the success of the swap (and
    /// with it the access counters) depends on the observed old value even
    /// when the result register is dead.
    Cas {
        ty: Ty,
        off: u64,
        expected: i64,
        new: i64,
        observed: i64,
    },
}

impl GlobalEffect {
    /// Whether the wave-ordered merge must check the observed value
    /// against the master before committing this team's effects.
    ///
    /// Plain loads and `cas` always validate. Atomic RMWs validate
    /// exactly when their result register is live (`validate`): a dead
    /// result cannot steer behavior, so reductions replay without
    /// validation — which is what keeps contended accumulation fully
    /// parallel.
    fn needs_validation(&self) -> bool {
        match self {
            GlobalEffect::Load { .. } => true,
            GlobalEffect::Store { .. } => false,
            GlobalEffect::Atomic { validate, .. } => *validate,
            GlobalEffect::Cas { .. } => true,
        }
    }
}

/// Copy-on-write chunk granularity (bytes). Also the granularity of one
/// [`SyncMask`] bitmask word (one bit per byte).
const CHUNK: usize = 64;

/// A team's private view of global memory: an immutable borrow of the
/// wave-start master image plus a sparse overlay of written chunks. Teams
/// that write little share the master bytes instead of each cloning the
/// full region (the master is only read during a wave, so the borrow is
/// sound and `Sync`).
#[derive(Debug)]
pub struct CowRegion<'a> {
    base: &'a [u8],
    overlay: HashMap<u64, Box<[u8; CHUNK]>>,
}

impl<'a> CowRegion<'a> {
    pub fn new(base: &'a [u8]) -> CowRegion<'a> {
        CowRegion {
            base,
            overlay: HashMap::new(),
        }
    }

    pub fn read(&self, off: u64, size: u64) -> Result<i64, TrapKind> {
        let end = off.checked_add(size).ok_or(TrapKind::OutOfBounds)?;
        if end as usize > self.base.len() || size > 8 {
            return Err(TrapKind::OutOfBounds);
        }
        if size == 0 {
            return Ok(0);
        }
        // A read touches at most two chunks; resolve each overlay entry
        // once (read-heavy kernels mostly miss the overlay entirely and
        // fall through to the shared base image).
        let c0 = off / CHUNK as u64;
        let c1 = (end - 1) / CHUNK as u64;
        let ch0 = self.overlay.get(&c0);
        let ch1 = if c1 == c0 { ch0 } else { self.overlay.get(&c1) };
        let mut buf = [0u8; 8];
        if ch0.is_none() && ch1.is_none() {
            buf[..size as usize].copy_from_slice(&self.base[off as usize..end as usize]);
            return Ok(i64::from_le_bytes(buf));
        }
        for i in 0..size {
            let o = off + i;
            let ch = if o / CHUNK as u64 == c0 { ch0 } else { ch1 };
            buf[i as usize] = match ch {
                Some(c) => c[(o % CHUNK as u64) as usize],
                // Bounds-checked above.
                None => self.base.get(o as usize).copied().unwrap_or(0),
            };
        }
        Ok(i64::from_le_bytes(buf))
    }

    pub fn write(&mut self, off: u64, size: u64, value: i64) -> Result<(), TrapKind> {
        let end = off.checked_add(size).ok_or(TrapKind::OutOfBounds)?;
        if end as usize > self.base.len() || size > 8 {
            return Err(TrapKind::OutOfBounds);
        }
        let base = self.base;
        let bytes = value.to_le_bytes();
        for i in 0..size {
            let o = off + i;
            let ci = o / CHUNK as u64;
            let chunk = self.overlay.entry(ci).or_insert_with(|| {
                let mut c = Box::new([0u8; CHUNK]);
                let start = ci as usize * CHUNK;
                let copy = (base.len().saturating_sub(start)).min(CHUNK);
                c[..copy].copy_from_slice(&base[start..start + copy]);
                c
            });
            chunk[(o % CHUNK as u64) as usize] = bytes[i as usize];
        }
        Ok(())
    }
}

/// Byte-granular set of global offsets whose view value provably equals
/// the replay master at the team's current log position — read-validated
/// bytes, self-written bytes, and bytes after a validated (or
/// value-independent) atomic. Reads of fully synced ranges would always
/// re-validate successfully, so they are not logged again; this bounds the
/// effect log by *unique bytes touched*, not dynamic access count.
#[derive(Debug, Default)]
struct SyncMask {
    chunks: HashMap<u64, u64>,
}

impl SyncMask {
    /// The (chunk index, byte bitmask) pairs a `size <= 8` range covers —
    /// one pair, or two when the range crosses a chunk boundary.
    fn masks(off: u64, size: u64) -> [(u64, u64); 2] {
        let end = off + size.max(1) - 1;
        let (c0, c1) = (off / 64, end / 64);
        if c0 == c1 {
            let mask = (((1u128 << size) - 1) << (off % 64)) as u64;
            [(c0, mask), (c0, 0)]
        } else {
            let n0 = 64 - off % 64;
            let mask0 = (((1u128 << n0) - 1) << (off % 64)) as u64;
            let mask1 = ((1u128 << (size - n0)) - 1) as u64;
            [(c0, mask0), (c1, mask1)]
        }
    }

    fn covered(&self, off: u64, size: u64) -> bool {
        SyncMask::masks(off, size).iter().all(|&(c, mask)| {
            mask == 0 || self.chunks.get(&c).is_some_and(|m| m & mask == mask)
        })
    }

    fn set(&mut self, off: u64, size: u64) {
        for (c, mask) in SyncMask::masks(off, size) {
            if mask != 0 {
                *self.chunks.entry(c).or_insert(0) |= mask;
            }
        }
    }

    fn clear(&mut self, off: u64, size: u64) {
        for (c, mask) in SyncMask::masks(off, size) {
            if mask != 0 {
                if let Some(m) = self.chunks.get_mut(&c) {
                    *m &= !mask;
                }
            }
        }
    }
}

/// Per-team buffered view of global memory (parallel execution).
#[derive(Debug)]
pub struct BufferedGlobal<'a> {
    /// Copy-on-write view over the wave-start master image. The team reads
    /// and writes here, so it observes its own effects.
    view: CowRegion<'a>,
    /// Ordered log of globally visible interactions, for the merge.
    pub log: Vec<GlobalEffect>,
    synced: SyncMask,
}

impl<'a> BufferedGlobal<'a> {
    /// `base` is the master region's bytes at wave start (immutable for
    /// the duration of the wave).
    pub fn new(base: &'a [u8]) -> BufferedGlobal<'a> {
        BufferedGlobal {
            view: CowRegion::new(base),
            log: Vec::new(),
            synced: SyncMask::default(),
        }
    }

    fn read(&mut self, off: u64, size: u64) -> Result<i64, TrapKind> {
        let v = self.view.read(off, size)?;
        if !self.synced.covered(off, size) {
            self.log.push(GlobalEffect::Load {
                off,
                size,
                observed: v,
            });
            self.synced.set(off, size);
        }
        Ok(v)
    }

    fn write(&mut self, off: u64, size: u64, value: i64) -> Result<(), TrapKind> {
        self.view.write(off, size, value)?;
        self.log.push(GlobalEffect::Store { off, size, value });
        self.synced.set(off, size);
        Ok(())
    }

    fn atomic(
        &mut self,
        op: AtomicOp,
        ty: Ty,
        off: u64,
        v: RtVal,
        result_used: bool,
    ) -> Result<RtVal, TrapKind> {
        let size = ty.size();
        let old = rtval_from_bits(self.view.read(off, size)?, ty);
        self.view
            .write(off, size, combine_atomic(op, ty, old, v).to_bits())?;
        self.log.push(GlobalEffect::Atomic {
            op,
            ty,
            off,
            operand: v,
            observed: old.to_bits(),
            validate: result_used,
        });
        if result_used || matches!(op, AtomicOp::Exchange) {
            // Validated (commits only if observed == master) or exchange
            // (result independent of the old value): view == replay master
            // afterwards.
            self.synced.set(off, size);
        } else {
            // Unvalidated add/min/max: replay combines against the
            // *master* old value, which may differ from the view's — any
            // later read of these bytes must be logged and validated.
            self.synced.clear(off, size);
        }
        Ok(old)
    }

    fn cas(&mut self, ty: Ty, off: u64, expected: i64, new: i64) -> Result<(RtVal, bool), TrapKind> {
        let size = ty.size();
        let old = rtval_from_bits(self.view.read(off, size)?, ty);
        let stored = old.to_bits() == expected;
        if stored {
            self.view.write(off, size, new)?;
        }
        self.log.push(GlobalEffect::Cas {
            ty,
            off,
            expected,
            new,
            observed: old.to_bits(),
        });
        self.synced.set(off, size);
        Ok((old, stored))
    }
}

/// How a team reaches device global memory (and the heap allocator).
#[derive(Debug)]
pub enum GlobalMem<'a> {
    /// Write-through to the device master region; sequential semantics.
    Direct {
        region: &'a mut Region,
        heap: &'a mut HeapState,
    },
    /// View-and-log; parallel semantics (merged after the wave).
    Buffered(BufferedGlobal<'a>),
}

impl GlobalMem<'_> {
    pub fn read(&mut self, off: u64, size: u64) -> Result<i64, TrapKind> {
        match self {
            GlobalMem::Direct { region, .. } => region.read(off, size),
            GlobalMem::Buffered(b) => b.read(off, size),
        }
    }

    pub fn write(&mut self, off: u64, size: u64, value: i64) -> Result<(), TrapKind> {
        match self {
            GlobalMem::Direct { region, .. } => region.write(off, size, value),
            GlobalMem::Buffered(b) => b.write(off, size, value),
        }
    }

    /// Atomic RMW: returns the old (typed) value the team observes.
    /// `result_used` reports whether the instruction's result register is
    /// live — buffered execution validates the observed value at merge
    /// exactly when it is.
    pub fn atomic(
        &mut self,
        op: AtomicOp,
        ty: Ty,
        off: u64,
        v: RtVal,
        result_used: bool,
    ) -> Result<RtVal, TrapKind> {
        let size = ty.size();
        match self {
            GlobalMem::Direct { region, .. } => {
                let old = rtval_from_bits(region.read(off, size)?, ty);
                region.write(off, size, combine_atomic(op, ty, old, v).to_bits())?;
                Ok(old)
            }
            GlobalMem::Buffered(b) => b.atomic(op, ty, off, v, result_used),
        }
    }

    /// Compare-and-swap: returns `(old, stored)`.
    pub fn cas(
        &mut self,
        ty: Ty,
        off: u64,
        expected: i64,
        new: i64,
    ) -> Result<(RtVal, bool), TrapKind> {
        let size = ty.size();
        match self {
            GlobalMem::Direct { region, .. } => {
                let old = rtval_from_bits(region.read(off, size)?, ty);
                let stored = old.to_bits() == expected;
                if stored {
                    region.write(off, size, new)?;
                }
                Ok((old, stored))
            }
            GlobalMem::Buffered(b) => b.cas(ty, off, expected, new),
        }
    }
}

/// Replay one team's effect log onto `region`, validating observed values
/// where the effect demands it. Returns `Ok(true)` if every validated
/// effect saw the value the team observed (all effects applied),
/// `Ok(false)` on the first mismatch. When `undo` is provided, every write
/// records the bytes it overwrites so the caller can roll the region back.
fn replay(
    region: &mut Region,
    log: &[GlobalEffect],
    mut undo: Option<&mut Vec<(u64, u64, i64)>>,
) -> Result<bool, TrapKind> {
    for eff in log {
        match *eff {
            GlobalEffect::Load {
                off,
                size,
                observed,
            } => {
                if region.read(off, size)? != observed {
                    return Ok(false);
                }
            }
            GlobalEffect::Store { off, size, value } => {
                if let Some(u) = undo.as_deref_mut() {
                    u.push((off, size, region.read(off, size)?));
                }
                region.write(off, size, value)?;
            }
            GlobalEffect::Atomic {
                op,
                ty,
                off,
                operand,
                observed,
                validate,
            } => {
                let size = ty.size();
                let bits = region.read(off, size)?;
                if validate && bits != observed {
                    return Ok(false);
                }
                if let Some(u) = undo.as_deref_mut() {
                    u.push((off, size, bits));
                }
                let old = rtval_from_bits(bits, ty);
                region.write(off, size, combine_atomic(op, ty, old, operand).to_bits())?;
            }
            GlobalEffect::Cas {
                ty,
                off,
                expected,
                new,
                observed,
            } => {
                let size = ty.size();
                let old = region.read(off, size)?;
                if old != observed {
                    return Ok(false);
                }
                if old == expected {
                    if let Some(u) = undo.as_deref_mut() {
                        u.push((off, size, old));
                    }
                    region.write(off, size, new)?;
                }
            }
        }
    }
    Ok(true)
}

/// Restore the bytes an aborted replay overwrote, newest first.
fn rollback(region: &mut Region, undo: &[(u64, u64, i64)]) -> Result<(), TrapKind> {
    for &(off, size, bits) in undo.iter().rev() {
        region.write(off, size, bits)?;
    }
    Ok(())
}

/// Replay one team's effect log onto the master region ("wave-ordered
/// merge"). Returns `Ok(true)` if the team's effects were committed;
/// `Ok(false)` if a validated observation (plain load, CAS, or a
/// live-result atomic) saw a stale value during execution — the master is
/// then rolled back to its pre-merge state via the undo log (no
/// full-region copying) and the caller re-runs the team sequentially.
///
/// Offsets were bounds-checked against the team's view (same length as the
/// master, which only ever grows), so `Err` is unreachable in practice; it
/// surfaces as a typed trap rather than a panic, per crate policy.
pub(crate) fn apply_effects(master: &mut Region, log: &[GlobalEffect]) -> Result<bool, TrapKind> {
    if !log.iter().any(|e| e.needs_validation()) {
        // Nothing can abort mid-log: replay straight onto the master.
        return replay(master, log, None);
    }
    let mut undo = Vec::new();
    match replay(master, log, Some(&mut undo)) {
        Ok(true) => Ok(true),
        Ok(false) => {
            rollback(master, &undo)?;
            Ok(false)
        }
        Err(kind) => {
            // Already failing the whole launch; best-effort restore.
            let _ = rollback(master, &undo);
            Err(kind)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cow_region_reads_base_until_written() {
        let base: Vec<u8> = (0..200u8).collect();
        let mut cow = CowRegion::new(&base);
        assert_eq!(cow.read(10, 1).unwrap(), 10);
        cow.write(10, 1, 0x55).unwrap();
        assert_eq!(cow.read(10, 1).unwrap(), 0x55);
        // Neighboring bytes in the same chunk keep their base values.
        assert_eq!(cow.read(9, 1).unwrap(), 9);
        assert_eq!(cow.read(11, 1).unwrap(), 11);
        // Multi-byte write spanning a chunk boundary.
        cow.write(63, 2, 0x0201).unwrap();
        assert_eq!(cow.read(63, 2).unwrap(), 0x0201);
        assert!(cow.read(199, 2).is_err());
        assert!(cow.write(200, 1, 0).is_err());
    }

    #[test]
    fn sync_mask_set_clear_covered() {
        let mut m = SyncMask::default();
        assert!(!m.covered(0, 8));
        m.set(0, 8);
        assert!(m.covered(0, 8));
        assert!(m.covered(2, 4));
        assert!(!m.covered(6, 4)); // bytes 8..10 unset
        m.clear(4, 2);
        assert!(!m.covered(0, 8));
        assert!(m.covered(0, 4));
        // Across a 64-byte chunk boundary.
        m.set(60, 8);
        assert!(m.covered(60, 8));
    }

    #[test]
    fn rollback_restores_master_on_mismatch() {
        let mut master = Region::with_size(32);
        master.write(0, 8, 7).unwrap();
        master.write(8, 8, 9).unwrap();
        let before = master.bytes.clone();
        // A log whose later load observation mismatches the master.
        let log = vec![
            GlobalEffect::Store {
                off: 0,
                size: 8,
                value: 100,
            },
            GlobalEffect::Atomic {
                op: AtomicOp::Add,
                ty: Ty::I64,
                off: 8,
                operand: RtVal::I(1),
                observed: 9,
                validate: false,
            },
            GlobalEffect::Load {
                off: 16,
                size: 8,
                observed: 42, // master holds 0 — stale observation
            },
        ];
        assert_eq!(apply_effects(&mut master, &log), Ok(false));
        assert_eq!(
            master.bytes, before,
            "failed merge must leave master untouched"
        );
    }
}
