//! Global-memory views: the seam between sequential and parallel team
//! execution.
//!
//! A [`TeamExec`](crate::interp::TeamExec) accesses device global memory
//! through a [`GlobalMem`]:
//!
//! * [`GlobalMem::Direct`] writes straight through to the device's master
//!   region (and owns the heap allocator) — this is the sequential
//!   interpreter's behavior, bit for bit.
//! * [`GlobalMem::Buffered`] gives the team a private *snapshot* of the
//!   master region taken at wave start. Reads and writes hit the snapshot
//!   (so a team observes its own stores), while every globally visible
//!   side effect — plain stores, atomic RMWs, compare-and-swaps — is
//!   appended to an ordered [`GlobalEffect`] log. After the wave, the
//!   device replays each team's log onto the master region **in team-index
//!   order**, which makes the merged memory image identical to what the
//!   sequential interpreter produces for any kernel whose teams do not
//!   read each other's writes mid-launch (see `docs/parallel-vgpu.md` for
//!   the exact contract).
//!
//! Atomics are logged as *operations*, not resulting values: replay
//! re-applies `add`/`min`/`max`/`cas` against the then-current master
//! state in team order. Floating-point atomic adds therefore combine in
//! exactly the sequential order — bit-identical results even though f64
//! addition is not associative.
//!
//! Operations whose *returned* value routinely steers control flow —
//! `cas` and atomic `exchange` — additionally log the old value the team
//! observed in its snapshot. The merge validates it against the master:
//! on mismatch (another team got there first, sequentially speaking), the
//! team's buffered effects are discarded wholesale and the team is re-run
//! in direct mode, which reproduces the exact sequential behavior. This
//! is optimistic concurrency: winner-election and lock idioms stay
//! *correct* at any worker count (the losers serialize), while plain
//! accumulation idioms stay fully parallel.
//!
//! Device `malloc`/`free` mutate the shared heap and hand out offsets that
//! depend on every prior allocation, so they cannot be buffered: in
//! buffered mode they raise the internal
//! [`TrapKind::ParallelBailout`](crate::error::TrapKind) signal and the
//! device re-runs that team sequentially (direct mode supports them
//! natively). The bailout never escapes [`crate::Device::launch`].

use nzomp_ir::inst::AtomicOp;
use nzomp_ir::Ty;

use crate::error::TrapKind;
use crate::interp::HeapState;
use crate::memory::Region;
use crate::value::RtVal;

/// Reinterpret raw load bits as a typed runtime value — the single
/// conversion rule shared by the interpreter's `load_typed`, buffered
/// atomics, and effect replay.
pub(crate) fn rtval_from_bits(bits: i64, ty: Ty) -> RtVal {
    match ty {
        Ty::F64 => RtVal::F(f64::from_bits(bits as u64)),
        Ty::Ptr => RtVal::P(crate::memory::DevPtr(bits as u64)),
        _ => RtVal::I(bits),
    }
}

/// Combine an atomic RMW operation (shared by direct execution, buffered
/// execution, and wave-ordered replay — one implementation so all three
/// agree bit for bit).
pub(crate) fn combine_atomic(op: AtomicOp, ty: Ty, old: RtVal, v: RtVal) -> RtVal {
    if ty.is_float() {
        return match op {
            AtomicOp::Add => RtVal::F(old.as_f() + v.as_f()),
            AtomicOp::Max => RtVal::F(old.as_f().max(v.as_f())),
            AtomicOp::Min => RtVal::F(old.as_f().min(v.as_f())),
            AtomicOp::Exchange => v,
        };
    }
    match op {
        AtomicOp::Add => RtVal::I(old.as_i().wrapping_add(v.as_i())),
        AtomicOp::Max => RtVal::I(old.as_i().max(v.as_i())),
        AtomicOp::Min => RtVal::I(old.as_i().min(v.as_i())),
        AtomicOp::Exchange => v,
    }
}

/// One buffered global-memory side effect. Replayed onto the master
/// region in team-index order ("wave-ordered merge").
#[derive(Clone, Debug)]
pub enum GlobalEffect {
    /// A plain store of `size` bytes.
    Store { off: u64, size: u64, value: i64 },
    /// An atomic read-modify-write. The operand is kept as a typed value:
    /// `combine_atomic` converts `I`/`F` operands differently, and replay
    /// must combine exactly as execution did. `observed` is the old value
    /// (bits) the team saw in its snapshot; for operations whose result
    /// steers behavior (exchange), replay validates it against the master.
    Atomic {
        op: AtomicOp,
        ty: Ty,
        off: u64,
        operand: RtVal,
        observed: i64,
    },
    /// A compare-and-swap. The team branched on the old value it observed
    /// in its snapshot, so replay *validates*: if the master holds a
    /// different old value at merge time, the team's execution was
    /// contaminated and it is re-run sequentially instead of merged.
    Cas {
        ty: Ty,
        off: u64,
        expected: i64,
        new: i64,
        observed: i64,
    },
}

impl GlobalEffect {
    /// Whether the wave-ordered merge must check the observed old value
    /// against the master before committing this team's effects.
    ///
    /// `cas` and `exchange` return values that kernels routinely branch
    /// on (winner election, locks), so they always validate. The old
    /// value of `add`/`min`/`max` is, per the determinism contract
    /// (`docs/parallel-vgpu.md`), not allowed to steer behavior — those
    /// replay without validation, which is what keeps contended
    /// accumulation fully parallel.
    fn needs_validation(&self) -> bool {
        match self {
            GlobalEffect::Store { .. } => false,
            GlobalEffect::Atomic { op, .. } => matches!(op, AtomicOp::Exchange),
            GlobalEffect::Cas { .. } => true,
        }
    }
}

/// Per-team buffered view of global memory (parallel execution).
#[derive(Debug)]
pub struct BufferedGlobal {
    /// Private snapshot of the master region, taken at wave start. The
    /// team reads and writes here, so it observes its own effects.
    pub view: Region,
    /// Ordered log of globally visible effects, for the merge.
    pub log: Vec<GlobalEffect>,
}

impl BufferedGlobal {
    pub fn new(snapshot: Region) -> BufferedGlobal {
        BufferedGlobal {
            view: snapshot,
            log: Vec::new(),
        }
    }
}

/// How a team reaches device global memory (and the heap allocator).
#[derive(Debug)]
pub enum GlobalMem<'a> {
    /// Write-through to the device master region; sequential semantics.
    Direct {
        region: &'a mut Region,
        heap: &'a mut HeapState,
    },
    /// Snapshot-and-log; parallel semantics (merged after the wave).
    Buffered(BufferedGlobal),
}

impl GlobalMem<'_> {
    pub fn read(&self, off: u64, size: u64) -> Result<i64, TrapKind> {
        match self {
            GlobalMem::Direct { region, .. } => region.read(off, size),
            GlobalMem::Buffered(b) => b.view.read(off, size),
        }
    }

    pub fn write(&mut self, off: u64, size: u64, value: i64) -> Result<(), TrapKind> {
        match self {
            GlobalMem::Direct { region, .. } => region.write(off, size, value),
            GlobalMem::Buffered(b) => {
                b.view.write(off, size, value)?;
                b.log.push(GlobalEffect::Store { off, size, value });
                Ok(())
            }
        }
    }

    /// Atomic RMW: returns the old (typed) value the team observes.
    pub fn atomic(&mut self, op: AtomicOp, ty: Ty, off: u64, v: RtVal) -> Result<RtVal, TrapKind> {
        let size = ty.size();
        match self {
            GlobalMem::Direct { region, .. } => {
                let old = rtval_from_bits(region.read(off, size)?, ty);
                region.write(off, size, combine_atomic(op, ty, old, v).to_bits())?;
                Ok(old)
            }
            GlobalMem::Buffered(b) => {
                let old = rtval_from_bits(b.view.read(off, size)?, ty);
                b.view
                    .write(off, size, combine_atomic(op, ty, old, v).to_bits())?;
                b.log.push(GlobalEffect::Atomic {
                    op,
                    ty,
                    off,
                    operand: v,
                    observed: old.to_bits(),
                });
                Ok(old)
            }
        }
    }

    /// Compare-and-swap: returns `(old, stored)`.
    pub fn cas(
        &mut self,
        ty: Ty,
        off: u64,
        expected: i64,
        new: i64,
    ) -> Result<(RtVal, bool), TrapKind> {
        let size = ty.size();
        match self {
            GlobalMem::Direct { region, .. } => {
                let old = rtval_from_bits(region.read(off, size)?, ty);
                let stored = old.to_bits() == expected;
                if stored {
                    region.write(off, size, new)?;
                }
                Ok((old, stored))
            }
            GlobalMem::Buffered(b) => {
                let old = rtval_from_bits(b.view.read(off, size)?, ty);
                let stored = old.to_bits() == expected;
                if stored {
                    b.view.write(off, size, new)?;
                }
                b.log.push(GlobalEffect::Cas {
                    ty,
                    off,
                    expected,
                    new,
                    observed: old.to_bits(),
                });
                Ok((old, stored))
            }
        }
    }
}

/// Replay one team's effect log onto `region`, validating observed old
/// values where the effect demands it. Returns `Ok(true)` if every
/// validated effect saw the value the team observed (all effects applied),
/// `Ok(false)` on the first mismatch (`region` is then partially updated —
/// callers use [`apply_effects`], which protects the master with a
/// scratch copy).
fn replay(region: &mut Region, log: &[GlobalEffect]) -> Result<bool, TrapKind> {
    for eff in log {
        match *eff {
            GlobalEffect::Store { off, size, value } => region.write(off, size, value)?,
            GlobalEffect::Atomic {
                op,
                ty,
                off,
                operand,
                observed,
            } => {
                let size = ty.size();
                let old = rtval_from_bits(region.read(off, size)?, ty);
                if eff.needs_validation() && old.to_bits() != observed {
                    return Ok(false);
                }
                region.write(off, size, combine_atomic(op, ty, old, operand).to_bits())?;
            }
            GlobalEffect::Cas {
                ty,
                off,
                expected,
                new,
                observed,
            } => {
                let size = ty.size();
                let old = region.read(off, size)?;
                if old != observed {
                    return Ok(false);
                }
                if old == expected {
                    region.write(off, size, new)?;
                }
            }
        }
    }
    Ok(true)
}

/// Replay one team's effect log onto the master region ("wave-ordered
/// merge"). Returns `Ok(true)` if the team's effects were committed;
/// `Ok(false)` if a validated effect (CAS / exchange) observed a stale old
/// value during execution — the master is then left **untouched** and the
/// caller re-runs the team sequentially.
///
/// Offsets were bounds-checked against the team's snapshot (same length as
/// the master, which only ever grows), so `Err` is unreachable in
/// practice; it surfaces as a typed trap rather than a panic, per crate
/// policy.
pub(crate) fn apply_effects(master: &mut Region, log: &[GlobalEffect]) -> Result<bool, TrapKind> {
    if log.iter().any(|e| e.needs_validation()) {
        // Validation can abort mid-log; replay onto a scratch copy so a
        // rejected team leaves the master pristine for its direct re-run.
        let mut scratch = master.clone();
        if !replay(&mut scratch, log)? {
            return Ok(false);
        }
        *master = scratch;
        return Ok(true);
    }
    replay(master, log)
}
