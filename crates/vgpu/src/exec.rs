//! The execution-backend seam: everything about running one team that is
//! *not* opcode dispatch.
//!
//! A [`TeamExec`] owns the team-local machine state — thread contexts,
//! shared memory, the global-memory view, cycle/event counters, the fuel
//! budget, the fault plan, and the sanitizer — and drives the
//! run-to-synchronization-point scheduler. How one thread actually steps
//! through a kernel is delegated to an [`ExecBackend`]:
//!
//! * [`crate::interp::InterpBackend`] — the tree-walking reference
//!   interpreter, stepping IR instructions directly;
//! * [`crate::bytecode::BcBackend`] — the register-allocated bytecode
//!   tier, dispatching pre-lowered ops.
//!
//! The backend contract (see `docs/exec-tiers.md`) is exact, not
//! approximate: one dispatched op costs one fuel unit and one step, fault
//! polls fire on the step counter *before* the step executes, trap kinds
//! and messages are identical for identical programs, and every sanitizer
//! hook sees the same accesses at the same [`IrLoc`]s. That is what lets
//! the wave engine (`par.rs`), fault campaigns, and all differential
//! suites treat the tier as an invisible knob.

use std::collections::HashMap;

use nzomp_ir::{Function, Module, Operand};

use crate::bytecode::{BcBackend, BcModule};
use crate::cost::CostModel;
use crate::error::TrapKind;
use crate::faults::{FaultAction, FaultPlan, FaultSite};
use crate::gmem::{rtval_from_bits, GlobalMem};
use crate::interp::InterpBackend;
use crate::memory::{DevPtr, Region, Segment};
use crate::sanitize::{AccessKind, BarrierArrival, IrLoc, TeamSan};
use crate::value::RtVal;

/// Typed error for states only reachable through IR the verifier rejects
/// (or engine-invariant violations). Never a process abort.
pub(crate) fn malformed(msg: impl Into<String>) -> TrapKind {
    TrapKind::MalformedIr(msg.into())
}

/// Which execution backend a launch runs on. Both tiers are bit-identical
/// by contract; `Bytecode` trades a one-time lowering pass for a much
/// faster per-op dispatch loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecTier {
    /// Tree-walking IR interpreter (the semantic reference).
    Interp,
    /// Register-allocated, pre-resolved bytecode (see `crate::bytecode`).
    Bytecode,
}

/// Where each module global lives on the device.
#[derive(Clone, Debug, Default)]
pub struct GlobalLayout {
    /// Encoded base address per `GlobalId` index.
    pub addr_of: Vec<DevPtr>,
    /// Bytes of statically allocated shared memory per team.
    pub shared_size: u64,
    /// Bytes of the global segment occupied by global-space globals.
    pub global_static_size: u64,
    /// Bytes of the constant segment.
    pub const_size: u64,
}

/// Device-heap allocator state (bump allocation into the global region).
#[derive(Debug, Default)]
pub struct HeapState {
    pub live_allocs: HashMap<u64, u64>, // offset -> size
    pub limit: u64,
}

/// Event counters aggregated into [`crate::KernelMetrics`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    pub instructions: u64,
    pub barriers: u64,
    pub global_accesses: u64,
    pub shared_accesses: u64,
    pub local_accesses: u64,
    pub device_mallocs: u64,
    pub runtime_calls: u64,
    pub flops: u64,
    /// Backend dispatches (fuel units consumed). One per interpreter step
    /// or bytecode op — identical across tiers and worker counts by the
    /// 1-op-per-step contract; the tier-equivalence suites compare it.
    pub dispatched: u64,
}

impl Counters {
    /// Accumulate another team's counters. Plain integer sums, so the
    /// total is independent of accumulation order — a prerequisite for
    /// parallel execution reporting the exact sequential metrics.
    pub fn add(&mut self, other: &Counters) {
        self.instructions += other.instructions;
        self.barriers += other.barriers;
        self.global_accesses += other.global_accesses;
        self.shared_accesses += other.shared_accesses;
        self.local_accesses += other.local_accesses;
        self.device_mallocs += other.device_mallocs;
        self.runtime_calls += other.runtime_calls;
        self.flops += other.flops;
        self.dispatched += other.dispatched;
    }
}

/// Thread run state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    Running,
    AtBarrier { aligned: bool },
    Done,
}

/// One hardware thread, generic over the backend's call-frame type.
#[derive(Debug)]
pub struct ThreadCtx<F> {
    pub tid: u32,
    pub(crate) frames: Vec<F>,
    pub status: Status,
    pub cycles: u64,
    /// Cycles of actual work (never overwritten by barrier synchronization,
    /// unlike `cycles`); denominator of the team memory fraction.
    pub busy_cycles: u64,
    /// Portion of the busy cycles spent on memory operations — the part
    /// occupancy can hide (see the latency model in `Device::launch`).
    pub mem_cycles: u64,
    pub(crate) local: Region,
    pub(crate) local_top: u64,
    /// Instructions this thread has executed (drives fault triggers).
    pub(crate) steps: u64,
    /// Injected faults aimed at this thread, sorted by trigger step;
    /// `fault_idx` is the next one to fire.
    pub(crate) faults: Vec<FaultSite>,
    pub(crate) fault_idx: usize,
    /// Step count at which the next fault fires (`u64::MAX` = never) —
    /// the only word the hot loop compares when injection is disabled.
    pub(crate) next_fault_step: u64,
    /// Armed by [`FaultAction::CorruptLoad`]: XOR mask for the next load.
    pub(crate) corrupt_next_load: Option<u64>,
    /// Armed by [`FaultAction::DropBarrierArrival`]: skip the next barrier.
    pub(crate) drop_next_barrier: bool,
    /// IR site of the barrier this thread is waiting at (recorded only
    /// when the sanitizer is armed; feeds the divergence check).
    pub(crate) barrier_site: Option<IrLoc>,
}

impl<F> Default for ThreadCtx<F> {
    fn default() -> Self {
        ThreadCtx {
            tid: 0,
            frames: Vec::new(),
            status: Status::Done,
            cycles: 0,
            busy_cycles: 0,
            mem_cycles: 0,
            local: Region::default(),
            local_top: 0,
            steps: 0,
            faults: Vec::new(),
            fault_idx: 0,
            next_fault_step: u64::MAX,
            corrupt_next_load: None,
            drop_next_barrier: false,
            barrier_site: None,
        }
    }
}

/// Step count of the thread's next pending fault (`u64::MAX` = never).
pub(crate) fn next_trigger<F>(thread: &ThreadCtx<F>) -> u64 {
    thread
        .faults
        .get(thread.fault_idx)
        .map_or(u64::MAX, |s| s.after_steps)
}

/// Which instruction results of `func` are referenced by at least one
/// operand (instructions, phi incomings, or block terminators).
pub(crate) fn used_results(func: &Function) -> Vec<bool> {
    let mut used = vec![false; func.insts.len()];
    let mut mark = |ops: Vec<Operand>| {
        for op in ops {
            if let Operand::Inst(i) = op {
                if let Some(u) = used.get_mut(i.index()) {
                    *u = true;
                }
            }
        }
    };
    for inst in &func.insts {
        mark(inst.operands());
    }
    for block in &func.blocks {
        mark(block.term.operands());
    }
    used
}

/// One execution backend: owns how a single thread steps through a kernel.
///
/// The contract every implementation must honor, bit for bit:
///
/// * **Fuel and steps.** Each dispatched operation first checks
///   `exec.fuel == 0` (trapping [`TrapKind::FuelExhausted`]), decrements
///   the fuel, polls pending faults against `thread.steps`, increments
///   `thread.steps` and `exec.counters.dispatched`, and only then
///   executes. Fault sites therefore fire at identical op counts on every
///   backend.
/// * **Traps.** Identical programs produce identical [`TrapKind`]s —
///   including `MalformedIr` message strings — at identical step counts.
/// * **Accounting.** Instruction counters, per-op cycle charges from
///   [`CostModel`], and the memory-cycle split match the reference
///   interpreter exactly.
/// * **Sanitizer and effects.** Memory accesses reach
///   [`TeamExec::san_record`] with the same [`IrLoc`]s, and global-memory
///   traffic goes through [`TeamExec::global`] so buffered (parallel)
///   execution logs the same effects.
pub trait ExecBackend<'a>: Sized {
    /// Backend-specific call-frame representation.
    type Frame: std::fmt::Debug;

    /// Build the kernel entry frame (validating the kernel index).
    fn kernel_frame(
        exec: &TeamExec<'a, Self>,
        kernel: u32,
        args: &[RtVal],
    ) -> Result<Self::Frame, TrapKind>;

    /// Run one thread until it blocks at a barrier, finishes, or traps.
    fn run_thread(
        exec: &mut TeamExec<'a, Self>,
        thread: &mut ThreadCtx<Self::Frame>,
    ) -> Result<(), TrapKind>;
}

/// Executes one team to completion over a pluggable [`ExecBackend`].
///
/// All team-local state — thread contexts, shared memory, the cycle/event
/// counters, the remaining fuel, and (in buffered mode) the copy-on-write
/// overlay of global memory — is *owned*, so a `TeamExec` built over a
/// [`GlobalMem::Buffered`] view is `Send` and can run on a worker thread;
/// the shared borrows (`module`, `cost`, `layout`, `constant`, `faults`,
/// and the buffered view's wave-start base image) are all `Sync`.
pub struct TeamExec<'a, B: ExecBackend<'a>> {
    pub module: &'a Module,
    pub cost: &'a CostModel,
    pub check_assumes: bool,
    pub team_id: u32,
    pub num_teams: u32,
    pub nthreads: u32,
    pub shared: Region,
    pub layout: &'a GlobalLayout,
    /// Global-memory view: write-through (sequential) or snapshot-and-log
    /// (parallel). See [`crate::gmem`].
    pub global: GlobalMem<'a>,
    pub constant: &'a Region,
    /// Event counters for this team alone; the device sums them.
    pub counters: Counters,
    /// Remaining step budget. The device threads the leftover into the
    /// next team (sequential) or reconciles budgets at the wave merge
    /// (parallel).
    pub fuel: u64,
    /// Active fault-injection plan (`None` in production runs; the hot
    /// loop then degenerates to one always-false integer compare).
    pub faults: Option<&'a FaultPlan>,
    /// Data-race/divergence sanitizer state (`None` in production runs;
    /// every hook then degenerates to one pointer test — the same
    /// zero-cost-when-disabled shape as `faults`).
    pub(crate) san: Option<Box<TeamSan>>,
    pub(crate) threads: Vec<ThreadCtx<B::Frame>>,
    /// Per-function cache of which instruction results are referenced by
    /// any operand — computed lazily, only consulted by buffered global
    /// atomics to decide whether their observed old value needs merge
    /// validation (a dead result cannot steer behavior).
    result_used: HashMap<u32, Vec<bool>>,
    /// The backend's own state (e.g. the lowered bytecode module).
    pub(crate) backend: B,
}

impl<'a, B: ExecBackend<'a>> TeamExec<'a, B> {
    #[allow(clippy::too_many_arguments)]
    pub fn with_backend(
        backend: B,
        module: &'a Module,
        cost: &'a CostModel,
        check_assumes: bool,
        team_id: u32,
        num_teams: u32,
        nthreads: u32,
        shared_size: u64,
        layout: &'a GlobalLayout,
        global: GlobalMem<'a>,
        constant: &'a Region,
        fuel: u64,
        faults: Option<&'a FaultPlan>,
    ) -> TeamExec<'a, B> {
        TeamExec {
            module,
            cost,
            check_assumes,
            team_id,
            num_teams,
            nthreads,
            shared: Region::with_size(shared_size as usize),
            layout,
            global,
            constant,
            counters: Counters::default(),
            fuel,
            faults,
            san: None,
            threads: Vec::new(),
            result_used: HashMap::new(),
            backend,
        }
    }

    /// Arm the data-race & barrier-divergence sanitizer for this team.
    pub fn set_sanitizer(&mut self, san: Option<Box<TeamSan>>) {
        self.san = san;
    }

    /// Detach the sanitizer state. Called before `into_outcome` so the
    /// reports survive even a trapping run.
    pub fn take_sanitizer(&mut self) -> Option<Box<TeamSan>> {
        self.san.take()
    }

    /// Sanitizer hook: mirror one executed memory access into the shadow.
    /// Backends compute the [`IrLoc`] (guarded by [`TeamExec::san_armed`]
    /// so the lookup is free when sanitizing is off).
    #[inline]
    pub(crate) fn san_record(
        &mut self,
        tid: u32,
        loc: IrLoc,
        kind: AccessKind,
        p: DevPtr,
        size: u64,
    ) {
        let Some(san) = self.san.as_deref_mut() else { return };
        san.record_access(self.module, tid, kind, loc, p.segment(), p.offset(), size);
    }

    /// Whether the sanitizer is armed (backends skip loc bookkeeping
    /// entirely when it is not).
    #[inline]
    pub(crate) fn san_armed(&self) -> bool {
        self.san.is_some()
    }

    /// Sanitizer hook at a (direct or indirect) call, after argument
    /// evaluation: allocator release entry points retire the freed
    /// range's shadow (ownership transfer — see
    /// `sanitize::REGION_RELEASE_FNS`).
    #[inline]
    pub(crate) fn san_on_call(&mut self, target: u32, argv: &[RtVal]) {
        let Some(san) = self.san.as_deref_mut() else { return };
        if san.is_release_fn(target) {
            if let (Some(&RtVal::P(p)), Some(&RtVal::I(sz))) = (argv.first(), argv.get(1)) {
                let aligned = (sz.max(0) as u64).next_multiple_of(8);
                san.on_region_release(p.segment(), p.offset(), aligned);
            }
        }
    }

    /// Whether instruction `iid` of function `func_idx` has a live result.
    /// Lazily computes (and caches) the per-function used-result map;
    /// unknown functions or out-of-range ids answer `true` (conservative:
    /// validate).
    pub(crate) fn result_is_used(&mut self, func_idx: u32, iid: nzomp_ir::inst::InstId) -> bool {
        let module = self.module;
        let used = self.result_used.entry(func_idx).or_insert_with(|| {
            module
                .funcs
                .get(func_idx as usize)
                .map(used_results)
                .unwrap_or_default()
        });
        used.get(iid.index()).copied().unwrap_or(true)
    }

    /// Tear down into `(counters, fuel_left, global view)` — what the
    /// parallel engine needs from a finished team.
    pub fn into_outcome(self) -> (Counters, u64, GlobalMem<'a>) {
        (self.counters, self.fuel, self.global)
    }

    /// Run the kernel function with `args` on every thread of the team.
    /// Returns `(team_cycles, mem_cycles)`: `team_cycles` is the slowest
    /// thread's total; `mem_cycles` is the memory share of the team's
    /// critical path, estimated work-weighted as
    /// `team_cycles * Σ mem_i / Σ cycles_i` (robust against irregular
    /// per-thread work and barrier-synchronized counters).
    pub fn run(&mut self, kernel: u32, args: &[RtVal]) -> Result<(u64, u64), (TrapKind, u32)> {
        let mut threads = Vec::with_capacity(self.nthreads as usize);
        for tid in 0..self.nthreads {
            let frame = match B::kernel_frame(self, kernel, args) {
                Ok(f) => f,
                Err(kind) => return Err((kind, 0)),
            };
            let faults = self
                .faults
                .map(|p| p.sites_for(self.team_id, tid))
                .unwrap_or_default();
            let next_fault_step = faults.first().map_or(u64::MAX, |s| s.after_steps);
            threads.push(ThreadCtx {
                tid,
                frames: vec![frame],
                status: Status::Running,
                faults,
                next_fault_step,
                ..ThreadCtx::default()
            });
        }
        self.threads = threads;

        loop {
            let mut progressed = false;
            for t in 0..self.threads.len() {
                if self.threads[t].status == Status::Running {
                    progressed = true;
                    let mut thread = std::mem::take(&mut self.threads[t]);
                    let r = B::run_thread(self, &mut thread);
                    let tid = thread.tid;
                    self.threads[t] = thread;
                    if let Err(kind) = r {
                        return Err((kind, tid));
                    }
                }
            }
            let live: Vec<usize> = (0..self.threads.len())
                .filter(|&t| self.threads[t].status != Status::Done)
                .collect();
            if live.is_empty() {
                break;
            }
            let all_waiting = live
                .iter()
                .all(|&t| matches!(self.threads[t].status, Status::AtBarrier { .. }));
            if all_waiting {
                // An *aligned* barrier promises that every thread of the
                // team reaches it; if some threads already exited, that
                // promise is broken (miscompile or bad user code) — trap.
                let any_done = self.threads.iter().any(|t| t.status == Status::Done);
                let any_aligned_wait = live.iter().any(|&t| {
                    matches!(
                        self.threads[t].status,
                        Status::AtBarrier { aligned: true }
                    )
                });
                if any_done && any_aligned_wait {
                    if self.san.is_some() {
                        let waiting = self.barrier_arrivals(&live);
                        let done = self.threads.len() - live.len();
                        if let Some(san) = self.san.as_deref_mut() {
                            san.on_aligned_subset(self.module, &waiting, done);
                        }
                    }
                    return Err((TrapKind::BarrierDeadlock, self.threads[live[0]].tid));
                }
                // Release the barrier: synchronize cycle counters.
                let aligned = live.iter().all(|&t| {
                    matches!(
                        self.threads[t].status,
                        Status::AtBarrier { aligned: true }
                    )
                });
                let cost = if aligned {
                    self.cost.barrier_aligned
                } else {
                    self.cost.barrier_unaligned
                };
                // Sanitizer: check arrival uniformity, then open a new
                // barrier epoch (every release synchronizes the live
                // threads, aligned or not).
                if self.san.is_some() {
                    let arrivals = self.barrier_arrivals(&live);
                    if let Some(san) = self.san.as_deref_mut() {
                        san.on_barrier_release(self.module, &arrivals);
                    }
                }
                let max_cycles = live
                    .iter()
                    .map(|&t| self.threads[t].cycles)
                    .max()
                    .unwrap_or(0);
                for &t in &live {
                    self.threads[t].cycles = max_cycles + cost;
                    self.threads[t].busy_cycles += cost;
                    self.threads[t].status = Status::Running;
                }
                self.counters.barriers += 1;
            } else if !progressed {
                // Some threads wait forever: mismatched barrier.
                return Err((TrapKind::BarrierDeadlock, self.threads[live[0]].tid));
            }
        }
        let max_cycles = self.threads.iter().map(|t| t.cycles).max().unwrap_or(0);
        let sum_busy: u64 = self.threads.iter().map(|t| t.busy_cycles).sum();
        let sum_mem: u64 = self.threads.iter().map(|t| t.mem_cycles).sum();
        let mem = if sum_busy == 0 {
            0
        } else {
            (max_cycles as f64 * (sum_mem as f64 / sum_busy as f64).min(1.0)) as u64
        };
        Ok((max_cycles, mem))
    }

    /// Fire every pending fault whose trigger step has been reached.
    pub(crate) fn trigger_faults(
        &mut self,
        thread: &mut ThreadCtx<B::Frame>,
    ) -> Result<(), TrapKind> {
        while let Some(site) = thread.faults.get(thread.fault_idx) {
            if site.after_steps > thread.steps {
                break;
            }
            let action = site.action.clone();
            thread.fault_idx += 1;
            match action {
                FaultAction::Trap(kind) => {
                    thread.next_fault_step = next_trigger(thread);
                    return Err(kind);
                }
                FaultAction::CorruptLoad { xor } => thread.corrupt_next_load = Some(xor),
                FaultAction::DropBarrierArrival => thread.drop_next_barrier = true,
            }
        }
        thread.next_fault_step = next_trigger(thread);
        Ok(())
    }

    /// Fault-poll slow path for dispatch loops that track progress as a
    /// single counter `n` over a `steps0` base: syncs the step counter,
    /// runs the poll, and returns the next trigger point relative to
    /// `steps0`. `#[cold]` keeps it out of the hot loop's code layout.
    #[cold]
    pub(crate) fn poll_fault(
        &mut self,
        thread: &mut ThreadCtx<B::Frame>,
        steps0: u64,
        n: u64,
    ) -> Result<u64, TrapKind> {
        thread.steps = steps0 + (n - 1);
        self.trigger_faults(thread)?;
        Ok(thread.next_fault_step.saturating_sub(steps0))
    }

    // ---- memory ----------------------------------------------------------

    pub(crate) fn mem_read(
        &mut self,
        thread: &ThreadCtx<B::Frame>,
        ptr: DevPtr,
        size: u64,
    ) -> Result<i64, TrapKind> {
        match ptr.segment() {
            Segment::Null => Err(TrapKind::NullDeref),
            Segment::Global => {
                self.counters.global_accesses += 1;
                self.global.read(ptr.offset(), size)
            }
            Segment::Shared => {
                self.counters.shared_accesses += 1;
                self.shared.read(ptr.offset(), size)
            }
            Segment::Local => {
                if ptr.owner() != thread.tid {
                    return Err(TrapKind::CrossThreadLocalAccess {
                        owner: ptr.owner(),
                        accessor: thread.tid,
                    });
                }
                self.counters.local_accesses += 1;
                thread.local.read(ptr.offset(), size)
            }
            Segment::Constant => self.constant.read(ptr.offset(), size),
            Segment::Func => Err(TrapKind::OutOfBounds),
        }
    }

    pub(crate) fn mem_write(
        &mut self,
        thread: &mut ThreadCtx<B::Frame>,
        ptr: DevPtr,
        size: u64,
        value: i64,
    ) -> Result<(), TrapKind> {
        match ptr.segment() {
            Segment::Null => Err(TrapKind::NullDeref),
            Segment::Global => {
                self.counters.global_accesses += 1;
                self.global.write(ptr.offset(), size, value)
            }
            Segment::Shared => {
                self.counters.shared_accesses += 1;
                self.shared.write(ptr.offset(), size, value)
            }
            Segment::Local => {
                if ptr.owner() != thread.tid {
                    return Err(TrapKind::CrossThreadLocalAccess {
                        owner: ptr.owner(),
                        accessor: thread.tid,
                    });
                }
                self.counters.local_accesses += 1;
                thread.local.write(ptr.offset(), size, value)
            }
            Segment::Constant => Err(TrapKind::OutOfBounds),
            Segment::Func => Err(TrapKind::OutOfBounds),
        }
    }

    pub(crate) fn load_typed(
        &mut self,
        thread: &ThreadCtx<B::Frame>,
        ptr: DevPtr,
        ty: nzomp_ir::Ty,
    ) -> Result<RtVal, TrapKind> {
        let bits = self.mem_read(thread, ptr, ty.size())?;
        Ok(rtval_from_bits(bits, ty))
    }

    /// Device-heap bump allocation — the `Malloc` intrinsic's shared core.
    /// Heap offsets depend on every prior allocation, so malloc cannot be
    /// buffered: a buffered team signals [`TrapKind::ParallelBailout`] and
    /// the engine re-runs it in direct mode.
    pub(crate) fn heap_alloc(&mut self, size: u64) -> Result<u64, TrapKind> {
        let GlobalMem::Direct { region, heap } = &mut self.global else {
            return Err(TrapKind::ParallelBailout);
        };
        let aligned = (size + 7) & !7;
        let off = region.len() as u64;
        if off + aligned > heap.limit {
            return Err(TrapKind::OutOfMemory);
        }
        region.grow_to((off + aligned) as usize);
        heap.live_allocs.insert(off, aligned);
        Ok(off)
    }

    /// The `Free` intrinsic's shared core (after the null check).
    pub(crate) fn heap_free(&mut self, p: DevPtr) -> Result<(), TrapKind> {
        let GlobalMem::Direct { heap, .. } = &mut self.global else {
            return Err(TrapKind::ParallelBailout);
        };
        if heap.live_allocs.remove(&p.offset()).is_none() {
            return Err(TrapKind::BadFree);
        }
        Ok(())
    }

    /// Arrival snapshot of the given live (waiting) threads, for the
    /// sanitizer's divergence checks.
    fn barrier_arrivals(&self, live: &[usize]) -> Vec<BarrierArrival> {
        live.iter()
            .map(|&t| {
                let th = &self.threads[t];
                BarrierArrival {
                    tid: th.tid,
                    aligned: matches!(th.status, Status::AtBarrier { aligned: true }),
                    site: th.barrier_site,
                }
            })
            .collect()
    }

    /// Final per-thread cycle counts (after `run`).
    pub fn thread_cycles(&self) -> Vec<u64> {
        self.threads.iter().map(|t| t.cycles).collect()
    }
}

/// A [`TeamExec`] over whichever backend the launch selected — the concrete
/// seam the device and wave engine construct. An enum (rather than a trait
/// object) because `into_outcome` consumes `self` and because both variants
/// stay fully monomorphized on the hot path.
pub(crate) enum TeamEngine<'a> {
    Interp(TeamExec<'a, InterpBackend>),
    Bytecode(TeamExec<'a, BcBackend<'a>>),
}

impl<'a> TeamEngine<'a> {
    /// Build a team executor on the bytecode tier when a lowered module is
    /// supplied, on the interpreter otherwise.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        bc: Option<&'a BcModule>,
        module: &'a Module,
        cost: &'a CostModel,
        check_assumes: bool,
        team_id: u32,
        num_teams: u32,
        nthreads: u32,
        shared_size: u64,
        layout: &'a GlobalLayout,
        global: GlobalMem<'a>,
        constant: &'a Region,
        fuel: u64,
        faults: Option<&'a FaultPlan>,
    ) -> TeamEngine<'a> {
        match bc {
            Some(bc) => TeamEngine::Bytecode(TeamExec::with_backend(
                BcBackend { bc },
                module,
                cost,
                check_assumes,
                team_id,
                num_teams,
                nthreads,
                shared_size,
                layout,
                global,
                constant,
                fuel,
                faults,
            )),
            None => TeamEngine::Interp(TeamExec::with_backend(
                InterpBackend,
                module,
                cost,
                check_assumes,
                team_id,
                num_teams,
                nthreads,
                shared_size,
                layout,
                global,
                constant,
                fuel,
                faults,
            )),
        }
    }

    pub fn set_sanitizer(&mut self, san: Option<Box<TeamSan>>) {
        match self {
            TeamEngine::Interp(e) => e.set_sanitizer(san),
            TeamEngine::Bytecode(e) => e.set_sanitizer(san),
        }
    }

    pub fn take_sanitizer(&mut self) -> Option<Box<TeamSan>> {
        match self {
            TeamEngine::Interp(e) => e.take_sanitizer(),
            TeamEngine::Bytecode(e) => e.take_sanitizer(),
        }
    }

    pub fn run(&mut self, kernel: u32, args: &[RtVal]) -> Result<(u64, u64), (TrapKind, u32)> {
        match self {
            TeamEngine::Interp(e) => e.run(kernel, args),
            TeamEngine::Bytecode(e) => e.run(kernel, args),
        }
    }

    pub fn into_outcome(self) -> (Counters, u64, GlobalMem<'a>) {
        match self {
            TeamEngine::Interp(e) => e.into_outcome(),
            TeamEngine::Bytecode(e) => e.into_outcome(),
        }
    }
}
