//! The parallel team engine: executes one occupancy wave of teams on a
//! host worker pool.
//!
//! Design (see `docs/parallel-vgpu.md` for the user-facing contract):
//!
//! * Teams are issued **wave by wave**, mirroring the occupancy model —
//!   a wave is `num_sms × teams_per_sm` teams, exactly the chunking the
//!   cycle aggregation in `Device::launch` uses. Within a wave, teams run
//!   concurrently on up to `worker_threads` host threads, each against a
//!   [`BufferedGlobal`](crate::gmem::BufferedGlobal) copy-on-write view
//!   of global memory taken at wave start (teams share the immutable
//!   wave-start image and overlay only the chunks they write, so peak
//!   memory stays near one region regardless of worker count).
//! * After the wave, the device replays each team's effect log onto the
//!   master region **in ascending team order** and reconciles the shared
//!   fuel budget, so results, metrics, and traps are bit-identical to the
//!   sequential interpreter — independent of the worker count and of any
//!   wall-clock races.
//! * Work distribution is a single atomic next-team cursor; the *claiming*
//!   order is racy, but nothing observable depends on it — every team's
//!   execution is a pure function of the wave-start snapshot.
//!
//! The paper-adjacent motivation: "Parallelizing a modern GPU simulator"
//! (Huerta & González 2025) parallelizes across SM-like units while
//! preserving fidelity; we reproduce that shape with the stronger
//! guarantee of bit-exact equivalence to the sequential semantics.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use nzomp_ir::Module;

use crate::bytecode::BcModule;
use crate::cost::CostModel;
use crate::error::TrapKind;
use crate::exec::TeamEngine;
use crate::faults::FaultPlan;
use crate::gmem::{BufferedGlobal, GlobalEffect, GlobalMem};
use crate::interp::{Counters, GlobalLayout};
use crate::memory::Region;
use crate::sanitize::TeamSan;
use crate::value::RtVal;

/// Everything a worker needs to run one team, shared immutably across the
/// pool for the duration of a wave.
pub(crate) struct WaveCtx<'a> {
    pub module: &'a Module,
    /// Lowered bytecode when the launch runs on the bytecode tier
    /// (`None` = interpreter tier). Wave execution is backend-agnostic;
    /// both tiers produce bit-identical runs.
    pub bc: Option<&'a BcModule>,
    pub cost: &'a CostModel,
    pub layout: &'a GlobalLayout,
    pub constant: &'a Region,
    pub plan: Option<&'a FaultPlan>,
    pub check_assumes: bool,
    /// Kernel function index within the module.
    pub kernel: u32,
    pub args: &'a [RtVal],
    pub num_teams: u32,
    pub threads_per_team: u32,
    pub shared_total: u64,
    /// Arm the per-team sanitizer. A merged team's buffered access trace
    /// is identical to its sequential trace (the merge validates every
    /// observation), so its sanitizer verdict is too — worker-count
    /// independence for free.
    pub sanitize: bool,
    /// Suppressed shared-space ranges (the cond-write sink).
    pub suppress_shared: &'a [(u64, u64)],
    /// Allocator release entry points (shadow retired on release).
    pub release_fns: &'a [u32],
}

/// Outcome of one team's buffered run, in merge-ready form.
pub(crate) struct TeamRun {
    /// `Ok((team_cycles, mem_cycles))` or the trap (kind, thread).
    pub result: Result<(u64, u64), (TrapKind, u32)>,
    /// Fuel units this team consumed (possibly up to the full wave-start
    /// budget; the merge reconciles against the running budget).
    pub steps: u64,
    pub counters: Counters,
    pub effects: Vec<GlobalEffect>,
    /// Sanitizer state of the buffered run (used only when the run
    /// merges; re-run teams contribute the re-run's state instead).
    pub san: Option<Box<TeamSan>>,
}

impl TeamRun {
    /// True if this run aborted because it needs direct-mode re-execution
    /// (device malloc/free under a buffered view).
    pub fn bailed(&self) -> bool {
        matches!(self.result, Err((TrapKind::ParallelBailout, _)))
    }
}

/// Run one team against a fresh snapshot of `master` with its own fuel
/// budget, returning the merge-ready outcome.
fn run_one_team(ctx: &WaveCtx<'_>, master: &Region, team: u32, fuel: u64) -> TeamRun {
    let mut exec = TeamEngine::new(
        ctx.bc,
        ctx.module,
        ctx.cost,
        ctx.check_assumes,
        team,
        ctx.num_teams,
        ctx.threads_per_team,
        ctx.shared_total,
        ctx.layout,
        GlobalMem::Buffered(BufferedGlobal::new(&master.bytes)),
        ctx.constant,
        fuel,
        ctx.plan,
    );
    if ctx.sanitize {
        exec.set_sanitizer(Some(Box::new(TeamSan::new(
            team,
            ctx.suppress_shared.to_vec(),
            ctx.release_fns.to_vec(),
        ))));
    }
    let result = exec.run(ctx.kernel, ctx.args);
    let san = exec.take_sanitizer();
    let (counters, fuel_left, global) = exec.into_outcome();
    let effects = match global {
        GlobalMem::Buffered(b) => b.log,
        GlobalMem::Direct { .. } => Vec::new(),
    };
    TeamRun {
        result,
        steps: fuel - fuel_left,
        counters,
        effects,
        san,
    }
}

/// Execute the teams of one wave concurrently on up to `workers` threads.
/// Returns one [`TeamRun`] per team, in the order of `teams`.
pub(crate) fn run_wave(
    ctx: &WaveCtx<'_>,
    master: &Region,
    teams: &[u32],
    fuel: u64,
    workers: usize,
) -> Vec<TeamRun> {
    let workers = workers.min(teams.len()).max(1);
    if workers == 1 || teams.len() == 1 {
        return teams
            .iter()
            .map(|&t| run_one_team(ctx, master, t, fuel))
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<TeamRun>>> = teams.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&team) = teams.get(i) else { break };
                let run = run_one_team(ctx, master, team, fuel);
                if let Ok(mut slot) = slots[i].lock() {
                    *slot = Some(run);
                }
            });
        }
    });
    slots
        .into_iter()
        .zip(teams)
        .map(|(m, &team)| {
            m.into_inner()
                .unwrap_or_else(|poison| poison.into_inner())
                // Unreachable in practice: every claimed slot is filled,
                // and a worker that died mid-team could only do so by
                // panicking, which `std::thread::scope` propagates before
                // this runs. Kept as a typed-trap backstop (the crate is
                // panic-free by policy), naming the team the empty slot
                // stands in for.
                .unwrap_or_else(|| TeamRun {
                    result: Err((
                        TrapKind::MalformedIr(format!(
                            "parallel worker produced no result for team {team}"
                        )),
                        0,
                    )),
                    steps: 0,
                    counters: Counters::default(),
                    effects: Vec::new(),
                    san: None,
                })
        })
        .collect()
}
