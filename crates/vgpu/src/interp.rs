//! The tree-walking team interpreter — the reference [`ExecBackend`].
//!
//! Threads run in thread-id order until they hit a barrier, finish, or
//! trap (the scheduling itself lives in [`crate::exec::TeamExec`]). This
//! backend steps IR instructions directly: each step resolves the current
//! frame, block and instruction and dispatches on the instruction kind.
//! It is deliberately simple — the semantic reference the bytecode tier
//! (`crate::bytecode`) must match bit for bit; see `docs/exec-tiers.md`.

use nzomp_ir::inst::{Inst, InstId, Intrinsic, Term, UnOp};
use nzomp_ir::{BlockId, Function, Operand, Ty};

use crate::error::TrapKind;
use crate::exec::{malformed, ExecBackend};
use crate::gmem::{combine_atomic, GlobalMem};
use crate::memory::{DevPtr, Segment};
use crate::ops::{corrupt_value, exec_bin, exec_cast, exec_cmp, exec_un};
use crate::sanitize::{AccessKind, IrLoc};
use crate::value::RtVal;

// Re-exported so pre-seam paths (`crate::interp::TeamExec` etc.) keep
// working; the definitions moved to the backend-agnostic `crate::exec`.
pub use crate::exec::{Counters, GlobalLayout, HeapState, Status, TeamExec, ThreadCtx};

/// One call frame.
#[derive(Debug)]
pub struct Frame {
    func: u32,
    block: BlockId,
    inst_idx: usize,
    regs: Vec<RtVal>,
    args: Vec<RtVal>,
    /// Caller instruction that receives the return value.
    ret_dst: Option<InstId>,
    /// Thread-local stack watermark to restore on return.
    local_base: u64,
}

/// The tree-walking interpreter backend (unit — all state lives in the
/// [`TeamExec`] and the per-thread [`Frame`]s).
pub struct InterpBackend;

impl<'a> ExecBackend<'a> for InterpBackend {
    type Frame = Frame;

    fn kernel_frame(
        exec: &TeamExec<'a, Self>,
        kernel: u32,
        args: &[RtVal],
    ) -> Result<Frame, TrapKind> {
        let Some(func) = exec.module.funcs.get(kernel as usize) else {
            return Err(malformed(format!("kernel index {kernel} out of range")));
        };
        Ok(Frame {
            func: kernel,
            block: BlockId::ENTRY,
            inst_idx: 0,
            regs: vec![RtVal::I(0); func.insts.len()],
            args: args.to_vec(),
            ret_dst: None,
            local_base: 0,
        })
    }

    fn run_thread(
        exec: &mut TeamExec<'a, Self>,
        thread: &mut ThreadCtx<Frame>,
    ) -> Result<(), TrapKind> {
        while thread.status == Status::Running {
            if exec.fuel == 0 {
                return Err(TrapKind::FuelExhausted);
            }
            exec.fuel -= 1;
            // Fault hook: a single compare against a sentinel when no
            // injection targets this thread.
            if thread.steps >= thread.next_fault_step {
                exec.trigger_faults(thread)?;
            }
            thread.steps += 1;
            exec.counters.dispatched += 1;
            exec.step(thread)?;
        }
        Ok(())
    }
}

impl<'a> TeamExec<'a, InterpBackend> {
    /// Build a team executor on the reference interpreter (the historical
    /// constructor; tier selection goes through `exec::TeamEngine`).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        module: &'a nzomp_ir::Module,
        cost: &'a crate::cost::CostModel,
        check_assumes: bool,
        team_id: u32,
        num_teams: u32,
        nthreads: u32,
        shared_size: u64,
        layout: &'a GlobalLayout,
        global: GlobalMem<'a>,
        constant: &'a crate::memory::Region,
        fuel: u64,
        faults: Option<&'a crate::faults::FaultPlan>,
    ) -> TeamExec<'a, InterpBackend> {
        TeamExec::with_backend(
            InterpBackend,
            module,
            cost,
            check_assumes,
            team_id,
            num_teams,
            nthreads,
            shared_size,
            layout,
            global,
            constant,
            fuel,
            faults,
        )
    }

    fn cur_func(&self, thread: &ThreadCtx<Frame>) -> Result<&'a Function, TrapKind> {
        let Some(f) = thread.frames.last() else {
            return Err(malformed("live thread has no frame"));
        };
        let m: &'a nzomp_ir::Module = self.module;
        m.funcs
            .get(f.func as usize)
            .ok_or_else(|| malformed(format!("frame references missing function {}", f.func)))
    }

    /// Sanitizer hook at an instruction: compute the [`IrLoc`] from the
    /// live frame and forward. Free (one pointer test) when disarmed.
    #[inline]
    fn san_at(
        &mut self,
        thread: &ThreadCtx<Frame>,
        iid: InstId,
        kind: AccessKind,
        p: DevPtr,
        size: u64,
    ) {
        if !self.san_armed() {
            return;
        }
        let Some(frame) = thread.frames.last() else { return };
        let loc = IrLoc {
            func: frame.func,
            block: frame.block.0,
            inst: iid.0,
        };
        self.san_record(thread.tid, loc, kind, p, size);
    }

    /// Execute one instruction or the block terminator.
    fn step(&mut self, thread: &mut ThreadCtx<Frame>) -> Result<(), TrapKind> {
        let func = self.cur_func(thread)?;
        let Some(frame) = thread.frames.last() else {
            return Err(malformed("live thread has no frame"));
        };
        let Some(block) = func.blocks.get(frame.block.index()) else {
            return Err(malformed(format!(
                "frame in @{} references missing bb{}",
                func.name, frame.block.0
            )));
        };
        if frame.inst_idx >= block.insts.len() {
            let term: &'a Term = &block.term;
            return self.step_term(thread, term);
        }
        let iid = block.insts[frame.inst_idx];
        let Some(inst) = func.insts.get(iid.index()) else {
            return Err(malformed(format!(
                "bb{} in @{} lists missing inst %{}",
                frame.block.0, func.name, iid.0
            )));
        };
        let inst: &'a Inst = inst;
        self.counters.instructions += 1;
        thread.cycles += self.cost.issue;
        thread.busy_cycles += self.cost.issue;
        self.exec_inst(thread, iid, inst)
    }

    fn eval(&self, thread: &ThreadCtx<Frame>, op: Operand) -> Result<RtVal, TrapKind> {
        let Some(frame) = thread.frames.last() else {
            return Err(malformed("operand evaluated with no frame"));
        };
        Ok(match op {
            Operand::Inst(i) => *frame
                .regs
                .get(i.index())
                .ok_or_else(|| malformed(format!("operand references missing inst %{}", i.0)))?,
            Operand::Param(p) => *frame
                .args
                .get(p as usize)
                .ok_or_else(|| malformed(format!("operand references missing param {p}")))?,
            Operand::ConstI(v, ty) => {
                if ty == Ty::Ptr {
                    RtVal::P(DevPtr(v as u64))
                } else {
                    RtVal::I(v)
                }
            }
            Operand::ConstF(v) => RtVal::F(v),
            Operand::Global(g) => RtVal::P(*self.layout.addr_of.get(g.index()).ok_or_else(
                || malformed(format!("operand references missing global {}", g.0)),
            )?),
            Operand::Func(f) => RtVal::P(DevPtr::func(f.0)),
        })
    }

    fn set_reg(&self, thread: &mut ThreadCtx<Frame>, id: InstId, v: RtVal) -> Result<(), TrapKind> {
        let Some(frame) = thread.frames.last_mut() else {
            return Err(malformed("register written with no frame"));
        };
        let Some(slot) = frame.regs.get_mut(id.index()) else {
            return Err(malformed(format!("result register %{} out of range", id.0)));
        };
        *slot = v;
        Ok(())
    }

    // ---- instruction dispatch ---------------------------------------------

    fn exec_inst(
        &mut self,
        thread: &mut ThreadCtx<Frame>,
        iid: InstId,
        inst: &Inst,
    ) -> Result<(), TrapKind> {
        // Advance past this instruction up-front; control transfers
        // (calls/barriers) rely on the frame already pointing at the next
        // instruction.
        {
            let Some(frame) = thread.frames.last_mut() else {
                return Err(malformed("instruction executed with no frame"));
            };
            frame.inst_idx += 1;
        }

        match inst {
            Inst::Bin { op, lhs, rhs, .. } => {
                let a = self.eval(thread, *lhs)?;
                let b = self.eval(thread, *rhs)?;
                let v = exec_bin(*op, a, b)?;
                if op.is_float() {
                    self.counters.flops += 1;
                    thread.cycles += self.cost.fp;
                    thread.busy_cycles += self.cost.fp;
                } else {
                    thread.cycles += self.cost.alu;
                    thread.busy_cycles += self.cost.alu;
                }
                self.set_reg(thread, iid, v)?;
            }
            Inst::Un { op, arg, .. } => {
                let a = self.eval(thread, *arg)?;
                let v = exec_un(*op, a);
                match op {
                    UnOp::Sqrt | UnOp::Sin | UnOp::Cos | UnOp::Exp | UnOp::Log => {
                        self.counters.flops += 1;
                        thread.cycles += self.cost.transcendental;
                        thread.busy_cycles += self.cost.transcendental;
                    }
                    UnOp::FNeg | UnOp::FAbs => {
                        self.counters.flops += 1;
                        thread.cycles += self.cost.fp;
                        thread.busy_cycles += self.cost.fp;
                    }
                    _ => thread.cycles += self.cost.alu,
                }
                self.set_reg(thread, iid, v)?;
            }
            Inst::Cast { kind, to, arg } => {
                let a = self.eval(thread, *arg)?;
                let v = exec_cast(*kind, *to, a);
                thread.cycles += self.cost.alu;
                thread.busy_cycles += self.cost.alu;
                self.set_reg(thread, iid, v)?;
            }
            Inst::Cmp { pred, ty, lhs, rhs } => {
                let a = self.eval(thread, *lhs)?;
                let b = self.eval(thread, *rhs)?;
                let v = exec_cmp(*pred, ty.is_float(), a, b);
                thread.cycles += self.cost.alu;
                thread.busy_cycles += self.cost.alu;
                self.set_reg(thread, iid, RtVal::I(v as i64))?;
            }
            Inst::Select {
                cond,
                if_true,
                if_false,
                ..
            } => {
                let c = self.eval(thread, *cond)?.as_bool();
                let v = if c {
                    self.eval(thread, *if_true)?
                } else {
                    self.eval(thread, *if_false)?
                };
                thread.cycles += self.cost.alu;
                thread.busy_cycles += self.cost.alu;
                self.set_reg(thread, iid, v)?;
            }
            Inst::Load { ty, ptr } => {
                let p = self.eval(thread, *ptr)?.as_ptr();
                let c = self.cost.mem(p.segment());
                thread.cycles += c;
                thread.busy_cycles += c;
                thread.mem_cycles += c;
                let mut v = self.load_typed(thread, p, *ty)?;
                self.san_at(thread, iid, AccessKind::Read, p, ty.size());
                if let Some(xor) = thread.corrupt_next_load.take() {
                    v = corrupt_value(v, xor, *ty);
                }
                self.set_reg(thread, iid, v)?;
            }
            Inst::Store { ty, ptr, value } => {
                let p = self.eval(thread, *ptr)?.as_ptr();
                let v = self.eval(thread, *value)?;
                let c = self.cost.mem(p.segment());
                thread.cycles += c;
                thread.busy_cycles += c;
                thread.mem_cycles += c;
                self.mem_write(thread, p, ty.size(), v.to_bits())?;
                self.san_at(thread, iid, AccessKind::Write, p, ty.size());
            }
            Inst::PtrAdd { base, offset } => {
                let b = self.eval(thread, *base)?.as_ptr();
                let o = self.eval(thread, *offset)?.as_i();
                thread.cycles += self.cost.alu;
                thread.busy_cycles += self.cost.alu;
                self.set_reg(thread, iid, RtVal::P(b.add_bytes(o)))?;
            }
            Inst::Alloca { size } => {
                let aligned = (*size + 7) & !7;
                let off = thread.local_top;
                thread.local_top += aligned;
                thread.local.grow_to(thread.local_top as usize);
                self.set_reg(thread, iid, RtVal::P(DevPtr::local(thread.tid, off as u32)))?;
            }
            Inst::Call { callee, args, ret } => {
                self.exec_call(thread, iid, *callee, args, ret.is_some())?;
            }
            Inst::Atomic { op, ty, ptr, value } => {
                let p = self.eval(thread, *ptr)?.as_ptr();
                let v = self.eval(thread, *value)?;
                thread.cycles += self.cost.atomic;
                thread.busy_cycles += self.cost.atomic;
                thread.mem_cycles += self.cost.atomic;
                if p.segment() == Segment::Global {
                    // Global atomics go through the global view so buffered
                    // execution can log the *operation* for wave-ordered
                    // replay. Two accesses (read + write), as before.
                    self.counters.global_accesses += 2;
                    // Only buffered execution cares whether the observed
                    // old value can steer behavior; skip the liveness
                    // lookup on the sequential hot path.
                    let result_used = match &self.global {
                        GlobalMem::Direct { .. } => true,
                        GlobalMem::Buffered(_) => {
                            let func_idx = thread
                                .frames
                                .last()
                                .map(|f| f.func)
                                .ok_or_else(|| malformed("atomic executed with no frame"))?;
                            self.result_is_used(func_idx, iid)
                        }
                    };
                    let old = self.global.atomic(*op, *ty, p.offset(), v, result_used)?;
                    self.set_reg(thread, iid, old)?;
                } else {
                    let old = self.load_typed(thread, p, *ty)?;
                    let new = combine_atomic(*op, *ty, old, v);
                    self.mem_write(thread, p, ty.size(), new.to_bits())?;
                    self.set_reg(thread, iid, old)?;
                }
                self.san_at(thread, iid, AccessKind::Atomic, p, ty.size());
            }
            Inst::Cas {
                ty,
                ptr,
                expected,
                new,
            } => {
                let p = self.eval(thread, *ptr)?.as_ptr();
                let e = self.eval(thread, *expected)?;
                let n = self.eval(thread, *new)?;
                thread.cycles += self.cost.atomic;
                thread.busy_cycles += self.cost.atomic;
                thread.mem_cycles += self.cost.atomic;
                if p.segment() == Segment::Global {
                    self.counters.global_accesses += 1;
                    let (old, stored) =
                        self.global.cas(*ty, p.offset(), e.to_bits(), n.to_bits())?;
                    if stored {
                        self.counters.global_accesses += 1;
                    }
                    self.set_reg(thread, iid, old)?;
                } else {
                    let old = self.load_typed(thread, p, *ty)?;
                    if old.to_bits() == e.to_bits() {
                        self.mem_write(thread, p, ty.size(), n.to_bits())?;
                    }
                    self.set_reg(thread, iid, old)?;
                }
                self.san_at(thread, iid, AccessKind::Atomic, p, ty.size());
            }
            Inst::Intr { intr, args } => {
                self.exec_intr(thread, iid, *intr, args)?;
            }
            Inst::Phi { .. } => {
                // Phis are materialized by terminators; stepping onto one
                // means the block was constructed with a phi after a
                // non-phi — a shape the verifier rejects.
                return Err(malformed("phi executed directly (phi after non-phi)"));
            }
        }
        Ok(())
    }

    fn exec_call(
        &mut self,
        thread: &mut ThreadCtx<Frame>,
        iid: InstId,
        callee: Operand,
        args: &[Operand],
        has_ret: bool,
    ) -> Result<(), TrapKind> {
        let (target, indirect) = match callee {
            Operand::Func(f) => (f.0, false),
            other => {
                let p = self.eval(thread, other)?.as_ptr();
                if p.segment() != Segment::Func {
                    return Err(TrapKind::BadIndirectCall);
                }
                (p.offset() as u32, true)
            }
        };
        if target as usize >= self.module.funcs.len() {
            return Err(TrapKind::BadIndirectCall);
        }
        let func = &self.module.funcs[target as usize];
        if func.is_declaration() {
            return Err(TrapKind::UnresolvedCall(func.name.clone()));
        }
        if func.params.len() != args.len() {
            return Err(TrapKind::BadLaunch(format!(
                "call of @{} with {} args (expects {})",
                func.name,
                args.len(),
                func.params.len()
            )));
        }
        thread.cycles += self.cost.call;
        thread.busy_cycles += self.cost.call;
        if indirect {
            thread.cycles += self.cost.indirect_call;
            thread.busy_cycles += self.cost.indirect_call;
        }
        if func.name.starts_with("__kmpc") || func.name.starts_with("omp_") {
            self.counters.runtime_calls += 1;
        }
        let argv: Vec<RtVal> = args
            .iter()
            .map(|a| self.eval(thread, *a))
            .collect::<Result<_, _>>()?;
        self.san_on_call(target, &argv);
        let frame = Frame {
            func: target,
            block: BlockId::ENTRY,
            inst_idx: 0,
            regs: vec![RtVal::I(0); func.insts.len()],
            args: argv,
            ret_dst: has_ret.then_some(iid),
            local_base: thread.local_top,
        };
        thread.frames.push(frame);
        Ok(())
    }

    fn exec_intr(
        &mut self,
        thread: &mut ThreadCtx<Frame>,
        iid: InstId,
        intr: Intrinsic,
        args: &[Operand],
    ) -> Result<(), TrapKind> {
        match intr {
            Intrinsic::ThreadId => {
                let v = RtVal::I(thread.tid as i64);
                self.set_reg(thread, iid, v)?;
            }
            Intrinsic::BlockId => {
                let v = RtVal::I(self.team_id as i64);
                self.set_reg(thread, iid, v)?;
            }
            Intrinsic::BlockDim => {
                let v = RtVal::I(self.nthreads as i64);
                self.set_reg(thread, iid, v)?;
            }
            Intrinsic::GridDim => {
                let v = RtVal::I(self.num_teams as i64);
                self.set_reg(thread, iid, v)?;
            }
            Intrinsic::AlignedBarrier => {
                if thread.drop_next_barrier {
                    // Injected fault: the thread sails past the barrier.
                    // The team scheduler observes the broken promise as a
                    // deadlock (or a divergent-arrival trap) downstream.
                    thread.drop_next_barrier = false;
                } else {
                    if self.san_armed() {
                        thread.barrier_site = thread.frames.last().map(|f| IrLoc {
                            func: f.func,
                            block: f.block.0,
                            inst: iid.0,
                        });
                    }
                    thread.status = Status::AtBarrier { aligned: true };
                }
            }
            Intrinsic::Barrier => {
                if thread.drop_next_barrier {
                    thread.drop_next_barrier = false;
                } else {
                    if self.san_armed() {
                        thread.barrier_site = thread.frames.last().map(|f| IrLoc {
                            func: f.func,
                            block: f.block.0,
                            inst: iid.0,
                        });
                    }
                    thread.status = Status::AtBarrier { aligned: false };
                }
            }
            Intrinsic::Assume(()) => {
                if self.check_assumes {
                    let Some(&cond) = args.first() else {
                        return Err(malformed("assume intrinsic with no operand"));
                    };
                    let c = self.eval(thread, cond)?.as_bool();
                    if !c {
                        return Err(TrapKind::AssumeViolated);
                    }
                }
            }
            Intrinsic::AssertFail => return Err(TrapKind::AssertFail),
            Intrinsic::Malloc => {
                let Some(&sz) = args.first() else {
                    return Err(malformed("malloc intrinsic with no operand"));
                };
                let size = self.eval(thread, sz)?.as_i().max(0) as u64;
                thread.cycles += self.cost.malloc;
                thread.busy_cycles += self.cost.malloc;
                thread.mem_cycles += self.cost.malloc;
                self.counters.device_mallocs += 1;
                let off = self.heap_alloc(size)?;
                self.set_reg(thread, iid, RtVal::P(DevPtr::global(off as u32)))?;
            }
            Intrinsic::Free => {
                let Some(&ptr) = args.first() else {
                    return Err(malformed("free intrinsic with no operand"));
                };
                let p = self.eval(thread, ptr)?.as_ptr();
                if p.is_null() {
                    return Ok(());
                }
                self.heap_free(p)?;
            }
        }
        Ok(())
    }

    fn step_term(&mut self, thread: &mut ThreadCtx<Frame>, term: &Term) -> Result<(), TrapKind> {
        match term {
            Term::Br(target) => self.jump(thread, *target),
            Term::CondBr {
                cond,
                if_true,
                if_false,
            } => {
                let c = self.eval(thread, *cond)?.as_bool();
                thread.cycles += self.cost.alu;
                thread.busy_cycles += self.cost.alu;
                let t = if c { *if_true } else { *if_false };
                self.jump(thread, t)
            }
            Term::Ret(v) => {
                let val = match v {
                    Some(op) => Some(self.eval(thread, *op)?),
                    None => None,
                };
                let Some(frame) = thread.frames.pop() else {
                    return Err(malformed("return with no frame"));
                };
                thread.local_top = frame.local_base;
                match thread.frames.last_mut() {
                    None => {
                        thread.status = Status::Done;
                    }
                    Some(caller) => {
                        if let (Some(dst), Some(v)) = (frame.ret_dst, val) {
                            let Some(slot) = caller.regs.get_mut(dst.index()) else {
                                return Err(malformed(format!(
                                    "return destination %{} out of range",
                                    dst.0
                                )));
                            };
                            *slot = v;
                        }
                    }
                }
                Ok(())
            }
            Term::Unreachable => Err(TrapKind::AssertFail),
        }
    }

    /// Transfer control to `target`, materializing its phi nodes with
    /// parallel-copy semantics.
    fn jump(&mut self, thread: &mut ThreadCtx<Frame>, target: BlockId) -> Result<(), TrapKind> {
        let func = self.cur_func(thread)?;
        let Some(frame) = thread.frames.last() else {
            return Err(malformed("branch with no frame"));
        };
        let from = frame.block;
        let Some(block) = func.blocks.get(target.index()) else {
            return Err(malformed(format!(
                "branch in @{} targets missing bb{}",
                func.name, target.0
            )));
        };
        // Evaluate all phi inputs before writing any.
        let mut writes: Vec<(InstId, RtVal)> = Vec::new();
        let mut phi_count = 0usize;
        for &iid in &block.insts {
            let Some(inst) = func.insts.get(iid.index()) else {
                return Err(malformed(format!(
                    "bb{} in @{} lists missing inst %{}",
                    target.0, func.name, iid.0
                )));
            };
            match inst {
                Inst::Phi { incomings, .. } => {
                    phi_count += 1;
                    // The verifier rejects this shape (`ir::verify`); a
                    // hand-built module loaded straight onto a device
                    // degrades to a typed trap instead of a process abort.
                    let Some(inc) = incomings.iter().find(|i| i.pred == from) else {
                        return Err(malformed(format!(
                            "phi %{} in @{} bb{} missing incoming for bb{}",
                            iid.0, func.name, target.0, from.0
                        )));
                    };
                    writes.push((iid, self.eval(thread, inc.value)?));
                }
                _ => break,
            }
        }
        let Some(frame) = thread.frames.last_mut() else {
            return Err(malformed("branch with no frame"));
        };
        for (iid, v) in writes {
            let Some(slot) = frame.regs.get_mut(iid.index()) else {
                return Err(malformed(format!("phi result %{} out of range", iid.0)));
            };
            *slot = v;
        }
        frame.block = target;
        frame.inst_idx = phi_count;
        self.counters.instructions += phi_count as u64;
        Ok(())
    }
}
